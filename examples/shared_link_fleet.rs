//! Concurrent sessions on one bottleneck: an 8-session mixed-ABR fleet
//! (4 VOXEL, 2 BOLA, 2 BETA) sharing a 6 Mbit/s DRR-scheduled link, the
//! serving-scale scenario the single-session figures cannot show.
//!
//! ```sh
//! cargo run --release --example shared_link_fleet [spec]
//! # e.g.
//! cargo run --release --example shared_link_fleet BBB:8xVOXEL:const6:stg2
//! ```

use voxel::prelude::*;

fn main() {
    let spec_str = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2".into());
    let spec = match FleetSpec::parse(&spec_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad fleet spec {spec_str:?}: {e}");
            std::process::exit(2);
        }
    };

    let cache = ContentCache::new();
    println!(
        "fleet {spec_str}: {} sessions on a shared {} Mbit/s link ({:?})",
        spec.total_sessions(),
        spec.link_mbps,
        spec.discipline,
    );
    let fleet = run_fleet(&spec, &cache, Tracer::disabled()).expect("validated spec runs");

    println!(
        "\n{:4} {:12} {:>8} {:>12} {:>8} {:>9} {:>9}",
        "flow", "system", "share", "bufRatio", "SSIM", "stall-s", "drops"
    );
    for (i, (session, flow)) in fleet.sessions.iter().zip(&fleet.flows).enumerate() {
        println!(
            "{:4} {:12} {:>7.1}% {:>11.2}% {:>8.4} {:>9.2} {:>9}",
            i,
            session.abr,
            fleet.shares_pct[i],
            session.buf_ratio_pct(),
            session.avg_ssim(),
            session.stall_s,
            flow.dropped,
        );
    }
    println!(
        "\nJain fairness {:.3} | aggregate mean SSIM {:.4} | total stalls {:.1} s | link drops {}",
        fleet.jain,
        fleet.mean_ssim(),
        fleet.total_stall_s(),
        fleet.total_drops(),
    );
    if let Some(edge) = &fleet.edge {
        println!(
            "edge tier: {} edges | hit ratio {:.1}% ({} hits / {} misses) | \
             origin {} bytes over {} fetches | origin load {:.1}%",
            edge.edges.len(),
            edge.hit_ratio_pct,
            edge.hits,
            edge.misses,
            edge.origin_bytes,
            edge.origin_fetches,
            edge.origin_load_pct,
        );
    }
    println!(
        "simulated {:.1} s in {} event-loop iterations{}",
        fleet.end_s,
        fleet.loop_iters,
        if fleet.all_completed() {
            "; every session completed"
        } else {
            "; some sessions hit the safety cap"
        }
    );
}
