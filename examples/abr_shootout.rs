//! ABR shootout: run every algorithm in the repository over the same
//! network conditions and compare the QoE envelope.
//!
//! ```sh
//! cargo run --release --example abr_shootout [trace] [buffer-segments]
//! # e.g.
//! cargo run --release --example abr_shootout 3G 2
//! ```

use voxel::prelude::*;

fn trace_by_name(name: &str) -> BandwidthTrace {
    match name {
        "T-Mobile" => generators::tmobile_lte(2021, 300),
        "Verizon" => generators::verizon_lte(2021, 300),
        "AT&T" => generators::att_lte(2021, 300),
        "3G" => generators::norway_3g(2021, 300),
        "FCC" => generators::fcc(2021, 300),
        other => panic!("unknown trace {other} (use T-Mobile/Verizon/AT&T/3G/FCC)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_name = args.get(1).map(String::as_str).unwrap_or("Verizon");
    let buffer: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let trace = trace_by_name(trace_name);

    let cache = ContentCache::new();
    println!(
        "trace {trace_name} (mean {:.1} Mbps, std {:.1}), buffer {buffer} segments, video ED\n",
        trace.mean_mbps(),
        trace.std_mbps()
    );
    let contenders: Vec<(&str, AbrKind, TransportMode)> = vec![
        ("Tput/QUIC", AbrKind::Tput, TransportMode::Reliable),
        ("Tput/QUIC*", AbrKind::Tput, TransportMode::Split),
        ("BOLA/QUIC", AbrKind::Bola, TransportMode::Reliable),
        ("BOLA/QUIC*", AbrKind::Bola, TransportMode::Split),
        ("MPC/QUIC", AbrKind::Mpc, TransportMode::Reliable),
        ("MPC/QUIC*", AbrKind::Mpc, TransportMode::Split),
        ("MPC*", AbrKind::MpcStar, TransportMode::Split),
        ("BETA", AbrKind::Beta, TransportMode::Reliable),
        ("BOLA-SSIM", AbrKind::BolaSsim, TransportMode::Split),
        ("VOXEL", AbrKind::voxel(), TransportMode::Split),
        ("VOXEL tuned", AbrKind::voxel_tuned(), TransportMode::Split),
    ];
    println!(
        "{:14} {:>12} {:>10} {:>8} {:>9} {:>10}",
        "system", "bufRatio-p90", "bitrate", "SSIM", "skipped", "wasted-MB"
    );
    for (name, abr, transport) in contenders {
        let agg = Experiment::builder()
            .video(VideoId::Ed)
            .abr(abr)
            .transport(transport)
            .buffer(buffer)
            .trace(trace.clone())
            .trials(6)
            .build()
            .run(&cache);
        let wasted: f64 = agg
            .trials
            .iter()
            .map(|t| t.bytes_wasted as f64)
            .sum::<f64>()
            / agg.trials.len() as f64
            / 1e6;
        println!(
            "{:14} {:>11.2}% {:>7.0}kbps {:>8.4} {:>8.1}% {:>10.1}",
            name,
            agg.buf_ratio_p90(),
            agg.bitrate_mean_kbps(),
            agg.mean_ssim(),
            agg.data_skipped_mean_pct(),
            wasted,
        );
    }
}
