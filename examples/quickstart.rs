//! Quickstart: stream one video with VOXEL over an LTE-like trace and print
//! the session's quality/rebuffering summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use voxel::abr::AbrStar; // lint: allow(deep-import) quickstart hand-builds the raw Session pipeline, ABR* included
use voxel::prelude::*;

fn main() {
    // 1. "Transcode" a video: generate the synthetic Big Buck Bunny clip
    //    (75 x 4 s segments at the 13-level Table 2 ladder).
    let video = Video::generate(VideoId::Bbb);
    let qoe = QoeModel::default();

    // 2. Offline preparation (§4.1): rank frames, compute bytes→SSIM maps,
    //    build the extended manifest. One-time, reusable.
    println!("preparing the extended manifest (one-time, offline)...");
    let manifest = Arc::new(Manifest::prepare(&video, &qoe));
    println!(
        "manifest ready: {} segments x 13 levels, {} kB serialized",
        manifest.num_segments(),
        manifest.size_bytes() / 1000
    );

    // 3. Emulate a Verizon-LTE-like bottleneck (mean 10 Mbps, violent
    //    variation) with the paper's 32-packet droptail queue and 30 ms
    //    last-mile delay.
    let trace = generators::verizon_lte(7, 300);
    println!(
        "trace: mean {:.1} Mbps, std {:.1} Mbps",
        trace.mean_mbps(),
        trace.std_mbps()
    );
    let path = PathConfig::new(trace, 32);

    // 4. Stream with VOXEL: ABR* over QUIC* (I-frame + headers reliable,
    //    frame bodies unreliable), 2-segment playback buffer (live-like).
    let session = Session::new(
        path,
        manifest,
        Arc::new(video),
        qoe,
        Box::new(AbrStar::default()),
        PlayerConfig::new(2, TransportMode::Split),
    );
    println!("streaming 5 minutes of video ...");
    let result = session.run();

    println!("\n=== session summary ===");
    println!("startup delay     : {:6.2} s", result.startup_s);
    println!("rebuffering ratio : {:6.2} %", result.buf_ratio_pct());
    println!("average bitrate   : {:6.0} kbps", result.avg_bitrate_kbps());
    println!("average SSIM      : {:6.4}", result.avg_ssim());
    println!("data skipped      : {:6.1} %", result.data_skipped_pct());
    println!("partial segments  : {:6}", result.kept_partials);
    println!(
        "loss recovery     : {:6.1} % of in-transit losses recovered",
        100.0 - result.residual_loss_pct()
    );
}
