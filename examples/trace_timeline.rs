//! Export per-trial JSONL timelines + metrics snapshots from an experiment.
//!
//! ```sh
//! cargo run --release --example trace_timeline [dir]
//! ```
//!
//! Runs a short VOXEL experiment with `Tracing::jsonl` enabled and prints
//! where the `trial-NNNN.jsonl` / `trial-NNNN.metrics.json` files landed,
//! plus a few sample events. See DESIGN.md §9 for the event taxonomy.

use voxel::prelude::*;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "timelines".into());
    let cache = ContentCache::new();
    let agg = Experiment::builder()
        .video(VideoId::Bbb)
        .abr(AbrKind::voxel())
        .buffer(3)
        .trace(generators::verizon_lte(11, 300))
        .trials(2)
        .tracing(Tracing::jsonl(&dir))
        .build()
        .run(&cache);
    println!(
        "ran {} trials: bufRatio p90 {:.2} %, mean SSIM {:.4}, mean cwnd {:.0} B",
        agg.trials.len(),
        agg.buf_ratio_p90(),
        agg.mean_ssim(),
        agg.mean_cwnd_bytes(),
    );

    let Ok(entries) = std::fs::read_dir(&dir) else {
        println!("no timelines under {dir} (directory not writable?)");
        return;
    };
    let mut files: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    files.sort();
    for f in &files {
        let len = std::fs::metadata(f).map(|m| m.len()).unwrap_or(0);
        println!("  {} ({} kB)", f.display(), len / 1000);
    }
    if let Some(jsonl) = files
        .iter()
        .find(|f| f.extension().is_some_and(|e| e == "jsonl"))
    {
        let text = std::fs::read_to_string(jsonl).expect("readable");
        println!("first events of {}:", jsonl.display());
        for line in text.lines().take(3) {
            println!("  {line}");
        }
    }
}
