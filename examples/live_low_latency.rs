//! Live / low-latency streaming scenario: the 1-segment-buffer regime the
//! paper highlights ("small buffers are crucial for supporting low-latency
//! or live-streaming-like applications", §5).
//!
//! Streams the same clip under a challenging T-Mobile-like LTE trace with a
//! 1-segment playback buffer, side by side: BOLA over vanilla QUIC vs
//! VOXEL. Prints the rebuffering/quality trade-off per system.
//!
//! ```sh
//! cargo run --release --example live_low_latency
//! ```

use voxel::prelude::*;

fn main() {
    let cache = ContentCache::new();
    let trace = generators::tmobile_lte(2021, 300);
    println!(
        "T-Mobile-like trace: mean {:.1} Mbps, std {:.1} Mbps (violently varying)",
        trace.mean_mbps(),
        trace.std_mbps()
    );
    println!("1-segment playback buffer (4 s end-to-end latency budget)\n");

    let systems = [
        ("BOLA over QUIC", AbrKind::Bola, TransportMode::Reliable),
        ("BETA (reliable)", AbrKind::Beta, TransportMode::Reliable),
        ("VOXEL", AbrKind::voxel_tuned(), TransportMode::Split),
    ];
    println!(
        "{:18} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "system", "bufRatio-p90", "bitrate", "SSIM", "restarts", "partials"
    );
    for (name, abr, transport) in systems {
        let agg = Experiment::builder()
            .video(VideoId::Tos)
            .abr(abr)
            .transport(transport)
            .buffer(1)
            .trace(trace.clone())
            .trials(6)
            .build()
            .run(&cache);
        let restarts: f64 =
            agg.trials.iter().map(|t| t.restarts as f64).sum::<f64>() / agg.trials.len() as f64;
        let partials: f64 = agg
            .trials
            .iter()
            .map(|t| t.kept_partials as f64)
            .sum::<f64>()
            / agg.trials.len() as f64;
        println!(
            "{:18} {:>11.2}% {:>8.0}kbps {:>10.4} {:>10.1} {:>9.1}",
            name,
            agg.buf_ratio_p90(),
            agg.bitrate_mean_kbps(),
            agg.mean_ssim(),
            restarts,
            partials
        );
    }
    println!("\nVOXEL trades a handful of skipped frames (known SSIM impact, from the");
    println!("manifest) for uninterrupted playback — the §4.2 quality-vs-rebuffering");
    println!("trade-off that 84% of surveyed users preferred.");
}
