//! Offline content preparation walkthrough (§4.1): inspect the frame
//! orderings, the bytes→SSIM maps, and the extended manifest for one
//! segment — the server-side, one-time computation at the heart of VOXEL.
//!
//! ```sh
//! cargo run --release --example offline_prep
//! ```

// lint: allow(deep-import) this example is a tour of the media internals the prelude omits
use voxel::media::{
    content::VideoId, gop::FrameKind, ladder::QualityLevel, qoe::QoeModel, video::Video,
};
// lint: allow(deep-import) offline analysis/ordering are server-side-only surfaces, not in the prelude
use voxel::prep::{
    analysis::{analyze_segment, BytesQoeMap},
    ordering::{frame_order, OrderingKind},
};

fn main() {
    let video = Video::generate(VideoId::Sintel);
    let model = QoeModel::default();
    let seg = &video.segments[12];
    let level = QualityLevel::MAX;

    println!("=== segment 12 of Sintel at {level} ===");
    let (i, p, bref, bunref) = seg.gop.kind_counts();
    println!(
        "frames: {i} I + {p} P + {bref} referenced-B + {bunref} unreferenced-b, {} bytes",
        seg.bytes(level)
    );
    println!(
        "mean motion {:.2}, pristine SSIM {:.4}",
        seg.mean_motion,
        model.pristine_ssim(seg, level)
    );

    // The three §4.1 orderings and their drop tolerance.
    println!("\n--- candidate orderings ---");
    for kind in OrderingKind::ALL {
        let map = BytesQoeMap::compute(&model, seg, level, kind);
        let bound = model.pristine_ssim(seg, QualityLevel(11));
        let at_bound = map.min_bytes_for(bound);
        match at_bound {
            Some(pt) => println!(
                "{kind:20} reaches the Q11 bound ({bound:.4}) with {:7} bytes / {:2} frames (saves {:4.1}%)",
                pt.bytes,
                pt.frames,
                100.0 * (1.0 - pt.bytes as f64 / map.full_bytes() as f64),
            ),
            None => println!("{kind:20} cannot reach the bound short of the full segment"),
        }
    }

    // The winning analysis, as it lands in the manifest.
    let analysis = analyze_segment(&model, seg, level);
    println!(
        "\nchosen ordering: {} (min {} bytes for SSIM >= {:.4})",
        analysis.best.ordering, analysis.min_bytes, analysis.bound
    );

    // Show the head and tail of the download order: anchors first,
    // droppable b-frames last.
    let order = frame_order(seg, analysis.best.ordering);
    let kind_of = |f: usize| match seg.gop.frames[f].kind {
        FrameKind::I => "I",
        FrameKind::P => "P",
        FrameKind::BRef => "B",
        FrameKind::BUnref => "b",
    };
    let head: Vec<&str> = order[..12].iter().map(|&f| kind_of(f)).collect();
    let tail: Vec<&str> = order[order.len() - 12..]
        .iter()
        .map(|&f| kind_of(f))
        .collect();
    println!("download order head: {}", head.join(" "));
    println!("download order tail: {}", tail.join(" "));

    // A few points of the bytes→SSIM map (the `ssims` manifest attribute).
    println!("\n--- ssims attribute (excerpt) ---");
    for pt in analysis.best.points.iter().step_by(16) {
        println!("  {:.4}:{}:{}", pt.ssim, pt.frames, pt.bytes);
    }

    // The Listing 1 serialization for this video.
    let manifest =
        voxel::prep::manifest::Manifest::prepare_levels(&video, &model, &[QualityLevel::MAX]);
    let mpd = manifest.to_mpd();
    let line = mpd
        .lines()
        .find(|l| l.contains("seg=\"12\" q=\"12\""))
        .expect("entry exists");
    let shown = if line.len() > 200 { &line[..200] } else { line };
    println!("\n--- manifest entry (Listing 1 style, truncated) ---\n{shown}…");
}
