#![warn(missing_docs)]
//! # VOXEL
//!
//! Umbrella crate re-exporting the full VOXEL system — a reproduction of
//! "VOXEL: Cross-layer Optimization for Video Streaming with Imperfect
//! Transmission" (CoNEXT '21). See the README for a quickstart and
//! `DESIGN.md` for the architecture.
//!
//! Most programs only need [`prelude`]:
//!
//! ```no_run
//! use voxel::prelude::*;
//!
//! let cache = ContentCache::new();
//! let agg = Experiment::builder()
//!     .video(VideoId::Bbb)
//!     .abr(AbrKind::voxel())
//!     .trace(BandwidthTrace::constant(6.0, 300))
//!     .trials(4)
//!     .build()
//!     .run(&cache);
//! println!("bufRatio p90 = {:.2}%", agg.buf_ratio_p90());
//! ```
//!
//! The per-crate modules ([`core`], [`quic`], …) stay available for deep
//! work on a single layer.

pub use voxel_abr as abr;
pub use voxel_core as core;
pub use voxel_fleet as fleet;
pub use voxel_http as http;
pub use voxel_media as media;
pub use voxel_netem as netem;
pub use voxel_obs as obs;
pub use voxel_prep as prep;
pub use voxel_quic as quic;
pub use voxel_sim as sim;
pub use voxel_testkit as testkit;
pub use voxel_trace as trace;

/// One-stop imports for the common workflows: configure an experiment
/// with [`Experiment::builder`](crate::core::Experiment::builder), run
/// it against a [`ContentCache`](crate::core::ContentCache), trace it
/// with [`Tracing`](crate::core::Tracing), scale it out with
/// [`FleetSpec`](crate::fleet::FleetSpec), and conformance-test it with
/// the testkit types.
pub mod prelude {
    pub use crate::core::client::{ClientApp, PlayerConfig, TransportMode};
    pub use crate::core::experiment::run_instrumented_trial;
    pub use crate::core::server::ServerApp;
    pub use crate::core::session::Session;
    pub use crate::core::{
        AbrKind, Admission, Aggregate, CacheConfig, Config, ContentCache, EvictionPolicy,
        Experiment, ExperimentBuilder, Tracing, TransportStats, TrialResult,
    };
    pub use crate::fleet::{
        jain_index, run_experiment_fleet, run_fleet, run_fleet_workload, run_specs,
        zipf_poisson_arrivals, EdgeReport, FleetMember, FleetResult, FleetSpec, Routing, SpecError,
        TopologySpec, Workload,
    };
    pub use crate::media::content::VideoId;
    pub use crate::media::ladder::QualityLevel;
    pub use crate::media::qoe::{QoeMetric, QoeModel};
    pub use crate::media::video::Video;
    pub use crate::netem::trace::generators;
    pub use crate::netem::{
        BandwidthTrace, Discipline, FaultKind, PathConfig, SharedLink, SharedLinkConfig,
    };
    pub use crate::prep::manifest::Manifest;
    pub use crate::quic::CcKind;
    pub use crate::sim::{SimDuration, SimTime};
    pub use crate::testkit::{
        run_scenario, system_by_name, video_by_name, Content, Matrix, Scenario,
    };
    pub use crate::trace::{Layer, Tracer};
}
