#![warn(missing_docs)]
//! # VOXEL
//!
//! Umbrella crate re-exporting the full VOXEL system — a reproduction of
//! "VOXEL: Cross-layer Optimization for Video Streaming with Imperfect
//! Transmission" (CoNEXT '21). See the README for a quickstart and
//! `DESIGN.md` for the architecture.

pub use voxel_abr as abr;
pub use voxel_core as core;
pub use voxel_http as http;
pub use voxel_media as media;
pub use voxel_netem as netem;
pub use voxel_prep as prep;
pub use voxel_quic as quic;
pub use voxel_sim as sim;
pub use voxel_testkit as testkit;
pub use voxel_trace as trace;
