//! The `voxel` command-line tool.
//!
//! ```text
//! voxel prep   <video>                         run the §4.1 offline analysis, print the manifest
//! voxel stream [--abr X] [--trace T] [--video V] [--buffer N] [--live] [--trials K]
//! voxel trace  <name> [--out mahimahi]         generate / export a bandwidth trace
//! voxel survey [--trace T] [--video V]         run the synthetic Fig 14 panel
//! ```
//!
//! Argument parsing is deliberately dependency-free (the offline crate
//! policy in DESIGN.md).

use std::collections::HashMap;
use voxel::core::experiment::{AbrKind, ContentCache, Experiment};
use voxel::core::survey::run_survey;
use voxel::core::TransportMode;
use voxel::media::content::VideoId;
use voxel::media::qoe::QoeModel;
use voxel::media::video::Video;
use voxel::netem::trace::{generators, mahimahi};
use voxel::netem::BandwidthTrace;
use voxel::prep::manifest::Manifest;

fn usage() -> ! {
    eprintln!(
        "usage:\n  voxel prep <BBB|ED|Sintel|ToS|P1..P10>\n  voxel stream [--abr BOLA|MPC|MPC*|BETA|BOLA-SSIM|VOXEL|Tput] [--trace T-Mobile|Verizon|AT&T|3G|FCC] [--video V] [--buffer N] [--trials K] [--live]\n  voxel trace <name> [--mahimahi]\n  voxel survey [--trace T] [--video V]"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "true".into());
            if value != "true" {
                i += 1;
            }
            out.insert(name.to_string(), value);
        }
        i += 1;
    }
    out
}

fn video_by_name(name: &str) -> VideoId {
    // The canonical legend table (shared with fleet specs and the testkit).
    voxel::fleet::video_by_name(name).unwrap_or_else(|| usage())
}

fn trace_by_name(name: &str) -> BandwidthTrace {
    match name {
        "T-Mobile" => generators::tmobile_lte(2021, 300),
        "Verizon" => generators::verizon_lte(2021, 300),
        "AT&T" => generators::att_lte(2021, 300),
        "3G" => generators::norway_3g(2021, 300),
        "FCC" => generators::fcc(2021, 300),
        "in-the-wild" => generators::wild_wifi(2021, 300),
        _ => usage(),
    }
}

fn abr_by_name(name: &str) -> (AbrKind, TransportMode) {
    voxel::fleet::system_by_name(name).unwrap_or_else(|| usage())
}

fn cmd_prep(video: &str) {
    let id = video_by_name(video);
    eprintln!("generating {id} and running the offline analysis ...");
    let v = Video::generate(id);
    let manifest = Manifest::prepare(&v, &QoeModel::default());
    print!("{}", manifest.to_mpd());
    eprintln!(
        "manifest: {} entries, {} kB serialized",
        manifest.num_segments() * 13,
        manifest.size_bytes() / 1000
    );
}

fn cmd_stream(flags: &HashMap<String, String>) {
    let abr_name = flags.get("abr").map(String::as_str).unwrap_or("VOXEL");
    let (abr, transport) = abr_by_name(abr_name);
    let trace = trace_by_name(flags.get("trace").map(String::as_str).unwrap_or("Verizon"));
    let video = video_by_name(flags.get("video").map(String::as_str).unwrap_or("BBB"));
    let buffer: usize = flags
        .get("buffer")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let trials: usize = flags
        .get("trials")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let cache = ContentCache::new();
    eprintln!("streaming {video} with {abr_name}, {buffer}-segment buffer, {trials} trials ...");
    let agg = Experiment::builder()
        .video(video)
        .abr(abr)
        .transport(transport)
        .buffer(buffer)
        .trace(trace)
        .trials(trials)
        .build()
        .run(&cache);
    println!("bufRatio   p90  : {:8.2} %", agg.buf_ratio_p90());
    println!("bufRatio   mean : {:8.2} %", agg.buf_ratio_mean());
    println!("bitrate    mean : {:8.0} kbps", agg.bitrate_mean_kbps());
    println!("SSIM       mean : {:8.4}", agg.mean_ssim());
    println!("data skipped    : {:8.1} %", agg.data_skipped_mean_pct());
}

fn cmd_trace(name: &str, flags: &HashMap<String, String>) {
    let t = trace_by_name(name);
    if flags.contains_key("mahimahi") {
        print!("{}", mahimahi::to_lines(&t));
    } else {
        for m in &t.mbps {
            println!("{m:.3}");
        }
    }
    eprintln!(
        "{name}: {} s, mean {:.2} Mbps, std {:.2} Mbps",
        t.duration_s(),
        t.mean_mbps(),
        t.std_mbps()
    );
}

fn cmd_survey(flags: &HashMap<String, String>) {
    let trace = trace_by_name(flags.get("trace").map(String::as_str).unwrap_or("3G"));
    let video = video_by_name(flags.get("video").map(String::as_str).unwrap_or("BBB"));
    let cache = ContentCache::new();
    eprintln!("running paired BOLA vs VOXEL sessions + a 54-user synthetic panel ...");
    let run_one = |abr: AbrKind, trace: BandwidthTrace| {
        Experiment::builder()
            .video(video)
            .abr(abr)
            .buffer(1)
            .trace(trace)
            .trials(1)
            .build()
            .run(&cache)
    };
    let bola = run_one(AbrKind::Bola, trace.clone());
    let voxel = run_one(AbrKind::voxel(), trace);
    let s = run_survey(&bola.trials[0], &voxel.trials[0], 54, 14);
    println!("{:12} {:>8} {:>8}", "dimension", "BOLA", "VOXEL");
    println!(
        "{:12} {:>8.2} {:>8.2}",
        "clarity", s.mos_a.clarity, s.mos_b.clarity
    );
    println!(
        "{:12} {:>8.2} {:>8.2}",
        "glitches", s.mos_a.glitches, s.mos_b.glitches
    );
    println!(
        "{:12} {:>8.2} {:>8.2}",
        "fluidity", s.mos_a.fluidity, s.mos_b.fluidity
    );
    println!(
        "{:12} {:>8.2} {:>8.2}",
        "experience", s.mos_a.experience, s.mos_b.experience
    );
    println!("prefer VOXEL: {:.0} %", 100.0 * s.prefer_b);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "prep" => match args.get(1) {
            Some(v) if !v.starts_with("--") => cmd_prep(v),
            _ => usage(),
        },
        "stream" => cmd_stream(&flags),
        "trace" => match args.get(1) {
            Some(v) if !v.starts_with("--") => cmd_trace(v, &flags),
            _ => usage(),
        },
        "survey" => cmd_survey(&flags),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_values_and_booleans() {
        let f = parse_flags(&v(&["--abr", "BOLA", "--live", "--buffer", "2"]));
        assert_eq!(f.get("abr").map(String::as_str), Some("BOLA"));
        assert_eq!(f.get("live").map(String::as_str), Some("true"));
        assert_eq!(f.get("buffer").map(String::as_str), Some("2"));
        assert!(!f.contains_key("missing"));
    }

    #[test]
    fn adjacent_flags_do_not_consume_each_other() {
        let f = parse_flags(&v(&["--live", "--mahimahi"]));
        assert_eq!(f.get("live").map(String::as_str), Some("true"));
        assert_eq!(f.get("mahimahi").map(String::as_str), Some("true"));
    }

    #[test]
    fn names_resolve() {
        assert_eq!(video_by_name("Sintel"), VideoId::Sintel);
        assert_eq!(video_by_name("P7"), VideoId::YouTube(7));
        assert_eq!(trace_by_name("FCC").duration_s(), 300);
        assert_eq!(abr_by_name("VOXEL").1, TransportMode::Split);
        assert_eq!(abr_by_name("BETA").1, TransportMode::Reliable);
    }
}
