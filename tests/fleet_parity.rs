//! Tier-1 sharded-parity slice: `workers` is a performance knob, never a
//! semantic one. The same fleet spec must produce a byte-identical
//! timeline and identical metrics at every worker count — including
//! counts that exceed the session count (clamped) and partitions that
//! split heterogeneous systems across shards. The full golden-fleet
//! parity sweep (every committed digest at w ∈ {1, 2, max}) runs in
//! tier-2 (`cargo run -p voxel-bench --bin conformance`).

use voxel::prelude::*;
use voxel::trace::{JsonlSink, SharedBuf};

fn run_with_workers(
    spec_str: &str,
    workers: usize,
    cache: &ContentCache,
) -> (FleetResult, Vec<u8>) {
    let mut spec = FleetSpec::parse(spec_str).expect("spec");
    // Explicit per-run override: the environment knob is never consulted,
    // so this test is immune to VOXEL_SHARD_WORKERS in the ambient CI env.
    spec.workers = Some(workers);
    let buf = SharedBuf::new();
    let tracer = Tracer::new(0, Box::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let r = run_fleet(&spec, cache, tracer).expect("spec runs");
    (r, buf.contents())
}

fn assert_parity(spec: &str, counts: &[usize], cache: &ContentCache) -> FleetResult {
    let (r1, t1) = run_with_workers(spec, 1, cache);
    assert!(!t1.is_empty());
    for &w in counts {
        let (rw, tw) = run_with_workers(spec, w, cache);
        assert_eq!(tw, t1, "timeline diverges at workers={w} for {spec}");
        assert_eq!(rw.loop_iters, r1.loop_iters, "loop_iters at workers={w}");
        assert_eq!(rw.end_s, r1.end_s, "end_s at workers={w}");
        assert_eq!(rw.jain, r1.jain, "jain at workers={w}");
        assert_eq!(rw.shares_pct, r1.shares_pct, "shares at workers={w}");
        assert_eq!(rw.flows, r1.flows, "link stats at workers={w}");
        assert_eq!(rw.edge, r1.edge, "edge report at workers={w}");
        assert_eq!(rw.sessions.len(), r1.sessions.len());
        for (i, (a, b)) in rw.sessions.iter().zip(r1.sessions.iter()).enumerate() {
            assert_eq!(a.completed, b.completed, "session {i} at workers={w}");
            assert_eq!(a.stall_s, b.stall_s, "session {i} at workers={w}");
            assert_eq!(
                a.bytes_downloaded, b.bytes_downloaded,
                "session {i} at workers={w}"
            );
            assert_eq!(a.avg_ssim(), b.avg_ssim(), "session {i} at workers={w}");
        }
    }
    r1
}

#[test]
fn mixed_fleet_is_byte_identical_across_worker_counts() {
    let cache = ContentCache::top_level_only();
    // Heterogeneous systems, staggered starts, sessions running to
    // natural completion. Worker counts cover: even split, uneven split,
    // one-session shards, and a count past the fleet size (clamped).
    let r = assert_parity(
        "BBB:2xVOXEL+1xBOLA:const6:buf3:q64:d60:drr:stg1",
        &[2, 3, 5],
        &cache,
    );
    assert!(r.sessions.iter().all(|s| s.completed));
}

#[test]
fn cap_freeze_is_byte_identical_across_worker_counts() {
    let cache = ContentCache::top_level_only();
    // A cap far below the time the fleet needs forces the coordinator's
    // global freeze — the one round where every shard acts at once.
    let r = assert_parity(
        "BBB:2xVOXEL+2xBOLA:const6:buf3:q64:d60:drr:stg1:cap10",
        &[2, 4],
        &cache,
    );
    assert!(
        r.sessions.iter().any(|s| !s.completed),
        "cap did not bite; freeze path untested"
    );
    assert_eq!(r.end_s, 10.0, "frozen runs end exactly at the cap");
}

/// The two congestion-control goldens (DESIGN.md §15) hold byte-parity
/// at w ∈ {1, 2, max} in tier-1, not just in the tier-2 sweep: BBR's
/// delivery-rate sampler and pacing feed off ack timing, the most
/// tempting place for a shard boundary to leak into the timeline. Runs
/// through the testkit parity harness so the cc-mix fairness-band and
/// per-cc-group starvation oracles apply to every run.
#[test]
fn cc_goldens_hold_parity_at_one_two_and_max_workers() {
    let content = voxel::testkit::Content::new();
    let goldens = voxel::testkit::canonical_fleets();
    for name in ["fleet-bbr8", "fleet-ccmix8"] {
        let g = goldens
            .iter()
            .find(|g| g.name == name)
            .expect("cc golden is canonical");
        let max = FleetSpec::parse(g.spec).expect("spec").total_sessions();
        let (run, violations) =
            voxel::testkit::shard_parity_failures(g, &content, &[1, 2, max]).expect("spec runs");
        assert!(violations.is_empty(), "{name}: {violations:?}");
        assert!(!run.timeline.is_empty(), "{name} produced no timeline");
    }
}

/// The edge serving tier runs coordinator-side off shard-exported serve
/// notes, so it must be as partition-blind as the link: same caches,
/// same origin backlog, same per-flow gates — byte-identical timelines
/// and identical edge reports at every worker count. Exercises both
/// admission extremes (a gating cold tier stresses the held-packet
/// staging; a hot tier stresses note-order cache replay).
#[test]
fn edge_tier_is_byte_identical_across_worker_counts() {
    let cache = ContentCache::top_level_only();
    for admission in ["afull", "anone"] {
        let spec = format!(
            "BBB:4xVOXEL+2xBOLA:const9:buf3:q64:d60:drr:stg1:cap30:e2:rhash:{admission}:plru:o25"
        );
        let r = assert_parity(&spec, &[2, 3, 6], &cache);
        let edge = r.edge.expect("edge tier ran");
        assert_eq!(
            edge.edges.iter().map(|e| e.sessions).sum::<usize>(),
            6,
            "every session routed to an edge"
        );
        assert!(edge.hits + edge.misses > 0, "edge tier saw lookups");
        if admission == "anone" {
            assert_eq!(edge.hits, 0, "admission none must never hit");
            assert!(edge.origin_bytes > 0, "cold tier rides the origin");
        }
    }
}

/// The committed edge goldens themselves hold parity at w ∈ {1, 2, max}
/// in tier-1 (the full digest check runs in tier-2 conformance): the
/// hot golden must also clear the testkit's hot-cache oracles.
#[test]
fn edge_goldens_hold_parity_at_one_two_and_max_workers() {
    let content = voxel::testkit::Content::new();
    let goldens = voxel::testkit::canonical_fleets();
    for name in ["fleet-edge4x16-hot", "fleet-edge4x16-cold"] {
        let g = goldens
            .iter()
            .find(|g| g.name == name)
            .expect("edge golden is canonical");
        let max = FleetSpec::parse(g.spec).expect("spec").total_sessions();
        let (run, violations) =
            voxel::testkit::shard_parity_failures(g, &content, &[1, 2, max]).expect("spec runs");
        assert!(violations.is_empty(), "{name}: {violations:?}");
        assert!(!run.timeline.is_empty(), "{name} produced no timeline");
        if name == "fleet-edge4x16-hot" {
            let hot = voxel::testkit::edge_hot_invariants(&run.result);
            assert!(hot.is_empty(), "{hot:?}");
        }
    }
}

#[test]
fn fifo_discipline_parity_holds_too() {
    let cache = ContentCache::top_level_only();
    // FIFO couples flows through one global arrival order — the most
    // merge-order-sensitive configuration the link supports.
    assert_parity(
        "BBB:2xVOXEL+1xBETA:const6:buf3:q32:d60:fifo:stg1:cap30",
        &[2, 3],
        &cache,
    );
}
