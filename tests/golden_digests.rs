//! Golden timeline digests (DESIGN.md §11): every canonical scenario's
//! voxel-trace JSONL must hash to the digest committed under
//! `tests/golden/`. Any behavioral change to quic/abr/player surfaces
//! here as a reviewable digest diff instead of silent results drift.
//!
//! After an *intentional* behavior change, re-bless with
//! `VOXEL_BLESS=1 cargo test --test golden_digests` and commit the
//! updated `tests/golden/*.digest` files alongside the change.

use std::path::Path;
use voxel::testkit::{check_or_bless, run_golden, Content, GoldenStatus};

#[test]
fn canonical_timelines_match_their_golden_digests() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut content = Content::new();
    for g in voxel::testkit::digest::canonical_scenarios() {
        let (timeline, failures) = run_golden(&g, &mut content).expect("scenario runs");
        assert!(
            failures.is_empty(),
            "golden {} failed its oracles: {failures:?}",
            g.name
        );
        match check_or_bless(&dir, &g, &timeline) {
            Ok(GoldenStatus::Matched) => {}
            Ok(GoldenStatus::Blessed) => eprintln!("blessed golden {}", g.name),
            Err(e) => panic!(
                "golden {} diverged: {e}\n\
                 If this change is intentional, re-bless with \
                 VOXEL_BLESS=1 cargo test --test golden_digests",
                g.name
            ),
        }
    }
}
