//! Golden timeline digests (DESIGN.md §11): every canonical scenario's
//! voxel-trace JSONL must hash to the digest committed under
//! `tests/golden/`. Any behavioral change to quic/abr/player surfaces
//! here as a reviewable digest diff instead of silent results drift.
//!
//! After an *intentional* behavior change, re-bless with
//! `VOXEL_BLESS=1 cargo test --test golden_digests` and commit the
//! updated `tests/golden/*.digest` files alongside the change.

use std::path::Path;
use voxel::testkit::{check_or_bless, run_golden, Content, GoldenStatus};

/// The profiler must be a pure observer (DESIGN.md §13): arming it at
/// sample=1 — every span taken, every alloc counted — must not perturb
/// a single byte of the simulated timeline.
#[test]
fn goldens_unchanged_with_profiler_armed() {
    let mut content = Content::new();
    for g in voxel::testkit::digest::canonical_scenarios() {
        let (baseline, failures) = run_golden(&g, &mut content).expect("scenario runs");
        assert!(
            failures.is_empty(),
            "golden {} baseline failed: {failures:?}",
            g.name
        );

        let profiler = voxel::obs::Profiler::with_sample(1);
        let (profiled, failures) = {
            let _armed = profiler.install();
            run_golden(&g, &mut content).expect("scenario runs under profiler")
        };
        assert!(
            failures.is_empty(),
            "golden {} profiled failed: {failures:?}",
            g.name
        );
        assert_eq!(
            baseline, profiled,
            "golden {} timeline changed with the profiler armed",
            g.name
        );

        let report = profiler.report().expect("armed profiler yields a report");
        assert!(
            report.total_ns() > 0,
            "golden {} recorded no spans at sample=1 — instrumentation is dead",
            g.name
        );
    }
}

/// The congestion-control fleet goldens ride the same bless workflow as
/// every other digest: both are committed under `tests/golden/`, both
/// stay listed in `canonical_fleets()` (what the conformance runner
/// iterates — so `VOXEL_BLESS=1 cargo run --release -p voxel-bench --bin
/// conformance -- --fleets-only` regenerates exactly these files), and
/// the workflow itself stays documented in DESIGN.md.
#[test]
fn cc_fleet_goldens_are_committed_and_regenerable() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for name in ["fleet-bbr8", "fleet-ccmix8"] {
        let path = dir.join(format!("{name}.digest"));
        let digest = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} unreadable ({e}); regenerate with VOXEL_BLESS=1 \
                 cargo run --release -p voxel-bench --bin conformance -- --fleets-only",
                path.display()
            )
        });
        assert!(!digest.trim().is_empty(), "{name} digest is empty");
        assert!(
            voxel::testkit::canonical_fleets()
                .iter()
                .any(|g| g.name == name),
            "{name} left canonical_fleets(); its committed digest is now orphaned"
        );
    }
    let design = std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("DESIGN.md"))
        .expect("DESIGN.md");
    assert!(
        design.contains("VOXEL_BLESS=1"),
        "the bless workflow is no longer documented in DESIGN.md"
    );
}

#[test]
fn canonical_timelines_match_their_golden_digests() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut content = Content::new();
    for g in voxel::testkit::digest::canonical_scenarios() {
        let (timeline, failures) = run_golden(&g, &mut content).expect("scenario runs");
        assert!(
            failures.is_empty(),
            "golden {} failed its oracles: {failures:?}",
            g.name
        );
        match check_or_bless(&dir, &g, &timeline) {
            Ok(GoldenStatus::Matched) => {}
            Ok(GoldenStatus::Blessed) => eprintln!("blessed golden {}", g.name),
            Err(e) => panic!(
                "golden {} diverged: {e}\n\
                 If this change is intentional, re-bless with \
                 VOXEL_BLESS=1 cargo test --test golden_digests",
                g.name
            ),
        }
    }
}
