//! Golden timeline digests (DESIGN.md §11): every canonical scenario's
//! voxel-trace JSONL must hash to the digest committed under
//! `tests/golden/`. Any behavioral change to quic/abr/player surfaces
//! here as a reviewable digest diff instead of silent results drift.
//!
//! After an *intentional* behavior change, re-bless with
//! `VOXEL_BLESS=1 cargo test --test golden_digests` and commit the
//! updated `tests/golden/*.digest` files alongside the change.

use std::path::Path;
use voxel::testkit::{check_or_bless, run_golden, Content, GoldenStatus};

/// The profiler must be a pure observer (DESIGN.md §13): arming it at
/// sample=1 — every span taken, every alloc counted — must not perturb
/// a single byte of the simulated timeline.
#[test]
fn goldens_unchanged_with_profiler_armed() {
    let mut content = Content::new();
    for g in voxel::testkit::digest::canonical_scenarios() {
        let (baseline, failures) = run_golden(&g, &mut content).expect("scenario runs");
        assert!(
            failures.is_empty(),
            "golden {} baseline failed: {failures:?}",
            g.name
        );

        let profiler = voxel::obs::Profiler::with_sample(1);
        let (profiled, failures) = {
            let _armed = profiler.install();
            run_golden(&g, &mut content).expect("scenario runs under profiler")
        };
        assert!(
            failures.is_empty(),
            "golden {} profiled failed: {failures:?}",
            g.name
        );
        assert_eq!(
            baseline, profiled,
            "golden {} timeline changed with the profiler armed",
            g.name
        );

        let report = profiler.report().expect("armed profiler yields a report");
        assert!(
            report.total_ns() > 0,
            "golden {} recorded no spans at sample=1 — instrumentation is dead",
            g.name
        );
    }
}

#[test]
fn canonical_timelines_match_their_golden_digests() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut content = Content::new();
    for g in voxel::testkit::digest::canonical_scenarios() {
        let (timeline, failures) = run_golden(&g, &mut content).expect("scenario runs");
        assert!(
            failures.is_empty(),
            "golden {} failed its oracles: {failures:?}",
            g.name
        );
        match check_or_bless(&dir, &g, &timeline) {
            Ok(GoldenStatus::Matched) => {}
            Ok(GoldenStatus::Blessed) => eprintln!("blessed golden {}", g.name),
            Err(e) => panic!(
                "golden {} diverged: {e}\n\
                 If this change is intentional, re-bless with \
                 VOXEL_BLESS=1 cargo test --test golden_digests",
                g.name
            ),
        }
    }
}
