//! API-redesign safety net: `Experiment::builder()` is the only way to
//! assemble an experiment, so it must be insensitive to everything but
//! the final value of each knob.
//!
//! Runs every canonical golden scenario twice — once with the setters in
//! the natural order, once scrambled with every knob first set to a
//! decoy value and then overridden — and requires the two JSONL
//! timelines to match byte-for-byte. Any divergence means builder call
//! order leaks into the configuration and the pinned goldens would
//! drift under an innocent refactor of a call site.

use voxel::prelude::*;
use voxel::testkit::digest::{canonical_scenarios, timeline_digest};
use voxel::testkit::scenario::Inject;
use voxel::trace::{JsonlSink, SharedBuf};

fn run_with(config: &Config, scenario: &Scenario, seed: u64, content: &mut Content) -> Vec<u8> {
    let (manifest, video, qoe) = content.get(scenario.video);
    let buf = SharedBuf::new();
    let tracer = Tracer::new(0, Box::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let faults = (!scenario.faults.is_empty())
        .then(|| voxel::netem::FaultPlane::new(seed, scenario.faults.clone()));
    run_instrumented_trial(config, &manifest, &video, &qoe, 0, tracer, faults);
    buf.contents()
}

#[test]
fn builder_call_order_cannot_change_the_timeline() {
    let mut content = Content::new();
    for g in canonical_scenarios() {
        let scenario = Scenario::parse(g.spec).expect(g.spec);
        let (abr, transport) = system_by_name(&scenario.system).expect("legend system");
        let trace = scenario.build_trace(g.seed);
        let skew = scenario.inject == Some(Inject::StallSkew);

        let natural = Experiment::builder()
            .video(scenario.video)
            .abr(abr)
            .transport(transport)
            .buffer(scenario.buffer_segments)
            .trace(trace.clone())
            .trials(scenario.trials)
            .queue(scenario.queue_packets)
            .debug_stall_skew(skew)
            .build()
            .into_config();

        // Decoy values for every knob, each overridden afterwards in a
        // different order; only the final values may matter.
        let scrambled = Experiment::builder()
            .queue(7)
            .trials(1)
            .buffer(99)
            .abr(AbrKind::Bola)
            .debug_stall_skew(!skew)
            .selective_retx(false)
            .debug_stall_skew(skew)
            .queue(scenario.queue_packets)
            .trace(trace)
            .trials(scenario.trials)
            .transport(transport)
            .selective_retx(true)
            .abr(abr)
            .transport(transport)
            .buffer(scenario.buffer_segments)
            .video(scenario.video)
            .build()
            .into_config();

        let a = run_with(&natural, &scenario, g.seed, &mut content);
        let b = run_with(&scrambled, &scenario, g.seed, &mut content);
        assert!(!a.is_empty(), "{}: natural run produced no events", g.name);
        assert_eq!(
            timeline_digest(&a),
            timeline_digest(&b),
            "{}: builder call order changed the timeline",
            g.name
        );
        assert_eq!(a, b, "{}: timelines differ byte-wise", g.name);
    }
}

#[test]
fn builder_defaults_are_the_papers_section_5() {
    let built = Experiment::builder().build();
    let b = built.config();
    assert_eq!(b.video, VideoId::Bbb);
    assert_eq!(b.abr, AbrKind::voxel());
    assert_eq!(b.transport, TransportMode::Split);
    assert_eq!(b.buffer_segments, 3);
    assert_eq!(b.queue_packets, 32);
    assert_eq!(b.trials, 30);
    assert!(b.selective_retx);
    assert_eq!(b.cc, CcKind::Cubic);
    assert!(!b.debug_stall_skew);
}
