//! API-redesign safety net: the deprecated `Config` constructor chain and
//! `Experiment::builder()` must configure byte-identical trials.
//!
//! Runs every canonical golden scenario twice — once with a config built
//! through the legacy shims, once through the builder — and requires the
//! two JSONL timelines to match byte-for-byte. Any divergence means the
//! builder is not a faithful replacement and the old goldens would drift.

#![allow(deprecated)]

use voxel::prelude::*;
use voxel::testkit::digest::{canonical_scenarios, timeline_digest};
use voxel::testkit::scenario::Inject;
use voxel::trace::{JsonlSink, SharedBuf};

fn run_with(config: &Config, scenario: &Scenario, seed: u64, content: &mut Content) -> Vec<u8> {
    let (manifest, video, qoe) = content.get(scenario.video);
    let buf = SharedBuf::new();
    let tracer = Tracer::new(0, Box::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let faults = (!scenario.faults.is_empty())
        .then(|| voxel::netem::FaultPlane::new(seed, scenario.faults.clone()));
    run_instrumented_trial(config, &manifest, &video, &qoe, 0, tracer, faults);
    buf.contents()
}

#[test]
fn builder_and_legacy_configs_produce_identical_timelines() {
    let mut content = Content::new();
    for g in canonical_scenarios() {
        let scenario = Scenario::parse(g.spec).expect(g.spec);
        let (abr, transport) = system_by_name(&scenario.system).expect("legend system");
        let trace = scenario.build_trace(g.seed);

        let mut legacy = Config::new(scenario.video, abr, scenario.buffer_segments, trace.clone())
            .with_transport(transport)
            .with_trials(scenario.trials)
            .with_queue(scenario.queue_packets);
        legacy.debug_stall_skew = scenario.inject == Some(Inject::StallSkew);

        let built = Experiment::builder()
            .video(scenario.video)
            .abr(abr)
            .transport(transport)
            .buffer(scenario.buffer_segments)
            .trace(trace)
            .trials(scenario.trials)
            .queue(scenario.queue_packets)
            .debug_stall_skew(scenario.inject == Some(Inject::StallSkew))
            .build()
            .into_config();

        let a = run_with(&legacy, &scenario, g.seed, &mut content);
        let b = run_with(&built, &scenario, g.seed, &mut content);
        assert!(!a.is_empty(), "{}: legacy run produced no events", g.name);
        assert_eq!(
            timeline_digest(&a),
            timeline_digest(&b),
            "{}: legacy and builder configs diverged",
            g.name
        );
        assert_eq!(a, b, "{}: timelines differ byte-wise", g.name);
    }
}

#[test]
fn builder_defaults_match_legacy_defaults() {
    let trace = BandwidthTrace::constant(8.0, 300);
    let legacy = Config::new(VideoId::Bbb, AbrKind::voxel(), 3, trace.clone());
    let built = Experiment::builder()
        .video(VideoId::Bbb)
        .abr(AbrKind::voxel())
        .buffer(3)
        .trace(trace)
        .build()
        .into_config();
    assert_eq!(legacy.video, built.video);
    assert_eq!(legacy.abr, built.abr);
    assert_eq!(legacy.transport, built.transport);
    assert_eq!(legacy.buffer_segments, built.buffer_segments);
    assert_eq!(legacy.queue_packets, built.queue_packets);
    assert_eq!(legacy.trials, built.trials);
    assert_eq!(legacy.selective_retx, built.selective_retx);
    assert_eq!(legacy.cc, built.cc);
    assert_eq!(legacy.debug_stall_skew, built.debug_stall_skew);
}
