//! Cross-layer tracing: timeline completeness, determinism, and the
//! transport statistics derived from the metrics registry.

use std::sync::Arc;
use voxel::core::client::{PlayerConfig, TransportMode};
use voxel::core::experiment::{run_instrumented_trial, AbrKind, Experiment};
use voxel::core::session::Session;
use voxel::media::content::VideoId;
use voxel::media::ladder::QualityLevel;
use voxel::media::qoe::QoeModel;
use voxel::media::video::Video;
use voxel::netem::{BandwidthTrace, PathConfig};
use voxel::prep::manifest::Manifest;
use voxel::trace::{JsonlSink, SharedBuf, Tracer};

/// A lossy VOXEL session (tight queue forces drops on the unreliable
/// body streams) with a JSONL tracer writing into memory, through the
/// same instrumented-trial entry point the experiment pipeline uses.
fn run_traced(session_id: u64) -> (voxel::core::TrialResult, Vec<u8>) {
    let video = Video::generate(VideoId::Bbb);
    let qoe = QoeModel::default();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[QualityLevel::MAX]));
    let buf = SharedBuf::new();
    let tracer = Tracer::new(
        session_id,
        Box::new(JsonlSink::to_writer(Box::new(buf.clone()))),
    );
    let config = Experiment::builder()
        .video(VideoId::Bbb)
        .abr(AbrKind::voxel())
        .transport(TransportMode::Split)
        .buffer(3)
        .trace(BandwidthTrace::constant(3.0, 600))
        .queue(32)
        .build()
        .into_config();
    let r = run_instrumented_trial(&config, &manifest, &Arc::new(video), &qoe, 0, tracer, None);
    (r, buf.contents())
}

#[test]
fn timeline_covers_all_layers_and_is_deterministic() {
    let (r1, bytes1) = run_traced(7);
    let (_r2, bytes2) = run_traced(7);

    // Identically-seeded runs emit byte-identical event streams.
    assert!(!bytes1.is_empty());
    assert_eq!(bytes1, bytes2, "traced runs must be byte-identical");

    let text = String::from_utf8(bytes1).expect("JSONL is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 1_000, "only {} events", lines.len());

    // Well-formed JSONL bracketing the whole trial.
    for line in &lines {
        assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "{line}");
        assert!(line.contains("\"sid\":7"));
    }
    assert!(lines[0].contains("\"kind\":\"trial_start\""));
    assert!(lines.last().unwrap().contains("\"kind\":\"trial_end\""));

    // Events from at least the four instrumented layers.
    for layer in ["quic", "http", "abr", "player"] {
        let needle = format!("\"layer\":\"{layer}\"");
        assert!(
            lines.iter().any(|l| l.contains(&needle)),
            "no {layer} events in the timeline"
        );
    }

    // All timestamps are sim-time microseconds within the trial.
    let end_us = lines
        .last()
        .and_then(|l| l["{\"t\":".len()..].split(',').next())
        .and_then(|s| s.parse::<u64>().ok())
        .expect("trial_end timestamp");
    for line in &lines {
        let t: u64 = line["{\"t\":".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("numeric timestamp");
        assert!(t <= end_us, "event at {t} past trial end {end_us}");
    }

    // The session actually exercised the interesting paths.
    assert_eq!(r1.segment_scores.len(), 75);
    assert!(
        text.contains("\"kind\":\"unreliable_loss\""),
        "expected unreliable-loss reports on a 3 Mbps / 32-packet path"
    );
}

#[test]
fn transport_stats_come_from_the_registry() {
    let (r, _) = run_traced(1);
    let snap = r.metrics.as_ref().expect("tracing was on");
    assert_eq!(snap.counter("quic.packets_sent"), r.transport.packets_sent);
    assert_eq!(snap.counter("quic.loss_events"), r.transport.loss_events);
    assert_eq!(snap.counter("quic.ptos"), r.transport.ptos);
    assert!(r.transport.packets_sent > 1_000);
    assert!(r.transport.bytes_sent > 1_000_000);
    // Mean cwnd is averaged over sends, so it sits strictly between the
    // initial window and the registry's observed max.
    let cwnd = snap.histogram("quic.cwnd_bytes").expect("observed");
    assert!(r.transport.mean_cwnd_bytes >= cwnd.min as f64);
    assert!(r.transport.mean_cwnd_bytes <= cwnd.max as f64);
    assert!(r.transport.mean_srtt_ms > 30.0, "srtt below the path delay");
    // ABR and player activity landed in the registry too.
    assert_eq!(snap.counter("abr.decisions"), 75);
    assert_eq!(snap.counter("player.segments_played"), 75);
    assert!(snap.counter("http.requests") + snap.counter("http.range_requests") >= 151);
}

#[test]
fn untraced_sessions_carry_no_snapshot() {
    let video = Video::generate(VideoId::Bbb);
    let qoe = QoeModel::default();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[]));
    let session = Session::new(
        PathConfig::new(BandwidthTrace::constant(20.0, 600), 64),
        manifest,
        Arc::new(video),
        qoe,
        Box::new(voxel::abr::Bola::new()),
        PlayerConfig::new(5, TransportMode::Reliable),
    );
    let r = session.run();
    assert!(r.metrics.is_none());
    // Counter-based transport stats are filled even without tracing…
    assert!(r.transport.packets_sent > 0);
    // …and the mean fields fall back to final instantaneous values.
    assert!(r.transport.mean_cwnd_bytes > 0.0);
    assert!(r.transport.mean_srtt_ms > 0.0);
}
