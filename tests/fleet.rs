//! Tier-1 slice of the fleet runtime: determinism, fairness, and the
//! builder's `.fleet(n)` knob. The full 8-session golden fleets run in
//! tier-2 (`cargo run -p voxel-bench --bin conformance`).

use voxel::prelude::*;
use voxel::testkit::fleet_invariants;
use voxel::trace::{JsonlSink, SharedBuf};

fn traced_fleet(spec: &FleetSpec, cache: &ContentCache) -> (FleetResult, Vec<u8>) {
    let buf = SharedBuf::new();
    let tracer = Tracer::new(0, Box::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let r = run_fleet(spec, cache, tracer).expect("spec runs");
    (r, buf.contents())
}

#[test]
fn fleet_runs_are_deterministic_and_pass_oracles() {
    let cache = ContentCache::top_level_only();
    let spec = FleetSpec::parse("BBB:2xVOXEL+1xBOLA:const6:buf3:q64:d60:drr:stg1").expect("spec");

    let (r1, t1) = traced_fleet(&spec, &cache);
    let (r2, t2) = traced_fleet(&spec, &cache);
    assert!(!t1.is_empty());
    assert_eq!(t1, t2, "fleet timelines must be byte-identical");
    assert_eq!(r1.shares_pct, r2.shares_pct);
    assert_eq!(r1.loop_iters, r2.loop_iters);

    assert_eq!(fleet_invariants(&spec, &r1), Vec::<String>::new());

    // The timeline is fleet-layer only and brackets the whole run.
    let text = String::from_utf8(t1).expect("JSONL is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].contains("\"kind\":\"fleet_start\""));
    assert!(lines.last().unwrap().contains("\"kind\":\"fleet_end\""));
    for line in &lines {
        assert!(line.contains("\"layer\":\"fleet\""), "{line}");
    }
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"fleet_session_end\""))
            .count(),
        3
    );
}

#[test]
fn homogeneous_fleets_share_the_link_fairly() {
    let cache = ContentCache::top_level_only();
    let spec = FleetSpec::parse("BBB:4xVOXEL:const6:buf3:q64:d120:drr:stg1").expect("spec");
    let r = run_fleet(&spec, &cache, Tracer::disabled()).expect("spec runs");
    assert!(r.all_completed());
    assert!(
        r.jain >= 0.8,
        "homogeneous VOXEL fleet must be fair, got Jain {:.3} (shares {:?})",
        r.jain,
        r.shares_pct
    );
}

#[test]
fn fifo_and_drr_disciplines_both_complete() {
    let cache = ContentCache::top_level_only();
    for disc in ["fifo", "drr"] {
        let spec =
            FleetSpec::parse(&format!("BBB:2xVOXEL:const8:buf3:q64:d60:{disc}")).expect("spec");
        let r = run_fleet(&spec, &cache, Tracer::disabled()).expect("spec runs");
        assert!(r.all_completed(), "{disc}: {:?}", r.shares_pct);
        assert_eq!(fleet_invariants(&spec, &r), Vec::<String>::new(), "{disc}");
    }
}

#[test]
fn builder_fleet_knob_runs_n_copies_on_a_shared_link() {
    let cache = ContentCache::top_level_only();
    let e = Experiment::builder()
        .video(VideoId::Bbb)
        .abr(AbrKind::voxel())
        .buffer(3)
        .trace(BandwidthTrace::constant(6.0, 60))
        .fleet(3)
        .build();
    assert_eq!(e.fleet_size(), 3);
    let r = run_experiment_fleet(&e, &cache, Tracer::disabled());
    assert_eq!(r.sessions.len(), 3);
    assert!(r.all_completed());
    assert!(r.jain > 0.8, "identical sessions, Jain {:.3}", r.jain);
    for s in &r.sessions {
        assert_eq!(s.abr, "VOXEL");
    }
}

#[test]
fn single_session_fleet_degenerates_sanely() {
    let cache = ContentCache::top_level_only();
    let spec = FleetSpec::parse("BBB:1xVOXEL:const8:buf3:q64:d60").expect("spec");
    let r = run_fleet(&spec, &cache, Tracer::disabled()).expect("spec runs");
    assert_eq!(r.sessions.len(), 1);
    assert!(r.all_completed());
    assert!((r.jain - 1.0).abs() < 1e-12);
    assert!((r.shares_pct[0] - 100.0).abs() < 1e-9);
}
