//! Cross-crate integration tests: full streaming sessions through the
//! public `voxel` umbrella API, checking the paper's qualitative claims
//! end to end.

use std::sync::Arc;
use voxel::abr::{Abr, AbrStar, Beta, Bola, Mpc};
use voxel::core::client::{PlayerConfig, TransportMode};
use voxel::core::session::Session;
use voxel::media::content::VideoId;
use voxel::media::ladder::QualityLevel;
use voxel::media::qoe::QoeModel;
use voxel::media::video::Video;
use voxel::netem::trace::generators;
use voxel::netem::{BandwidthTrace, PathConfig};
use voxel::prep::manifest::Manifest;

struct Setup {
    manifest: Arc<Manifest>,
    video: Arc<Video>,
    qoe: QoeModel,
}

fn setup(id: VideoId, levels: &[QualityLevel]) -> Setup {
    let video = Video::generate(id);
    let qoe = QoeModel::default();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, levels));
    Setup {
        manifest,
        video: Arc::new(video),
        qoe,
    }
}

fn run(
    s: &Setup,
    abr: Box<dyn Abr>,
    trace: BandwidthTrace,
    buffer: usize,
    transport: TransportMode,
) -> voxel::core::TrialResult {
    let session = Session::new(
        PathConfig::new(trace, 32),
        s.manifest.clone(),
        s.video.clone(),
        s.qoe.clone(),
        abr,
        PlayerConfig::new(buffer, transport),
    );
    session.run()
}

#[test]
fn every_abr_completes_a_session_on_a_moderate_link() {
    let s = setup(VideoId::Tos, &[QualityLevel::MAX]);
    let trace = BandwidthTrace::constant(8.0, 600);
    let abrs: Vec<(Box<dyn Abr>, TransportMode)> = vec![
        (Box::new(Bola::new()), TransportMode::Reliable),
        (Box::new(Mpc::default()), TransportMode::Reliable),
        (Box::new(Beta::new()), TransportMode::Reliable),
        (Box::new(AbrStar::default()), TransportMode::Split),
    ];
    for (abr, transport) in abrs {
        let name = abr.name();
        let r = run(&s, abr, trace.clone(), 3, transport);
        assert_eq!(r.segment_scores.len(), 75, "{name}: all segments played");
        assert!(
            r.buf_ratio_pct() < 8.0,
            "{name}: bufRatio {} on a steady 8 Mbps link",
            r.buf_ratio_pct()
        );
        assert!(r.avg_ssim() > 0.9, "{name}: ssim {}", r.avg_ssim());
    }
}

#[test]
fn voxel_beats_bola_on_rebuffering_under_a_challenging_trace() {
    let s = setup(VideoId::Bbb, &[QualityLevel::MAX]);
    // One fixed violently-varying trace, 1-segment (live-like) buffer.
    let trace = generators::verizon_lte(11, 300);
    let bola = run(
        &s,
        Box::new(Bola::new()),
        trace.clone(),
        1,
        TransportMode::Reliable,
    );
    let voxel = run(
        &s,
        Box::new(AbrStar::default()),
        trace,
        1,
        TransportMode::Split,
    );
    assert!(
        voxel.buf_ratio_pct() <= bola.buf_ratio_pct(),
        "VOXEL {} vs BOLA {}",
        voxel.buf_ratio_pct(),
        bola.buf_ratio_pct()
    );
    // And the rebuffering win must not cost visual quality (paper Fig 7b).
    assert!(
        voxel.avg_ssim() > bola.avg_ssim() - 0.05,
        "VOXEL ssim {} vs BOLA {}",
        voxel.avg_ssim(),
        bola.avg_ssim()
    );
}

#[test]
fn voxel_abandons_by_keeping_partials_never_restarting() {
    let s = setup(VideoId::Sintel, &[QualityLevel::MAX]);
    let trace = generators::tmobile_lte(3, 300);
    let r = run(
        &s,
        Box::new(AbrStar::default()),
        trace,
        2,
        TransportMode::Split,
    );
    assert_eq!(r.restarts, 0, "ABR* never discards fetched data");
    assert!(r.kept_partials > 0, "challenging trace forces partials");
    assert!(r.bytes_wasted == 0);
}

#[test]
fn bola_restarts_waste_bytes_in_small_buffer_scenarios() {
    let s = setup(VideoId::Bbb, &[]);
    let trace = generators::verizon_lte(5, 300);
    let r = run(&s, Box::new(Bola::new()), trace, 1, TransportMode::Reliable);
    // §3 insight 3: BOLA re-downloads segment data under pressure.
    assert!(r.restarts > 0, "expected restart-abandonments");
    assert!(r.bytes_wasted > 0, "restarts discard fetched bytes");
}

#[test]
fn partial_segments_zero_pad_and_score_below_pristine() {
    let s = setup(VideoId::Bbb, &[QualityLevel::MAX]);
    // Starve the link so partials are inevitable, then verify QoE reflects
    // the losses rather than assuming complete delivery.
    let trace = BandwidthTrace::constant(3.0, 1200);
    let r = run(
        &s,
        Box::new(AbrStar::default()),
        trace,
        2,
        TransportMode::Split,
    );
    assert_eq!(r.segment_scores.len(), 75);
    assert!(
        r.buf_ratio_pct() < 10.0,
        "VOXEL absorbs starvation by skipping"
    );
    // 3 Mbps cannot deliver pristine Q12 everywhere.
    assert!(r.avg_ssim() < 0.9999);
    assert!(
        r.avg_ssim() > 0.8,
        "quality degrades gracefully: {}",
        r.avg_ssim()
    );
}

#[test]
fn selective_retransmission_recovers_losses_with_roomy_buffers() {
    let s = setup(VideoId::Tos, &[QualityLevel::MAX]);
    // A trace oscillating around the Q10/Q11 bitrates with spare capacity
    // creates both in-transit losses (queue drops) and idle windows.
    let trace = generators::att_lte(9, 300);
    let r = run(
        &s,
        Box::new(AbrStar::default()),
        trace,
        3,
        TransportMode::Split,
    );
    if r.bytes_lost > 0 {
        assert!(
            r.bytes_recovered > 0,
            "idle-window retransmission should recover some of {} lost bytes",
            r.bytes_lost
        );
    }
}

#[test]
fn voxel_unaware_server_falls_back_to_reliable_delivery() {
    let s = setup(VideoId::Bbb, &[QualityLevel::MAX]);
    let trace = BandwidthTrace::constant(20.0, 600);
    let session = Session::new(
        PathConfig::new(trace, 64),
        s.manifest.clone(),
        s.video.clone(),
        s.qoe.clone(),
        Box::new(AbrStar::default()),
        PlayerConfig::new(3, TransportMode::Split),
    )
    .with_voxel_unaware_server();
    let r = session.run();
    // Everything still plays; there are simply no unreliable-transit losses.
    assert_eq!(r.segment_scores.len(), 75);
    assert!(r.buf_ratio_pct() < 2.0);
    assert_eq!(r.bytes_lost, 0, "reliable fallback loses nothing");
}

#[test]
fn deterministic_replay_of_a_full_session() {
    let s = setup(VideoId::Ed, &[QualityLevel::MAX]);
    let trace = generators::tmobile_lte(42, 300);
    let run_once = || {
        let session = Session::new(
            PathConfig::new(trace.clone(), 32),
            s.manifest.clone(),
            s.video.clone(),
            s.qoe.clone(),
            Box::new(AbrStar::default()),
            PlayerConfig::new(2, TransportMode::Split),
        );
        session.run()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.stall_s, b.stall_s);
    assert_eq!(a.bytes_downloaded, b.bytes_downloaded);
    assert_eq!(a.ssims(), b.ssims());
}

#[test]
fn live_edge_mode_paces_downloads_to_the_encoder() {
    let s = setup(VideoId::Bbb, &[QualityLevel::MAX]);
    // A fat pipe: without the live gate, the whole video would be fetched
    // in seconds. With it, the session must last about the video duration.
    let trace = BandwidthTrace::constant(50.0, 600);
    let session = Session::new(
        PathConfig::new(trace, 64),
        s.manifest.clone(),
        s.video.clone(),
        s.qoe.clone(),
        Box::new(AbrStar::default()),
        {
            // A 2-segment live latency budget (hold-back), as real live
            // players configure: streaming the true edge with zero slack
            // leaves a zero buffer by construction.
            let mut p = PlayerConfig::new(2, TransportMode::Split);
            p.live = true;
            p.startup_segments = 2;
            p
        },
    );
    let r = session.run();
    assert_eq!(r.segment_scores.len(), 75);
    // Startup waits for the first two live segments (second at t=8s).
    assert!(r.startup_s >= 8.0, "startup {}", r.startup_s);
    // The live edge keeps quality near-pristine on a fat pipe.
    assert!(r.avg_ssim() > 0.97, "ssim {}", r.avg_ssim());
    assert!(r.buf_ratio_pct() < 3.0, "bufRatio {}", r.buf_ratio_pct());
}

#[test]
fn mpc_star_streams_with_virtual_levels() {
    let s = setup(VideoId::Tos, &[QualityLevel::MAX]);
    let trace = generators::verizon_lte(21, 300);
    let r = run(
        &s,
        Box::new(voxel::abr::MpcStar::default()),
        trace,
        2,
        TransportMode::Split,
    );
    assert_eq!(r.segment_scores.len(), 75);
    assert!(r.avg_ssim() > 0.78, "ssim {}", r.avg_ssim());
    assert!(r.buf_ratio_pct() < 8.0, "bufRatio {}", r.buf_ratio_pct());
}

#[test]
fn delay_cc_survives_deep_queues() {
    use voxel::quic::CcKind;
    let s = setup(VideoId::Bbb, &[QualityLevel::MAX]);
    let trace = generators::verizon_lte(31, 300);
    // 750-packet queue: the Appendix B bufferbloat scenario.
    let session = Session::with_cc(
        PathConfig::new(trace, 750),
        s.manifest.clone(),
        s.video.clone(),
        s.qoe.clone(),
        Box::new(AbrStar::default()),
        PlayerConfig::new(2, TransportMode::Split),
        CcKind::Delay,
    );
    let r = session.run();
    assert_eq!(r.segment_scores.len(), 75);
    assert!(r.buf_ratio_pct() < 10.0, "bufRatio {}", r.buf_ratio_pct());
}
