//! Tier-1 slice of the deterministic-simulation conformance suite
//! (DESIGN.md §11). The full matrix × seed sweep runs as tier-2
//! (`cargo run --release -p voxel-bench --bin conformance`); these tests
//! keep a bounded cut of the same machinery — matrix expansion, oracles,
//! fault injection, sweep + minimizer — in every `cargo test`.

use voxel::testkit::{run_scenario, run_sweep, Content, Inject, Matrix, Scenario, SweepOptions};

#[test]
fn small_matrix_is_green_across_seeds() {
    // Two systems on one trace family, every oracle armed, two seeds.
    let scenarios = Matrix::parse("videos=BBB systems=BOLA,VOXEL traces=const8 buffers=3 trials=1")
        .expect("matrix parses")
        .scenarios();
    assert_eq!(scenarios.len(), 2);
    let mut content = Content::new();
    for seed in [1, 7] {
        for s in &scenarios {
            let run = run_scenario(s, seed, &mut content).expect("scenario runs");
            assert!(
                run.ok(),
                "{} seed {seed}: oracle failures: {:?}",
                s.spec(),
                run.failures
            );
        }
    }
}

#[test]
fn scenario_specs_round_trip_through_parse() {
    // The sweep minimizer's repro emission depends on spec() being the
    // exact inverse of parse(); pin it on a fully-loaded spec.
    let spec =
        "ToS:VOXEL:tmobile:buf1:q64:n2:d300:prefix45:loss@40+10x0.3:cliff@120x0.25:inject=stall_skew";
    let s = Scenario::parse(spec).expect("parses");
    assert_eq!(s.spec(), spec);
    assert_eq!(s.inject, Some(Inject::StallSkew));
    assert_eq!(Scenario::parse(&s.spec()).expect("re-parses"), s);
}

#[test]
fn injected_stall_skew_is_caught_and_minimized() {
    // Arm the deliberate stall-accounting skew (the testkit's canary
    // fault): the drift oracle must catch it, and the sweep must shrink
    // the failure to a (seed, trials, trace-prefix) triple with a
    // pasteable #[test] repro.
    let scenario = Scenario::parse("ToS:BOLA:tmobile:buf1:inject=stall_skew").expect("spec parses");
    let mut content = Content::new();
    let report = run_sweep(
        &[scenario],
        &SweepOptions {
            seeds: vec![1],
            minimize: true,
            prefix_granularity_s: 60,
        },
        &mut content,
    )
    .expect("sweep runs");
    assert!(!report.ok(), "the armed skew went undetected");
    let f = &report.failures[0];
    assert!(
        f.failures
            .iter()
            .any(|v| v.contains("stall accounting drift")),
        "caught for the wrong reason: {:?}",
        f.failures
    );
    let repro = f.repro.as_ref().expect("failure was minimized");
    assert_eq!(repro.seed, 1);
    assert!(repro.triple().starts_with("(seed=1, trials=1"));
    assert!(repro.test_source().contains("#[test]"));
    assert!(repro.test_source().contains(&repro.spec));

    // A forced oracle failure must come with a flight-recorder dump: the
    // last traced events plus the failure reason, ready to paste.
    let dump = f
        .postmortem
        .as_ref()
        .expect("failing run carries a flight-recorder postmortem");
    assert!(dump.contains("flight recorder"), "{dump}");
    assert!(dump.contains("stall accounting drift"), "{dump}");
    assert!(dump.contains("seed=1"), "{dump}");

    // The same scenario without the injection passes every oracle — the
    // canary fires on the fault, not on the scenario — and carries no
    // postmortem.
    let clean = Scenario::parse("ToS:BOLA:tmobile:buf1").expect("spec parses");
    let run = run_scenario(&clean, 1, &mut content).expect("scenario runs");
    assert!(run.ok(), "clean scenario failed: {:?}", run.failures);
    assert!(run.postmortems.is_empty());
}

#[test]
fn fault_plane_degrades_gracefully_and_shows_in_counters() {
    let mut content = Content::new();

    // A 30 % loss burst mid-stream: the session must still complete
    // within oracle bounds, and the transport must actually have seen
    // losses (the fault was armed, not a no-op).
    let lossy = Scenario::parse("BBB:VOXEL:const5:loss@40+10x0.3").expect("spec parses");
    let run = run_scenario(&lossy, 3, &mut content).expect("scenario runs");
    assert!(run.ok(), "loss burst broke an oracle: {:?}", run.failures);
    let r = &run.trials[0].result;
    assert!(r.completed, "session did not complete under the loss burst");
    assert!(r.transport.packets_lost > 0, "loss burst never fired");

    // Reorder and duplicate windows: both client-side counters move,
    // and the oracles (which bound them against packets received) hold.
    let scrambled = Scenario::parse("BBB:VOXEL:const5:reorder@30+30x0.2~40:dup@90+30x0.1~15")
        .expect("spec parses");
    let run = run_scenario(&scrambled, 3, &mut content).expect("scenario runs");
    assert!(run.ok(), "reorder/dup broke an oracle: {:?}", run.failures);
    let r = &run.trials[0].result;
    assert!(r.completed);
    assert!(
        r.transport.client_packets_reordered > 0,
        "reorder window never fired"
    );
    assert!(
        r.transport.client_packets_duplicate > 0,
        "dup window never fired"
    );
}
