//! Integration tests pinning the paper's claims: the *offline* insight
//! analyses (§3, §4.1) and — via the testkit's deterministic scenario
//! runner — the headline end-to-end comparisons EXPERIMENTS.md records
//! (Fig 6 rebuffering, Fig 10 ablation), at reduced trial counts with
//! tolerance bands sized for them.

use voxel::media::content::VideoId;
use voxel::media::gop::{FrameKind, FRAMES_PER_SEGMENT};
use voxel::media::ladder::QualityLevel;
use voxel::media::qoe::QoeModel;
use voxel::media::video::Video;
use voxel::prep::analysis::{analyze_segment, drop_tolerance};
use voxel::prep::manifest::Manifest;
use voxel::prep::ordering::OrderingKind;

#[test]
fn insight_1_half_the_segments_tolerate_10_to_20_percent_drops() {
    // §3 insight 1 at Q12 / SSIM 0.99, across all four evaluation videos.
    let model = QoeModel::default();
    for id in VideoId::EVAL {
        let video = Video::generate(id);
        let tolerant = video
            .segments
            .iter()
            .filter(|s| {
                model.max_droppable_frames(s, QualityLevel::MAX, 0.99) as f64
                    >= 0.10 * FRAMES_PER_SEGMENT as f64
            })
            .count();
        assert!(
            tolerant * 2 >= video.segments.len(),
            "{id}: only {tolerant}/75 segments tolerate a 10% drop"
        );
    }
}

#[test]
fn insight_1_referenced_frames_are_among_the_droppable() {
    // The paper stresses that the droppable sets include *referenced*
    // frames (6-24% of them, video-dependent) — the capability BETA lacks.
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Bbb);
    let mut referenced_dropped = 0usize;
    let mut dropped = 0usize;
    for seg in &video.segments {
        let n = model.max_droppable_frames(seg, QualityLevel::MAX, 0.99);
        for &f in voxel::media::qoe::drop_order(seg).iter().take(n) {
            dropped += 1;
            if !seg.gop.dependents[f].is_empty() {
                referenced_dropped += 1;
            }
        }
    }
    assert!(dropped > 0);
    let share = referenced_dropped as f64 / dropped as f64;
    assert!(
        share > 0.05,
        "referenced frames are {:.1}% of droppable frames; expected a meaningful share",
        100.0 * share
    );
}

#[test]
fn insight_2_rank_ordering_dominates_tail_grouping() {
    let model = QoeModel::default();
    for id in [VideoId::Bbb, VideoId::Tos] {
        let video = Video::generate(id);
        let mut rank_wins = 0usize;
        for seg in &video.segments {
            let rank = drop_tolerance(
                &model,
                seg,
                QualityLevel::MAX,
                OrderingKind::InboundRank,
                0.99,
            );
            let tail = drop_tolerance(
                &model,
                seg,
                QualityLevel::MAX,
                OrderingKind::UnreferencedTail,
                0.99,
            );
            if rank >= tail {
                rank_wins += 1;
            }
        }
        assert!(
            rank_wins * 10 >= video.segments.len() * 9,
            "{id}: rank ordering beats tail grouping on only {rank_wins}/75 segments"
        );
    }
}

#[test]
fn insight_3_virtual_levels_sit_between_real_levels() {
    // Fig 2c/2d: Q12/0.99 bitrates fall between Q11 and Q12 on average.
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Bbb);
    let mut virt = Vec::new();
    let mut q11 = Vec::new();
    let mut q12 = Vec::new();
    for seg in &video.segments {
        let map = voxel::prep::analysis::BytesQoeMap::compute(
            &model,
            seg,
            QualityLevel::MAX,
            OrderingKind::InboundRank,
        );
        if let Some(p) = map.min_bytes_for(0.99) {
            virt.push(p.bytes as f64);
            q12.push(map.full_bytes() as f64);
            q11.push(seg.bytes(QualityLevel(11)) as f64);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&q11) < mean(&virt) && mean(&virt) < mean(&q12),
        "virtual level {:.0} should sit between Q11 {:.0} and Q12 {:.0}",
        mean(&virt),
        mean(&q11),
        mean(&q12)
    );
}

#[test]
fn manifest_analysis_respects_the_lower_bound_everywhere() {
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Tos);
    for seg in video.segments.iter().step_by(7) {
        for level in [QualityLevel(9), QualityLevel::MAX] {
            let a = analyze_segment(&model, seg, level);
            // Delivering min_bytes achieves at least the bound.
            let reached = a
                .best
                .points
                .iter()
                .find(|p| p.bytes >= a.min_bytes)
                .expect("min_bytes is a map point");
            assert!(
                reached.ssim >= a.bound - 1e-9,
                "seg {} {level}: ssim {} below bound {}",
                seg.index,
                reached.ssim,
                a.bound
            );
        }
    }
}

#[test]
fn beta_ordering_ends_with_unreferenced_b_frames_only() {
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Ed);
    let manifest = Manifest::prepare_levels(&video, &model, &[QualityLevel::MAX]);
    let entry = manifest.entry(4, QualityLevel::MAX);
    let seg = &video.segments[4];
    let tail = &entry.beta_order[entry.beta_order.len() - 32..];
    for &f in tail {
        assert_eq!(
            seg.gop.frames[f].kind,
            FrameKind::BUnref,
            "frame {f} in BETA's tail is not an unreferenced b-frame"
        );
    }
}

#[test]
fn fig2b_ordering_ranks_by_mean_drop_tolerance() {
    // Fig 2b: mean droppable share across BBB segments orders
    // rank ≫ tail ≫ original (EXPERIMENTS.md measures 28.5 / 16.4 / 10.6 %).
    // The bands assert the ordering with real separation, not the exact
    // percentages.
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Bbb);
    let mean_tol = |ordering| {
        let tols: Vec<f64> = video
            .segments
            .iter()
            .map(|s| drop_tolerance(&model, s, QualityLevel::MAX, ordering, 0.99))
            .collect();
        tols.iter().sum::<f64>() / tols.len() as f64
    };
    let rank = mean_tol(OrderingKind::InboundRank);
    let tail = mean_tol(OrderingKind::UnreferencedTail);
    let original = mean_tol(OrderingKind::Original);
    assert!(
        rank >= tail + 0.05,
        "rank ordering ({rank:.3}) should beat tail grouping ({tail:.3}) by ≥5pp"
    );
    assert!(
        tail >= original + 0.02,
        "tail grouping ({tail:.3}) should beat original order ({original:.3}) by ≥2pp"
    );
}

/// Run `trials` trials of one testkit scenario and return the results.
fn run_system(content: &mut voxel::testkit::Content, spec: &str) -> Vec<voxel::core::TrialResult> {
    let scenario = voxel::testkit::Scenario::parse(spec).expect("spec parses");
    let run = voxel::testkit::run_scenario(&scenario, 2021, content).expect("scenario runs");
    assert!(run.ok(), "{spec}: oracle failures: {:?}", run.failures);
    run.trials.into_iter().map(|t| t.result).collect()
}

#[test]
fn headline_session_claims_fig6_and_fig10() {
    // The paper's headline cell (Fig 6, T-Mobile/ToS at a 1-segment
    // buffer): VOXEL suffers 25–97 % less p90 rebuffering than BOLA —
    // EXPERIMENTS.md measures BOLA 12.83 % vs VOXEL 0.00 % at 8 trials.
    // Plus the Fig 10 ablation shape on the same cell: bufRatio orders
    // BOLA ≥ BOLA-SSIM ≥ VOXEL (ABR* cuts ≥35 %) and VOXEL gives up no
    // SSIM for the win. Three trials per system keep tier-1 fast; the
    // bands are sized for that count.
    let mut content = voxel::testkit::Content::new();
    let bola = run_system(&mut content, "ToS:BOLA:tmobile:buf1:n3");
    let bola_ssim = run_system(&mut content, "ToS:BOLA-SSIM:tmobile:buf1:n3");
    let voxel = run_system(&mut content, "ToS:VOXEL:tmobile:buf1:n3");

    let ratios = |rs: &[voxel::core::TrialResult]| -> Vec<f64> {
        rs.iter().map(|r| r.buf_ratio_pct()).collect()
    };
    let p90 = |rs: &[voxel::core::TrialResult]| voxel::sim::stats::percentile(&ratios(rs), 0.90);
    let mean_buf = |rs: &[voxel::core::TrialResult]| voxel::sim::stats::mean(&ratios(rs));
    let mean_ssim = |rs: &[voxel::core::TrialResult]| {
        let s: Vec<f64> = rs.iter().map(|r| r.avg_ssim()).collect();
        voxel::sim::stats::mean(&s)
    };

    eprintln!(
        "bufRatio p90: BOLA {:.2}% BOLA-SSIM {:.2}% VOXEL {:.2}%",
        p90(&bola),
        p90(&bola_ssim),
        p90(&voxel)
    );
    eprintln!(
        "bufRatio mean: BOLA {:.2}% BOLA-SSIM {:.2}% VOXEL {:.2}%",
        mean_buf(&bola),
        mean_buf(&bola_ssim),
        mean_buf(&voxel)
    );
    eprintln!(
        "SSIM mean: BOLA {:.4} BOLA-SSIM {:.4} VOXEL {:.4}",
        mean_ssim(&bola),
        mean_ssim(&bola_ssim),
        mean_ssim(&voxel)
    );

    // Fig 6: BOLA stalls materially in this cell; VOXEL is near zero and
    // at least 25 % (the paper's weakest cell) below BOLA.
    assert!(
        p90(&bola) > 1.0,
        "BOLA p90 bufRatio {:.2}% — the challenging cell should stall",
        p90(&bola)
    );
    assert!(
        p90(&voxel) < 0.5,
        "VOXEL p90 bufRatio {:.2}% — expected near-zero",
        p90(&voxel)
    );
    assert!(
        p90(&voxel) <= 0.75 * p90(&bola),
        "VOXEL p90 {:.2}% not ≥25% below BOLA {:.2}%",
        p90(&voxel),
        p90(&bola)
    );

    // Fig 10 ablation shape: swapping BOLA's utility for SSIM does NOT
    // buy the rebuffering win — BOLA-SSIM stalls about as much as BOLA
    // (the paper measures slightly more: 8.2 % vs 7.9 %) — while ABR*'s
    // cross-layer decisions cut ≥35 % off both.
    assert!(
        mean_buf(&bola_ssim) >= 0.75 * mean_buf(&bola),
        "BOLA-SSIM mean bufRatio {:.2}% fixed BOLA's stalls ({:.2}%) by \
         itself — the ablation shape is broken",
        mean_buf(&bola_ssim),
        mean_buf(&bola)
    );
    let worst_baseline = mean_buf(&bola).min(mean_buf(&bola_ssim));
    assert!(
        mean_buf(&voxel) <= 0.65 * worst_baseline,
        "VOXEL mean bufRatio {:.2}% is not ≥35% below the baselines' {worst_baseline:.2}%",
        mean_buf(&voxel)
    );
    // And the win is not bought with quality: VOXEL trades at most "a
    // little SSIM" against BOLA where it wins bufRatio big (Fig 9's
    // wording) and stays above BOLA-SSIM.
    assert!(
        mean_ssim(&voxel) >= mean_ssim(&bola) - 0.02,
        "VOXEL SSIM {:.4} gave up more than a little quality vs BOLA {:.4}",
        mean_ssim(&voxel),
        mean_ssim(&bola)
    );
    assert!(
        mean_ssim(&voxel) >= mean_ssim(&bola_ssim) - 0.005,
        "VOXEL SSIM {:.4} fell below BOLA-SSIM's {:.4}",
        mean_ssim(&voxel),
        mean_ssim(&bola_ssim)
    );
}

#[test]
fn p_frames_carry_most_of_the_bytes() {
    // §6: "the videos contain more than 30% P-frames, which constitute at
    // least 56% of video data".
    for id in VideoId::EVAL {
        let video = Video::generate(id);
        let mut shares = Vec::new();
        for seg in &video.segments {
            let (_, p_share, _) = seg.gop.byte_shares();
            shares.push(p_share);
            // Even static/title segments keep P dominant-ish.
            assert!(p_share > 0.4, "{id} seg {}: P share {p_share}", seg.index);
            let (_, p_count, _, _) = seg.gop.kind_counts();
            assert!(p_count as f64 / FRAMES_PER_SEGMENT as f64 > 0.30);
        }
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        assert!(mean > 0.56, "{id}: mean P byte share {mean}");
    }
}
