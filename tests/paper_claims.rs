//! Integration tests pinning the paper's *offline* claims (§3, §4.1) —
//! the insight analyses that do not require network simulation.

use voxel::media::content::VideoId;
use voxel::media::gop::{FrameKind, FRAMES_PER_SEGMENT};
use voxel::media::ladder::QualityLevel;
use voxel::media::qoe::QoeModel;
use voxel::media::video::Video;
use voxel::prep::analysis::{analyze_segment, drop_tolerance};
use voxel::prep::manifest::Manifest;
use voxel::prep::ordering::OrderingKind;

#[test]
fn insight_1_half_the_segments_tolerate_10_to_20_percent_drops() {
    // §3 insight 1 at Q12 / SSIM 0.99, across all four evaluation videos.
    let model = QoeModel::default();
    for id in VideoId::EVAL {
        let video = Video::generate(id);
        let tolerant = video
            .segments
            .iter()
            .filter(|s| {
                model.max_droppable_frames(s, QualityLevel::MAX, 0.99) as f64
                    >= 0.10 * FRAMES_PER_SEGMENT as f64
            })
            .count();
        assert!(
            tolerant * 2 >= video.segments.len(),
            "{id}: only {tolerant}/75 segments tolerate a 10% drop"
        );
    }
}

#[test]
fn insight_1_referenced_frames_are_among_the_droppable() {
    // The paper stresses that the droppable sets include *referenced*
    // frames (6-24% of them, video-dependent) — the capability BETA lacks.
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Bbb);
    let mut referenced_dropped = 0usize;
    let mut dropped = 0usize;
    for seg in &video.segments {
        let n = model.max_droppable_frames(seg, QualityLevel::MAX, 0.99);
        for &f in voxel::media::qoe::drop_order(seg).iter().take(n) {
            dropped += 1;
            if !seg.gop.dependents[f].is_empty() {
                referenced_dropped += 1;
            }
        }
    }
    assert!(dropped > 0);
    let share = referenced_dropped as f64 / dropped as f64;
    assert!(
        share > 0.05,
        "referenced frames are {:.1}% of droppable frames; expected a meaningful share",
        100.0 * share
    );
}

#[test]
fn insight_2_rank_ordering_dominates_tail_grouping() {
    let model = QoeModel::default();
    for id in [VideoId::Bbb, VideoId::Tos] {
        let video = Video::generate(id);
        let mut rank_wins = 0usize;
        for seg in &video.segments {
            let rank = drop_tolerance(
                &model,
                seg,
                QualityLevel::MAX,
                OrderingKind::InboundRank,
                0.99,
            );
            let tail = drop_tolerance(
                &model,
                seg,
                QualityLevel::MAX,
                OrderingKind::UnreferencedTail,
                0.99,
            );
            if rank >= tail {
                rank_wins += 1;
            }
        }
        assert!(
            rank_wins * 10 >= video.segments.len() * 9,
            "{id}: rank ordering beats tail grouping on only {rank_wins}/75 segments"
        );
    }
}

#[test]
fn insight_3_virtual_levels_sit_between_real_levels() {
    // Fig 2c/2d: Q12/0.99 bitrates fall between Q11 and Q12 on average.
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Bbb);
    let mut virt = Vec::new();
    let mut q11 = Vec::new();
    let mut q12 = Vec::new();
    for seg in &video.segments {
        let map = voxel::prep::analysis::BytesQoeMap::compute(
            &model,
            seg,
            QualityLevel::MAX,
            OrderingKind::InboundRank,
        );
        if let Some(p) = map.min_bytes_for(0.99) {
            virt.push(p.bytes as f64);
            q12.push(map.full_bytes() as f64);
            q11.push(seg.bytes(QualityLevel(11)) as f64);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&q11) < mean(&virt) && mean(&virt) < mean(&q12),
        "virtual level {:.0} should sit between Q11 {:.0} and Q12 {:.0}",
        mean(&virt),
        mean(&q11),
        mean(&q12)
    );
}

#[test]
fn manifest_analysis_respects_the_lower_bound_everywhere() {
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Tos);
    for seg in video.segments.iter().step_by(7) {
        for level in [QualityLevel(9), QualityLevel::MAX] {
            let a = analyze_segment(&model, seg, level);
            // Delivering min_bytes achieves at least the bound.
            let reached = a
                .best
                .points
                .iter()
                .find(|p| p.bytes >= a.min_bytes)
                .expect("min_bytes is a map point");
            assert!(
                reached.ssim >= a.bound - 1e-9,
                "seg {} {level}: ssim {} below bound {}",
                seg.index,
                reached.ssim,
                a.bound
            );
        }
    }
}

#[test]
fn beta_ordering_ends_with_unreferenced_b_frames_only() {
    let model = QoeModel::default();
    let video = Video::generate(VideoId::Ed);
    let manifest = Manifest::prepare_levels(&video, &model, &[QualityLevel::MAX]);
    let entry = manifest.entry(4, QualityLevel::MAX);
    let seg = &video.segments[4];
    let tail = &entry.beta_order[entry.beta_order.len() - 32..];
    for &f in tail {
        assert_eq!(
            seg.gop.frames[f].kind,
            FrameKind::BUnref,
            "frame {f} in BETA's tail is not an unreferenced b-frame"
        );
    }
}

#[test]
fn p_frames_carry_most_of_the_bytes() {
    // §6: "the videos contain more than 30% P-frames, which constitute at
    // least 56% of video data".
    for id in VideoId::EVAL {
        let video = Video::generate(id);
        let mut shares = Vec::new();
        for seg in &video.segments {
            let (_, p_share, _) = seg.gop.byte_shares();
            shares.push(p_share);
            // Even static/title segments keep P dominant-ish.
            assert!(p_share > 0.4, "{id} seg {}: P share {p_share}", seg.index);
            let (_, p_count, _, _) = seg.gop.kind_counts();
            assert!(p_count as f64 / FRAMES_PER_SEGMENT as f64 > 0.30);
        }
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        assert!(mean > 0.56, "{id}: mean P byte share {mean}");
    }
}
