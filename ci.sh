#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI green."
