#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> voxel-lint (static invariant pass, DESIGN.md §10; wall-time guard 10s; JSON -> results/lint.json)"
mkdir -p results
cargo run -q --release -p voxel-lint -- --json results/lint.json --max-seconds 10

echo "==> voxel-lint api-baseline (pub-surface diff vs lint/api-baseline.txt)"
cargo run -q --release -p voxel-lint -- --only api

echo "==> cargo test -q -p voxel-lint -p voxel-quic (lint self-tests + property tests)"
cargo test -q -p voxel-lint -p voxel-quic

echo "==> cargo test -q --features paranoid (runtime invariant audits)"
cargo test -q --features paranoid

echo "==> tier-2: conformance sweep (scenario matrix x seeds + golden digests + fleets, DESIGN.md §11-12)"
VOXEL_SEEDS="${VOXEL_SEEDS:-3}" cargo run -q --release -p voxel-bench --bin conformance

echo "==> tier-2: testkit canary (armed stall-skew must be caught and minimized)"
VOXEL_TESTKIT_FAULT=stall_off_by_one cargo run -q --release -p voxel-bench --bin conformance

echo "==> tier-2: sharded parity (golden fleets at VOXEL_SHARD_WORKERS=max must match workers=1 byte-for-byte)"
VOXEL_SHARD_WORKERS=max cargo run -q --release -p voxel-bench --bin conformance -- --fleets-only

echo "==> tier-2: cc shootout smoke (cc-mix fairness bands + per-cc-group starvation oracles, DESIGN.md §15)"
cargo run -q --release -p voxel-bench --bin cc_shootout -- --smoke

echo "==> tier-2: edge sweep smoke (hot-cache hit floor + origin fan-in shield, DESIGN.md §16)"
cargo run -q --release -p voxel-bench --bin edge_sweep -- --smoke

echo "==> perf: criterion smoke (fleet scaling / rangeset / session loop)"
VOXEL_BENCH_FAST=1 cargo bench -q -p voxel-bench --bench fleet

echo "==> perf: BENCH_5.json shape check + regression compare (>15% below history median fails)"
cargo run -q --release -p voxel-bench --bin check_bench5 -- --compare

echo "==> perf: profiler overhead guard (obs_ab, <5% on the session event loop)"
cargo run -q --release -p voxel-bench --bin obs_ab

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI green."
