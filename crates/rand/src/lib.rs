//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the slice of `rand` that `voxel-sim`'s [`SimRng`] wrapper and a handful of
//! tests use: [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`], the
//! [`RngCore`] trait, and the [`Rng`] extension methods `gen`, `gen_range`,
//! and `gen_bool`.
//!
//! The generator behind `StdRng` is xoshiro256++ seeded via SplitMix64 —
//! not bit-compatible with upstream's ChaCha12, but every consumer in this
//! workspace only relies on determinism and statistical quality, both of
//! which hold.
//!
//! [`SimRng`]: https://docs.rs/rand (upstream documentation)

use std::fmt;
use std::ops::Range;

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible, so this is never constructed in
/// practice; it exists to keep trait signatures source-compatible.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (upstream `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator seedable from integers (upstream `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `Rng::gen_range` bounds.
pub trait SampleUniform: Sized {
    /// Uniform draw in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening multiply keeps the draw unbiased enough for
                // simulation purposes without a rejection loop.
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Convenience methods layered over [`RngCore`] (upstream `rand::Rng`
/// subset).
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_well_spread() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 13];
        r.try_fill_bytes(&mut buf2).unwrap();
    }
}
