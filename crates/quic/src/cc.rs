//! Congestion-control dispatch: loss-based CUBIC (the paper's QUIC\*),
//! the delay-based controller of Appendix B's future-work note, or the
//! full BBR state machine (DESIGN.md §15).

use crate::bbr::Bbr;
use crate::cubic::Cubic;
use crate::delay_cc::DelayCc;
use voxel_sim::{SimDuration, SimTime};

/// Which controller a connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcKind {
    /// CUBIC (RFC 8312) — what the paper's QUIC\* runs.
    #[default]
    Cubic,
    /// The delay-based (BBR-flavored) controller — Appendix B future work.
    Delay,
    /// BBR: Startup/Drain/ProbeBW/ProbeRTT over BtlBw/RTprop filters.
    Bbr,
}

/// All controller kinds, in spec-grammar order.
pub const CC_KINDS: [CcKind; 3] = [CcKind::Cubic, CcKind::Delay, CcKind::Bbr];

impl CcKind {
    /// Canonical lowercase name, as used by the fleet `@cc` spec knob.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Cubic => "cubic",
            CcKind::Delay => "delay",
            CcKind::Bbr => "bbr",
        }
    }

    /// Inverse of [`CcKind::name`].
    pub fn by_name(name: &str) -> Option<CcKind> {
        CC_KINDS.into_iter().find(|k| k.name() == name)
    }

    /// Whether this controller consumes delivery-rate samples. The loss
    /// detector only computes and buffers samples when the controller
    /// will read them — the per-ack division and Vec push are pure waste
    /// for CUBIC and the delay controller.
    pub fn wants_rate_samples(self) -> bool {
        matches!(self, CcKind::Bbr)
    }
}

/// One delivery-rate sample, produced by the loss detector per acked
/// packet from the delivered-bytes snapshot stamped at send time
/// (DESIGN.md §15): `rate = (delivered - delivered_at_send) / (ack time
/// - send time)` — the average delivery rate over the packet's flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSample {
    /// Cumulative bytes delivered when the ack was processed.
    pub delivered: u64,
    /// Cumulative bytes delivered when the acked packet was sent.
    pub delivered_at_send: u64,
    /// Delivery rate, bytes/second.
    pub rate: f64,
}

/// A congestion controller instance.
#[derive(Debug, Clone)]
pub enum CongestionControl {
    /// CUBIC.
    Cubic(Cubic),
    /// Delay-based.
    Delay(DelayCc),
    /// BBR.
    Bbr(Bbr),
}

impl CongestionControl {
    /// Instantiate `kind` with the given MSS.
    pub fn new(kind: CcKind, mss: usize) -> CongestionControl {
        match kind {
            CcKind::Cubic => CongestionControl::Cubic(Cubic::new(mss)),
            CcKind::Delay => CongestionControl::Delay(DelayCc::new(mss)),
            CcKind::Bbr => CongestionControl::Bbr(Bbr::new(mss)),
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        match self {
            CongestionControl::Cubic(c) => c.cwnd(),
            CongestionControl::Delay(c) => c.cwnd(),
            CongestionControl::Bbr(c) => c.cwnd(),
        }
    }

    /// Slow-start threshold in bytes (`u64::MAX` when the controller has
    /// none: before CUBIC's first loss, or always for the model-based
    /// controllers).
    pub fn ssthresh(&self) -> u64 {
        match self {
            CongestionControl::Cubic(c) => c.ssthresh(),
            CongestionControl::Delay(_) | CongestionControl::Bbr(_) => u64::MAX,
        }
    }

    /// Bytes currently in flight.
    pub fn in_flight(&self) -> usize {
        match self {
            CongestionControl::Cubic(c) => c.in_flight(),
            CongestionControl::Delay(c) => c.in_flight(),
            CongestionControl::Bbr(c) => c.in_flight(),
        }
    }

    /// Whether `bytes` more may be sent.
    pub fn can_send(&self, bytes: usize) -> bool {
        match self {
            CongestionControl::Cubic(c) => c.can_send(bytes),
            CongestionControl::Delay(c) => c.can_send(bytes),
            CongestionControl::Bbr(c) => c.can_send(bytes),
        }
    }

    /// A packet entered the network.
    pub fn on_sent(&mut self, bytes: usize) {
        match self {
            CongestionControl::Cubic(c) => c.on_sent(bytes),
            CongestionControl::Delay(c) => c.on_sent(bytes),
            CongestionControl::Bbr(c) => c.on_sent(bytes),
        }
    }

    /// A delivery-rate sample from the transport's sampler. Only BBR
    /// consumes these: CUBIC is loss-driven and the delay controller
    /// keeps its own internal epoch estimator.
    pub fn on_rate_sample(&mut self, now: SimTime, sample: RateSample) {
        match self {
            CongestionControl::Cubic(_) | CongestionControl::Delay(_) => {}
            CongestionControl::Bbr(c) => c.on_rate_sample(now, sample),
        }
    }

    /// A packet was acknowledged. CUBIC consumes the smoothed RTT; the
    /// model-based controllers consume the raw latest sample.
    pub fn on_ack(&mut self, now: SimTime, bytes: usize, srtt: SimDuration, latest: SimDuration) {
        match self {
            CongestionControl::Cubic(c) => c.on_ack(now, bytes, srtt),
            CongestionControl::Delay(c) => c.on_ack(now, bytes, latest),
            CongestionControl::Bbr(c) => c.on_ack(now, bytes, latest),
        }
    }

    /// Packets were declared lost.
    pub fn on_loss(&mut self, now: SimTime, largest_sent: u64, largest_lost: u64, bytes: usize) {
        match self {
            CongestionControl::Cubic(c) => c.on_loss(now, largest_sent, largest_lost, bytes),
            CongestionControl::Delay(c) => c.on_loss(now, bytes),
            CongestionControl::Bbr(c) => c.on_loss(now, bytes),
        }
    }

    /// Persistent congestion (repeated PTOs).
    pub fn on_persistent_congestion(&mut self) {
        match self {
            CongestionControl::Cubic(c) => c.on_persistent_congestion(),
            CongestionControl::Delay(c) => c.on_persistent_congestion(),
            CongestionControl::Bbr(c) => c.on_persistent_congestion(),
        }
    }

    /// Drop accounting for bytes that left the network without an ack.
    pub fn forget_in_flight(&mut self, bytes: usize) {
        match self {
            CongestionControl::Cubic(c) => c.forget_in_flight(bytes),
            CongestionControl::Delay(c) => c.forget_in_flight(bytes),
            CongestionControl::Bbr(c) => c.forget_in_flight(bytes),
        }
    }

    /// Model-derived pacing rate in bits/second, when the controller has
    /// one (BBR: `pacing_gain × BtlBw`). `None` means the connection
    /// should fall back to its cwnd-based pacer — which keeps the CUBIC
    /// and delay-cc timelines byte-identical to before BBR existed.
    pub fn pacing_rate_bps(&self) -> Option<f64> {
        match self {
            CongestionControl::Cubic(_) | CongestionControl::Delay(_) => None,
            CongestionControl::Bbr(c) => c.pacing_rate_bps(),
        }
    }

    /// BBR's bottleneck-bandwidth estimate in bytes/second, for the
    /// `quic.btlbw_bps` gauge. `None` for the other controllers (and for
    /// BBR before its first sample) so non-BBR timelines carry no new
    /// trace output.
    pub fn btl_bw_estimate(&self) -> Option<f64> {
        match self {
            CongestionControl::Cubic(_) | CongestionControl::Delay(_) => None,
            CongestionControl::Bbr(c) => {
                let bw = c.btl_bw();
                (bw > 0.0).then_some(bw)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1350;

    /// Warm a controller with `n` clean back-to-back acks at a steady
    /// 60 ms RTT, one per millisecond — the shared setup every
    /// cross-kind test drives instead of hand-rolling its own loop.
    fn warm(cc: &mut CongestionControl, n: u64) {
        for i in 1..n {
            cc.on_sent(MSS);
            cc.on_ack(
                SimTime::from_micros(i * 1000),
                MSS,
                SimDuration::from_millis(60),
                SimDuration::from_millis(60),
            );
        }
    }

    #[test]
    fn dispatch_constructs_all_kinds() {
        for kind in CC_KINDS {
            let cc = CongestionControl::new(kind, MSS);
            assert_eq!(cc.cwnd(), 10 * MSS, "{kind:?} initial window");
        }
        assert!(matches!(
            CongestionControl::new(CcKind::Cubic, MSS),
            CongestionControl::Cubic(_)
        ));
        assert!(matches!(
            CongestionControl::new(CcKind::Delay, MSS),
            CongestionControl::Delay(_)
        ));
        assert!(matches!(
            CongestionControl::new(CcKind::Bbr, MSS),
            CongestionControl::Bbr(_)
        ));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in CC_KINDS {
            assert_eq!(CcKind::by_name(kind.name()), Some(kind));
        }
        assert_eq!(CcKind::by_name("reno"), None);
        assert_eq!(CcKind::by_name("BBR"), None, "names are lowercase");
    }

    #[test]
    fn dispatch_forwards_flight_accounting() {
        for kind in CC_KINDS {
            let mut cc = CongestionControl::new(kind, MSS);
            cc.on_sent(2 * MSS);
            assert_eq!(cc.in_flight(), 2 * MSS);
            cc.on_ack(
                SimTime::from_millis(60),
                MSS,
                SimDuration::from_millis(60),
                SimDuration::from_millis(60),
            );
            assert_eq!(cc.in_flight(), MSS);
            cc.forget_in_flight(MSS);
            assert_eq!(cc.in_flight(), 0);
        }
    }

    #[test]
    fn model_kinds_ignore_single_losses_cubic_reacts() {
        let mut cubic = CongestionControl::new(CcKind::Cubic, MSS);
        warm(&mut cubic, 200);
        let wc = cubic.cwnd();
        cubic.on_loss(SimTime::from_secs(1), 100, 90, MSS);
        assert!(cubic.cwnd() < wc, "CUBIC must back off");

        for kind in [CcKind::Delay, CcKind::Bbr] {
            let mut cc = CongestionControl::new(kind, MSS);
            warm(&mut cc, 200);
            let w = cc.cwnd();
            cc.on_loss(SimTime::from_secs(1), 100, 90, MSS);
            assert!(
                cc.cwnd() as f64 >= w as f64 * 0.9,
                "{kind:?} must not collapse on a single loss"
            );
        }
    }

    #[test]
    fn only_bbr_reports_a_pacing_rate_and_btlbw() {
        for kind in [CcKind::Cubic, CcKind::Delay] {
            let mut cc = CongestionControl::new(kind, MSS);
            warm(&mut cc, 200);
            assert!(cc.pacing_rate_bps().is_none(), "{kind:?}");
            assert!(cc.btl_bw_estimate().is_none(), "{kind:?}");
        }
        let mut bbr = CongestionControl::new(CcKind::Bbr, MSS);
        bbr.on_sent(MSS);
        bbr.on_rate_sample(
            SimTime::from_millis(60),
            RateSample {
                delivered: MSS as u64,
                delivered_at_send: 0,
                rate: 1.25e6,
            },
        );
        bbr.on_ack(
            SimTime::from_millis(60),
            MSS,
            SimDuration::from_millis(60),
            SimDuration::from_millis(60),
        );
        assert!(bbr.pacing_rate_bps().is_some_and(|r| r > 0.0));
        assert!(bbr.btl_bw_estimate().is_some_and(|bw| bw > 0.0));
    }

    // ------------------------------------------------------------------
    // Cross-cc differential: a shared drop-tail bottleneck model.
    // ------------------------------------------------------------------

    /// Run `cc` alone over a drop-tail bottleneck (service rate `rate`
    /// bytes/sec, propagation RTT `rtt`, queue capacity `q_cap` bytes)
    /// for `secs`, recording the cwnd after every ack. The loop is a
    /// two-event simulator: sends fill the queue (or drop past the cap),
    /// acks return one serialization + propagation later, drops surface
    /// as `on_loss` one RTT after the send.
    fn run_bottleneck(cc: &mut CongestionControl, secs: f64, q_cap: usize) -> Vec<(u64, usize)> {
        let rate = 1.25e6; // 10 Mbps
        let rtt = SimDuration::from_millis(60);
        let mut now = SimTime::ZERO;
        let horizon = SimTime::from_micros((secs * 1e6) as u64);
        // (time, Ok(ack: bytes, sent_at, delivered_at_send) | Err(loss pn))
        #[allow(clippy::type_complexity)]
        let mut events: std::collections::BTreeMap<
            u64,
            (SimTime, Result<(SimTime, u64), u64>),
        > = std::collections::BTreeMap::new();
        let mut pn = 0u64;
        let mut delivered = 0u64;
        let mut busy_until = SimTime::ZERO;
        let mut trace = Vec::new();
        loop {
            // Send while the window allows.
            while cc.can_send(MSS) && now <= horizon {
                let backlog = busy_until.saturating_since(now);
                let backlog_bytes = (backlog.as_secs_f64() * rate) as usize;
                cc.on_sent(MSS);
                if backlog_bytes > q_cap {
                    // Tail drop: detected (via dupacks) about one RTT later.
                    events.insert(pn, (now + rtt, Err(pn)));
                } else {
                    let depart =
                        busy_until.max(now) + SimDuration::serialization(MSS as u64, rate * 8.0);
                    busy_until = depart;
                    events.insert(pn, (depart + rtt, Ok((now, delivered))));
                }
                pn += 1;
            }
            let Some((&key, &(t, ev))) = events.iter().min_by_key(|(_, (t, _))| *t) else {
                break;
            };
            events.remove(&key);
            if t > horizon {
                break;
            }
            now = t;
            match ev {
                Ok((sent_at, delivered_at_send)) => {
                    delivered += MSS as u64;
                    let fl = now.saturating_since(sent_at);
                    cc.on_rate_sample(
                        now,
                        RateSample {
                            delivered,
                            delivered_at_send,
                            rate: (delivered - delivered_at_send) as f64
                                / fl.as_secs_f64().max(1e-6),
                        },
                    );
                    cc.on_ack(now, MSS, fl, fl);
                    trace.push((now.as_micros(), cc.cwnd()));
                }
                Err(lost_pn) => {
                    cc.on_loss(now, pn.saturating_sub(1), lost_pn, MSS);
                    trace.push((now.as_micros(), cc.cwnd()));
                }
            }
        }
        trace
    }

    /// Under a clean constant-bandwidth path (10 Mbps × 60 ms → BDP =
    /// 75 kB) with a 100-packet drop-tail queue, BBR's window converges
    /// into a band around `cwnd_gain × BDP` and stays there, while
    /// CUBIC fills the queue, takes a tail-drop, backs off, and saws —
    /// pinned as trajectory-shape assertions (band membership and
    /// peak/trough ratios), never float equality.
    #[test]
    fn bbr_holds_a_bdp_band_where_cubic_oscillates() {
        let bdp = 75_000.0;
        let q_cap = 100 * MSS;

        let mut bbr = CongestionControl::new(CcKind::Bbr, MSS);
        let bbr_trace = run_bottleneck(&mut bbr, 9.0, q_cap);
        let mut cubic = CongestionControl::new(CcKind::Cubic, MSS);
        let cubic_trace = run_bottleneck(&mut cubic, 9.0, q_cap);

        // Steady-state window: everything after t = 3 s.
        let steady = |tr: &[(u64, usize)]| -> Vec<usize> {
            tr.iter()
                .filter(|&&(t, _)| t > 3_000_000)
                .map(|&(_, w)| w)
                .collect()
        };
        let (bbr_w, cubic_w) = (steady(&bbr_trace), steady(&cubic_trace));
        assert!(bbr_w.len() > 100 && cubic_w.len() > 100, "traces too short");

        // BBR: every steady sample inside (1..3) x BDP, and flat — the
        // peak/trough ratio stays under 1.2.
        let (bbr_min, bbr_max) = (
            *bbr_w.iter().min().expect("nonempty"),
            *bbr_w.iter().max().expect("nonempty"),
        );
        assert!(
            bbr_min as f64 > bdp && (bbr_max as f64) < 3.0 * bdp,
            "BBR cwnd [{bbr_min}, {bbr_max}] escaped the (1..3) x BDP band"
        );
        assert!(
            (bbr_max as f64) < bbr_min as f64 * 1.2,
            "BBR cwnd not flat: [{bbr_min}, {bbr_max}]"
        );

        // CUBIC: saws across the queue — peak/trough ratio well above
        // BBR's, with peaks past BDP + queue and troughs after backoff.
        let (cubic_min, cubic_max) = (
            *cubic_w.iter().min().expect("nonempty"),
            *cubic_w.iter().max().expect("nonempty"),
        );
        assert!(
            cubic_max as f64 > cubic_min as f64 * 1.25,
            "CUBIC did not oscillate: [{cubic_min}, {cubic_max}]"
        );
        assert!(
            cubic_max as f64 > bdp + q_cap as f64 * 0.5,
            "CUBIC never probed into the queue: max {cubic_max}"
        );
    }
}
