//! Congestion-control dispatch: loss-based CUBIC (the paper's QUIC\*) or
//! the delay-based controller of Appendix B's future-work note.

use crate::cubic::Cubic;
use crate::delay_cc::DelayCc;
use voxel_sim::{SimDuration, SimTime};

/// Which controller a connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcKind {
    /// CUBIC (RFC 8312) — what the paper's QUIC\* runs.
    #[default]
    Cubic,
    /// The delay-based (BBR-flavored) controller — Appendix B future work.
    Delay,
}

/// A congestion controller instance.
#[derive(Debug, Clone)]
pub enum CongestionControl {
    /// CUBIC.
    Cubic(Cubic),
    /// Delay-based.
    Delay(DelayCc),
}

impl CongestionControl {
    /// Instantiate `kind` with the given MSS.
    pub fn new(kind: CcKind, mss: usize) -> CongestionControl {
        match kind {
            CcKind::Cubic => CongestionControl::Cubic(Cubic::new(mss)),
            CcKind::Delay => CongestionControl::Delay(DelayCc::new(mss)),
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        match self {
            CongestionControl::Cubic(c) => c.cwnd(),
            CongestionControl::Delay(c) => c.cwnd(),
        }
    }

    /// Slow-start threshold in bytes (`u64::MAX` when the controller has
    /// none: before CUBIC's first loss, or always for the delay controller).
    pub fn ssthresh(&self) -> u64 {
        match self {
            CongestionControl::Cubic(c) => c.ssthresh(),
            CongestionControl::Delay(_) => u64::MAX,
        }
    }

    /// Bytes currently in flight.
    pub fn in_flight(&self) -> usize {
        match self {
            CongestionControl::Cubic(c) => c.in_flight(),
            CongestionControl::Delay(c) => c.in_flight(),
        }
    }

    /// Whether `bytes` more may be sent.
    pub fn can_send(&self, bytes: usize) -> bool {
        match self {
            CongestionControl::Cubic(c) => c.can_send(bytes),
            CongestionControl::Delay(c) => c.can_send(bytes),
        }
    }

    /// A packet entered the network.
    pub fn on_sent(&mut self, bytes: usize) {
        match self {
            CongestionControl::Cubic(c) => c.on_sent(bytes),
            CongestionControl::Delay(c) => c.on_sent(bytes),
        }
    }

    /// A packet was acknowledged. CUBIC consumes the smoothed RTT; the
    /// delay controller consumes the raw latest sample.
    pub fn on_ack(&mut self, now: SimTime, bytes: usize, srtt: SimDuration, latest: SimDuration) {
        match self {
            CongestionControl::Cubic(c) => c.on_ack(now, bytes, srtt),
            CongestionControl::Delay(c) => c.on_ack(now, bytes, latest),
        }
    }

    /// Packets were declared lost.
    pub fn on_loss(&mut self, now: SimTime, largest_sent: u64, largest_lost: u64, bytes: usize) {
        match self {
            CongestionControl::Cubic(c) => c.on_loss(now, largest_sent, largest_lost, bytes),
            CongestionControl::Delay(c) => c.on_loss(now, bytes),
        }
    }

    /// Persistent congestion (repeated PTOs).
    pub fn on_persistent_congestion(&mut self) {
        match self {
            CongestionControl::Cubic(c) => c.on_persistent_congestion(),
            CongestionControl::Delay(c) => c.on_persistent_congestion(),
        }
    }

    /// Drop accounting for bytes that left the network without an ack.
    pub fn forget_in_flight(&mut self, bytes: usize) {
        match self {
            CongestionControl::Cubic(c) => c.forget_in_flight(bytes),
            CongestionControl::Delay(c) => c.forget_in_flight(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_constructs_both_kinds() {
        let c = CongestionControl::new(CcKind::Cubic, 1350);
        let d = CongestionControl::new(CcKind::Delay, 1350);
        assert_eq!(c.cwnd(), 10 * 1350);
        assert_eq!(d.cwnd(), 10 * 1350);
        assert!(matches!(c, CongestionControl::Cubic(_)));
        assert!(matches!(d, CongestionControl::Delay(_)));
    }

    #[test]
    fn dispatch_forwards_flight_accounting() {
        for kind in [CcKind::Cubic, CcKind::Delay] {
            let mut cc = CongestionControl::new(kind, 1350);
            cc.on_sent(2700);
            assert_eq!(cc.in_flight(), 2700);
            cc.on_ack(
                SimTime::from_millis(60),
                1350,
                SimDuration::from_millis(60),
                SimDuration::from_millis(60),
            );
            assert_eq!(cc.in_flight(), 1350);
            cc.forget_in_flight(1350);
            assert_eq!(cc.in_flight(), 0);
        }
    }

    #[test]
    fn delay_kind_ignores_single_losses_cubic_reacts() {
        let mut cubic = CongestionControl::new(CcKind::Cubic, 1350);
        let mut delay = CongestionControl::new(CcKind::Delay, 1350);
        // Warm both with some acks.
        for i in 1..200u64 {
            for cc in [&mut cubic, &mut delay] {
                cc.on_sent(1350);
                cc.on_ack(
                    SimTime::from_micros(i * 1000),
                    1350,
                    SimDuration::from_millis(60),
                    SimDuration::from_millis(60),
                );
            }
        }
        let (wc, wd) = (cubic.cwnd(), delay.cwnd());
        cubic.on_loss(SimTime::from_secs(1), 100, 90, 1350);
        delay.on_loss(SimTime::from_secs(1), 100, 90, 1350);
        assert!(cubic.cwnd() < wc, "CUBIC must back off");
        assert!(delay.cwnd() as f64 >= wd as f64 * 0.9, "delay CC must not");
    }
}
