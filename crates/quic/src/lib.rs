#![warn(missing_docs)]
//! # voxel-quic
//!
//! QUIC\*: a from-scratch, packet-level QUIC-like transport with the paper's
//! §4.2 extension — **unreliable streams with optional retransmissions** —
//! alongside ordinary reliable streams. The design mirrors Google QUIC's
//! machinery at the level the paper's evaluation exercises:
//!
//! - [`varint`]/[`frame`]/[`packet`]: QUIC-style wire encoding (varints,
//!   STREAM/ACK/flow-control frames, packet numbers).
//! - [`rtt`]: SRTT/RTTVAR estimation (RFC 6298 style, as QUIC uses).
//! - [`ack`]: ACK-range tracking and delayed-ACK generation.
//! - [`cubic`]: the CUBIC congestion controller — *both* stream classes are
//!   congestion- and flow-controlled ("the unreliable streams of QUIC\*,
//!   unlike UDP, are subject to the congestion (CUBIC) and flow-control
//!   mechanisms of the QUIC connection").
//! - [`delay_cc`]/[`bbr`]: the model-based alternatives — Appendix B's
//!   compact delay controller and the full BBR state machine over the
//!   transport's delivery-rate sampler (DESIGN.md §15), selected per
//!   connection via [`CcKind`].
//! - [`loss`]: packet- and time-threshold loss detection plus PTO probes.
//! - [`stream`]: reliable send/recv streams (retransmission, in-order
//!   delivery) and unreliable streams (gap delivery, loss reports surfaced
//!   to the application for selective re-request).
//! - [`connection`]: the sans-IO endpoint — `on_datagram` / `poll_transmit`
//!   / `on_timeout` — driven by the discrete-event loop in `voxel-core`,
//!   and structured so it could equally be driven by real UDP sockets.

pub mod ack;
pub mod bbr;
pub mod cc;
pub mod connection;
pub mod cubic;
pub mod delay_cc;
pub mod frame;
pub mod loss;
pub mod packet;
pub mod range;
pub mod rtt;
pub mod stream;
pub mod varint;

pub use cc::{CcKind, CongestionControl, RateSample};
pub use connection::{Connection, ConnectionConfig, Event, Role};
pub use frame::Frame;
pub use packet::Packet;
pub use stream::{Reliability, StreamId};
