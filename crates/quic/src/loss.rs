//! Sent-packet tracking, ACK processing and loss detection (RFC 9002).
//!
//! Packets are declared lost by the **packet threshold** (3 packets
//! reordering) or the **time threshold** (9/8·RTT older than the largest
//! acknowledged). A probe timeout (PTO) fires when acknowledgements stop
//! arriving entirely.

use crate::cc::RateSample;
use crate::rtt::RttEstimator;
use crate::stream::StreamId;
use std::collections::BTreeMap;
use voxel_sim::{SimDuration, SimTime};

/// Packet-reordering threshold.
const PACKET_THRESHOLD: u64 = 3;

/// A stream chunk carried by a sent packet (for retransmission / loss
/// reporting when the packet is lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentChunk {
    /// The stream.
    pub id: StreamId,
    /// Offset within the stream.
    pub offset: u64,
    /// Payload length.
    pub len: usize,
    /// Whether the chunk carried fin.
    pub fin: bool,
    /// Whether the stream is unreliable.
    pub unreliable: bool,
}

/// Book-keeping for an in-flight packet.
#[derive(Debug, Clone)]
pub struct SentPacket {
    /// Packet number.
    pub pkt_num: u64,
    /// Send timestamp.
    pub sent_at: SimTime,
    /// Wire size (for congestion accounting).
    pub wire_bytes: usize,
    /// Whether it elicits an ACK.
    pub ack_eliciting: bool,
    /// Cumulative bytes the connection had delivered (acked) when this
    /// packet was sent — the send-side snapshot of the delivery-rate
    /// sampler (DESIGN.md §15).
    pub delivered_at_send: u64,
    /// Stream chunks carried.
    pub chunks: Vec<SentChunk>,
}

/// Result of processing one ACK frame.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Packets newly acknowledged.
    pub acked: Vec<SentPacket>,
    /// Packets newly declared lost (packet threshold or time threshold).
    pub lost: Vec<SentPacket>,
    /// RTT sample from the largest newly-acked packet, with peer ack delay.
    pub rtt_sample: Option<(SimDuration, SimDuration)>,
    /// One delivery-rate sample per newly-acked eliciting packet:
    /// `(delivered_now − delivered_at_send) / flight_time` — the rate the
    /// network sustained over that packet's flight. Consumed by BBR.
    pub rate_samples: Vec<RateSample>,
}

/// The loss detector.
#[derive(Debug, Default)]
pub struct LossDetector {
    sent: BTreeMap<u64, SentPacket>,
    largest_acked: Option<u64>,
    pto_count: u32,
    /// Cumulative acked bytes — the delivery-rate sampler's clock.
    delivered: u64,
    /// Whether to emit [`AckOutcome::rate_samples`]. Off by default:
    /// only rate-driven controllers (BBR) read them, and the per-ack
    /// division plus Vec growth is measurable fleet-scaling cost when
    /// paid by every CUBIC flow for nothing.
    sample_rates: bool,
}

impl LossDetector {
    /// Fresh detector.
    pub fn new() -> LossDetector {
        LossDetector::default()
    }

    /// Turn delivery-rate sampling on or off. The `delivered` byte
    /// clock always runs; this only gates whether `on_ack` computes and
    /// buffers [`RateSample`]s for the controller.
    pub fn set_rate_sampling(&mut self, on: bool) {
        self.sample_rates = on;
    }

    /// Record a sent packet.
    pub fn on_sent(&mut self, pkt: SentPacket) {
        self.sent.insert(pkt.pkt_num, pkt);
    }

    /// Number of tracked (unacked, undeclared) packets.
    pub fn outstanding(&self) -> usize {
        self.sent.len()
    }

    /// Whether any ack-eliciting packet is outstanding.
    pub fn has_eliciting_outstanding(&self) -> bool {
        self.sent.values().any(|p| p.ack_eliciting)
    }

    /// Largest acknowledged packet number.
    pub fn largest_acked(&self) -> Option<u64> {
        self.largest_acked
    }

    /// Cumulative bytes delivered (acked) on this path. Monotone; new
    /// packets snapshot it into [`SentPacket::delivered_at_send`].
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }

    /// Structural audit: tracked packets agree with their keys and send
    /// times are monotone in packet number. Used by the `paranoid`
    /// runtime layer (DESIGN.md §10).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev: Option<(u64, voxel_sim::SimTime)> = None;
        for (&pn, pkt) in &self.sent {
            if pkt.pkt_num != pn {
                return Err(format!("sent[{pn}] holds packet number {}", pkt.pkt_num));
            }
            if let Some((ppn, pat)) = prev {
                if pkt.sent_at < pat {
                    return Err(format!(
                        "packet {pn} sent at {:?} before packet {ppn} at {pat:?}",
                        pkt.sent_at
                    ));
                }
            }
            prev = Some((pn, pkt.sent_at));
        }
        Ok(())
    }

    /// Consecutive PTO count (reset by forward progress).
    pub fn pto_count(&self) -> u32 {
        self.pto_count
    }

    /// Process an ACK frame's ranges.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        ranges: &[(u64, u64)],
        ack_delay: SimDuration,
        rtt: &RttEstimator,
    ) -> AckOutcome {
        let mut out = AckOutcome::default();
        let mut largest_newly_acked: Option<u64> = None;

        for &(hi, lo) in ranges {
            // Ranges arrive highest-first as (start, end) pairs in either
            // orientation; normalize.
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let acked: Vec<u64> = self.sent.range(lo..=hi).map(|(&pn, _)| pn).collect();
            for pn in acked {
                if let Some(pkt) = self.sent.remove(&pn) {
                    largest_newly_acked = Some(largest_newly_acked.map_or(pn, |l: u64| l.max(pn)));
                    out.acked.push(pkt);
                }
            }
        }

        // Credit delivered bytes and — when the controller consumes
        // them — emit one delivery-rate sample per eliciting packet:
        // the average rate over the packet's flight.
        for pkt in &out.acked {
            self.delivered += pkt.wire_bytes as u64;
            if !self.sample_rates {
                continue;
            }
            let flight = now.saturating_since(pkt.sent_at);
            if pkt.ack_eliciting && flight > SimDuration::ZERO {
                out.rate_samples.push(RateSample {
                    delivered: self.delivered,
                    delivered_at_send: pkt.delivered_at_send,
                    rate: (self.delivered - pkt.delivered_at_send) as f64 / flight.as_secs_f64(),
                });
            }
        }

        if let Some(largest) = largest_newly_acked {
            if self.largest_acked.is_none_or(|l| largest > l) {
                self.largest_acked = Some(largest);
                // RTT sample only from the largest newly-acked,
                // ack-eliciting packet.
                if let Some(pkt) = out.acked.iter().find(|p| p.pkt_num == largest) {
                    if pkt.ack_eliciting {
                        out.rtt_sample = Some((now.saturating_since(pkt.sent_at), ack_delay));
                    }
                }
            }
            self.pto_count = 0;
        }

        out.lost = self.detect_lost(now, rtt);
        out
    }

    /// Declare packets lost by packet- and time-threshold relative to the
    /// largest acknowledged packet.
    pub fn detect_lost(&mut self, now: SimTime, rtt: &RttEstimator) -> Vec<SentPacket> {
        let Some(largest) = self.largest_acked else {
            return Vec::new();
        };
        let time_threshold = rtt.loss_time_threshold();
        let lost_pns: Vec<u64> = self
            .sent
            .range(..largest)
            .filter(|(&pn, pkt)| {
                largest - pn >= PACKET_THRESHOLD
                    || now.saturating_since(pkt.sent_at) >= time_threshold
            })
            .map(|(&pn, _)| pn)
            .collect();
        lost_pns
            .into_iter()
            .filter_map(|pn| self.sent.remove(&pn))
            .collect()
    }

    /// The earliest deadline at which either a time-threshold loss or a PTO
    /// should fire; `None` when nothing is outstanding.
    pub fn next_timeout(&self, rtt: &RttEstimator, max_ack_delay: SimDuration) -> Option<SimTime> {
        // Time-threshold deadline for the oldest packet below largest_acked.
        let loss_deadline = self.largest_acked.and_then(|largest| {
            self.sent
                .range(..largest)
                .map(|(_, p)| p.sent_at + rtt.loss_time_threshold())
                .min()
        });
        // PTO from the most recent ack-eliciting packet.
        let pto_deadline = self
            .sent
            .values()
            .filter(|p| p.ack_eliciting)
            .map(|p| p.sent_at)
            .max()
            .map(|t| {
                let backoff = 1u64 << self.pto_count.min(6);
                t + SimDuration::from_micros(rtt.pto(max_ack_delay).as_micros() * backoff)
            });
        match (loss_deadline, pto_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Handle an expired timeout: first run time-threshold detection; if
    /// nothing was declared lost, treat it as a PTO — bump the backoff and
    /// return the oldest outstanding eliciting packet to probe with.
    pub fn on_timeout(&mut self, now: SimTime, rtt: &RttEstimator) -> TimeoutOutcome {
        let lost = self.detect_lost(now, rtt);
        if !lost.is_empty() {
            return TimeoutOutcome::Lost(lost);
        }
        self.pto_count += 1;
        // On PTO, retransmittable data of the oldest eliciting packet is
        // re-sent; here we surface its chunks so the connection can probe.
        let probe = self
            .sent
            .values()
            .filter(|p| p.ack_eliciting)
            .min_by_key(|p| p.pkt_num)
            .cloned();
        TimeoutOutcome::Pto {
            count: self.pto_count,
            probe,
        }
    }
}

/// What a timeout produced.
#[derive(Debug)]
pub enum TimeoutOutcome {
    /// Time-threshold losses were declared.
    Lost(Vec<SentPacket>),
    /// A probe timeout fired.
    Pto {
        /// Consecutive PTO count (for backoff / persistent congestion).
        count: u32,
        /// The oldest outstanding eliciting packet, to re-probe its data.
        probe: Option<SentPacket>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(pn: u64, at_ms: u64) -> SentPacket {
        SentPacket {
            pkt_num: pn,
            sent_at: SimTime::from_millis(at_ms),
            wire_bytes: 1200,
            ack_eliciting: true,
            delivered_at_send: 0,
            chunks: vec![],
        }
    }

    fn rtt60() -> RttEstimator {
        let mut r = RttEstimator::new();
        r.update(SimDuration::from_millis(60), SimDuration::ZERO);
        r
    }

    #[test]
    fn ack_removes_and_samples_rtt() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        d.on_sent(pkt(1, 5));
        let rtt = rtt60();
        let out = d.on_ack(
            SimTime::from_millis(65),
            &[(1, 0)],
            SimDuration::from_millis(2),
            &rtt,
        );
        assert_eq!(out.acked.len(), 2);
        assert!(out.lost.is_empty());
        let (sample, delay) = out.rtt_sample.expect("has sample");
        assert_eq!(sample, SimDuration::from_millis(60)); // pn 1 sent at 5ms
        assert_eq!(delay, SimDuration::from_millis(2));
        assert_eq!(d.outstanding(), 0);
        assert_eq!(d.largest_acked(), Some(1));
    }

    #[test]
    fn packet_threshold_declares_loss() {
        let mut d = LossDetector::new();
        for pn in 0..5 {
            d.on_sent(pkt(pn, pn));
        }
        let rtt = rtt60();
        // Ack only pn 4: pn 0 and 1 are ≥3 behind → lost; 2,3 not yet.
        let out = d.on_ack(SimTime::from_millis(65), &[(4, 4)], SimDuration::ZERO, &rtt);
        let lost: Vec<u64> = out.lost.iter().map(|p| p.pkt_num).collect();
        assert_eq!(lost, vec![0, 1]);
        assert_eq!(d.outstanding(), 2);
    }

    #[test]
    fn time_threshold_declares_loss_later() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        d.on_sent(pkt(1, 0));
        let rtt = rtt60();
        let out = d.on_ack(SimTime::from_millis(60), &[(1, 1)], SimDuration::ZERO, &rtt);
        assert!(out.lost.is_empty(), "within packet+time thresholds");
        // 9/8·60 = 67.5 ms after send → lost.
        let lost = d.detect_lost(SimTime::from_millis(68), &rtt);
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].pkt_num, 0);
    }

    #[test]
    fn duplicate_acks_are_harmless() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        let rtt = rtt60();
        let out1 = d.on_ack(SimTime::from_millis(60), &[(0, 0)], SimDuration::ZERO, &rtt);
        assert_eq!(out1.acked.len(), 1);
        let out2 = d.on_ack(SimTime::from_millis(70), &[(0, 0)], SimDuration::ZERO, &rtt);
        assert!(out2.acked.is_empty());
        assert!(out2.rtt_sample.is_none());
    }

    #[test]
    fn pto_fires_and_backs_off() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        let rtt = rtt60();
        let deadline = d
            .next_timeout(&rtt, SimDuration::from_millis(25))
            .expect("armed");
        // PTO = srtt + 4·var + mad = 60 + 120 + 25 = 205 ms.
        assert_eq!(deadline.as_micros(), 205_000);
        match d.on_timeout(deadline, &rtt) {
            TimeoutOutcome::Pto { count, probe } => {
                assert_eq!(count, 1);
                assert_eq!(probe.unwrap().pkt_num, 0);
            }
            other => panic!("expected PTO, got {other:?}"),
        }
        // Backoff doubles the next deadline.
        let d2 = d
            .next_timeout(&rtt, SimDuration::from_millis(25))
            .expect("armed");
        assert_eq!(d2.as_micros(), 410_000);
    }

    #[test]
    fn pto_count_resets_on_forward_progress() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        let rtt = rtt60();
        let t = d.next_timeout(&rtt, SimDuration::ZERO).unwrap();
        d.on_timeout(t, &rtt);
        assert_eq!(d.pto_count(), 1);
        d.on_sent(pkt(1, 300));
        d.on_ack(
            SimTime::from_millis(360),
            &[(1, 1)],
            SimDuration::ZERO,
            &rtt,
        );
        assert_eq!(d.pto_count(), 0);
    }

    #[test]
    fn timeout_with_losses_reports_them_not_pto() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        d.on_sent(pkt(1, 1));
        let rtt = rtt60();
        d.on_ack(SimTime::from_millis(61), &[(1, 1)], SimDuration::ZERO, &rtt);
        match d.on_timeout(SimTime::from_millis(200), &rtt) {
            TimeoutOutcome::Lost(lost) => assert_eq!(lost[0].pkt_num, 0),
            other => panic!("expected losses, got {other:?}"),
        }
        assert_eq!(d.pto_count(), 0);
    }

    #[test]
    fn no_timeout_when_idle() {
        let d = LossDetector::new();
        assert!(d.next_timeout(&rtt60(), SimDuration::ZERO).is_none());
        assert!(!d.has_eliciting_outstanding());
    }

    #[test]
    fn acks_produce_delivery_rate_samples() {
        let mut d = LossDetector::new();
        d.set_rate_sampling(true);
        d.on_sent(pkt(0, 0));
        d.on_sent(pkt(1, 5));
        let rtt = rtt60();
        let out = d.on_ack(SimTime::from_millis(65), &[(1, 0)], SimDuration::ZERO, &rtt);
        assert_eq!(out.rate_samples.len(), 2);
        assert_eq!(d.delivered_bytes(), 2400);
        for s in &out.rate_samples {
            assert!(s.delivered >= s.delivered_at_send);
            assert!(s.rate > 0.0);
        }
        // pkt 0: 1200 B delivered over 65 ms ≈ 18.4 kB/s.
        let r0 = out.rate_samples[0].rate;
        assert!((r0 - 1200.0 / 0.065).abs() < 1.0, "rate {r0}");
        // Losses never credit the delivered counter.
        d.on_sent(pkt(2, 70));
        d.on_sent(pkt(5, 71));
        let out = d.on_ack(
            SimTime::from_millis(135),
            &[(5, 5)],
            SimDuration::ZERO,
            &rtt,
        );
        assert_eq!(out.lost.len(), 1, "pkt 2 is 3 behind");
        assert_eq!(d.delivered_bytes(), 3600);
    }

    /// The perf contract behind `set_rate_sampling`: controllers that
    /// never read samples (CUBIC, delay) must not pay for them, while
    /// the delivered-byte clock keeps running regardless.
    #[test]
    fn rate_sampling_is_off_by_default_but_delivered_still_counts() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        d.on_sent(pkt(1, 5));
        let out = d.on_ack(
            SimTime::from_millis(65),
            &[(1, 0)],
            SimDuration::ZERO,
            &rtt60(),
        );
        assert!(
            out.rate_samples.is_empty(),
            "samples emitted while sampling is off"
        );
        assert_eq!(d.delivered_bytes(), 2400);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The delivery-rate sampler is monotone in bytes acked: across
        /// arbitrary interleavings of sends and (possibly duplicate,
        /// possibly reordered) ack ranges, successive samples carry a
        /// non-decreasing `delivered`, every sample's `delivered` covers
        /// its own send-time snapshot, and the cumulative counter equals
        /// exactly the bytes of packets acked so far.
        #[test]
        fn delivery_rate_samples_monotone_in_bytes_acked(
            steps in proptest::collection::vec(
                (1u64..5, 0u64..8, 0u64..8, 1u64..100_000, 100usize..1500),
                1..40,
            ),
        ) {
            let mut d = LossDetector::new();
            d.set_rate_sampling(true);
            let mut rtt = RttEstimator::new();
            rtt.update(SimDuration::from_millis(60), SimDuration::ZERO);
            let mut now = 0u64;
            let mut pn = 0u64;
            let mut acked_bytes = 0u64;
            let mut last_delivered = 0u64;
            for (sends, lo_off, hi_off, gap, bytes) in steps {
                for _ in 0..sends {
                    now += gap;
                    d.on_sent(SentPacket {
                        pkt_num: pn,
                        sent_at: SimTime::from_micros(now),
                        wire_bytes: bytes,
                        ack_eliciting: true,
                        delivered_at_send: d.delivered_bytes(),
                        chunks: vec![],
                    });
                    pn += 1;
                }
                now += gap + 1;
                let hi = pn - 1 - (hi_off % pn);
                let lo = hi.saturating_sub(lo_off);
                let out = d.on_ack(
                    SimTime::from_micros(now),
                    &[(hi, lo)],
                    SimDuration::ZERO,
                    &rtt,
                );
                acked_bytes += out.acked.iter().map(|p| p.wire_bytes as u64).sum::<u64>();
                for s in &out.rate_samples {
                    prop_assert!(s.delivered >= s.delivered_at_send,
                        "sample credits bytes from before its send");
                    prop_assert!(s.delivered >= last_delivered,
                        "delivered went backwards: {} < {last_delivered}", s.delivered);
                    prop_assert!(s.rate >= 0.0 && s.rate.is_finite());
                    last_delivered = s.delivered;
                }
                prop_assert_eq!(d.delivered_bytes(), acked_bytes,
                    "delivered counter drifted from acked bytes");
                prop_assert!(d.delivered_bytes() >= last_delivered);
            }
        }
    }
}
