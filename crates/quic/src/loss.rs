//! Sent-packet tracking, ACK processing and loss detection (RFC 9002).
//!
//! Packets are declared lost by the **packet threshold** (3 packets
//! reordering) or the **time threshold** (9/8·RTT older than the largest
//! acknowledged). A probe timeout (PTO) fires when acknowledgements stop
//! arriving entirely.

use crate::rtt::RttEstimator;
use crate::stream::StreamId;
use std::collections::BTreeMap;
use voxel_sim::{SimDuration, SimTime};

/// Packet-reordering threshold.
const PACKET_THRESHOLD: u64 = 3;

/// A stream chunk carried by a sent packet (for retransmission / loss
/// reporting when the packet is lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentChunk {
    /// The stream.
    pub id: StreamId,
    /// Offset within the stream.
    pub offset: u64,
    /// Payload length.
    pub len: usize,
    /// Whether the chunk carried fin.
    pub fin: bool,
    /// Whether the stream is unreliable.
    pub unreliable: bool,
}

/// Book-keeping for an in-flight packet.
#[derive(Debug, Clone)]
pub struct SentPacket {
    /// Packet number.
    pub pkt_num: u64,
    /// Send timestamp.
    pub sent_at: SimTime,
    /// Wire size (for congestion accounting).
    pub wire_bytes: usize,
    /// Whether it elicits an ACK.
    pub ack_eliciting: bool,
    /// Stream chunks carried.
    pub chunks: Vec<SentChunk>,
}

/// Result of processing one ACK frame.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Packets newly acknowledged.
    pub acked: Vec<SentPacket>,
    /// Packets newly declared lost (packet threshold or time threshold).
    pub lost: Vec<SentPacket>,
    /// RTT sample from the largest newly-acked packet, with peer ack delay.
    pub rtt_sample: Option<(SimDuration, SimDuration)>,
}

/// The loss detector.
#[derive(Debug, Default)]
pub struct LossDetector {
    sent: BTreeMap<u64, SentPacket>,
    largest_acked: Option<u64>,
    pto_count: u32,
}

impl LossDetector {
    /// Fresh detector.
    pub fn new() -> LossDetector {
        LossDetector::default()
    }

    /// Record a sent packet.
    pub fn on_sent(&mut self, pkt: SentPacket) {
        self.sent.insert(pkt.pkt_num, pkt);
    }

    /// Number of tracked (unacked, undeclared) packets.
    pub fn outstanding(&self) -> usize {
        self.sent.len()
    }

    /// Whether any ack-eliciting packet is outstanding.
    pub fn has_eliciting_outstanding(&self) -> bool {
        self.sent.values().any(|p| p.ack_eliciting)
    }

    /// Largest acknowledged packet number.
    pub fn largest_acked(&self) -> Option<u64> {
        self.largest_acked
    }

    /// Structural audit: tracked packets agree with their keys and send
    /// times are monotone in packet number. Used by the `paranoid`
    /// runtime layer (DESIGN.md §10).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev: Option<(u64, voxel_sim::SimTime)> = None;
        for (&pn, pkt) in &self.sent {
            if pkt.pkt_num != pn {
                return Err(format!("sent[{pn}] holds packet number {}", pkt.pkt_num));
            }
            if let Some((ppn, pat)) = prev {
                if pkt.sent_at < pat {
                    return Err(format!(
                        "packet {pn} sent at {:?} before packet {ppn} at {pat:?}",
                        pkt.sent_at
                    ));
                }
            }
            prev = Some((pn, pkt.sent_at));
        }
        Ok(())
    }

    /// Consecutive PTO count (reset by forward progress).
    pub fn pto_count(&self) -> u32 {
        self.pto_count
    }

    /// Process an ACK frame's ranges.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        ranges: &[(u64, u64)],
        ack_delay: SimDuration,
        rtt: &RttEstimator,
    ) -> AckOutcome {
        let mut out = AckOutcome::default();
        let mut largest_newly_acked: Option<u64> = None;

        for &(hi, lo) in ranges {
            // Ranges arrive highest-first as (start, end) pairs in either
            // orientation; normalize.
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let acked: Vec<u64> = self.sent.range(lo..=hi).map(|(&pn, _)| pn).collect();
            for pn in acked {
                if let Some(pkt) = self.sent.remove(&pn) {
                    largest_newly_acked = Some(largest_newly_acked.map_or(pn, |l: u64| l.max(pn)));
                    out.acked.push(pkt);
                }
            }
        }

        if let Some(largest) = largest_newly_acked {
            if self.largest_acked.is_none_or(|l| largest > l) {
                self.largest_acked = Some(largest);
                // RTT sample only from the largest newly-acked,
                // ack-eliciting packet.
                if let Some(pkt) = out.acked.iter().find(|p| p.pkt_num == largest) {
                    if pkt.ack_eliciting {
                        out.rtt_sample = Some((now.saturating_since(pkt.sent_at), ack_delay));
                    }
                }
            }
            self.pto_count = 0;
        }

        out.lost = self.detect_lost(now, rtt);
        out
    }

    /// Declare packets lost by packet- and time-threshold relative to the
    /// largest acknowledged packet.
    pub fn detect_lost(&mut self, now: SimTime, rtt: &RttEstimator) -> Vec<SentPacket> {
        let Some(largest) = self.largest_acked else {
            return Vec::new();
        };
        let time_threshold = rtt.loss_time_threshold();
        let lost_pns: Vec<u64> = self
            .sent
            .range(..largest)
            .filter(|(&pn, pkt)| {
                largest - pn >= PACKET_THRESHOLD
                    || now.saturating_since(pkt.sent_at) >= time_threshold
            })
            .map(|(&pn, _)| pn)
            .collect();
        lost_pns
            .into_iter()
            .filter_map(|pn| self.sent.remove(&pn))
            .collect()
    }

    /// The earliest deadline at which either a time-threshold loss or a PTO
    /// should fire; `None` when nothing is outstanding.
    pub fn next_timeout(&self, rtt: &RttEstimator, max_ack_delay: SimDuration) -> Option<SimTime> {
        // Time-threshold deadline for the oldest packet below largest_acked.
        let loss_deadline = self.largest_acked.and_then(|largest| {
            self.sent
                .range(..largest)
                .map(|(_, p)| p.sent_at + rtt.loss_time_threshold())
                .min()
        });
        // PTO from the most recent ack-eliciting packet.
        let pto_deadline = self
            .sent
            .values()
            .filter(|p| p.ack_eliciting)
            .map(|p| p.sent_at)
            .max()
            .map(|t| {
                let backoff = 1u64 << self.pto_count.min(6);
                t + SimDuration::from_micros(rtt.pto(max_ack_delay).as_micros() * backoff)
            });
        match (loss_deadline, pto_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Handle an expired timeout: first run time-threshold detection; if
    /// nothing was declared lost, treat it as a PTO — bump the backoff and
    /// return the oldest outstanding eliciting packet to probe with.
    pub fn on_timeout(&mut self, now: SimTime, rtt: &RttEstimator) -> TimeoutOutcome {
        let lost = self.detect_lost(now, rtt);
        if !lost.is_empty() {
            return TimeoutOutcome::Lost(lost);
        }
        self.pto_count += 1;
        // On PTO, retransmittable data of the oldest eliciting packet is
        // re-sent; here we surface its chunks so the connection can probe.
        let probe = self
            .sent
            .values()
            .filter(|p| p.ack_eliciting)
            .min_by_key(|p| p.pkt_num)
            .cloned();
        TimeoutOutcome::Pto {
            count: self.pto_count,
            probe,
        }
    }
}

/// What a timeout produced.
#[derive(Debug)]
pub enum TimeoutOutcome {
    /// Time-threshold losses were declared.
    Lost(Vec<SentPacket>),
    /// A probe timeout fired.
    Pto {
        /// Consecutive PTO count (for backoff / persistent congestion).
        count: u32,
        /// The oldest outstanding eliciting packet, to re-probe its data.
        probe: Option<SentPacket>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(pn: u64, at_ms: u64) -> SentPacket {
        SentPacket {
            pkt_num: pn,
            sent_at: SimTime::from_millis(at_ms),
            wire_bytes: 1200,
            ack_eliciting: true,
            chunks: vec![],
        }
    }

    fn rtt60() -> RttEstimator {
        let mut r = RttEstimator::new();
        r.update(SimDuration::from_millis(60), SimDuration::ZERO);
        r
    }

    #[test]
    fn ack_removes_and_samples_rtt() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        d.on_sent(pkt(1, 5));
        let rtt = rtt60();
        let out = d.on_ack(
            SimTime::from_millis(65),
            &[(1, 0)],
            SimDuration::from_millis(2),
            &rtt,
        );
        assert_eq!(out.acked.len(), 2);
        assert!(out.lost.is_empty());
        let (sample, delay) = out.rtt_sample.expect("has sample");
        assert_eq!(sample, SimDuration::from_millis(60)); // pn 1 sent at 5ms
        assert_eq!(delay, SimDuration::from_millis(2));
        assert_eq!(d.outstanding(), 0);
        assert_eq!(d.largest_acked(), Some(1));
    }

    #[test]
    fn packet_threshold_declares_loss() {
        let mut d = LossDetector::new();
        for pn in 0..5 {
            d.on_sent(pkt(pn, pn));
        }
        let rtt = rtt60();
        // Ack only pn 4: pn 0 and 1 are ≥3 behind → lost; 2,3 not yet.
        let out = d.on_ack(SimTime::from_millis(65), &[(4, 4)], SimDuration::ZERO, &rtt);
        let lost: Vec<u64> = out.lost.iter().map(|p| p.pkt_num).collect();
        assert_eq!(lost, vec![0, 1]);
        assert_eq!(d.outstanding(), 2);
    }

    #[test]
    fn time_threshold_declares_loss_later() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        d.on_sent(pkt(1, 0));
        let rtt = rtt60();
        let out = d.on_ack(SimTime::from_millis(60), &[(1, 1)], SimDuration::ZERO, &rtt);
        assert!(out.lost.is_empty(), "within packet+time thresholds");
        // 9/8·60 = 67.5 ms after send → lost.
        let lost = d.detect_lost(SimTime::from_millis(68), &rtt);
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].pkt_num, 0);
    }

    #[test]
    fn duplicate_acks_are_harmless() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        let rtt = rtt60();
        let out1 = d.on_ack(SimTime::from_millis(60), &[(0, 0)], SimDuration::ZERO, &rtt);
        assert_eq!(out1.acked.len(), 1);
        let out2 = d.on_ack(SimTime::from_millis(70), &[(0, 0)], SimDuration::ZERO, &rtt);
        assert!(out2.acked.is_empty());
        assert!(out2.rtt_sample.is_none());
    }

    #[test]
    fn pto_fires_and_backs_off() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        let rtt = rtt60();
        let deadline = d
            .next_timeout(&rtt, SimDuration::from_millis(25))
            .expect("armed");
        // PTO = srtt + 4·var + mad = 60 + 120 + 25 = 205 ms.
        assert_eq!(deadline.as_micros(), 205_000);
        match d.on_timeout(deadline, &rtt) {
            TimeoutOutcome::Pto { count, probe } => {
                assert_eq!(count, 1);
                assert_eq!(probe.unwrap().pkt_num, 0);
            }
            other => panic!("expected PTO, got {other:?}"),
        }
        // Backoff doubles the next deadline.
        let d2 = d
            .next_timeout(&rtt, SimDuration::from_millis(25))
            .expect("armed");
        assert_eq!(d2.as_micros(), 410_000);
    }

    #[test]
    fn pto_count_resets_on_forward_progress() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        let rtt = rtt60();
        let t = d.next_timeout(&rtt, SimDuration::ZERO).unwrap();
        d.on_timeout(t, &rtt);
        assert_eq!(d.pto_count(), 1);
        d.on_sent(pkt(1, 300));
        d.on_ack(
            SimTime::from_millis(360),
            &[(1, 1)],
            SimDuration::ZERO,
            &rtt,
        );
        assert_eq!(d.pto_count(), 0);
    }

    #[test]
    fn timeout_with_losses_reports_them_not_pto() {
        let mut d = LossDetector::new();
        d.on_sent(pkt(0, 0));
        d.on_sent(pkt(1, 1));
        let rtt = rtt60();
        d.on_ack(SimTime::from_millis(61), &[(1, 1)], SimDuration::ZERO, &rtt);
        match d.on_timeout(SimTime::from_millis(200), &rtt) {
            TimeoutOutcome::Lost(lost) => assert_eq!(lost[0].pkt_num, 0),
            other => panic!("expected losses, got {other:?}"),
        }
        assert_eq!(d.pto_count(), 0);
    }

    #[test]
    fn no_timeout_when_idle() {
        let d = LossDetector::new();
        assert!(d.next_timeout(&rtt60(), SimDuration::ZERO).is_none());
        assert!(!d.has_eliciting_outstanding());
    }
}
