//! QUIC variable-length integer encoding (RFC 9000 §16).
//!
//! The two most significant bits of the first byte encode the length
//! (1, 2, 4 or 8 bytes); the remainder carry the value big-endian.

use bytes::{Buf, BufMut};

/// Maximum value representable as a QUIC varint (2^62 - 1).
pub const MAX: u64 = (1 << 62) - 1;

/// Encoded size of `v` in bytes.
pub fn size(v: u64) -> usize {
    if v < 1 << 6 {
        1
    } else if v < 1 << 14 {
        2
    } else if v < 1 << 30 {
        4
    } else {
        assert!(v <= MAX, "value exceeds varint range");
        8
    }
}

/// Append the varint encoding of `v` to `buf`.
pub fn write(buf: &mut impl BufMut, v: u64) {
    match size(v) {
        1 => buf.put_u8(v as u8),
        2 => buf.put_u16(0b01 << 14 | v as u16),
        4 => buf.put_u32(0b10 << 30 | v as u32),
        _ => buf.put_u64(0b11 << 62 | v),
    }
}

/// Decode a varint from the front of `buf`; `None` on truncation.
pub fn read(buf: &mut impl Buf) -> Option<u64> {
    if buf.remaining() < 1 {
        return None;
    }
    let first = buf.chunk()[0];
    let len = 1usize << (first >> 6);
    if buf.remaining() < len {
        return None;
    }
    Some(match len {
        1 => u64::from(buf.get_u8()),
        2 => u64::from(buf.get_u16() & 0x3fff),
        4 => u64::from(buf.get_u32() & 0x3fff_ffff),
        _ => buf.get_u64() & 0x3fff_ffff_ffff_ffff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = BytesMut::new();
        write(&mut buf, v);
        assert_eq!(buf.len(), size(v));
        let mut b = buf.freeze();
        read(&mut b).expect("decodes")
    }

    #[test]
    fn roundtrips_boundaries() {
        for v in [0, 1, 63, 64, 16_383, 16_384, (1 << 30) - 1, 1 << 30, MAX] {
            assert_eq!(roundtrip(v), v, "value {v}");
        }
    }

    #[test]
    fn sizes_match_rfc() {
        assert_eq!(size(63), 1);
        assert_eq!(size(64), 2);
        assert_eq!(size(16_383), 2);
        assert_eq!(size(16_384), 4);
        assert_eq!(size(1 << 30), 8);
    }

    #[test]
    fn rfc_9000_examples() {
        // RFC 9000 A.1 sample encodings.
        let mut buf = BytesMut::new();
        write(&mut buf, 151_288_809_941_952_652);
        assert_eq!(&buf[..], &[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c]);
        buf.clear();
        write(&mut buf, 494_878_333);
        assert_eq!(&buf[..], &[0x9d, 0x7f, 0x3e, 0x7d]);
        buf.clear();
        write(&mut buf, 15_293);
        assert_eq!(&buf[..], &[0x7b, 0xbd]);
        buf.clear();
        write(&mut buf, 37);
        assert_eq!(&buf[..], &[0x25]);
    }

    #[test]
    fn truncated_input_returns_none() {
        let mut buf = BytesMut::new();
        write(&mut buf, 100_000);
        let bytes = buf.freeze();
        let mut short = bytes.slice(..2);
        assert_eq!(read(&mut short), None);
        let mut empty = bytes.slice(..0);
        assert_eq!(read(&mut empty), None);
    }

    #[test]
    #[should_panic(expected = "varint range")]
    fn oversized_value_panics() {
        let mut buf = BytesMut::new();
        write(&mut buf, MAX + 1);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_value_roundtrips(v in 0..=MAX) {
                prop_assert_eq!(roundtrip(v), v);
            }

            #[test]
            fn encoding_is_length_prefixed_consistently(v in 0..=MAX) {
                let mut buf = BytesMut::new();
                write(&mut buf, v);
                // Appending garbage after the varint must not change decode.
                buf.extend_from_slice(&[0xAA; 3]);
                let mut b = buf.freeze();
                prop_assert_eq!(read(&mut b), Some(v));
                prop_assert_eq!(b.remaining(), 3);
            }
        }
    }
}
