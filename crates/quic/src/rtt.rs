//! RTT estimation (RFC 9002 §5, which follows RFC 6298).

use voxel_sim::SimDuration;

/// Smoothed RTT estimator.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: SimDuration,
    latest: SimDuration,
}

/// Initial RTT assumption before any sample (RFC 9002: 333 ms; we use the
/// paper-testbed-scale 100 ms so early PTOs aren't absurdly long).
const INITIAL_RTT: SimDuration = SimDuration::from_millis(100);

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    /// Fresh estimator with no samples.
    pub fn new() -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::from_micros(INITIAL_RTT.as_micros() / 2),
            min_rtt: SimDuration::MAX,
            latest: INITIAL_RTT,
        }
    }

    /// Incorporate a sample: measured RTT minus the peer's reported ACK
    /// delay (the delay is only subtracted when it doesn't take the sample
    /// below the observed minimum, per RFC 9002).
    pub fn update(&mut self, rtt: SimDuration, ack_delay: SimDuration) {
        self.latest = rtt;
        self.min_rtt = self.min_rtt.min(rtt);
        let adjusted = if rtt.saturating_sub(ack_delay) >= self.min_rtt {
            rtt.saturating_sub(ack_delay)
        } else {
            rtt
        };
        match self.srtt {
            None => {
                self.srtt = Some(adjusted);
                self.rttvar = SimDuration::from_micros(adjusted.as_micros() / 2);
            }
            Some(srtt) => {
                let var_sample = if srtt > adjusted {
                    srtt - adjusted
                } else {
                    adjusted - srtt
                };
                self.rttvar = SimDuration::from_micros(
                    (3 * self.rttvar.as_micros() + var_sample.as_micros()) / 4,
                );
                self.srtt = Some(SimDuration::from_micros(
                    (7 * srtt.as_micros() + adjusted.as_micros()) / 8,
                ));
            }
        }
    }

    /// Smoothed RTT (initial guess before any sample).
    pub fn srtt(&self) -> SimDuration {
        self.srtt.unwrap_or(INITIAL_RTT)
    }

    /// RTT variance.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// Minimum observed RTT.
    pub fn min_rtt(&self) -> SimDuration {
        if self.min_rtt == SimDuration::MAX {
            INITIAL_RTT
        } else {
            self.min_rtt
        }
    }

    /// Latest sample.
    pub fn latest(&self) -> SimDuration {
        self.latest
    }

    /// Probe timeout: `srtt + max(4·rttvar, 1ms) + max_ack_delay`.
    pub fn pto(&self, max_ack_delay: SimDuration) -> SimDuration {
        self.srtt()
            + SimDuration::from_micros((4 * self.rttvar.as_micros()).max(1_000))
            + max_ack_delay
    }

    /// Loss-detection time threshold: `9/8 · max(srtt, latest)`.
    pub fn loss_time_threshold(&self) -> SimDuration {
        let base = self.srtt().max(self.latest);
        SimDuration::from_micros(base.as_micros() * 9 / 8)
    }

    /// Whether any real sample has been observed.
    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    #[test]
    fn first_sample_initializes() {
        let mut r = RttEstimator::new();
        assert!(!r.has_sample());
        r.update(MS(60), SimDuration::ZERO);
        assert!(r.has_sample());
        assert_eq!(r.srtt(), MS(60));
        assert_eq!(r.rttvar(), MS(30));
        assert_eq!(r.min_rtt(), MS(60));
    }

    #[test]
    fn smoothing_follows_rfc6298() {
        let mut r = RttEstimator::new();
        r.update(MS(100), SimDuration::ZERO);
        r.update(MS(60), SimDuration::ZERO);
        // srtt = 7/8*100 + 1/8*60 = 95 ms
        assert_eq!(r.srtt().as_micros(), 95_000);
        // rttvar = 3/4*50 + 1/4*40 = 47.5 ms
        assert_eq!(r.rttvar().as_micros(), 47_500);
    }

    #[test]
    fn ack_delay_is_subtracted_when_safe() {
        let mut r = RttEstimator::new();
        r.update(MS(50), SimDuration::ZERO);
        // Sample 80ms with 20ms ack delay → adjusted 60ms ≥ min (50) ⇒ use 60.
        r.update(MS(80), MS(20));
        assert_eq!(r.srtt().as_micros(), (7 * 50_000 + 60_000) / 8);
        // Sample 55ms with 30ms delay → adjusted 25 < min ⇒ use raw 55.
        let before = r.srtt().as_micros();
        r.update(MS(55), MS(30));
        assert_eq!(r.srtt().as_micros(), (7 * before + 55_000) / 8);
    }

    #[test]
    fn min_rtt_tracks_minimum() {
        let mut r = RttEstimator::new();
        for ms in [90, 60, 120, 45, 200] {
            r.update(MS(ms), SimDuration::ZERO);
        }
        assert_eq!(r.min_rtt(), MS(45));
        assert_eq!(r.latest(), MS(200));
    }

    #[test]
    fn pto_exceeds_srtt() {
        let mut r = RttEstimator::new();
        r.update(MS(60), SimDuration::ZERO);
        let pto = r.pto(MS(25));
        assert!(pto > MS(60));
        // srtt 60 + 4*30 var + 25 = 205 ms.
        assert_eq!(pto.as_micros(), 205_000);
    }

    #[test]
    fn loss_threshold_is_nine_eighths() {
        let mut r = RttEstimator::new();
        r.update(MS(80), SimDuration::ZERO);
        assert_eq!(r.loss_time_threshold().as_micros(), 90_000);
    }

    #[test]
    fn defaults_before_samples() {
        let r = RttEstimator::new();
        assert_eq!(r.srtt(), MS(100));
        assert_eq!(r.min_rtt(), MS(100));
        assert!(r.pto(SimDuration::ZERO) >= MS(100));
    }
}
