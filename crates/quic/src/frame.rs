//! QUIC\* frames.
//!
//! A subset of RFC 9000's frame types plus the QUIC\* unreliable-stream
//! frame. Reliability is a property of the *stream* (negotiated at open via
//! the application layer, §4.2), but it is also encoded per STREAM frame so
//! a receiver can handle data for streams it has not seen yet.

use crate::stream::StreamId;
use crate::varint;
use bytes::{Buf, BufMut, Bytes};

/// Frame type byte values.
mod ty {
    pub const PADDING: u8 = 0x00;
    pub const PING: u8 = 0x01;
    pub const ACK: u8 = 0x02;
    pub const MAX_DATA: u8 = 0x10;
    pub const MAX_STREAM_DATA: u8 = 0x11;
    pub const RESET_STREAM: u8 = 0x04;
    pub const CLOSE: u8 = 0x1c;
    // STREAM frames use 0x40 with flag bits:
    //   0x01 fin, 0x02 unreliable.
    pub const STREAM_BASE: u8 = 0x40;
    pub const STREAM_FIN: u8 = 0x01;
    pub const STREAM_UNREL: u8 = 0x02;
    pub const STREAM_MASK: u8 = 0xfc;
}

/// An acknowledgement range `[start, end]` of packet numbers (inclusive).
pub type AckRange = (u64, u64);

/// A QUIC\* frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Padding (ignored; contributes to packet size).
    Padding {
        /// Number of padding bytes.
        len: usize,
    },
    /// Keep-alive / PTO probe.
    Ping,
    /// Acknowledgement: ranges in descending order, `delay` in microseconds.
    Ack {
        /// Ranges of received packet numbers, highest first.
        ranges: Vec<AckRange>,
        /// Time the largest acked packet was held before this ACK, in µs.
        delay_us: u64,
    },
    /// Connection-level flow control limit.
    MaxData {
        /// New limit in bytes.
        limit: u64,
    },
    /// Stream-level flow control limit.
    MaxStreamData {
        /// The stream.
        id: StreamId,
        /// New limit in bytes.
        limit: u64,
    },
    /// Abruptly terminate sending on a stream (doubles as STOP_SENDING:
    /// a receiver sends it to tell the peer to cease transmitting — how the
    /// player implements segment abandonment without tearing down the
    /// connection).
    ResetStream {
        /// The stream.
        id: StreamId,
    },
    /// Stream data — reliable or unreliable per `unreliable`.
    Stream {
        /// The stream.
        id: StreamId,
        /// Offset of `data` within the stream.
        offset: u64,
        /// Final frame of the stream.
        fin: bool,
        /// Whether the stream is a QUIC* unreliable stream.
        unreliable: bool,
        /// Payload.
        data: Bytes,
    },
    /// Connection close.
    Close {
        /// Application error code.
        code: u64,
    },
}

impl Frame {
    /// Whether this frame elicits an acknowledgement.
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(self, Frame::Ack { .. } | Frame::Padding { .. })
    }

    /// Encoded size in bytes.
    pub fn size(&self) -> usize {
        match self {
            Frame::Padding { len } => *len,
            Frame::Ping => 1,
            Frame::Ack { ranges, delay_us } => {
                let mut s = 1 + varint::size(*delay_us) + varint::size(ranges.len() as u64);
                for (a, b) in ranges {
                    s += varint::size(*a) + varint::size(*b);
                }
                s
            }
            Frame::MaxData { limit } => 1 + varint::size(*limit),
            Frame::MaxStreamData { id, limit } => 1 + varint::size(id.0) + varint::size(*limit),
            Frame::ResetStream { id } => 1 + varint::size(id.0),
            Frame::Stream {
                id, offset, data, ..
            } => {
                1 + varint::size(id.0)
                    + varint::size(*offset)
                    + varint::size(data.len() as u64)
                    + data.len()
            }
            Frame::Close { code } => 1 + varint::size(*code),
        }
    }

    /// Append the wire encoding to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Frame::Padding { len } => {
                for _ in 0..*len {
                    buf.put_u8(ty::PADDING);
                }
            }
            Frame::Ping => buf.put_u8(ty::PING),
            Frame::Ack { ranges, delay_us } => {
                buf.put_u8(ty::ACK);
                varint::write(buf, *delay_us);
                varint::write(buf, ranges.len() as u64);
                for (a, b) in ranges {
                    varint::write(buf, *a);
                    varint::write(buf, *b);
                }
            }
            Frame::MaxData { limit } => {
                buf.put_u8(ty::MAX_DATA);
                varint::write(buf, *limit);
            }
            Frame::MaxStreamData { id, limit } => {
                buf.put_u8(ty::MAX_STREAM_DATA);
                varint::write(buf, id.0);
                varint::write(buf, *limit);
            }
            Frame::ResetStream { id } => {
                buf.put_u8(ty::RESET_STREAM);
                varint::write(buf, id.0);
            }
            Frame::Stream {
                id,
                offset,
                fin,
                unreliable,
                data,
            } => {
                let mut t = ty::STREAM_BASE;
                if *fin {
                    t |= ty::STREAM_FIN;
                }
                if *unreliable {
                    t |= ty::STREAM_UNREL;
                }
                buf.put_u8(t);
                varint::write(buf, id.0);
                varint::write(buf, *offset);
                varint::write(buf, data.len() as u64);
                buf.put_slice(data);
            }
            Frame::Close { code } => {
                buf.put_u8(ty::CLOSE);
                varint::write(buf, *code);
            }
        }
    }

    /// Decode one frame from the front of `buf`; `None` on truncation or an
    /// unknown type.
    pub fn decode(buf: &mut Bytes) -> Option<Frame> {
        if buf.remaining() == 0 {
            return None;
        }
        let t = buf.chunk()[0];
        if t & ty::STREAM_MASK == ty::STREAM_BASE & ty::STREAM_MASK && t >= ty::STREAM_BASE {
            buf.advance(1);
            let id = StreamId(varint::read(buf)?);
            let offset = varint::read(buf)?;
            let len = varint::read(buf)? as usize;
            if buf.remaining() < len {
                return None;
            }
            let data = buf.split_to(len);
            return Some(Frame::Stream {
                id,
                offset,
                fin: t & ty::STREAM_FIN != 0,
                unreliable: t & ty::STREAM_UNREL != 0,
                data,
            });
        }
        buf.advance(1);
        match t {
            ty::PADDING => {
                // Coalesce a run of padding bytes.
                let mut len = 1;
                while buf.remaining() > 0 && buf.chunk()[0] == ty::PADDING {
                    buf.advance(1);
                    len += 1;
                }
                Some(Frame::Padding { len })
            }
            ty::PING => Some(Frame::Ping),
            ty::ACK => {
                let delay_us = varint::read(buf)?;
                let n = varint::read(buf)? as usize;
                if n > 1024 {
                    return None; // sanity bound
                }
                let mut ranges = Vec::with_capacity(n);
                for _ in 0..n {
                    let a = varint::read(buf)?;
                    let b = varint::read(buf)?;
                    ranges.push((a, b));
                }
                Some(Frame::Ack { ranges, delay_us })
            }
            ty::MAX_DATA => Some(Frame::MaxData {
                limit: varint::read(buf)?,
            }),
            ty::MAX_STREAM_DATA => {
                let id = StreamId(varint::read(buf)?);
                let limit = varint::read(buf)?;
                Some(Frame::MaxStreamData { id, limit })
            }
            ty::RESET_STREAM => Some(Frame::ResetStream {
                id: StreamId(varint::read(buf)?),
            }),
            ty::CLOSE => Some(Frame::Close {
                code: varint::read(buf)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(f: Frame) {
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), f.size(), "size() mismatch for {f:?}");
        let mut b = buf.freeze();
        let decoded = Frame::decode(&mut b).expect("decodes");
        assert_eq!(decoded, f);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn roundtrips_all_frame_kinds() {
        roundtrip(Frame::Ping);
        roundtrip(Frame::Padding { len: 7 });
        roundtrip(Frame::Ack {
            ranges: vec![(90, 100), (5, 80), (0, 2)],
            delay_us: 25_000,
        });
        roundtrip(Frame::MaxData { limit: 1 << 24 });
        roundtrip(Frame::MaxStreamData {
            id: StreamId(42),
            limit: 77_777,
        });
        roundtrip(Frame::Close { code: 3 });
        roundtrip(Frame::ResetStream { id: StreamId(77) });
        for (fin, unreliable) in [(false, false), (true, false), (false, true), (true, true)] {
            roundtrip(Frame::Stream {
                id: StreamId(8),
                offset: 123_456,
                fin,
                unreliable,
                data: Bytes::from_static(b"hello, voxel"),
            });
        }
    }

    #[test]
    fn empty_stream_frame_roundtrips() {
        roundtrip(Frame::Stream {
            id: StreamId(0),
            offset: 0,
            fin: true,
            unreliable: false,
            data: Bytes::new(),
        });
    }

    #[test]
    fn multiple_frames_decode_in_sequence() {
        let frames = vec![
            Frame::Ping,
            Frame::Stream {
                id: StreamId(2),
                offset: 10,
                fin: false,
                unreliable: true,
                data: Bytes::from_static(b"abc"),
            },
            Frame::Ack {
                ranges: vec![(0, 9)],
                delay_us: 0,
            },
        ];
        let mut buf = BytesMut::new();
        for f in &frames {
            f.encode(&mut buf);
        }
        let mut b = buf.freeze();
        for f in &frames {
            assert_eq!(&Frame::decode(&mut b).unwrap(), f);
        }
        assert!(Frame::decode(&mut b).is_none());
    }

    #[test]
    fn ack_eliciting_classification() {
        assert!(Frame::Ping.is_ack_eliciting());
        assert!(!Frame::Ack {
            ranges: vec![],
            delay_us: 0
        }
        .is_ack_eliciting());
        assert!(!Frame::Padding { len: 1 }.is_ack_eliciting());
        assert!(Frame::MaxData { limit: 0 }.is_ack_eliciting());
    }

    #[test]
    fn truncated_stream_frame_is_rejected() {
        let f = Frame::Stream {
            id: StreamId(1),
            offset: 0,
            fin: false,
            unreliable: false,
            data: Bytes::from_static(b"0123456789"),
        };
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let whole = buf.freeze();
        let mut cut = whole.slice(..whole.len() - 3);
        assert!(Frame::decode(&mut cut).is_none());
    }

    #[test]
    fn unknown_type_is_rejected() {
        let mut b = Bytes::from_static(&[0x3f]);
        assert!(Frame::decode(&mut b).is_none());
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn stream_frames_roundtrip(
                id in 0u64..1_000_000,
                offset in 0u64..varint::MAX,
                fin in proptest::bool::ANY,
                unreliable in proptest::bool::ANY,
                data in proptest::collection::vec(proptest::num::u8::ANY, 0..2000),
            ) {
                roundtrip(Frame::Stream {
                    id: StreamId(id),
                    offset,
                    fin,
                    unreliable,
                    data: Bytes::from(data),
                });
            }

            #[test]
            fn ack_frames_roundtrip(
                ranges in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000), 0..32),
                delay in 0u64..10_000_000,
            ) {
                roundtrip(Frame::Ack { ranges, delay_us: delay });
            }
        }
    }
}
