//! The QUIC\* connection endpoint.
//!
//! Sans-IO, in the style of `quinn-proto`: the owner feeds it datagrams
//! ([`Connection::on_datagram`]), drains outgoing packets
//! ([`Connection::poll_transmit`]), arms a timer ([`Connection::next_timeout`]
//! / [`Connection::on_timeout`]) and consumes application events
//! ([`Connection::poll_event`]). In this repository the owner is the
//! discrete-event loop in `voxel-core`; the same state machine could be
//! driven by real UDP sockets.
//!
//! The connection is assumed established (the paper's experiments measure
//! steady-state streaming; handshake latency is identical for QUIC and
//! QUIC\* and cancels out of every comparison).

use crate::ack::{AckTracker, MAX_ACK_DELAY};
use crate::cc::{CcKind, CongestionControl};
use crate::frame::Frame;
use crate::loss::{LossDetector, SentChunk, SentPacket, TimeoutOutcome};
use crate::packet::{Packet, MAX_PAYLOAD};
use crate::rtt::RttEstimator;
use crate::stream::{RecvStream, Reliability, SendStream, StreamId};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use voxel_sim::{SimDuration, SimTime};
use voxel_trace::{trace_event, Layer, Tracer};

/// Which side of the connection this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Client (opens even-numbered streams).
    Client,
    /// Server (opens odd-numbered streams).
    Server,
}

/// Tunables.
#[derive(Debug, Clone)]
pub struct ConnectionConfig {
    /// Maximum datagram payload.
    pub mss: usize,
    /// Connection-level flow control window granted to the peer.
    pub max_data: u64,
    /// Consecutive PTOs before declaring persistent congestion.
    pub persistent_congestion_ptos: u32,
    /// Congestion-control algorithm.
    pub cc: CcKind,
}

impl Default for ConnectionConfig {
    fn default() -> Self {
        ConnectionConfig {
            mss: MAX_PAYLOAD,
            max_data: 256 * 1024 * 1024,
            persistent_congestion_ptos: 7,
            cc: CcKind::Cubic,
        }
    }
}

/// Application-visible connection events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The peer opened a stream.
    StreamOpened(StreamId, Reliability),
    /// New data is readable on a stream.
    StreamReadable(StreamId),
    /// A receive stream saw fin and (for reliable streams) all data.
    StreamFinished(StreamId),
    /// QUIC\* loss report: these sent ranges of an unreliable stream were
    /// lost and will NOT be retransmitted by the transport (§4.2 — the
    /// application may selectively re-request them).
    UnreliableLoss {
        /// The stream.
        id: StreamId,
        /// Lost `[start, end)` ranges, stream offsets.
        ranges: Vec<(u64, u64)>,
    },
    /// The peer abandoned a stream (RESET_STREAM / STOP_SENDING).
    StreamReset(StreamId),
    /// The peer closed the connection.
    Closed {
        /// Application error code.
        code: u64,
    },
}

/// Transport statistics (per connection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Packets sent.
    pub packets_sent: u64,
    /// Packets declared lost.
    pub packets_lost: u64,
    /// Loss events (bursts of packets declared lost together — what CUBIC
    /// reacts to once, however many packets the burst contained).
    pub loss_events: u64,
    /// Ack-eliciting bytes sent (wire).
    pub bytes_sent: u64,
    /// Stream payload bytes retransmitted (reliable streams).
    pub bytes_retransmitted: u64,
    /// PTO events.
    pub ptos: u64,
    /// Well-formed packets received (before duplicate filtering).
    pub packets_received: u64,
    /// Received packets discarded as duplicates.
    pub packets_duplicate: u64,
    /// Received packets that arrived below the largest packet number seen
    /// (out-of-order delivery — what the testkit's reorder fault provokes).
    pub packets_reordered: u64,
}

/// A QUIC\* connection endpoint.
pub struct Connection {
    role: Role,
    config: ConnectionConfig,
    next_pkt_num: u64,
    next_stream: u64,
    send_streams: BTreeMap<StreamId, SendStream>,
    recv_streams: BTreeMap<StreamId, RecvStream>,
    ack: AckTracker,
    loss: LossDetector,
    rtt: RttEstimator,
    cc: CongestionControl,
    events: VecDeque<Event>,
    /// Peer-granted connection flow limit / our consumption of it.
    max_data_remote: u64,
    data_sent: u64,
    /// Flow limit we granted / peer's consumption / next update threshold.
    max_data_local: u64,
    data_received: u64,
    /// Pending control frames (flow-control updates, close).
    control: VecDeque<Frame>,
    /// Probe data to send regardless of cwnd (after a PTO).
    probe_pending: bool,
    /// Earliest time the pacer allows the next data packet (QUIC paces at
    /// ~1.25 x cwnd/SRTT so congestion-window-sized bursts don't slam
    /// shallow droptail queues; pure-ACK/control packets are exempt).
    pace_next: SimTime,
    closed: bool,
    stats: ConnStats,
    tracer: Tracer,
}

impl Connection {
    /// Create an endpoint.
    pub fn new(role: Role, config: ConnectionConfig) -> Connection {
        let max_data_local = config.max_data;
        let mut loss = LossDetector::new();
        loss.set_rate_sampling(config.cc.wants_rate_samples());
        Connection {
            role,
            cc: CongestionControl::new(config.cc, config.mss),
            config,
            next_pkt_num: 0,
            next_stream: 0,
            send_streams: BTreeMap::new(),
            recv_streams: BTreeMap::new(),
            ack: AckTracker::new(),
            loss,
            rtt: RttEstimator::new(),
            events: VecDeque::new(),
            max_data_remote: max_data_local,
            data_sent: 0,
            max_data_local,
            data_received: 0,
            control: VecDeque::new(),
            probe_pending: false,
            pace_next: SimTime::ZERO,
            closed: false,
            stats: ConnStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer; transport events and metrics flow through it from
    /// now on. A disabled tracer (the default) costs one branch per site.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Endpoint with default configuration.
    pub fn with_defaults(role: Role) -> Connection {
        Self::new(role, ConnectionConfig::default())
    }

    /// This endpoint's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Transport statistics.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> SimDuration {
        self.rtt.srtt()
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cc.cwnd()
    }

    /// Whether the connection has been closed (locally or by the peer).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    // ------------------------------------------------------------------
    // Application API
    // ------------------------------------------------------------------

    /// Open a new stream of the given reliability class.
    pub fn open_stream(&mut self, reliability: Reliability) -> StreamId {
        let parity = match self.role {
            Role::Client => 0,
            Role::Server => 1,
        };
        let id = StreamId(self.next_stream * 2 + parity);
        self.next_stream += 1;
        self.send_streams
            .insert(id, SendStream::new(id, reliability));
        id
    }

    /// Open the sending half of a stream the *peer* initiated — how a
    /// server replies on the stream that carried the request (HTTP
    /// semantics over bidirectional streams).
    pub fn open_reply_stream(&mut self, id: StreamId, reliability: Reliability) {
        let prev = self
            .send_streams
            .insert(id, SendStream::new(id, reliability));
        debug_assert!(prev.is_none(), "reply stream {id} already open");
    }

    /// Abandon sending on a stream: discard unsent/retransmittable data and
    /// tell the peer to do the same. Used for segment abandonment (§4.3).
    pub fn reset_stream(&mut self, id: StreamId) {
        self.send_streams.remove(&id);
        self.control.push_back(Frame::ResetStream { id });
    }

    /// Write data on a locally opened stream. Writes to a stream this
    /// endpoint never opened are a caller bug; they are dropped rather
    /// than crashing a whole survey run.
    pub fn send(&mut self, id: StreamId, data: &[u8]) {
        debug_assert!(self.send_streams.contains_key(&id), "unknown send stream");
        if let Some(s) = self.send_streams.get_mut(&id) {
            s.write(data);
        }
    }

    /// Finish a locally opened stream (no-op on unknown ids, as `send`).
    pub fn finish(&mut self, id: StreamId) {
        debug_assert!(self.send_streams.contains_key(&id), "unknown send stream");
        if let Some(s) = self.send_streams.get_mut(&id) {
            s.finish();
        }
    }

    /// Access a receive stream (for reads / missing-range queries).
    pub fn recv_stream(&mut self, id: StreamId) -> Option<&mut RecvStream> {
        self.recv_streams.get_mut(&id)
    }

    /// Access a send stream (e.g. to check completion).
    pub fn send_stream(&mut self, id: StreamId) -> Option<&mut SendStream> {
        self.send_streams.get_mut(&id)
    }

    /// Close the connection with an application error code.
    pub fn close(&mut self, code: u64) {
        if !self.closed {
            self.control.push_back(Frame::Close { code });
        }
    }

    /// Next application event, if any.
    pub fn poll_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    // ------------------------------------------------------------------
    // Network ingress
    // ------------------------------------------------------------------

    /// Process an incoming datagram.
    pub fn on_datagram(&mut self, now: SimTime, data: Bytes) {
        let _obs = voxel_obs::span!("quic.on_datagram");
        let Some(packet) = Packet::decode(data) else {
            return; // malformed: drop, as a real endpoint would
        };
        self.stats.packets_received += 1;
        if self.ack.largest_seen().is_some_and(|l| packet.pkt_num < l) {
            self.stats.packets_reordered += 1;
        }
        let eliciting = packet.is_ack_eliciting();
        if !self.ack.on_packet(packet.pkt_num, now, eliciting) {
            self.stats.packets_duplicate += 1;
            return; // duplicate
        }
        for frame in packet.frames {
            self.on_frame(now, frame);
        }
        self.debug_invariants();
    }

    /// Full structural audit of the connection (DESIGN.md §10): flow
    /// control within limits, congestion window above the floor both
    /// controllers maintain, stream offsets monotone and in-buffer, and
    /// every ACK/loss range set sorted and disjoint. Cheap enough to run
    /// at event-loop boundaries; the `paranoid` feature does exactly that
    /// via [`Connection::debug_invariants`].
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.data_sent > self.max_data_remote {
            return Err(format!(
                "flow control violated: sent {} > remote limit {}",
                self.data_sent, self.max_data_remote
            ));
        }
        if self.data_received > self.max_data_local {
            return Err(format!(
                "flow control violated: received {} > local limit {}",
                self.data_received, self.max_data_local
            ));
        }
        let floor = 2 * self.config.mss;
        if self.cc.cwnd() < floor {
            return Err(format!(
                "cwnd {} below the {floor}-byte floor",
                self.cc.cwnd()
            ));
        }
        for (id, s) in &self.send_streams {
            s.check_invariants()
                .map_err(|e| format!("send stream {id}: {e}"))?;
        }
        for (id, r) in &self.recv_streams {
            r.check_invariants()
                .map_err(|e| format!("recv stream {id}: {e}"))?;
        }
        self.ack
            .check_invariants()
            .map_err(|e| format!("ack tracker: {e}"))?;
        self.loss
            .check_invariants()
            .map_err(|e| format!("loss detector: {e}"))?;
        Ok(())
    }

    /// Invariant audit hook, compiled to a no-op unless the `paranoid`
    /// feature is on.
    #[inline]
    fn debug_invariants(&self) {
        #[cfg(feature = "paranoid")]
        if let Err(e) = self.check_invariants() {
            // lint: allow(panic) the paranoid layer is intentionally fatal on corruption
            panic!("quic::Connection invariant violated ({:?}): {e}", self.role);
        }
    }

    fn on_frame(&mut self, now: SimTime, frame: Frame) {
        match frame {
            Frame::Padding { .. } | Frame::Ping => {}
            Frame::Stream {
                id,
                offset,
                fin,
                unreliable,
                data,
            } => {
                let reliability = if unreliable {
                    Reliability::Unreliable
                } else {
                    Reliability::Reliable
                };
                let stream = self.recv_streams.entry(id).or_insert_with(|| {
                    self.events.push_back(Event::StreamOpened(id, reliability));
                    RecvStream::new(id, reliability)
                });
                let before = stream.bytes_received();
                let had_fin = stream.final_len().is_some();
                stream.on_data(offset, data, fin);
                let gained = stream.bytes_received() - before;
                // A bare fin (zero new bytes — e.g. the resent fin marker of
                // an unreliable stream after loss) must still wake the
                // application: it changes the stream's state.
                if gained > 0 || (fin && !had_fin) {
                    self.data_received += gained;
                    self.events.push_back(Event::StreamReadable(id));
                }
                if stream.is_complete() {
                    self.events.push_back(Event::StreamFinished(id));
                }
                // Replenish the peer's connection window once half-consumed.
                if self.data_received * 2 > self.max_data_local {
                    self.max_data_local += self.config.max_data;
                    self.control.push_back(Frame::MaxData {
                        limit: self.max_data_local,
                    });
                }
            }
            Frame::Ack { ranges, delay_us } => {
                let outcome =
                    self.loss
                        .on_ack(now, &ranges, SimDuration::from_micros(delay_us), &self.rtt);
                if let Some((sample, delay)) = outcome.rtt_sample {
                    self.rtt.update(sample, delay);
                }
                // Model controllers (BBR) consume the delivery-rate
                // samples before the per-packet window bookkeeping.
                for s in &outcome.rate_samples {
                    self.cc.on_rate_sample(now, *s);
                }
                for pkt in &outcome.acked {
                    self.cc
                        .on_ack(now, pkt.wire_bytes, self.rtt.srtt(), self.rtt.latest());
                    for c in &pkt.chunks {
                        if let Some(s) = self.send_streams.get_mut(&c.id) {
                            s.on_chunk_acked(c.offset, c.len, c.fin);
                        }
                    }
                }
                if self.tracer.enabled() && !outcome.acked.is_empty() {
                    let bytes: usize = outcome.acked.iter().map(|p| p.wire_bytes).sum();
                    let largest = outcome.acked.iter().map(|p| p.pkt_num).max().unwrap_or(0);
                    self.tracer
                        .count("quic.packets_acked", outcome.acked.len() as u64);
                    self.tracer
                        .observe("quic.srtt_us", self.rtt.srtt().as_micros());
                    self.tracer
                        .observe("quic.cwnd_bytes", self.cc.cwnd() as u64);
                    if let Some(bw) = self.cc.btl_bw_estimate() {
                        self.tracer.observe("quic.btlbw_bps", bw as u64);
                    }
                    trace_event!(
                        self.tracer,
                        now,
                        Layer::Quic,
                        "pkt_acked",
                        "largest" = largest,
                        "pkts" = outcome.acked.len(),
                        "bytes" = bytes,
                        "cwnd" = self.cc.cwnd(),
                        // 0 encodes "no threshold yet" (before the first
                        // loss), keeping the JSON in safe-integer range.
                        "ssthresh" = {
                            let s = self.cc.ssthresh();
                            if s == u64::MAX {
                                0
                            } else {
                                s
                            }
                        },
                        "srtt_us" = self.rtt.srtt().as_micros(),
                    );
                }
                self.handle_lost(now, outcome.lost);
                // Garbage-collect fully acknowledged reliable streams (a
                // session opens hundreds; scanning completed ones on every
                // send would be quadratic). Unreliable streams stay: their
                // late loss reports must still reach the application.
                self.send_streams
                    .retain(|_, s| !(s.reliability == Reliability::Reliable && s.is_complete()));
            }
            Frame::MaxData { limit } => {
                self.max_data_remote = self.max_data_remote.max(limit);
            }
            Frame::MaxStreamData { id, limit } => {
                if let Some(s) = self.send_streams.get_mut(&id) {
                    s.set_max_stream_data(limit);
                }
            }
            Frame::ResetStream { id } => {
                // STOP_SENDING semantics: the peer no longer wants this
                // stream — stop transmitting it.
                self.send_streams.remove(&id);
                self.events.push_back(Event::StreamReset(id));
            }
            Frame::Close { code } => {
                self.closed = true;
                self.events.push_back(Event::Closed { code });
            }
        }
    }

    fn handle_lost(&mut self, now: SimTime, lost: Vec<SentPacket>) {
        let Some(largest_lost) = lost.iter().map(|p| p.pkt_num).max() else {
            return;
        };
        self.stats.packets_lost += lost.len() as u64;
        self.stats.loss_events += 1;
        let largest_sent = self.next_pkt_num.saturating_sub(1);
        let bytes: usize = lost.iter().map(|p| p.wire_bytes).sum();
        self.cc.on_loss(now, largest_sent, largest_lost, bytes);
        if self.tracer.enabled() {
            self.tracer.count("quic.loss_events", 1);
            self.tracer.count("quic.packets_lost", lost.len() as u64);
            self.tracer
                .observe("quic.loss_burst_pkts", lost.len() as u64);
            trace_event!(
                self.tracer,
                now,
                Layer::Quic,
                "loss",
                "pkts" = lost.len(),
                "bytes" = bytes,
                "largest_lost" = largest_lost,
                "cwnd_after" = self.cc.cwnd(),
            );
        }

        let mut unreliable_reports: BTreeMap<StreamId, Vec<(u64, u64)>> = BTreeMap::new();
        for pkt in lost {
            for c in pkt.chunks {
                if let Some(s) = self.send_streams.get_mut(&c.id) {
                    s.on_chunk_lost(c.offset, c.len, c.fin);
                    match c.unreliable {
                        false => self.stats.bytes_retransmitted += c.len as u64,
                        true => {
                            for r in s.take_loss_reports() {
                                unreliable_reports.entry(c.id).or_default().push(r);
                            }
                        }
                    }
                }
            }
        }
        for (id, ranges) in unreliable_reports {
            if self.tracer.enabled() {
                let lost_bytes: u64 = ranges.iter().map(|&(s, e)| e - s).sum();
                self.tracer.count("quic.unreliable_loss_reports", 1);
                trace_event!(
                    self.tracer,
                    now,
                    Layer::Quic,
                    "unreliable_loss",
                    "stream" = id.0,
                    "ranges" = ranges.len(),
                    "bytes" = lost_bytes,
                );
            }
            self.events.push_back(Event::UnreliableLoss { id, ranges });
        }
    }

    // ------------------------------------------------------------------
    // Network egress
    // ------------------------------------------------------------------

    /// Produce the next outgoing packet, or `None` if there is nothing to
    /// send right now (congestion-blocked, flow-blocked, or idle).
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Packet> {
        let _obs = voxel_obs::span!("quic.poll_transmit");
        self.debug_invariants();
        if self.closed {
            return None;
        }
        let mut frames: Vec<Frame> = Vec::new();
        let mut budget = self.config.mss;

        // Control frames first (cheap, rare).
        while let Some(f) = self.control.front() {
            if f.size() > budget {
                break;
            }
            let Some(f) = self.control.pop_front() else {
                break;
            };
            if let Frame::Close { .. } = f {
                self.closed = true;
            }
            budget -= f.size();
            frames.push(f);
        }

        // Piggyback / emit an ACK when one is due.
        if self.ack.should_ack(now) {
            if let Some((ranges, delay_us)) = self.ack.take_ack(now) {
                let f = Frame::Ack { ranges, delay_us };
                if f.size() <= budget {
                    budget -= f.size();
                    frames.push(f);
                }
            }
        }

        // Stream data: probe data bypasses the congestion window once.
        // The pacer gates data (not ACK/control) until `pace_next`, except
        // small post-idle bursts (in-flight below the initial window).
        let bypass_cc = std::mem::take(&mut self.probe_pending);
        let paced_out =
            !bypass_cc && now < self.pace_next && self.cc.in_flight() >= 10 * self.config.mss;
        let mut chunks: Vec<SentChunk> = Vec::new();
        #[allow(clippy::while_immutable_condition)]
        while !paced_out {
            // Leave room for the stream-frame header.
            const HDR: usize = 16;
            if budget <= HDR {
                break;
            }
            if !bypass_cc && !self.cc.can_send(budget.min(self.config.mss)) {
                break;
            }
            let flow_left = self.max_data_remote.saturating_sub(self.data_sent);
            if flow_left == 0 {
                break;
            }
            let max_chunk = (budget - HDR).min(flow_left as usize);
            let Some((id, (offset, data, fin))) = self
                .send_streams
                .iter_mut()
                .find(|(_, s)| s.wants_to_send())
                .and_then(|(&id, s)| s.next_chunk(max_chunk).map(|c| (id, c)))
            else {
                break;
            };
            let unreliable = matches!(self.send_streams[&id].reliability, Reliability::Unreliable);
            self.data_sent += data.len() as u64;
            chunks.push(SentChunk {
                id,
                offset,
                len: data.len(),
                fin,
                unreliable,
            });
            let f = Frame::Stream {
                id,
                offset,
                fin,
                unreliable,
                data,
            };
            budget = budget.saturating_sub(f.size());
            frames.push(f);
            if bypass_cc {
                break; // a single probe chunk
            }
        }

        // A bare PTO probe with no data to carry: ping.
        if bypass_cc && chunks.is_empty() {
            frames.push(Frame::Ping);
        }

        if frames.is_empty() {
            return None;
        }

        let pkt = Packet::new(self.next_pkt_num, frames);
        self.next_pkt_num += 1;
        self.stats.packets_sent += 1;
        if self.tracer.enabled() {
            self.tracer.count("quic.packets_sent", 1);
            self.tracer
                .observe("quic.cwnd_bytes", self.cc.cwnd() as u64);
            self.tracer
                .observe("quic.pkt_bytes", pkt.wire_size() as u64);
            trace_event!(
                self.tracer,
                now,
                Layer::Quic,
                "pkt_sent",
                "pn" = pkt.pkt_num,
                "bytes" = pkt.wire_size(),
                "cwnd" = self.cc.cwnd(),
                "in_flight" = self.cc.in_flight(),
                "retx" = !chunks.is_empty() && bypass_cc,
            );
        }
        if !chunks.is_empty() {
            // Pacing rate: the controller's model rate when it has one
            // (BBR: pacing_gain × BtlBw), else 1.25 x cwnd per SRTT;
            // floored at 1 Mbps either way.
            let rate_bps = self.cc.pacing_rate_bps().unwrap_or_else(|| {
                (self.cc.cwnd() as f64 * 8.0 / self.rtt.srtt().as_secs_f64().max(1e-3)) * 1.25
            });
            let gap = SimDuration::serialization(pkt.wire_size() as u64, rate_bps.max(1e6));
            self.pace_next = self.pace_next.max(now) + gap;
        }
        if pkt.is_ack_eliciting() {
            let wire = pkt.wire_size();
            self.stats.bytes_sent += wire as u64;
            self.cc.on_sent(wire);
            self.loss.on_sent(SentPacket {
                pkt_num: pkt.pkt_num,
                sent_at: now,
                wire_bytes: wire,
                ack_eliciting: true,
                delivered_at_send: self.loss.delivered_bytes(),
                chunks,
            });
        }
        Some(pkt)
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// The earliest deadline at which [`Connection::on_timeout`] must run.
    /// A closed connection has no timers: it can neither transmit ACKs nor
    /// retransmit, so keeping deadlines armed would just spin the caller.
    /// Includes the pacer's release time when data is waiting to be sent.
    pub fn next_timeout(&self) -> Option<SimTime> {
        if self.closed {
            return None;
        }
        let loss = self.loss.next_timeout(&self.rtt, MAX_ACK_DELAY);
        let ack = self.ack.deadline();
        let pace = (self.send_streams.values().any(|s| s.wants_to_send())
            && self.cc.can_send(self.config.mss))
        .then_some(self.pace_next);
        [loss, ack, pace].into_iter().flatten().min()
    }

    /// Handle an expired timer.
    pub fn on_timeout(&mut self, now: SimTime) {
        let _obs = voxel_obs::span!("quic.on_timeout");
        // Delayed-ACK deadline: nothing to do here — poll_transmit emits the
        // ACK because `should_ack(now)` is true.
        if self
            .loss
            .next_timeout(&self.rtt, MAX_ACK_DELAY)
            .is_some_and(|t| t <= now)
        {
            match self.loss.on_timeout(now, &self.rtt) {
                TimeoutOutcome::Lost(lost) => self.handle_lost(now, lost),
                TimeoutOutcome::Pto { count, probe } => {
                    self.stats.ptos += 1;
                    if self.tracer.enabled() {
                        self.tracer.count("quic.ptos", 1);
                        trace_event!(
                            self.tracer,
                            now,
                            Layer::Quic,
                            "pto",
                            "count" = count,
                            "cwnd" = self.cc.cwnd(),
                        );
                    }
                    if count >= self.config.persistent_congestion_ptos {
                        self.cc.on_persistent_congestion();
                    }
                    // Re-arm a probe: retransmittable data from the oldest
                    // outstanding packet, or a ping.
                    if let Some(pkt) = probe {
                        for c in &pkt.chunks {
                            if !c.unreliable {
                                if let Some(s) = self.send_streams.get_mut(&c.id) {
                                    s.on_chunk_lost(c.offset, c.len, c.fin);
                                }
                            }
                        }
                    }
                    self.probe_pending = true;
                }
            }
        }
        self.debug_invariants();
    }

    /// Whether any stream still has data to send or awaiting ack.
    pub fn is_idle(&self) -> bool {
        self.send_streams
            .values()
            .all(|s| s.is_complete() || s.is_drained())
            && self.loss.outstanding() == 0
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("role", &self.role)
            .field("pkt_num", &self.next_pkt_num)
            .field("streams", &self.send_streams.len())
            .field("cwnd", &self.cc.cwnd())
            .field("closed", &self.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive two connections over a lossless, fixed-delay pipe until idle.
    /// `drop_filter(direction, pkt_num)` returns true to drop a packet;
    /// direction 0 = a→b, 1 = b→a.
    fn run_pipe(
        a: &mut Connection,
        b: &mut Connection,
        mut drop_filter: impl FnMut(usize, u64) -> bool,
        until: SimTime,
    ) {
        let delay = SimDuration::from_millis(30);
        let mut queue = voxel_sim::EventQueue::<(usize, Bytes)>::new();
        let mut now = SimTime::ZERO;
        loop {
            // Drain transmissions from both sides.
            loop {
                let mut progressed = false;
                while let Some(p) = a.poll_transmit(now) {
                    if !drop_filter(0, p.pkt_num) {
                        queue.schedule(now + delay, (1, p.encode()));
                    }
                    progressed = true;
                }
                while let Some(p) = b.poll_transmit(now) {
                    if !drop_filter(1, p.pkt_num) {
                        queue.schedule(now + delay, (0, p.encode()));
                    }
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            // Next event: earliest of queue delivery / either timer.
            let timer_a = a.next_timeout();
            let timer_b = b.next_timeout();
            let next = [queue.peek_time(), timer_a, timer_b]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else { break };
            if next > until {
                break;
            }
            now = next;
            if queue.peek_time() == Some(now) {
                let ev = queue.pop().expect("peeked");
                let (dir, data) = ev.event;
                match dir {
                    0 => a.on_datagram(now, data),
                    _ => b.on_datagram(now, data),
                }
            }
            if timer_a.is_some_and(|t| t <= now) {
                a.on_timeout(now);
            }
            if timer_b.is_some_and(|t| t <= now) {
                b.on_timeout(now);
            }
        }
    }

    fn read_all(conn: &mut Connection, id: StreamId) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(rs) = conn.recv_stream(id) {
            while let Some(b) = rs.read() {
                out.extend_from_slice(&b);
            }
        }
        out
    }

    #[test]
    fn reliable_transfer_without_loss() {
        let mut server = Connection::with_defaults(Role::Server);
        let mut client = Connection::with_defaults(Role::Client);
        let id = server.open_stream(Reliability::Reliable);
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 256) as u8).collect();
        server.send(id, &payload);
        server.finish(id);
        run_pipe(
            &mut server,
            &mut client,
            |_, _| false,
            SimTime::from_secs(30),
        );
        assert_eq!(read_all(&mut client, id), payload);
        assert!(client
            .recv_stream(id)
            .map(|s| s.is_complete())
            .unwrap_or(false));
        assert_eq!(server.stats().packets_lost, 0);
    }

    #[test]
    fn reliable_transfer_recovers_from_loss() {
        let mut server = Connection::with_defaults(Role::Server);
        let mut client = Connection::with_defaults(Role::Client);
        let id = server.open_stream(Reliability::Reliable);
        let payload: Vec<u8> = (0..80_000u32).map(|i| (i * 7 % 256) as u8).collect();
        server.send(id, &payload);
        server.finish(id);
        // Drop every 9th server packet.
        run_pipe(
            &mut server,
            &mut client,
            |dir, pn| dir == 0 && pn % 9 == 3,
            SimTime::from_secs(60),
        );
        assert_eq!(read_all(&mut client, id), payload);
        assert!(server.stats().packets_lost > 0);
        assert!(server.stats().bytes_retransmitted > 0);
    }

    #[test]
    fn unreliable_stream_reports_losses_and_never_retransmits() {
        let mut server = Connection::with_defaults(Role::Server);
        let mut client = Connection::with_defaults(Role::Client);
        let id = server.open_stream(Reliability::Unreliable);
        let payload = vec![0x5au8; 40_000];
        server.send(id, &payload);
        server.finish(id);
        run_pipe(
            &mut server,
            &mut client,
            |dir, pn| dir == 0 && (4..8).contains(&pn),
            SimTime::from_secs(60),
        );
        // Client got fin and knows the total length, with holes.
        let (received, missing, complete) = {
            let rs = client.recv_stream(id).expect("stream exists");
            (
                rs.bytes_received(),
                rs.missing_ranges(None),
                rs.is_complete(),
            )
        };
        assert_eq!(
            missing.iter().map(|(a, b)| b - a).sum::<u64>() + received,
            40_000
        );
        assert!(!complete);
        assert!(!missing.is_empty(), "holes must be visible");
        // Server emitted UnreliableLoss events covering the same bytes.
        let mut reported = 0u64;
        while let Some(e) = server.poll_event() {
            if let Event::UnreliableLoss { id: eid, ranges } = e {
                assert_eq!(eid, id);
                reported += ranges.iter().map(|(a, b)| b - a).sum::<u64>();
            }
        }
        assert!(reported > 0);
        assert_eq!(server.stats().bytes_retransmitted, 0);
    }

    #[test]
    fn stream_ids_have_role_parity() {
        let mut c = Connection::with_defaults(Role::Client);
        let mut s = Connection::with_defaults(Role::Server);
        assert_eq!(c.open_stream(Reliability::Reliable), StreamId(0));
        assert_eq!(c.open_stream(Reliability::Reliable), StreamId(2));
        assert_eq!(s.open_stream(Reliability::Reliable), StreamId(1));
        assert_eq!(s.open_stream(Reliability::Unreliable), StreamId(3));
    }

    #[test]
    fn receiver_emits_open_readable_finished_events() {
        let mut server = Connection::with_defaults(Role::Server);
        let mut client = Connection::with_defaults(Role::Client);
        let id = server.open_stream(Reliability::Reliable);
        server.send(id, b"hello");
        server.finish(id);
        run_pipe(
            &mut server,
            &mut client,
            |_, _| false,
            SimTime::from_secs(5),
        );
        let mut opened = false;
        let mut readable = false;
        let mut finished = false;
        while let Some(e) = client.poll_event() {
            match e {
                Event::StreamOpened(eid, Reliability::Reliable) if eid == id => opened = true,
                Event::StreamReadable(eid) if eid == id => readable = true,
                Event::StreamFinished(eid) if eid == id => finished = true,
                _ => {}
            }
        }
        assert!(opened && readable && finished);
    }

    #[test]
    fn congestion_window_limits_burst() {
        let mut server = Connection::with_defaults(Role::Server);
        let id = server.open_stream(Reliability::Reliable);
        server.send(id, &vec![0u8; 1_000_000]);
        server.finish(id);
        let mut sent_bytes = 0usize;
        while let Some(p) = server.poll_transmit(SimTime::ZERO) {
            sent_bytes += p.wire_size();
        }
        // Initial window is 10 MSS; the first burst can't exceed it (plus
        // one packet of slack for the final partial fit).
        assert!(
            sent_bytes <= 11 * MAX_PAYLOAD,
            "burst of {sent_bytes} exceeds initial window"
        );
    }

    #[test]
    fn pto_probe_fires_when_all_acks_are_lost() {
        let mut server = Connection::with_defaults(Role::Server);
        let mut client = Connection::with_defaults(Role::Client);
        let id = server.open_stream(Reliability::Reliable);
        server.send(id, b"probe me");
        server.finish(id);
        // Client never receives anything (all server packets dropped).
        run_pipe(
            &mut server,
            &mut client,
            |dir, _| dir == 0,
            SimTime::from_secs(3),
        );
        assert!(server.stats().ptos > 0, "PTO must fire");
        assert!(client.recv_stream(id).is_none());
    }

    #[test]
    fn close_propagates() {
        let mut server = Connection::with_defaults(Role::Server);
        let mut client = Connection::with_defaults(Role::Client);
        server.close(42);
        run_pipe(
            &mut server,
            &mut client,
            |_, _| false,
            SimTime::from_secs(2),
        );
        assert!(server.is_closed());
        assert!(client.is_closed());
        let mut saw = false;
        while let Some(e) = client.poll_event() {
            if e == (Event::Closed { code: 42 }) {
                saw = true;
            }
        }
        assert!(saw);
    }

    #[test]
    fn reliable_and_unreliable_multiplex_on_one_connection() {
        let mut server = Connection::with_defaults(Role::Server);
        let mut client = Connection::with_defaults(Role::Client);
        let rel = server.open_stream(Reliability::Reliable);
        let unrel = server.open_stream(Reliability::Unreliable);
        let rel_data = vec![1u8; 30_000];
        let unrel_data = vec![2u8; 30_000];
        server.send(rel, &rel_data);
        server.finish(rel);
        server.send(unrel, &unrel_data);
        server.finish(unrel);
        run_pipe(
            &mut server,
            &mut client,
            |dir, pn| dir == 0 && pn % 7 == 2,
            SimTime::from_secs(60),
        );
        // Reliable stream must be perfect.
        assert_eq!(read_all(&mut client, rel), rel_data);
        // Unreliable stream has fin and possibly holes, never corruption.
        let rs = client.recv_stream(unrel).expect("stream");
        assert_eq!(rs.final_len(), Some(30_000));
        for (_, chunk) in rs.take_received() {
            assert!(chunk.iter().all(|&b| b == 2));
        }
    }

    #[test]
    fn srtt_converges_to_path_rtt() {
        let mut server = Connection::with_defaults(Role::Server);
        let mut client = Connection::with_defaults(Role::Client);
        let id = server.open_stream(Reliability::Reliable);
        server.send(id, &vec![0u8; 200_000]);
        server.finish(id);
        run_pipe(
            &mut server,
            &mut client,
            |_, _| false,
            SimTime::from_secs(30),
        );
        // Pipe delay 30 ms each way → RTT 60 ms (+ ack delay tolerance).
        let srtt = server.srtt().as_millis_f64();
        assert!(
            (55.0..90.0).contains(&srtt),
            "srtt {srtt} ms should be near 60 ms"
        );
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Whatever pseudo-random pattern of packet drops the network
        /// applies, a reliable stream either fully reconstructs or the
        /// connection keeps retransmission state pending — it never
        /// delivers corrupted or reordered bytes.
        #[test]
        fn reliable_delivery_is_exact_under_random_loss(
            len in 1usize..60_000,
            drop_mod in 2u64..12,
            drop_phase in 0u64..12,
            seed in 0u64..500,
        ) {
            let mut server = Connection::with_defaults(Role::Server);
            let mut client = Connection::with_defaults(Role::Client);
            let id = server.open_stream(Reliability::Reliable);
            let payload: Vec<u8> = (0..len).map(|i| ((i as u64 * 31 + seed) % 251) as u8).collect();
            server.send(id, &payload);
            server.finish(id);

            // Fixed-delay pipe with deterministic drops on the downlink.
            let delay = SimDuration::from_millis(30);
            let mut queue = voxel_sim::EventQueue::<(usize, Bytes)>::new();
            let mut now = SimTime::ZERO;
            let horizon = SimTime::from_secs(120);
            loop {
                loop {
                    let mut progressed = false;
                    while let Some(p) = server.poll_transmit(now) {
                        if (p.pkt_num + drop_phase) % drop_mod != 0 {
                            queue.schedule(now + delay, (1, p.encode()));
                        }
                        progressed = true;
                    }
                    while let Some(p) = client.poll_transmit(now) {
                        queue.schedule(now + delay, (0, p.encode()));
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
                let next = [queue.peek_time(), server.next_timeout(), client.next_timeout()]
                    .into_iter()
                    .flatten()
                    .min();
                let Some(next) = next else { break };
                if next > horizon {
                    break;
                }
                now = next;
                if queue.peek_time() == Some(now) {
                    let ev = queue.pop().expect("peeked");
                    match ev.event.0 {
                        0 => server.on_datagram(now, ev.event.1),
                        _ => client.on_datagram(now, ev.event.1),
                    }
                }
                if server.next_timeout().is_some_and(|t| t <= now) {
                    server.on_timeout(now);
                }
                if client.next_timeout().is_some_and(|t| t <= now) {
                    client.on_timeout(now);
                }
            }

            let rs = client.recv_stream(id).expect("stream opened");
            prop_assert!(rs.is_complete(), "stream did not complete");
            let mut got = Vec::new();
            while let Some(b) = rs.read() {
                got.extend_from_slice(&b);
            }
            prop_assert_eq!(got, payload);
        }

        /// `check_invariants` holds on both endpoints at every event-loop
        /// boundary, for arbitrary mixes of reliable/unreliable streams,
        /// send sizes, and bidirectional random loss. This is the same
        /// audit the `paranoid` feature runs inside the session loop.
        #[test]
        fn invariants_hold_under_random_event_sequences(
            streams in proptest::collection::vec((proptest::bool::ANY, 1usize..20_000), 1..6),
            drop_mod in 2u64..10,
            drop_phase in 0u64..10,
            drop_uplink in proptest::bool::ANY,
            cc_idx in 0usize..crate::cc::CC_KINDS.len(),
            seed in 0u64..500,
        ) {
            // The audit must hold under every congestion controller —
            // CUBIC, delay, and BBR all gate the same transmit path.
            let config = ConnectionConfig {
                cc: crate::cc::CC_KINDS[cc_idx],
                ..ConnectionConfig::default()
            };
            let mut server = Connection::new(Role::Server, config.clone());
            let mut client = Connection::new(Role::Client, config);
            for (i, &(reliable, len)) in streams.iter().enumerate() {
                let rel = if reliable { Reliability::Reliable } else { Reliability::Unreliable };
                let id = server.open_stream(rel);
                let payload: Vec<u8> =
                    (0..len).map(|j| ((j as u64 * 37 + i as u64 + seed) % 251) as u8).collect();
                server.send(id, &payload);
                server.finish(id);
            }

            let delay = SimDuration::from_millis(30);
            let mut queue = voxel_sim::EventQueue::<(usize, Bytes)>::new();
            let mut now = SimTime::ZERO;
            let horizon = SimTime::from_secs(120);
            loop {
                loop {
                    let mut progressed = false;
                    while let Some(p) = server.poll_transmit(now) {
                        if (p.pkt_num + drop_phase) % drop_mod != 0 {
                            queue.schedule(now + delay, (1, p.encode()));
                        }
                        progressed = true;
                    }
                    while let Some(p) = client.poll_transmit(now) {
                        if !drop_uplink || (p.pkt_num + drop_phase) % drop_mod != 1 {
                            queue.schedule(now + delay, (0, p.encode()));
                        }
                        progressed = true;
                    }
                    if !progressed {
                        break;
                    }
                }
                let next = [queue.peek_time(), server.next_timeout(), client.next_timeout()]
                    .into_iter()
                    .flatten()
                    .min();
                let Some(next) = next else { break };
                if next > horizon {
                    break;
                }
                now = next;
                if queue.peek_time() == Some(now) {
                    let ev = queue.pop().expect("peeked");
                    match ev.event.0 {
                        0 => server.on_datagram(now, ev.event.1),
                        _ => client.on_datagram(now, ev.event.1),
                    }
                }
                if server.next_timeout().is_some_and(|t| t <= now) {
                    server.on_timeout(now);
                }
                if client.next_timeout().is_some_and(|t| t <= now) {
                    client.on_timeout(now);
                }
                prop_assert!(server.check_invariants().is_ok(), "{:?}", server.check_invariants());
                prop_assert!(client.check_invariants().is_ok(), "{:?}", client.check_invariants());
            }
            prop_assert!(server.check_invariants().is_ok(), "{:?}", server.check_invariants());
            prop_assert!(client.check_invariants().is_ok(), "{:?}", client.check_invariants());
        }
    }
}
