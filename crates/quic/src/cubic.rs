//! CUBIC congestion control (RFC 8312), as used by the paper's QUIC\*.
//!
//! Window-based: the connection may have at most `cwnd` bytes in flight.
//! Slow start doubles per RTT until `ssthresh`; after a loss epoch the
//! window grows along the cubic function `W(t) = C·(t-K)³ + W_max`.

use voxel_sim::{SimDuration, SimTime};

/// CUBIC constants (RFC 8312).
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

/// The congestion controller.
#[derive(Debug, Clone)]
pub struct Cubic {
    /// Maximum datagram size (for window floors and increments).
    mss: usize,
    /// Congestion window, bytes.
    cwnd: f64,
    /// Slow-start threshold, bytes.
    ssthresh: f64,
    /// Window before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Time offset at which `W(t)` crosses `w_max`.
    k: f64,
    /// Largest packet number sent when the last loss was detected; losses of
    /// packets at or below this don't trigger another reduction (one
    /// reduction per loss epoch).
    recovery_until: Option<u64>,
    /// Bytes currently in flight.
    in_flight: usize,
}

impl Cubic {
    /// New controller with an initial window of 10 MSS (RFC 6928).
    pub fn new(mss: usize) -> Cubic {
        Cubic {
            mss,
            cwnd: (10 * mss) as f64,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            recovery_until: None,
            in_flight: 0,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cwnd as usize
    }

    /// Bytes currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether `bytes` more may be sent now.
    pub fn can_send(&self, bytes: usize) -> bool {
        self.in_flight + bytes <= self.cwnd as usize
    }

    /// Whether the controller is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Slow-start threshold in bytes (`u64::MAX` before the first loss).
    pub fn ssthresh(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    /// A packet of `bytes` was sent.
    pub fn on_sent(&mut self, bytes: usize) {
        self.in_flight += bytes;
    }

    /// A packet of `bytes` was acknowledged.
    pub fn on_ack(&mut self, now: SimTime, bytes: usize, srtt: SimDuration) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
        if self.cwnd < self.ssthresh {
            // Slow start: cwnd += acked bytes.
            self.cwnd += bytes as f64;
            return;
        }
        // Congestion avoidance: cubic growth.
        let epoch_start = *self.epoch_start.get_or_insert_with(|| {
            self.k = if self.w_max > self.cwnd {
                ((self.w_max - self.cwnd) / (CUBIC_C * self.mss as f64)).cbrt()
            } else {
                0.0
            };
            now
        });
        let t = (now.saturating_since(epoch_start) + srtt).as_secs_f64();
        let w_cubic = CUBIC_C * self.mss as f64 * (t - self.k).powi(3) + self.w_max;
        // TCP-friendly region (standard AIMD estimate).
        let rtt_s = srtt.as_secs_f64().max(1e-3);
        let w_est = self.w_max * CUBIC_BETA
            + 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (t / rtt_s) * self.mss as f64;
        let target = w_cubic.max(w_est);
        if target > self.cwnd {
            // Approach the target gradually (per-ACK fraction).
            self.cwnd += ((target - self.cwnd) / self.cwnd * bytes as f64)
                .min(bytes as f64)
                .max(0.0);
        } else {
            // Slow reclamation below target.
            self.cwnd += 0.01 * bytes as f64;
        }
    }

    /// Packets were declared lost. `largest_sent` is the highest packet
    /// number sent so far (defines the recovery epoch); `largest_lost` the
    /// highest lost packet number; `bytes` the lost bytes (leave flight).
    pub fn on_loss(&mut self, _now: SimTime, largest_sent: u64, largest_lost: u64, bytes: usize) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
        if let Some(until) = self.recovery_until {
            if largest_lost <= until {
                return; // still in the same loss epoch
            }
        }
        self.recovery_until = Some(largest_sent);
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * CUBIC_BETA).max((2 * self.mss) as f64);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    /// Persistent congestion / repeated PTO: collapse to the minimum window.
    pub fn on_persistent_congestion(&mut self) {
        self.cwnd = (2 * self.mss) as f64;
        self.ssthresh = self.ssthresh.min(self.cwnd * 2.0);
        self.epoch_start = None;
        self.recovery_until = None;
    }

    /// Forget in-flight accounting for a packet that left the network
    /// without an ACK (e.g. deemed lost but later acked — spurious).
    pub fn forget_in_flight(&mut self, bytes: usize) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1350;
    const RTT: SimDuration = SimDuration::from_millis(60);

    #[test]
    fn initial_window_is_ten_mss() {
        let c = Cubic::new(MSS);
        assert_eq!(c.cwnd(), 10 * MSS);
        assert!(c.in_slow_start());
        assert!(c.can_send(10 * MSS));
        assert!(!c.can_send(10 * MSS + 1));
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut c = Cubic::new(MSS);
        let start = c.cwnd();
        // Ack a full window.
        for _ in 0..10 {
            c.on_sent(MSS);
        }
        for _ in 0..10 {
            c.on_ack(SimTime::from_millis(60), MSS, RTT);
        }
        assert_eq!(c.cwnd(), 2 * start);
    }

    #[test]
    fn loss_multiplies_window_by_beta() {
        let mut c = Cubic::new(MSS);
        c.on_sent(5 * MSS);
        let before = c.cwnd();
        c.on_loss(SimTime::from_millis(100), 50, 10, MSS);
        assert_eq!(c.cwnd(), (before as f64 * CUBIC_BETA) as usize);
        assert!(!c.in_slow_start());
        assert_eq!(c.in_flight(), 4 * MSS);
    }

    #[test]
    fn one_reduction_per_loss_epoch() {
        let mut c = Cubic::new(MSS);
        c.on_sent(6 * MSS);
        c.on_loss(SimTime::from_millis(100), 50, 10, MSS);
        let after_first = c.cwnd();
        // Losses from the same epoch (pn ≤ 50) don't reduce again.
        c.on_loss(SimTime::from_millis(105), 52, 30, MSS);
        assert_eq!(c.cwnd(), after_first);
        // A loss beyond the epoch does.
        c.on_loss(SimTime::from_millis(400), 80, 60, MSS);
        assert!(c.cwnd() < after_first);
    }

    #[test]
    fn cubic_growth_recovers_toward_w_max() {
        let mut c = Cubic::new(MSS);
        // Grow to a sizeable window first.
        for _ in 0..200 {
            c.on_sent(MSS);
            c.on_ack(SimTime::from_millis(60), MSS, RTT);
        }
        let w_before_loss = c.cwnd();
        c.on_loss(SimTime::from_secs(1), 1000, 999, MSS);
        let w_after_loss = c.cwnd();
        assert!(w_after_loss < w_before_loss);
        // Ack steadily for simulated seconds; window must climb back
        // toward w_max.
        let mut now = SimTime::from_secs(1);
        for _ in 0..2000 {
            now += SimDuration::from_millis(5);
            c.on_sent(MSS);
            c.on_ack(now, MSS, RTT);
        }
        assert!(
            c.cwnd() > (w_before_loss as f64 * 0.9) as usize,
            "cwnd {} vs w_max {}",
            c.cwnd(),
            w_before_loss
        );
    }

    #[test]
    fn persistent_congestion_collapses_window() {
        let mut c = Cubic::new(MSS);
        for _ in 0..50 {
            c.on_sent(MSS);
            c.on_ack(SimTime::from_millis(60), MSS, RTT);
        }
        c.on_persistent_congestion();
        assert_eq!(c.cwnd(), 2 * MSS);
    }

    #[test]
    fn window_never_collapses_below_two_mss() {
        let mut c = Cubic::new(MSS);
        for i in 0..20 {
            c.on_loss(SimTime::from_secs(i + 1), 1000 * (i + 1), 999 * (i + 1), 0);
        }
        assert!(c.cwnd() >= 2 * MSS);
    }

    #[test]
    fn in_flight_accounting() {
        let mut c = Cubic::new(MSS);
        c.on_sent(3000);
        assert_eq!(c.in_flight(), 3000);
        c.on_ack(SimTime::from_millis(60), 1000, RTT);
        assert_eq!(c.in_flight(), 2000);
        c.forget_in_flight(500);
        assert_eq!(c.in_flight(), 1500);
        c.forget_in_flight(9999);
        assert_eq!(c.in_flight(), 0);
    }
}
