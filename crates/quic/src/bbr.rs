//! BBR-style congestion control (Startup/Drain/ProbeBW/ProbeRTT).
//!
//! Where [`crate::delay_cc`] is a compact BBR-*flavored* model that
//! estimates delivery rate internally from ack arrivals, this module is
//! the full state machine driven by the transport's own delivery-rate
//! sampler (DESIGN.md §15): `loss.rs` stamps every sent packet with the
//! cumulative delivered-bytes count at send time and produces one
//! [`RateSample`](crate::cc::RateSample) per acked packet; this
//! controller folds those into
//!
//! - **BtlBw** — a windowed max-filter over delivery-rate samples
//!   (window measured in packet-timed rounds),
//! - **RTprop** — a windowed min-filter over RTT samples (wall-window),
//!
//! and regulates the flight from the model: inflight is capped at
//! `cwnd_gain × BDP`, the pacing rate is `pacing_gain × BtlBw` with the
//! classic 1.25/0.75 probe cycle in ProbeBW, and the window collapses to
//! `min_cwnd` during ProbeRTT so the queue drains and RTprop can be
//! re-measured. Loss does not multiplicatively decrease the window — the
//! model regulates it (see `cc_shootout` for how that plays against
//! CUBIC on a shared bottleneck).

use crate::cc::RateSample;
use voxel_sim::{SimDuration, SimTime};

/// Startup pacing/window gain: 2/ln 2, the slow-start-equivalent rate
/// doubling per round.
const STARTUP_GAIN: f64 = 2.885;

/// Drain gain: inverse of startup, to bleed the queue startup built.
const DRAIN_GAIN: f64 = 1.0 / 2.885;

/// Steady-state window cap as a multiple of BDP.
const CWND_GAIN: f64 = 2.0;

/// ProbeBW pacing-gain cycle, one step per RTprop.
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// BtlBw max-filter window, in packet-timed rounds.
const BW_WINDOW_ROUNDS: u64 = 10;

/// RTprop min-filter window: a sample older than this is stale and
/// forces ProbeRTT.
pub const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Minimum time spent in ProbeRTT (floored below by one RTprop).
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);

/// Startup exits once BtlBw grew less than this factor across
/// [`FULL_BW_ROUNDS`] consecutive rounds.
const FULL_BW_THRESH: f64 = 1.25;

/// Consecutive flat rounds before the pipe counts as filled.
const FULL_BW_ROUNDS: u32 = 3;

/// The four BBR states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrState {
    /// Exponential rate growth until the pipe is full.
    Startup,
    /// Bleed the startup queue down to one BDP.
    Drain,
    /// Steady state: cycle pacing gains to probe for more bandwidth.
    ProbeBw,
    /// Collapse the window to re-measure the propagation delay.
    ProbeRtt,
}

/// The BBR controller.
#[derive(Debug, Clone)]
pub struct Bbr {
    mss: usize,
    state: BbrState,
    /// BtlBw max-filter samples: (round, bytes/sec), newest last.
    bw_samples: Vec<(u64, f64)>,
    /// Packet-timed round counter (advanced by the delivery sampler).
    round: u64,
    /// Cumulative-delivered mark that ends the current round.
    round_start_delivered: u64,
    /// Whether the round advanced since the last full-pipe check.
    round_wrapped: bool,
    /// RTprop estimate and the time it was last confirmed.
    min_rtt: SimDuration,
    min_rtt_at: SimTime,
    /// When the current ProbeRTT dwell ends (armed on entry).
    probe_rtt_done: Option<SimTime>,
    /// Window saved on ProbeRTT entry, restored on exit.
    prior_cwnd: usize,
    /// ProbeBW gain-cycle position and when it last advanced.
    cycle_idx: usize,
    cycle_advanced: SimTime,
    /// Startup full-pipe detector.
    full_bw: f64,
    full_bw_rounds: u32,
    filled_pipe: bool,
    in_flight: usize,
    cwnd: usize,
}

impl Bbr {
    /// New controller in Startup.
    pub fn new(mss: usize) -> Bbr {
        Bbr {
            mss,
            state: BbrState::Startup,
            bw_samples: Vec::new(),
            round: 0,
            round_start_delivered: 0,
            round_wrapped: false,
            min_rtt: SimDuration::from_millis(100),
            min_rtt_at: SimTime::ZERO,
            probe_rtt_done: None,
            prior_cwnd: 10 * mss,
            cycle_idx: 0,
            cycle_advanced: SimTime::ZERO,
            full_bw: 0.0,
            full_bw_rounds: 0,
            filled_pipe: false,
            in_flight: 0,
            cwnd: 10 * mss,
        }
    }

    /// Current window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    /// Window floor: BBR never goes below 4 packets.
    pub fn min_cwnd(&self) -> usize {
        4 * self.mss
    }

    /// Bytes in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether `bytes` more may enter the network.
    pub fn can_send(&self, bytes: usize) -> bool {
        self.in_flight + bytes <= self.cwnd
    }

    /// Current state (for tests and the trace taxonomy).
    pub fn state(&self) -> BbrState {
        self.state
    }

    /// Windowed-max bottleneck-bandwidth estimate, bytes/second.
    pub fn btl_bw(&self) -> f64 {
        self.bw_samples
            .iter()
            .map(|&(_, bw)| bw)
            .fold(0.0, f64::max)
    }

    /// RTprop estimate.
    pub fn min_rtt(&self) -> SimDuration {
        self.min_rtt
    }

    /// Bandwidth-delay product from the model, bytes.
    pub fn bdp(&self) -> f64 {
        self.btl_bw() * self.min_rtt.as_secs_f64()
    }

    /// Pacing rate in bits/second: `pacing_gain × BtlBw`. `None` until
    /// the model has a bandwidth estimate (the connection then falls
    /// back to its cwnd-based pacer).
    pub fn pacing_rate_bps(&self) -> Option<f64> {
        let bw = self.btl_bw();
        if bw <= 0.0 {
            return None;
        }
        let gain = match self.state {
            BbrState::Startup => STARTUP_GAIN,
            BbrState::Drain => DRAIN_GAIN,
            BbrState::ProbeBw => GAIN_CYCLE[self.cycle_idx],
            BbrState::ProbeRtt => 1.0,
        };
        Some(gain * bw * 8.0)
    }

    /// A packet entered the network.
    pub fn on_sent(&mut self, bytes: usize) {
        self.in_flight += bytes;
    }

    /// Fold one delivery-rate sample into the model. Rounds advance when
    /// a packet sent after the current round's start is delivered — the
    /// packet-timed clock of the BtlBw filter window.
    pub fn on_rate_sample(&mut self, _now: SimTime, s: RateSample) {
        if s.delivered_at_send >= self.round_start_delivered {
            self.round += 1;
            self.round_start_delivered = s.delivered;
            self.round_wrapped = true;
        }
        if s.rate.is_finite() && s.rate > 0.0 {
            self.bw_samples.push((self.round, s.rate));
            let horizon = self.round.saturating_sub(BW_WINDOW_ROUNDS);
            self.bw_samples.retain(|&(r, _)| r > horizon);
        }
    }

    /// A packet was acknowledged; `rtt_sample` is the latest raw RTT.
    pub fn on_ack(&mut self, now: SimTime, bytes: usize, rtt_sample: SimDuration) {
        self.in_flight = self.in_flight.saturating_sub(bytes);

        // RTprop min-filter: a sample at or below the floor re-confirms
        // it (refreshing the staleness stamp); expiry forces a re-take —
        // the new sample is accepted, but ProbeRTT is still entered below
        // so the estimate gets re-measured at a drained queue.
        let expired = now.saturating_since(self.min_rtt_at) > MIN_RTT_WINDOW;
        if rtt_sample <= self.min_rtt || expired {
            self.min_rtt = rtt_sample;
            self.min_rtt_at = now;
        }

        // Startup full-pipe check, once per packet-timed round.
        if self.round_wrapped {
            self.round_wrapped = false;
            if !self.filled_pipe {
                let bw = self.btl_bw();
                if bw >= self.full_bw * FULL_BW_THRESH {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= FULL_BW_ROUNDS {
                        self.filled_pipe = true;
                    }
                }
            }
        }

        self.advance_state(now, expired);
        self.set_cwnd(bytes);
        debug_assert!(self.check_invariants(now).is_ok());
    }

    fn advance_state(&mut self, now: SimTime, rtprop_expired: bool) {
        // A stale RTprop forces ProbeRTT from any other state.
        if self.state != BbrState::ProbeRtt
            && (rtprop_expired || now.saturating_since(self.min_rtt_at) > MIN_RTT_WINDOW)
        {
            self.state = BbrState::ProbeRtt;
            self.prior_cwnd = self.cwnd.max(self.prior_cwnd);
            self.probe_rtt_done = Some(now + PROBE_RTT_DURATION.max(self.min_rtt));
            return;
        }
        match self.state {
            BbrState::Startup => {
                if self.filled_pipe {
                    self.state = BbrState::Drain;
                }
            }
            BbrState::Drain => {
                if (self.in_flight as f64) <= self.bdp() {
                    self.enter_probe_bw(now);
                }
            }
            BbrState::ProbeBw => {
                if now.saturating_since(self.cycle_advanced) >= self.min_rtt {
                    self.cycle_idx = (self.cycle_idx + 1) % GAIN_CYCLE.len();
                    self.cycle_advanced = now;
                }
            }
            BbrState::ProbeRtt => {
                if self.probe_rtt_done.is_some_and(|t| now >= t) {
                    // RTprop re-measured at the drained queue: restamp.
                    self.min_rtt_at = now;
                    self.probe_rtt_done = None;
                    self.cwnd = self.prior_cwnd.max(self.min_cwnd());
                    if self.filled_pipe {
                        self.enter_probe_bw(now);
                    } else {
                        self.state = BbrState::Startup;
                    }
                }
            }
        }
    }

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.state = BbrState::ProbeBw;
        self.cycle_idx = 0;
        self.cycle_advanced = now;
    }

    fn set_cwnd(&mut self, acked: usize) {
        match self.state {
            BbrState::ProbeRtt => self.cwnd = self.min_cwnd(),
            BbrState::Startup => {
                // Slow-start-like growth until the model can take over.
                self.cwnd += acked;
            }
            BbrState::Drain | BbrState::ProbeBw => {
                let target = CWND_GAIN * self.bdp();
                self.cwnd = (target as usize).max(self.min_cwnd());
            }
        }
        self.cwnd = self.cwnd.max(self.min_cwnd());
    }

    /// Losses leave the flight; the model, not loss, regulates the
    /// window (bufferbloat is the enemy, not the occasional drop).
    pub fn on_loss(&mut self, _now: SimTime, bytes: usize) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
    }

    /// Repeated PTOs: the model is stale — restart from scratch.
    pub fn on_persistent_congestion(&mut self) {
        self.bw_samples.clear();
        self.round_start_delivered = 0;
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.filled_pipe = false;
        self.state = BbrState::Startup;
        self.probe_rtt_done = None;
        self.cwnd = self.min_cwnd();
        self.prior_cwnd = self.min_cwnd();
    }

    /// Remove unaccounted in-flight bytes (e.g. abandoned streams).
    pub fn forget_in_flight(&mut self, bytes: usize) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
    }

    /// Model invariants, audited by the `paranoid` layer and the
    /// property tests: the window never falls below `min_cwnd`, and a
    /// stale RTprop (older than the filter window) is only ever observed
    /// from inside ProbeRTT — i.e. ProbeRTT is entered within the filter
    /// window of the last confirmed sample.
    pub fn check_invariants(&self, now: SimTime) -> Result<(), String> {
        if self.cwnd < self.min_cwnd() {
            return Err(format!(
                "cwnd {} below floor {}",
                self.cwnd,
                self.min_cwnd()
            ));
        }
        let age = now.saturating_since(self.min_rtt_at);
        if age > MIN_RTT_WINDOW && self.state != BbrState::ProbeRtt {
            return Err(format!(
                "RTprop stale for {age:?} (> {MIN_RTT_WINDOW:?}) outside ProbeRTT ({:?})",
                self.state
            ));
        }
        if self.state == BbrState::ProbeRtt && self.probe_rtt_done.is_none() {
            return Err("in ProbeRTT with no dwell deadline armed".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1350;

    /// Drive `cc` with a steady ack stream at `rate` bytes/sec and
    /// `rtt_ms` path RTT starting at `start_us`, synthesizing the
    /// delivery-rate samples the transport's sampler would produce: a
    /// packet acked at `t` was sent one RTT earlier, when the delivered
    /// counter was `pkts_per_rtt` packets behind. Returns the end time.
    fn steady(cc: &mut Bbr, start_us: u64, secs: f64, rate: f64, rtt_ms: u64) -> u64 {
        let gap_us = (MSS as f64 / rate * 1e6) as u64;
        let pkts_per_rtt = (rtt_ms * 1000 / gap_us.max(1)).max(1);
        let steps = (secs * 1e6 / gap_us as f64) as u64;
        let mut t = start_us;
        for i in 1..=steps {
            t += gap_us;
            let delivered = i * MSS as u64;
            let delivered_at_send = i.saturating_sub(pkts_per_rtt) * MSS as u64;
            cc.on_sent(MSS);
            cc.on_rate_sample(
                SimTime::from_micros(t),
                RateSample {
                    delivered,
                    delivered_at_send,
                    rate: ((delivered - delivered_at_send) as f64
                        / SimDuration::from_millis(rtt_ms).as_secs_f64())
                    .min(rate),
                },
            );
            cc.on_ack(
                SimTime::from_micros(t),
                MSS,
                SimDuration::from_millis(rtt_ms),
            );
        }
        t
    }

    #[test]
    fn startup_fills_the_pipe_then_drains_into_probe_bw() {
        let mut cc = Bbr::new(MSS);
        assert_eq!(cc.state(), BbrState::Startup);
        // 1.25 MB/s (10 Mbps), 60 ms RTT → BDP = 75 kB.
        steady(&mut cc, 0, 2.0, 1.25e6, 60);
        assert_eq!(cc.state(), BbrState::ProbeBw, "pipe full, queue drained");
        let bdp = 75_000.0;
        let w = cc.cwnd() as f64;
        assert!(
            w > bdp && w < 3.0 * bdp,
            "cwnd {w} outside (1..3) x BDP {bdp}"
        );
        let bw = cc.btl_bw();
        assert!((bw - 1.25e6).abs() / 1.25e6 < 0.2, "btl_bw {bw}");
    }

    #[test]
    fn probe_bw_cycles_the_pacing_gain() {
        let mut cc = Bbr::new(MSS);
        let t = steady(&mut cc, 0, 2.0, 1.25e6, 60);
        assert_eq!(cc.state(), BbrState::ProbeBw);
        // Across one full cycle (8 × RTprop) both the 1.25 probe and
        // the 0.75 drain gain must appear in the pacing rate.
        let base = cc.btl_bw() * 8.0;
        let (mut saw_hi, mut saw_lo) = (false, false);
        let mut cc2 = cc.clone();
        let mut now = t;
        for _ in 0..600 {
            now += 1080;
            cc2.on_sent(MSS);
            cc2.on_ack(SimTime::from_micros(now), MSS, SimDuration::from_millis(60));
            let r = cc2.pacing_rate_bps().unwrap_or(0.0);
            if r > base * 1.1 {
                saw_hi = true;
            }
            if r < base * 0.9 {
                saw_lo = true;
            }
        }
        assert!(saw_hi && saw_lo, "gain cycle never probed/drained");
    }

    #[test]
    fn probe_rtt_entered_when_rtprop_goes_stale_and_recovers() {
        let mut cc = Bbr::new(MSS);
        let t0 = steady(&mut cc, 0, 2.0, 1.25e6, 60);
        assert_eq!(cc.state(), BbrState::ProbeBw);
        let w_before = cc.cwnd();
        // Inflate the RTT (standing queue): RTprop is never re-confirmed,
        // so after the 10 s window the controller must dive to ProbeRTT.
        let mut now = t0;
        let mut entered = false;
        for _ in 0..12_000 {
            now += 1080;
            cc.on_sent(MSS);
            cc.on_ack(SimTime::from_micros(now), MSS, SimDuration::from_millis(90));
            cc.check_invariants(SimTime::from_micros(now))
                .expect("invariants");
            if cc.state() == BbrState::ProbeRtt {
                entered = true;
                assert_eq!(cc.cwnd(), cc.min_cwnd(), "ProbeRTT collapses cwnd");
                break;
            }
        }
        assert!(entered, "never entered ProbeRTT under stale RTprop");
        // Dwell out of ProbeRTT: window restored, state back to ProbeBW.
        for _ in 0..2_000 {
            now += 1080;
            cc.on_sent(MSS);
            cc.on_ack(SimTime::from_micros(now), MSS, SimDuration::from_millis(90));
            if cc.state() != BbrState::ProbeRtt {
                break;
            }
        }
        assert_eq!(cc.state(), BbrState::ProbeBw);
        assert!(
            cc.cwnd() >= w_before / 2,
            "window not restored after ProbeRTT: {} vs {w_before}",
            cc.cwnd()
        );
    }

    #[test]
    fn losses_do_not_collapse_the_window() {
        let mut cc = Bbr::new(MSS);
        steady(&mut cc, 0, 2.0, 1.25e6, 60);
        let before = cc.cwnd();
        for _ in 0..30 {
            cc.on_sent(MSS);
            cc.on_loss(SimTime::from_secs(3), MSS);
        }
        assert!(
            cc.cwnd() as f64 > before as f64 * 0.9,
            "window collapsed from {before} to {}",
            cc.cwnd()
        );
    }

    #[test]
    fn persistent_congestion_resets_the_model() {
        let mut cc = Bbr::new(MSS);
        steady(&mut cc, 0, 2.0, 1.25e6, 60);
        cc.on_persistent_congestion();
        assert_eq!(cc.state(), BbrState::Startup);
        assert_eq!(cc.cwnd(), cc.min_cwnd());
        assert_eq!(cc.btl_bw(), 0.0);
        // And it can start over.
        steady(&mut cc, 10_000_000, 2.0, 1.25e6, 60);
        assert_eq!(cc.state(), BbrState::ProbeBw);
    }

    #[test]
    fn window_tracks_a_bandwidth_increase() {
        let mut cc = Bbr::new(MSS);
        let t = steady(&mut cc, 0, 2.0, 1.25e6, 60);
        let w_10mbps = cc.cwnd();
        steady(&mut cc, t, 2.0, 2.5e6, 60);
        assert!(
            cc.cwnd() as f64 > w_10mbps as f64 * 1.5,
            "window did not track the bandwidth increase: {} vs {w_10mbps}",
            cc.cwnd()
        );
    }

    #[test]
    fn flight_accounting_and_floor() {
        let mut cc = Bbr::new(MSS);
        cc.on_sent(5000);
        assert_eq!(cc.in_flight(), 5000);
        assert!(cc.can_send(cc.cwnd() - 5000));
        assert!(!cc.can_send(cc.cwnd()));
        cc.forget_in_flight(2000);
        assert_eq!(cc.in_flight(), 3000);
        assert!(cc.pacing_rate_bps().is_none(), "no model yet");
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    const MSS: usize = 1350;

    /// One randomized controller event.
    #[derive(Debug, Clone)]
    enum Op {
        /// (gap_us, bytes)
        Sent(u64, usize),
        /// (gap_us, bytes, rtt_us, with_rate_sample)
        Ack(u64, usize, u64, bool),
        /// (gap_us, bytes)
        Loss(u64, usize),
        Persistent,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..2_000_000, 1usize..3000).prop_map(|(g, b)| Op::Sent(g, b)),
            (
                0u64..2_000_000,
                1usize..3000,
                1000u64..500_000,
                proptest::bool::ANY
            )
                .prop_map(|(g, b, r, s)| Op::Ack(g, b, r, s)),
            (0u64..2_000_000, 1usize..3000).prop_map(|(g, b)| Op::Loss(g, b)),
            Just(Op::Persistent),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Under arbitrary ack/loss sequences — arbitrary gaps (far past
        /// the RTprop window), sizes, and RTT samples — the window never
        /// falls below `min_cwnd` and ProbeRTT is always entered within
        /// the RTprop filter window of the last confirmed sample
        /// (`check_invariants` encodes both).
        #[test]
        fn cwnd_floor_and_probe_rtt_window_hold(ops in proptest::collection::vec(op(), 1..120)) {
            let mut cc = Bbr::new(MSS);
            let mut now = 0u64;
            let mut delivered = 0u64;
            for o in ops {
                match o {
                    Op::Sent(gap, bytes) => {
                        now += gap;
                        cc.on_sent(bytes);
                    }
                    Op::Ack(gap, bytes, rtt_us, sampled) => {
                        now += gap;
                        if sampled {
                            let at_send = delivered.saturating_sub(4 * MSS as u64);
                            delivered += bytes as u64;
                            let rate = (delivered - at_send) as f64
                                / SimDuration::from_micros(rtt_us).as_secs_f64();
                            cc.on_rate_sample(SimTime::from_micros(now), RateSample {
                                delivered,
                                delivered_at_send: at_send,
                                rate,
                            });
                        } else {
                            delivered += bytes as u64;
                        }
                        cc.on_ack(
                            SimTime::from_micros(now),
                            bytes,
                            SimDuration::from_micros(rtt_us),
                        );
                    }
                    Op::Loss(gap, bytes) => {
                        now += gap;
                        cc.on_loss(SimTime::from_micros(now), bytes);
                    }
                    Op::Persistent => cc.on_persistent_congestion(),
                }
                prop_assert!(cc.cwnd() >= cc.min_cwnd(),
                    "cwnd {} below floor", cc.cwnd());
                if let Err(e) = cc.check_invariants(SimTime::from_micros(now)) {
                    // Invariants are re-established by the next ack; they
                    // may only be observed broken between acks when time
                    // jumped with no ack to react to.
                    prop_assert!(
                        !matches!(o, Op::Ack(..)),
                        "invariant broken right after an ack: {e}"
                    );
                }
            }
        }
    }
}
