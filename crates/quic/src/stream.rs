//! Reliable and unreliable streams (§4.2).
//!
//! QUIC\* supports two stream classes:
//!
//! - **Reliable** streams behave like vanilla QUIC: lost data is
//!   retransmitted, and the receiver delivers bytes in order.
//! - **Unreliable** streams never retransmit at the transport layer; lost
//!   ranges are *reported upward* ("we gather the loss information in the
//!   QUIC transport layer and pass it up to the application layer"), and the
//!   receiver exposes whatever arrived, with precisely known holes, so the
//!   application can zero-pad or selectively re-request.
//!
//! Both classes are congestion-controlled and flow-controlled identically.

use crate::range::RangeSet;
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Stream identifier. Client-initiated streams use even ids, server-initiated
/// odd ids (so the two endpoints never collide when opening).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Reliability class of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reliability {
    /// Vanilla QUIC stream: retransmit until acknowledged.
    Reliable,
    /// QUIC* stream: no transport retransmissions; losses reported to app.
    Unreliable,
}

/// The sending half of a stream.
#[derive(Debug)]
pub struct SendStream {
    /// The stream id.
    pub id: StreamId,
    /// Reliability class.
    pub reliability: Reliability,
    /// All bytes written so far (kept for retransmission slicing).
    buffer: Vec<u8>,
    /// Next never-sent offset.
    next_send: u64,
    /// Ranges queued for (re)transmission ahead of new data.
    retransmit: VecDeque<(u64, u64)>,
    /// Ranges acknowledged by the peer.
    acked: RangeSet,
    /// Total length once finished.
    fin_offset: Option<u64>,
    /// Whether a frame carrying fin has been sent at least once.
    fin_sent: bool,
    /// Whether fin has been acknowledged.
    fin_acked: bool,
    /// Lost ranges on an unreliable stream, awaiting app pickup.
    loss_reports: Vec<(u64, u64)>,
    /// Peer's flow-control limit for this stream.
    max_stream_data: u64,
}

/// Default per-stream flow-control window (generous; the experiments are
/// congestion-limited, not flow-limited, as in the paper's testbed).
pub const DEFAULT_STREAM_WINDOW: u64 = 16 * 1024 * 1024;

impl SendStream {
    /// New send stream.
    pub fn new(id: StreamId, reliability: Reliability) -> SendStream {
        SendStream {
            id,
            reliability,
            buffer: Vec::new(),
            next_send: 0,
            retransmit: VecDeque::new(),
            acked: RangeSet::new(),
            fin_offset: None,
            fin_sent: false,
            fin_acked: false,
            loss_reports: Vec::new(),
            max_stream_data: DEFAULT_STREAM_WINDOW,
        }
    }

    /// Append application data. Panics if the stream was finished.
    pub fn write(&mut self, data: &[u8]) {
        assert!(self.fin_offset.is_none(), "write after finish");
        self.buffer.extend_from_slice(data);
    }

    /// Mark the stream finished at the current length.
    pub fn finish(&mut self) {
        self.fin_offset = Some(self.buffer.len() as u64);
    }

    /// Whether all data (and fin) has been sent at least once.
    pub fn is_drained(&self) -> bool {
        self.retransmit.is_empty()
            && self.next_send >= self.buffer.len() as u64
            && (self.fin_offset.is_none() || self.fin_sent)
    }

    /// Whether delivery is complete: for reliable streams, everything
    /// acknowledged; for unreliable streams, everything sent once.
    pub fn is_complete(&self) -> bool {
        match self.reliability {
            Reliability::Reliable => {
                self.fin_acked
                    && self
                        .fin_offset
                        .is_some_and(|fo| self.acked.covers(0, fo) || fo == 0)
            }
            Reliability::Unreliable => self.is_drained(),
        }
    }

    /// Update the peer's flow-control limit.
    pub fn set_max_stream_data(&mut self, limit: u64) {
        self.max_stream_data = self.max_stream_data.max(limit);
    }

    /// Bytes the app has written but that were never sent yet.
    pub fn unsent_bytes(&self) -> u64 {
        self.buffer.len() as u64 - self.next_send
    }

    /// Whether the stream has anything to put on the wire right now.
    pub fn wants_to_send(&self) -> bool {
        if !self.retransmit.is_empty() {
            return true;
        }
        if self.next_send < (self.buffer.len() as u64).min(self.max_stream_data) {
            return true;
        }
        self.fin_offset.is_some() && !self.fin_sent
    }

    /// Produce the next chunk to send, at most `max_len` bytes.
    ///
    /// Retransmissions (reliable streams only) take priority over new data.
    /// Returns `(offset, data, fin)`.
    pub fn next_chunk(&mut self, max_len: usize) -> Option<(u64, Bytes, bool)> {
        if max_len == 0 {
            return None;
        }
        // Retransmissions first.
        if let Some((start, end)) = self.retransmit.pop_front() {
            let len = ((end - start) as usize).min(max_len);
            let chunk_end = start + len as u64;
            if chunk_end < end {
                self.retransmit.push_front((chunk_end, end));
            }
            let data = Bytes::copy_from_slice(&self.buffer[start as usize..chunk_end as usize]);
            let fin = self.fin_offset == Some(chunk_end) && chunk_end == self.buffer.len() as u64;
            return Some((start, data, fin));
        }
        // New data, respecting flow control.
        let limit = (self.buffer.len() as u64).min(self.max_stream_data);
        if self.next_send < limit {
            let start = self.next_send;
            let len = ((limit - start) as usize).min(max_len);
            let end = start + len as u64;
            self.next_send = end;
            let data = Bytes::copy_from_slice(&self.buffer[start as usize..end as usize]);
            let fin = self.fin_offset == Some(end);
            if fin {
                self.fin_sent = true;
            }
            return Some((start, data, fin));
        }
        // Bare fin.
        if let Some(fo) = self.fin_offset {
            if !self.fin_sent && self.next_send >= fo {
                self.fin_sent = true;
                return Some((fo, Bytes::new(), true));
            }
        }
        None
    }

    /// A previously sent chunk was acknowledged.
    pub fn on_chunk_acked(&mut self, offset: u64, len: usize, fin: bool) {
        self.acked.insert(offset, offset + len as u64);
        if fin {
            self.fin_acked = true;
            // A spurious loss may have cleared `fin_sent` to schedule a
            // resend; the late ack proves delivery, so cancel it.
            self.fin_sent = true;
        }
    }

    /// A previously sent chunk was declared lost.
    ///
    /// Reliable: requeue for retransmission (unless already acked, e.g. a
    /// spurious loss). Unreliable: record a loss report for the application
    /// and *do not* retransmit.
    pub fn on_chunk_lost(&mut self, offset: u64, len: usize, fin: bool) {
        let end = offset + len as u64;
        match self.reliability {
            Reliability::Reliable => {
                if !self.acked.covers(offset, end) && len > 0 {
                    self.retransmit.push_back((offset, end));
                }
                if fin && !self.fin_acked {
                    self.fin_sent = false; // resend the fin marker
                }
            }
            Reliability::Unreliable => {
                if len > 0 {
                    self.loss_reports.push((offset, end));
                }
                // fin on unreliable streams: resend the (empty) fin marker so
                // the receiver learns the total length.
                if fin && !self.fin_acked {
                    self.fin_sent = false;
                }
            }
        }
    }

    /// Drain accumulated loss reports (unreliable streams).
    pub fn take_loss_reports(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.loss_reports)
    }

    /// Total bytes written by the application.
    pub fn len(&self) -> u64 {
        self.buffer.len() as u64
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Structural audit: send offsets stay monotonic and inside the
    /// written buffer, acked/retransmit ranges are well-formed, and fin
    /// (once declared) pins the stream length. Used by the `paranoid`
    /// runtime layer (DESIGN.md §10).
    pub fn check_invariants(&self) -> Result<(), String> {
        let len = self.buffer.len() as u64;
        if self.next_send > len {
            return Err(format!(
                "next_send {} beyond buffer len {len}",
                self.next_send
            ));
        }
        self.acked
            .check_invariants()
            .map_err(|e| format!("acked set: {e}"))?;
        if self.acked.max_end() > len {
            return Err(format!(
                "acked up to {} beyond buffer len {len}",
                self.acked.max_end()
            ));
        }
        if let Some(fin) = self.fin_offset {
            if fin != len {
                return Err(format!("fin_offset {fin} != buffer len {len}"));
            }
            if self.fin_acked && !self.fin_sent {
                return Err("fin acked but never sent".to_string());
            }
        }
        for &(s, e) in &self.retransmit {
            if s >= e || e > self.next_send {
                return Err(format!(
                    "retransmit range [{s}, {e}) outside sent data [0, {})",
                    self.next_send
                ));
            }
        }
        for &(s, e) in &self.loss_reports {
            if s >= e || e > self.next_send {
                return Err(format!(
                    "loss report [{s}, {e}) outside sent data [0, {})",
                    self.next_send
                ));
            }
        }
        Ok(())
    }
}

/// The receiving half of a stream.
#[derive(Debug)]
pub struct RecvStream {
    /// The stream id.
    pub id: StreamId,
    /// Reliability class (learned from the first frame).
    pub reliability: Reliability,
    /// Received ranges.
    received: RangeSet,
    /// Buffered data by offset (non-overlapping: new data is trimmed).
    chunks: BTreeMap<u64, Bytes>,
    /// In-order read cursor (reliable delivery).
    read_cursor: u64,
    /// Total stream length, once fin is seen.
    fin_offset: Option<u64>,
}

impl RecvStream {
    /// New receive stream.
    pub fn new(id: StreamId, reliability: Reliability) -> RecvStream {
        RecvStream {
            id,
            reliability,
            received: RangeSet::new(),
            chunks: BTreeMap::new(),
            read_cursor: 0,
            fin_offset: None,
        }
    }

    /// Ingest a STREAM frame's payload.
    pub fn on_data(&mut self, offset: u64, data: Bytes, fin: bool) {
        if fin {
            let end = offset + data.len() as u64;
            self.fin_offset = Some(self.fin_offset.map_or(end, |f| f.max(end)));
        }
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        if self.received.covers(offset, end) {
            return; // pure duplicate
        }
        // Trim against already-received sub-ranges by inserting gap pieces.
        let gaps: Vec<(u64, u64)> = {
            let mut sub = RangeSet::new();
            for (s, e) in self.received.iter() {
                let s = s.max(offset);
                let e = e.min(end);
                if s < e {
                    sub.insert(s - offset, e - offset);
                }
            }
            sub.gaps(data.len() as u64)
        };
        for (s, e) in gaps {
            let piece = data.slice(s as usize..e as usize);
            self.chunks.insert(offset + s, piece);
        }
        self.received.insert(offset, end);
    }

    /// Reliable read: return the next in-order bytes, if any.
    pub fn read(&mut self) -> Option<Bytes> {
        let (&start, _) = self.chunks.first_key_value()?;
        if start > self.read_cursor {
            return None; // gap at the cursor
        }
        let (start, chunk) = self.chunks.pop_first()?;
        // Drop any portion already read (possible after overlap trims).
        let skip = (self.read_cursor - start) as usize;
        self.read_cursor = start + chunk.len() as u64;
        Some(if skip > 0 { chunk.slice(skip..) } else { chunk })
    }

    /// Bytes received so far (distinct offsets).
    pub fn bytes_received(&self) -> u64 {
        self.received.covered_len()
    }

    /// Total length, if fin has been seen.
    pub fn final_len(&self) -> Option<u64> {
        self.fin_offset
    }

    /// Whether every byte up to fin has arrived.
    pub fn is_complete(&self) -> bool {
        match self.fin_offset {
            Some(fo) => self.received.covers(0, fo) || fo == 0,
            None => false,
        }
    }

    /// The holes in `[0, upto)` — for unreliable streams, the ranges the
    /// application may re-request or zero-pad (`upto` defaults to fin).
    pub fn missing_ranges(&self, upto: Option<u64>) -> Vec<(u64, u64)> {
        let upto = upto.or(self.fin_offset).unwrap_or(0);
        self.received.gaps(upto)
    }

    /// Drain everything received so far as `(offset, data)` pairs
    /// (unreliable delivery: the app assembles and zero-pads).
    pub fn take_received(&mut self) -> Vec<(u64, Bytes)> {
        std::mem::take(&mut self.chunks).into_iter().collect()
    }

    /// Received ranges, for inspection.
    pub fn received_ranges(&self) -> Vec<(u64, u64)> {
        self.received.iter().collect()
    }

    /// Structural audit: the read cursor never outruns the contiguous
    /// prefix, buffered chunks lie inside the received set, and nothing
    /// arrives beyond fin. Used by the `paranoid` runtime layer.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.received
            .check_invariants()
            .map_err(|e| format!("received set: {e}"))?;
        if self.read_cursor > self.received.prefix_len() {
            return Err(format!(
                "read_cursor {} beyond contiguous prefix {}",
                self.read_cursor,
                self.received.prefix_len()
            ));
        }
        if let Some(fin) = self.fin_offset {
            if self.received.max_end() > fin {
                return Err(format!(
                    "received up to {} beyond fin {fin}",
                    self.received.max_end()
                ));
            }
        }
        for (&off, chunk) in &self.chunks {
            let end = off + chunk.len() as u64;
            if !self.received.covers(off, end) {
                return Err(format!(
                    "buffered chunk [{off}, {end}) not in the received set"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_send_produces_sequential_chunks() {
        let mut s = SendStream::new(StreamId(0), Reliability::Reliable);
        s.write(&[1u8; 2500]);
        s.finish();
        let (o1, d1, f1) = s.next_chunk(1000).unwrap();
        let (o2, d2, f2) = s.next_chunk(1000).unwrap();
        let (o3, d3, f3) = s.next_chunk(1000).unwrap();
        assert_eq!((o1, d1.len(), f1), (0, 1000, false));
        assert_eq!((o2, d2.len(), f2), (1000, 1000, false));
        assert_eq!((o3, d3.len(), f3), (2000, 500, true));
        assert!(s.next_chunk(1000).is_none());
        assert!(s.is_drained());
    }

    #[test]
    fn lost_reliable_chunks_are_retransmitted_first() {
        let mut s = SendStream::new(StreamId(0), Reliability::Reliable);
        s.write(&[7u8; 3000]);
        s.finish();
        let _ = s.next_chunk(1000).unwrap();
        let _ = s.next_chunk(1000).unwrap();
        s.on_chunk_lost(0, 1000, false);
        // Retransmission takes priority over the remaining new data.
        let (o, d, _) = s.next_chunk(600).unwrap();
        assert_eq!((o, d.len()), (0, 600));
        let (o, d, _) = s.next_chunk(600).unwrap();
        assert_eq!((o, d.len()), (600, 400));
        // Then new data resumes.
        let (o, _, fin) = s.next_chunk(2000).unwrap();
        assert_eq!(o, 2000);
        assert!(fin);
    }

    #[test]
    fn spurious_loss_after_ack_is_not_retransmitted() {
        let mut s = SendStream::new(StreamId(0), Reliability::Reliable);
        s.write(&[7u8; 1000]);
        s.finish();
        let _ = s.next_chunk(1000).unwrap();
        s.on_chunk_acked(0, 1000, true);
        s.on_chunk_lost(0, 1000, false);
        assert!(s.next_chunk(1000).is_none());
        assert!(s.is_complete());
    }

    #[test]
    fn unreliable_losses_become_reports_not_retransmissions() {
        let mut s = SendStream::new(StreamId(2), Reliability::Unreliable);
        s.write(&[7u8; 2000]);
        s.finish();
        let _ = s.next_chunk(1000).unwrap();
        let _ = s.next_chunk(1000).unwrap();
        s.on_chunk_lost(0, 1000, false);
        s.on_chunk_lost(1500, 500, false);
        assert!(s.next_chunk(1000).is_none(), "no transport retransmission");
        assert_eq!(s.take_loss_reports(), vec![(0, 1000), (1500, 2000)]);
        assert!(s.take_loss_reports().is_empty(), "reports drain once");
        assert!(s.is_complete(), "unreliable completes on drain");
    }

    #[test]
    fn reliable_completion_requires_full_ack() {
        let mut s = SendStream::new(StreamId(0), Reliability::Reliable);
        s.write(&[7u8; 1500]);
        s.finish();
        let (o1, d1, _) = s.next_chunk(1000).unwrap();
        let (o2, d2, f2) = s.next_chunk(1000).unwrap();
        assert!(!s.is_complete());
        s.on_chunk_acked(o1, d1.len(), false);
        assert!(!s.is_complete());
        s.on_chunk_acked(o2, d2.len(), f2);
        assert!(s.is_complete());
    }

    #[test]
    fn flow_control_blocks_new_data() {
        let mut s = SendStream::new(StreamId(0), Reliability::Reliable);
        s.write(&[1u8; 100]);
        s.max_stream_data = 50;
        let (_, d, _) = s.next_chunk(1000).unwrap();
        assert_eq!(d.len(), 50);
        assert!(s.next_chunk(1000).is_none(), "blocked at the limit");
        s.set_max_stream_data(100);
        let (o, d, _) = s.next_chunk(1000).unwrap();
        assert_eq!((o, d.len()), (50, 50));
    }

    #[test]
    fn bare_fin_on_empty_stream() {
        let mut s = SendStream::new(StreamId(4), Reliability::Reliable);
        s.finish();
        let (o, d, fin) = s.next_chunk(100).unwrap();
        assert_eq!((o, d.len(), fin), (0, 0, true));
        s.on_chunk_acked(0, 0, true);
        assert!(s.is_complete());
    }

    #[test]
    fn recv_in_order_delivery() {
        let mut r = RecvStream::new(StreamId(0), Reliability::Reliable);
        r.on_data(0, Bytes::from_static(b"hello "), false);
        r.on_data(6, Bytes::from_static(b"world"), true);
        assert_eq!(r.read().unwrap(), Bytes::from_static(b"hello "));
        assert_eq!(r.read().unwrap(), Bytes::from_static(b"world"));
        assert!(r.read().is_none());
        assert!(r.is_complete());
        assert_eq!(r.final_len(), Some(11));
    }

    #[test]
    fn recv_blocks_on_gap_then_delivers() {
        let mut r = RecvStream::new(StreamId(0), Reliability::Reliable);
        r.on_data(6, Bytes::from_static(b"world"), false);
        assert!(r.read().is_none(), "gap at offset 0");
        r.on_data(0, Bytes::from_static(b"hello "), false);
        assert_eq!(r.read().unwrap(), Bytes::from_static(b"hello "));
        assert_eq!(r.read().unwrap(), Bytes::from_static(b"world"));
    }

    #[test]
    fn recv_duplicates_and_overlaps_are_trimmed() {
        let mut r = RecvStream::new(StreamId(0), Reliability::Reliable);
        r.on_data(0, Bytes::from_static(b"abcd"), false);
        r.on_data(0, Bytes::from_static(b"abcd"), false); // dup
        r.on_data(2, Bytes::from_static(b"cdef"), false); // overlap
        assert_eq!(r.bytes_received(), 6);
        let mut all = Vec::new();
        while let Some(b) = r.read() {
            all.extend_from_slice(&b);
        }
        assert_eq!(&all, b"abcdef");
    }

    #[test]
    fn unreliable_recv_reports_missing_ranges() {
        let mut r = RecvStream::new(StreamId(2), Reliability::Unreliable);
        r.on_data(1000, Bytes::from(vec![1u8; 500]), false);
        r.on_data(2500, Bytes::from(vec![2u8; 500]), true);
        assert_eq!(r.final_len(), Some(3000));
        assert!(!r.is_complete());
        assert_eq!(r.missing_ranges(None), vec![(0, 1000), (1500, 2500)]);
        let chunks = r.take_received();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, 1000);
        assert_eq!(chunks[1].0, 2500);
    }

    #[test]
    fn fin_without_data_sets_length() {
        let mut r = RecvStream::new(StreamId(2), Reliability::Unreliable);
        r.on_data(5000, Bytes::new(), true);
        assert_eq!(r.final_len(), Some(5000));
        assert_eq!(r.missing_ranges(None), vec![(0, 5000)]);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Whatever order reliable chunks (with losses + retransmits)
            /// arrive in, the receiver reconstructs the exact byte stream.
            #[test]
            fn reliable_stream_reassembles(
                len in 1usize..5000,
                chunk in 1usize..700,
                seed in 0u64..1000,
            ) {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let mut s = SendStream::new(StreamId(0), Reliability::Reliable);
                s.write(&data);
                s.finish();
                let mut r = RecvStream::new(StreamId(0), Reliability::Reliable);
                let mut inflight: Vec<(u64, Bytes, bool)> = Vec::new();
                loop {
                    // Randomly send, lose, or deliver.
                    if let Some(c) = s.next_chunk(chunk) {
                        if rng.gen_bool(0.3) {
                            s.on_chunk_lost(c.0, c.1.len(), c.2);
                        } else {
                            inflight.push(c);
                        }
                    } else if let Some(i) = (!inflight.is_empty())
                        .then(|| rng.gen_range(0..inflight.len()))
                    {
                        let (o, d, f) = inflight.remove(i);
                        r.on_data(o, d.clone(), f);
                        s.on_chunk_acked(o, d.len(), f);
                    } else {
                        break;
                    }
                }
                prop_assert!(r.is_complete());
                let mut got = Vec::new();
                while let Some(b) = r.read() {
                    got.extend_from_slice(&b);
                }
                prop_assert_eq!(got, data);
                prop_assert!(s.is_complete());
            }
        }
    }
}
