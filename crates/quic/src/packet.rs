//! QUIC\* packets: a short header (packet number) plus a sequence of frames.

use crate::frame::Frame;
use crate::varint;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Fixed per-packet overhead on the wire: IPv4 (20) + UDP (8) headers, the
/// QUIC short header byte, connection ID (8) and AEAD tag (16).
pub const PACKET_OVERHEAD: usize = 53;

/// Maximum UDP payload the simulator uses (QUIC's conservative default).
pub const MAX_PAYLOAD: usize = 1350;

/// A QUIC\* packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Monotonically increasing packet number.
    pub pkt_num: u64,
    /// The frames carried.
    pub frames: Vec<Frame>,
}

impl Packet {
    /// Create a packet.
    pub fn new(pkt_num: u64, frames: Vec<Frame>) -> Packet {
        Packet { pkt_num, frames }
    }

    /// Whether any frame elicits an acknowledgement.
    pub fn is_ack_eliciting(&self) -> bool {
        self.frames.iter().any(Frame::is_ack_eliciting)
    }

    /// Encoded payload size (header + frames, excluding [`PACKET_OVERHEAD`]).
    pub fn payload_size(&self) -> usize {
        1 + varint::size(self.pkt_num) + self.frames.iter().map(Frame::size).sum::<usize>()
    }

    /// Total simulated wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.payload_size() + PACKET_OVERHEAD
    }

    /// Encode to bytes (header + frames).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.payload_size());
        buf.put_u8(0x40); // short-header form bit
        varint::write(&mut buf, self.pkt_num);
        for f in &self.frames {
            f.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Decode from bytes; `None` on malformed input.
    pub fn decode(mut buf: Bytes) -> Option<Packet> {
        if buf.remaining() < 1 || buf.chunk()[0] != 0x40 {
            return None;
        }
        buf.advance(1);
        let pkt_num = varint::read(&mut buf)?;
        let mut frames = Vec::new();
        while buf.remaining() > 0 {
            frames.push(Frame::decode(&mut buf)?);
        }
        Some(Packet { pkt_num, frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamId;

    fn sample() -> Packet {
        Packet::new(
            77,
            vec![
                Frame::Ack {
                    ranges: vec![(10, 20)],
                    delay_us: 100,
                },
                Frame::Stream {
                    id: StreamId(4),
                    offset: 9000,
                    fin: false,
                    unreliable: true,
                    data: Bytes::from_static(&[0xab; 100]),
                },
            ],
        )
    }

    #[test]
    fn roundtrips() {
        let p = sample();
        let encoded = p.encode();
        assert_eq!(encoded.len(), p.payload_size());
        let decoded = Packet::decode(encoded).expect("decodes");
        assert_eq!(decoded, p);
    }

    #[test]
    fn wire_size_includes_overhead() {
        let p = sample();
        assert_eq!(p.wire_size(), p.payload_size() + PACKET_OVERHEAD);
    }

    #[test]
    fn ack_only_packet_is_not_ack_eliciting() {
        let p = Packet::new(
            1,
            vec![Frame::Ack {
                ranges: vec![(0, 0)],
                delay_us: 0,
            }],
        );
        assert!(!p.is_ack_eliciting());
        assert!(sample().is_ack_eliciting());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Packet::decode(Bytes::from_static(&[])).is_none());
        assert!(Packet::decode(Bytes::from_static(&[0x00, 0x01])).is_none());
        // Valid header but garbage frame type.
        assert!(Packet::decode(Bytes::from_static(&[0x40, 0x05, 0x3f])).is_none());
    }

    #[test]
    fn empty_frame_list_roundtrips() {
        let p = Packet::new(0, vec![]);
        let d = Packet::decode(p.encode()).unwrap();
        assert_eq!(d, p);
    }
}
