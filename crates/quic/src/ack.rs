//! ACK-range tracking and delayed-ACK policy.

use crate::frame::AckRange;
use voxel_sim::{SimDuration, SimTime};

/// Tracks received packet numbers and decides when to emit ACK frames.
#[derive(Debug, Clone, Default)]
pub struct AckTracker {
    /// Received ranges, sorted ascending, non-overlapping, non-adjacent.
    ranges: Vec<AckRange>,
    /// Arrival time of the largest received packet (for the delay field).
    largest_arrival: Option<(u64, SimTime)>,
    /// Ack-eliciting packets received since the last ACK was sent.
    unacked_eliciting: usize,
    /// Deadline by which an ACK must go out, if any.
    ack_deadline: Option<SimTime>,
}

/// Send an ACK after this many ack-eliciting packets even before the delay
/// expires (QUIC's every-other-packet policy).
const ACK_ELICITING_THRESHOLD: usize = 2;

/// Maximum time to hold an ACK.
pub const MAX_ACK_DELAY: SimDuration = SimDuration::from_millis(25);

impl AckTracker {
    /// Fresh tracker.
    pub fn new() -> AckTracker {
        AckTracker::default()
    }

    /// Record receipt of packet `pn` at `now`. Returns `false` if it was a
    /// duplicate.
    pub fn on_packet(&mut self, pn: u64, now: SimTime, ack_eliciting: bool) -> bool {
        if self.contains(pn) {
            return false;
        }
        self.insert(pn);
        match self.largest_arrival {
            Some((largest, _)) if largest > pn => {}
            _ => self.largest_arrival = Some((pn, now)),
        }
        if ack_eliciting {
            self.unacked_eliciting += 1;
            let deadline = now + MAX_ACK_DELAY;
            self.ack_deadline = Some(match self.ack_deadline {
                Some(d) => d.min(deadline),
                None => deadline,
            });
        }
        true
    }

    /// Largest packet number seen so far, if any (lets the connection
    /// classify below-largest arrivals as reordered).
    pub fn largest_seen(&self) -> Option<u64> {
        self.largest_arrival.map(|(pn, _)| pn)
    }

    fn contains(&self, pn: u64) -> bool {
        self.ranges.iter().any(|&(a, b)| (a..=b).contains(&pn))
    }

    fn insert(&mut self, pn: u64) {
        let pos = self.ranges.partition_point(|&(_, b)| b + 1 < pn);
        if pos < self.ranges.len() && self.ranges[pos].0 <= pn + 1 {
            // Extend this range.
            let (a, b) = self.ranges[pos];
            self.ranges[pos] = (a.min(pn), b.max(pn));
            // Merge with the next if now adjacent.
            if pos + 1 < self.ranges.len() && self.ranges[pos].1 + 1 >= self.ranges[pos + 1].0 {
                let (na, nb) = self.ranges[pos + 1];
                self.ranges[pos] = (self.ranges[pos].0.min(na), self.ranges[pos].1.max(nb));
                self.ranges.remove(pos + 1);
            }
        } else {
            self.ranges.insert(pos, (pn, pn));
        }
    }

    /// Whether an ACK should be emitted at `now`.
    pub fn should_ack(&self, now: SimTime) -> bool {
        self.unacked_eliciting >= ACK_ELICITING_THRESHOLD
            || matches!(self.ack_deadline, Some(d) if d <= now)
    }

    /// The pending ACK deadline, if an ACK is owed.
    pub fn deadline(&self) -> Option<SimTime> {
        self.ack_deadline
    }

    /// Build the ACK frame contents (ranges highest-first + delay) and reset
    /// the delayed-ack state. Returns `None` if nothing was ever received.
    pub fn take_ack(&mut self, now: SimTime) -> Option<(Vec<AckRange>, u64)> {
        if self.ranges.is_empty() {
            return None;
        }
        self.unacked_eliciting = 0;
        self.ack_deadline = None;
        let mut ranges: Vec<AckRange> = self.ranges.iter().rev().copied().collect();
        // Bound the frame size: keep the 32 most recent ranges.
        ranges.truncate(32);
        let delay = match self.largest_arrival {
            Some((_, at)) => now.saturating_since(at).as_micros(),
            None => 0,
        };
        Some((ranges, delay))
    }

    /// Received ranges (ascending), for inspection.
    pub fn ranges(&self) -> &[AckRange] {
        &self.ranges
    }

    /// Structural audit: inclusive ranges are well-formed, sorted
    /// ascending, and non-adjacent (adjacent runs must have merged).
    /// Used by the `paranoid` runtime layer and the property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for &(s, e) in &self.ranges {
            if s > e {
                return Err(format!("inverted ack range [{s}, {e}]"));
            }
        }
        for w in self.ranges.windows(2) {
            if w[0].1 + 1 >= w[1].0 {
                return Err(format!(
                    "ack ranges not sorted/merged: [{}, {}] then [{}, {}]",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        if let Some((largest, _)) = self.largest_arrival {
            let max_tracked = self.ranges.last().map(|&(_, e)| e).unwrap_or(0);
            if largest > max_tracked {
                return Err(format!(
                    "largest arrival {largest} beyond tracked ranges (max {max_tracked})"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_merge_into_ranges() {
        let mut t = AckTracker::new();
        for pn in [1, 2, 3, 7, 8, 5] {
            assert!(t.on_packet(pn, SimTime::ZERO, true));
        }
        assert_eq!(t.ranges(), &[(1, 3), (5, 5), (7, 8)]);
        // Fill the gap: 4 merges 1-3 and 5-5, then 6 merges everything.
        t.on_packet(4, SimTime::ZERO, true);
        assert_eq!(t.ranges(), &[(1, 5), (7, 8)]);
        t.on_packet(6, SimTime::ZERO, true);
        assert_eq!(t.ranges(), &[(1, 8)]);
    }

    #[test]
    fn duplicates_are_detected() {
        let mut t = AckTracker::new();
        assert!(t.on_packet(5, SimTime::ZERO, true));
        assert!(!t.on_packet(5, SimTime::ZERO, true));
    }

    #[test]
    fn ack_after_two_eliciting_packets() {
        let mut t = AckTracker::new();
        t.on_packet(0, SimTime::ZERO, true);
        assert!(!t.should_ack(SimTime::ZERO));
        t.on_packet(1, SimTime::ZERO, true);
        assert!(t.should_ack(SimTime::ZERO));
    }

    #[test]
    fn ack_after_delay_expires() {
        let mut t = AckTracker::new();
        t.on_packet(0, SimTime::ZERO, true);
        assert!(!t.should_ack(SimTime::from_millis(10)));
        assert!(t.should_ack(SimTime::from_millis(25)));
        assert_eq!(t.deadline(), Some(SimTime::ZERO + MAX_ACK_DELAY));
    }

    #[test]
    fn non_eliciting_packets_do_not_schedule_acks() {
        let mut t = AckTracker::new();
        t.on_packet(0, SimTime::ZERO, false);
        t.on_packet(1, SimTime::ZERO, false);
        assert!(!t.should_ack(SimTime::from_secs(10)));
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn take_ack_returns_descending_ranges_and_resets() {
        let mut t = AckTracker::new();
        for pn in [0, 1, 5, 6, 9] {
            t.on_packet(pn, SimTime::from_millis(pn), true);
        }
        let (ranges, delay) = t.take_ack(SimTime::from_millis(19)).unwrap();
        assert_eq!(ranges, vec![(9, 9), (5, 6), (0, 1)]);
        // Largest (pn 9) arrived at t=9ms, acked at 19ms → 10ms delay.
        assert_eq!(delay, 10_000);
        assert!(!t.should_ack(SimTime::from_secs(1)));
        // Ranges persist for future ACKs.
        assert_eq!(t.ranges(), &[(0, 1), (5, 6), (9, 9)]);
    }

    #[test]
    fn take_ack_on_empty_returns_none() {
        let mut t = AckTracker::new();
        assert!(t.take_ack(SimTime::ZERO).is_none());
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn ranges_stay_sorted_disjoint(pns in proptest::collection::vec(0u64..200, 1..100)) {
                let mut t = AckTracker::new();
                for pn in &pns {
                    t.on_packet(*pn, SimTime::ZERO, true);
                }
                let ranges = t.ranges();
                for w in ranges.windows(2) {
                    // Sorted, disjoint and non-adjacent.
                    prop_assert!(w[0].1 + 1 < w[1].0, "ranges {:?}", ranges);
                }
                prop_assert!(t.check_invariants().is_ok(), "{:?}", t.check_invariants());
                // Every inserted pn is covered.
                for pn in &pns {
                    prop_assert!(ranges.iter().any(|&(a, b)| (a..=b).contains(pn)));
                }
                // Total coverage equals the number of distinct pns.
                let mut distinct = pns.clone();
                distinct.sort_unstable();
                distinct.dedup();
                let covered: u64 = ranges.iter().map(|&(a, b)| b - a + 1).sum();
                prop_assert_eq!(covered, distinct.len() as u64);
            }
        }
    }
}
