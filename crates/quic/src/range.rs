//! A set of non-overlapping byte ranges `[start, end)` over `u64` offsets.
//!
//! Used for tracking received/acked stream data and computing the "holes"
//! that QUIC\* reports to the application for selective re-request (§4.2).

/// Sorted, coalesced set of half-open ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// Empty set.
    pub fn new() -> RangeSet {
        RangeSet::default()
    }

    /// Insert `[start, end)`; overlapping/adjacent ranges coalesce.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut new_start = start;
        let mut new_end = end;
        // Find all ranges overlapping or adjacent to [start, end).
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let mut hi = lo;
        while hi < self.ranges.len() && self.ranges[hi].0 <= end {
            new_start = new_start.min(self.ranges[hi].0);
            new_end = new_end.max(self.ranges[hi].1);
            hi += 1;
        }
        self.ranges
            .splice(lo..hi, std::iter::once((new_start, new_end)));
    }

    /// Whether the whole `[start, end)` is covered.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        match self.ranges.iter().find(|&&(s, e)| s <= start && start < e) {
            Some(&(_, e)) => end <= e,
            None => false,
        }
    }

    /// Whether `offset` is in the set.
    pub fn contains(&self, offset: u64) -> bool {
        self.covers(offset, offset + 1)
    }

    /// Total number of covered bytes.
    pub fn covered_len(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// The gaps (uncovered ranges) within `[0, upto)`.
    pub fn gaps(&self, upto: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for &(s, e) in &self.ranges {
            if s >= upto {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(upto)));
            }
            cursor = cursor.max(e);
        }
        if cursor < upto {
            out.push((cursor, upto));
        }
        out
    }

    /// Length of the covered prefix starting at offset 0.
    pub fn prefix_len(&self) -> u64 {
        match self.ranges.first() {
            Some(&(0, e)) => e,
            _ => 0,
        }
    }

    /// End of the highest covered range (the receive high-water mark);
    /// 0 when empty.
    pub fn max_end(&self) -> u64 {
        self.ranges.last().map(|&(_, e)| e).unwrap_or(0)
    }

    /// Number of covered bytes within `[start, end)`.
    pub fn covered_within(&self, start: u64, end: u64) -> u64 {
        self.ranges
            .iter()
            .map(|&(s, e)| {
                let s = s.max(start);
                let e = e.min(end);
                e.saturating_sub(s)
            })
            .sum()
    }

    /// The ranges, for iteration.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().copied()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Structural audit: ranges are non-empty, sorted ascending, and
    /// coalesced (disjoint with a gap between neighbours). Used by the
    /// `paranoid` runtime layer and the property tests (DESIGN.md §10).
    pub fn check_invariants(&self) -> Result<(), String> {
        for &(s, e) in &self.ranges {
            if s >= e {
                return Err(format!("empty or inverted range [{s}, {e})"));
            }
        }
        for w in self.ranges.windows(2) {
            if w[0].1 >= w[1].0 {
                return Err(format!(
                    "ranges not sorted/coalesced: [{}, {}) then [{}, {})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_coalesce() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        s.insert(20, 30); // bridges the two
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(10, 40)]);
        assert_eq!(s.covered_len(), 30);
    }

    #[test]
    fn overlapping_inserts_merge() {
        let mut s = RangeSet::new();
        s.insert(0, 100);
        s.insert(50, 150);
        s.insert(200, 300);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 150), (200, 300)]);
    }

    #[test]
    fn empty_insert_is_ignored() {
        let mut s = RangeSet::new();
        s.insert(5, 5);
        assert!(s.is_empty());
        assert_eq!(s.covered_len(), 0);
    }

    #[test]
    fn covers_and_contains() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        assert!(s.covers(10, 20));
        assert!(s.covers(12, 18));
        assert!(!s.covers(5, 15));
        assert!(!s.covers(15, 25));
        assert!(s.contains(19));
        assert!(!s.contains(20));
        assert!(s.covers(7, 7), "empty range is vacuously covered");
    }

    #[test]
    fn gaps_reports_holes() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.gaps(50), vec![(0, 10), (20, 30), (40, 50)]);
        assert_eq!(s.gaps(35), vec![(0, 10), (20, 30)]);
        assert_eq!(s.gaps(5), vec![(0, 5)]);
        assert_eq!(RangeSet::new().gaps(10), vec![(0, 10)]);
    }

    #[test]
    fn gaps_of_complete_prefix_is_empty() {
        let mut s = RangeSet::new();
        s.insert(0, 100);
        assert!(s.gaps(100).is_empty());
        assert_eq!(s.prefix_len(), 100);
    }

    #[test]
    fn max_end_tracks_high_water_mark() {
        let mut s = RangeSet::new();
        assert_eq!(s.max_end(), 0);
        s.insert(10, 20);
        s.insert(50, 60);
        assert_eq!(s.max_end(), 60);
    }

    #[test]
    fn covered_within_intersects() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.covered_within(0, 50), 20);
        assert_eq!(s.covered_within(15, 35), 10);
        assert_eq!(s.covered_within(20, 30), 0);
        assert_eq!(s.covered_within(12, 18), 6);
    }

    #[test]
    fn prefix_len_requires_zero_start() {
        let mut s = RangeSet::new();
        s.insert(5, 10);
        assert_eq!(s.prefix_len(), 0);
        s.insert(0, 5);
        assert_eq!(s.prefix_len(), 10);
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn invariants_hold(ops in proptest::collection::vec((0u64..500, 0u64..100), 0..100)) {
                let mut s = RangeSet::new();
                let mut reference = vec![false; 700];
                for (start, len) in ops {
                    s.insert(start, start + len);
                    for slot in reference.iter_mut().skip(start as usize).take(len as usize) {
                        *slot = true;
                    }
                }
                // Sorted, disjoint, non-adjacent.
                let rs: Vec<_> = s.iter().collect();
                for w in rs.windows(2) {
                    prop_assert!(w[0].1 < w[1].0);
                }
                prop_assert!(s.check_invariants().is_ok(), "{:?}", s.check_invariants());
                // Covered length matches the reference bitmap.
                let expected = reference.iter().filter(|&&b| b).count() as u64;
                prop_assert_eq!(s.covered_len(), expected);
                // Point membership matches.
                for (i, &bit) in reference.iter().enumerate() {
                    prop_assert_eq!(s.contains(i as u64), bit, "offset {}", i);
                }
                // Gaps + covered = total.
                let gap_total: u64 = s.gaps(700).iter().map(|(a, b)| b - a).sum();
                prop_assert_eq!(gap_total + s.covered_len(), 700);
            }
        }
    }
}
