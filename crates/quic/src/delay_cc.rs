//! A delay-based congestion controller (BBR-flavored).
//!
//! Appendix B of the paper observes that deep droptail queues (the
//! 750-packet cached-on-LTE scenario) "pose a challenge for loss-based CC"
//! and states: "in future work, VOXEL should be evaluated with a delay
//! based CC". This module is that evaluation's substrate — a compact
//! model-based controller in the BBR family:
//!
//! - a windowed **max filter** over delivery-rate samples estimates the
//!   bottleneck bandwidth,
//! - a windowed **min filter** over RTT samples estimates the propagation
//!   delay,
//! - the congestion window is `gain x BDP`, with a small cyclic gain
//!   schedule that alternately probes for more bandwidth (1.25x) and
//!   drains the queue it created (0.75x),
//! - packet loss does **not** multiplicatively decrease the window — the
//!   model, not loss, regulates it (the whole point against bufferbloat).
//!
//! `fig16` compares VOXEL over CUBIC vs over this controller on the
//! 750-packet queue.

use voxel_sim::{SimDuration, SimTime};

/// Gain cycle (one step per estimated RTT), BBR's ProbeBW schedule.
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// Window length for the bandwidth max-filter, in gain-cycle steps.
const BW_WINDOW: usize = 10;

/// Window length for the min-RTT filter.
const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// The delay-based controller.
#[derive(Debug, Clone)]
pub struct DelayCc {
    mss: usize,
    /// Bottleneck-bandwidth samples (bytes/sec), newest last.
    bw_samples: Vec<(u64, f64)>,
    /// Monotone sample counter (windowing key for `bw_samples`).
    round: u64,
    /// Windowed minimum RTT and when it was observed.
    min_rtt: SimDuration,
    min_rtt_at: SimTime,
    /// Bytes acked since the current rate-sample epoch began.
    epoch_bytes: u64,
    epoch_start: Option<SimTime>,
    /// Position in the gain cycle and when it last advanced.
    cycle_idx: usize,
    cycle_advanced: SimTime,
    in_flight: usize,
    /// Cached window (recomputed on each ack).
    cwnd: usize,
}

impl DelayCc {
    /// New controller.
    pub fn new(mss: usize) -> DelayCc {
        DelayCc {
            mss,
            bw_samples: Vec::new(),
            round: 0,
            min_rtt: SimDuration::from_millis(100),
            min_rtt_at: SimTime::ZERO,
            epoch_bytes: 0,
            epoch_start: None,
            cycle_idx: 0,
            cycle_advanced: SimTime::ZERO,
            in_flight: 0,
            cwnd: 10 * mss,
        }
    }

    /// Current window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    /// Bytes in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether `bytes` more may enter the network.
    pub fn can_send(&self, bytes: usize) -> bool {
        self.in_flight + bytes <= self.cwnd
    }

    /// Estimated bottleneck bandwidth in bytes/second.
    pub fn btl_bw(&self) -> f64 {
        self.bw_samples
            .iter()
            .map(|&(_, bw)| bw)
            .fold(0.0, f64::max)
    }

    /// A packet entered the network.
    pub fn on_sent(&mut self, bytes: usize) {
        self.in_flight += bytes;
    }

    /// A packet was acknowledged; `rtt_sample` is the latest RTT
    /// measurement (pre-smoothing — delay CC wants the raw signal).
    pub fn on_ack(&mut self, now: SimTime, bytes: usize, rtt_sample: SimDuration) {
        self.in_flight = self.in_flight.saturating_sub(bytes);

        // Min-RTT filter with expiry.
        if rtt_sample < self.min_rtt || now.saturating_since(self.min_rtt_at) > MIN_RTT_WINDOW {
            self.min_rtt = rtt_sample;
            self.min_rtt_at = now;
        }

        // Delivery-rate sampling over ~1 RTT epochs.
        self.epoch_bytes += bytes as u64;
        let epoch_start = *self.epoch_start.get_or_insert(now);
        let elapsed = now.saturating_since(epoch_start);
        if elapsed >= self.min_rtt.max(SimDuration::from_millis(5)) {
            let rate = self.epoch_bytes as f64 / elapsed.as_secs_f64().max(1e-6);
            self.round += 1;
            self.bw_samples.push((self.round, rate));
            let horizon = self.round.saturating_sub(BW_WINDOW as u64);
            self.bw_samples.retain(|&(r, _)| r > horizon);
            self.epoch_bytes = 0;
            self.epoch_start = Some(now);
        }

        // Advance the gain cycle once per min-RTT.
        if now.saturating_since(self.cycle_advanced) >= self.min_rtt {
            self.cycle_idx = (self.cycle_idx + 1) % GAIN_CYCLE.len();
            self.cycle_advanced = now;
        }

        // Window = gain x BDP, floored to keep the pipe busy during startup.
        let bdp = self.btl_bw() * self.min_rtt.as_secs_f64();
        let gain = GAIN_CYCLE[self.cycle_idx];
        // cwnd-gain of 2x BDP (BBR default) bounds queue build-up while
        // allowing ack-clocking slack; the probe gain modulates it.
        let target = (2.0 * gain * bdp).max((4 * self.mss) as f64);
        // Startup: until we have bandwidth samples, grow like slow start.
        self.cwnd = if self.bw_samples.is_empty() {
            self.cwnd + bytes
        } else {
            target as usize
        };
    }

    /// Losses leave the flight but do not collapse the model's window.
    pub fn on_loss(&mut self, _now: SimTime, bytes: usize) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
    }

    /// Repeated PTOs: the model is stale — restart from a modest window.
    pub fn on_persistent_congestion(&mut self) {
        self.bw_samples.clear();
        self.epoch_bytes = 0;
        self.epoch_start = None;
        self.cwnd = 4 * self.mss;
    }

    /// Remove unaccounted in-flight bytes (e.g. abandoned streams).
    pub fn forget_in_flight(&mut self, bytes: usize) {
        self.in_flight = self.in_flight.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: usize = 1350;

    /// Feed a steady 10 Mbps, 60 ms RTT ack stream.
    fn steady(cc: &mut DelayCc, secs: f64) {
        // 10 Mbps = 1.25 MB/s ≈ 926 packets/s → one ack every ~1.08 ms.
        let mut t = 0u64;
        let steps = (secs * 926.0) as u64;
        for _ in 0..steps {
            t += 1080;
            cc.on_sent(MSS);
            cc.on_ack(SimTime::from_micros(t), MSS, SimDuration::from_millis(60));
        }
    }

    #[test]
    fn startup_grows_like_slow_start() {
        let mut cc = DelayCc::new(MSS);
        let w0 = cc.cwnd();
        for i in 0..5 {
            cc.on_sent(MSS);
            cc.on_ack(
                SimTime::from_micros(i * 100),
                MSS,
                SimDuration::from_millis(60),
            );
        }
        assert!(cc.cwnd() > w0);
    }

    #[test]
    fn converges_to_bdp_scale_window() {
        let mut cc = DelayCc::new(MSS);
        steady(&mut cc, 3.0);
        // BDP at 10 Mbps x 60 ms = 75 kB; window = ~2x gain x BDP.
        let bdp = 75_000.0;
        let w = cc.cwnd() as f64;
        assert!(
            w > bdp && w < 4.0 * bdp,
            "cwnd {w} not within (1..4) x BDP {bdp}"
        );
        // Bandwidth estimate near 1.25 MB/s.
        let bw = cc.btl_bw();
        assert!((bw - 1.25e6).abs() / 1.25e6 < 0.3, "btl_bw {bw}");
    }

    #[test]
    fn losses_do_not_collapse_the_window() {
        let mut cc = DelayCc::new(MSS);
        steady(&mut cc, 2.0);
        let before = cc.cwnd();
        for _ in 0..20 {
            cc.on_sent(MSS);
            cc.on_loss(SimTime::from_secs(3), MSS);
        }
        // Unlike CUBIC's x0.7, the model window is loss-insensitive.
        assert!(
            cc.cwnd() as f64 > before as f64 * 0.9,
            "window collapsed from {before} to {}",
            cc.cwnd()
        );
    }

    #[test]
    fn min_rtt_filter_tracks_and_expires() {
        let mut cc = DelayCc::new(MSS);
        cc.on_ack(SimTime::from_secs(1), MSS, SimDuration::from_millis(80));
        cc.on_ack(SimTime::from_secs(2), MSS, SimDuration::from_millis(40));
        assert_eq!(cc.min_rtt, SimDuration::from_millis(40));
        // Higher samples don't raise it within the window...
        cc.on_ack(SimTime::from_secs(3), MSS, SimDuration::from_millis(90));
        assert_eq!(cc.min_rtt, SimDuration::from_millis(40));
        // ...but it expires after the window.
        cc.on_ack(SimTime::from_secs(20), MSS, SimDuration::from_millis(90));
        assert_eq!(cc.min_rtt, SimDuration::from_millis(90));
    }

    #[test]
    fn persistent_congestion_resets_the_model() {
        let mut cc = DelayCc::new(MSS);
        steady(&mut cc, 2.0);
        cc.on_persistent_congestion();
        assert_eq!(cc.cwnd(), 4 * MSS);
        assert_eq!(cc.btl_bw(), 0.0);
    }

    #[test]
    fn flight_accounting() {
        let mut cc = DelayCc::new(MSS);
        cc.on_sent(5000);
        assert_eq!(cc.in_flight(), 5000);
        assert!(cc.can_send(cc.cwnd() - 5000));
        assert!(!cc.can_send(cc.cwnd()));
        cc.forget_in_flight(2000);
        assert_eq!(cc.in_flight(), 3000);
    }

    #[test]
    fn window_rises_when_bandwidth_rises() {
        let mut cc = DelayCc::new(MSS);
        steady(&mut cc, 2.0);
        let w_10mbps = cc.cwnd();
        // Double the ack rate (20 Mbps) for a while.
        let mut t = 10_000_000u64;
        for _ in 0..4000 {
            t += 540;
            cc.on_sent(MSS);
            cc.on_ack(SimTime::from_micros(t), MSS, SimDuration::from_millis(60));
        }
        assert!(
            cc.cwnd() as f64 > w_10mbps as f64 * 1.5,
            "window did not track the bandwidth increase: {} vs {}",
            cc.cwnd(),
            w_10mbps
        );
    }
}
