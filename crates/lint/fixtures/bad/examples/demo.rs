//! Bad-fixture example: imports a crate directly instead of the prelude.

use voxel_quic::Conn;

fn main() {
    let _ = Conn { state: std::ptr::null_mut() };
}
