//! Seeded-bad fixture: every rule family must fire on this tree. This
//! file is never compiled — it only feeds the lint engine's own tests.

use std::collections::HashMap;
use std::rc::Rc;

pub struct Conn {
    pub state: *mut u8,
}

static mut GLOBAL_SEQ: u64 = 0;

pub fn acquire_ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let _a = a.lock();
    let _b = b.lock();
}

pub fn acquire_ba(a: &Mutex<u32>, b: &Mutex<u32>) {
    let _b = b.lock();
    let _a = a.lock();
}

pub fn read_state(c: &Conn) -> u8 {
    unsafe { *c.state }
}

// lint: allow(panic) nothing in this fn panics, so this waiver is stale
pub fn emit(tracer: &Tracer, now_ms: u64, ssim: f64) {
    trace_event!(
        tracer,
        now_ms,
        Layer::Quic,
        "mystery_kind",
        "v" = 1,
    );
    let t = std::time::Instant::now();
    if ssim == 1.0 {
        let _ = t;
    }
}

pub fn broken(x: Option<u32>) -> u32 {
    // lint: allow(float-eq)
    let _exact = qoe != 0.0;
    x.as_ref()
        .unwrap();
    x.expect("fixture")
}
