//! Clean-fixture example: prelude import plus one justified deep path.

use voxel::prelude::*;
use voxel_quic::Conn; // lint: allow(deep-import) fixture: demonstrates a justified deep path

fn main() {
    let _ = Conn { seq: 0 };
}
