//! Seeded-clean fixture: the engine must stay quiet on this tree. This
//! file is never compiled — it only feeds the lint engine's own tests.

use std::collections::BTreeMap;
use std::collections::HashMap; // lint: allow(nondeterministic-map) fixture: lookup-only memo, never iterated

pub struct Conn {
    pub seq: u64,
}

pub fn emit(tracer: &Tracer, now_ms: u64) {
    trace_event!(
        tracer,
        now_ms,
        Layer::Quic,
        "pkt_sent",
        "v" = 1,
    );
    tracer.count("quic.packets_sent", 1);
}

pub fn ordered(a: &Mutex<u32>, b: &Mutex<u32>) {
    let _a = a.lock();
    let _b = b.lock();
}

pub fn ordered_again(a: &Mutex<u32>, b: &Mutex<u32>) {
    let _a = a.lock();
    let _b = b.lock();
}

// lint: allow(shard-unshareable) fixture: the pointer never leaves the calling thread
// SAFETY: callers pass a pointer to a live, initialized byte.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    *p
}

fn lookup(memo: &BTreeMap<u64, u64>, k: u64) -> Option<u64> {
    memo.get(&k).copied()
}
