//! Property tests for the lexer: total on arbitrary input, and token
//! spans exactly tile the source.

use proptest::prelude::*;
use voxel_lint::lexer::lex;
use voxel_lint::parse;
use voxel_lint::scan::SourceFile;

/// Spans start at 0, are contiguous and non-empty, end at `len`, and
/// line numbers never decrease.
fn assert_tiles(src: &str) -> Result<(), String> {
    let toks = lex(src);
    let mut pos = 0usize;
    let mut line = 1usize;
    for t in &toks {
        if t.start != pos {
            return Err(format!(
                "gap: token starts at {} expected {pos} in {src:?}",
                t.start
            ));
        }
        if t.end <= t.start {
            return Err(format!("empty token at {} in {src:?}", t.start));
        }
        if t.line < line {
            return Err(format!("line went backwards at {} in {src:?}", t.start));
        }
        line = t.line;
        pos = t.end;
    }
    if pos != src.len() {
        return Err(format!(
            "coverage ends at {pos}, source is {} bytes: {src:?}",
            src.len()
        ));
    }
    // The downstream layers must be total too.
    let _ = parse::parse(src, &toks);
    let _ = SourceFile::parse("soup.rs", "quic", src);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (lossily decoded) never panic the lexer and
    /// always tile.
    #[test]
    fn lexer_total_on_byte_soup(bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..160)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let r = assert_tiles(&src);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Soup biased toward Rust's hard cases: quotes, raw-string hashes,
    /// comment openers, lifetimes, braces.
    #[test]
    fn lexer_total_on_rusty_soup(
        parts in proptest::collection::vec("[\"'a-z0-9/* #\\\\{}()!br=._\n-]{0,8}", 0..24),
    ) {
        let src = parts.concat();
        let r = assert_tiles(&src);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}
