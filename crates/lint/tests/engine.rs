//! End-to-end tests over the checked-in fixture workspaces and the
//! `voxel-lint` binary itself.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;
use voxel_lint::{run_with, Options};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Every rule family fires somewhere on the seeded-bad tree — the
/// failing fixture each rule's acceptance criterion asks for.
#[test]
fn bad_fixture_trips_every_rule() {
    let violations = run_with(&fixture_root("bad"), &Options::default()).expect("lint runs");
    let fired: BTreeSet<&str> = violations
        .iter()
        .filter(|v| !v.waived)
        .map(|v| v.rule)
        .collect();
    for rule in [
        "nondeterministic-map",
        "wall-clock",
        "panic",
        "float-eq",
        "deep-import",
        "shard-unshareable",
        "lock-order",
        "unsafe-audit",
        "unsafe-budget",
        "api-baseline",
        "trace-taxonomy",
        "stale-waiver",
        "waiver-missing-reason",
    ] {
        assert!(fired.contains(rule), "{rule} did not fire; got {fired:?}");
    }
}

/// The seeded-clean tree passes — the passing fixture for the same
/// rules, waivers and budgets exercised for real.
#[test]
fn clean_fixture_is_clean_with_waivers_in_use() {
    let violations = run_with(&fixture_root("clean"), &Options::default()).expect("lint runs");
    let unwaived: Vec<_> = violations.iter().filter(|v| !v.waived).collect();
    assert!(unwaived.is_empty(), "{unwaived:?}");
    let waived = violations.iter().filter(|v| v.waived).count();
    assert!(waived >= 3, "expected the fixture waivers to be exercised");
}

/// `--only <family>` restricts the pass; the bad tree still fails on the
/// api family alone, and an unknown family is an operational error.
#[test]
fn only_family_restriction() {
    let opts = Options {
        bless: false,
        only: Some("api".to_string()),
    };
    let v = run_with(&fixture_root("bad"), &opts).expect("api pass runs");
    assert!(v.iter().all(|v| v.rule == "api-baseline"), "{v:?}");
    assert!(v.iter().any(|v| !v.waived));
}

/// The lint binary exits non-zero on its own bad fixture, zero on the
/// clean one, and `--json` writes the machine-readable report.
#[test]
fn binary_self_test() {
    let bin = env!("CARGO_BIN_EXE_voxel-lint");
    let bad = fixture_root("bad");
    let clean = fixture_root("clean");

    let status = Command::new(bin)
        .args(["--root", bad.to_str().expect("utf8 path")])
        .env_remove("VOXEL_BLESS")
        .output()
        .expect("binary runs");
    assert_eq!(status.status.code(), Some(1), "bad fixture must fail");

    let json_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-self-test.json");
    let status = Command::new(bin)
        .args([
            "--root",
            clean.to_str().expect("utf8 path"),
            "--json",
            json_path.to_str().expect("utf8 path"),
            "--max-seconds",
            "60",
        ])
        .env_remove("VOXEL_BLESS")
        .output()
        .expect("binary runs");
    assert_eq!(
        status.status.code(),
        Some(0),
        "clean fixture must pass: {}",
        String::from_utf8_lossy(&status.stdout)
    );
    let json = std::fs::read_to_string(&json_path).expect("json report written");
    assert!(json.trim_start().starts_with('['), "{json}");
    // The clean tree has waived findings; they appear in the JSON even
    // though the run passes.
    assert!(json.contains("\"waived\":true"), "{json}");

    let status = Command::new(bin)
        .args(["--only", "bogus"])
        .output()
        .expect("binary runs");
    assert_eq!(status.status.code(), Some(2), "unknown family is exit 2");
}
