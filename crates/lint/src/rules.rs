//! Line-oriented lint rules.
//!
//! Every rule reports against the `masked` projection (comments removed,
//! string contents blanked) and skips `#[cfg(test)]` regions. A finding
//! is suppressed by a same-line or immediately-preceding
//! `// lint: allow(<rule>) <reason>` waiver; waivers without a reason are
//! themselves violations, and waivers that suppress nothing are reported
//! as stale.

use crate::scan::SourceFile;
use std::collections::BTreeSet;

/// Crates whose iteration order feeds the deterministic simulation.
pub const SIM_CRITICAL: &[&str] = &["sim", "quic", "http", "abr", "core", "netem", "fleet"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl Violation {
    fn new(f: &SourceFile, line: usize, rule: &'static str, msg: String) -> Violation {
        Violation {
            path: f.rel_path.clone(),
            line,
            rule,
            msg,
        }
    }
}

/// Tracks which waivers actually suppressed a finding.
#[derive(Debug, Default)]
pub struct WaiverUse {
    used: BTreeSet<(String, usize, String)>,
}

impl WaiverUse {
    fn mark(&mut self, f: &SourceFile, line: usize, rule: &str) {
        self.used
            .insert((f.rel_path.clone(), line, rule.to_string()));
    }
}

/// Run all per-line rules over one file.
pub fn check_file(f: &SourceFile, uses: &mut WaiverUse, out: &mut Vec<Violation>) {
    let is_bin = f.rel_path.ends_with("main.rs")
        || f.rel_path.contains("/bin/")
        || f.crate_name == "examples";
    for (i, line) in f.lines.iter().enumerate() {
        let lineno = i + 1;
        if line.in_test {
            continue;
        }
        let m = &line.masked;

        // --- determinism: unordered collections in sim-critical crates ---
        if SIM_CRITICAL.contains(&f.crate_name.as_str()) {
            for tok in ["HashMap", "HashSet"] {
                if has_token(m, tok) {
                    report(
                        f,
                        lineno,
                        "nondeterministic-map",
                        format!("{tok} in sim-critical crate `{}`; use BTreeMap/BTreeSet or waive with a reason", f.crate_name),
                        uses,
                        out,
                    );
                }
            }
        }

        // --- determinism: wall-clock access outside bench ---
        if f.crate_name != "bench" {
            for pat in ["Instant::now", "SystemTime", "thread::sleep"] {
                if m.contains(pat) {
                    report(
                        f,
                        lineno,
                        "wall-clock",
                        format!("`{pat}` breaks sim-time determinism; use voxel_sim::SimTime"),
                        uses,
                        out,
                    );
                }
            }
        }

        // --- robustness: panics in library code ---
        if f.crate_name != "bench" && !is_bin {
            for pat in [".unwrap()", ".expect(", "panic!"] {
                if m.contains(pat) {
                    report(
                        f,
                        lineno,
                        "panic",
                        format!(
                            "`{}` in library code; propagate an error or waive with the invariant that makes it unreachable",
                            pat.trim_start_matches('.').trim_end_matches('(')
                        ),
                        uses,
                        out,
                    );
                }
            }
        }

        // --- API surface: examples go through the facade prelude ---
        if f.crate_name == "examples" {
            if let Some(target) = m.trim_start().strip_prefix("use ") {
                let deep = target.starts_with("voxel_")
                    || target
                        .strip_prefix("voxel::")
                        .is_some_and(|rest| !rest.starts_with("prelude"));
                if deep {
                    report(
                        f,
                        lineno,
                        "deep-import",
                        format!(
                            "example imports `{}` directly; use `voxel::prelude::*` (or waive with why the deep path is the point)",
                            target.trim_end().trim_end_matches(';')
                        ),
                        uses,
                        out,
                    );
                }
            }
        }

        // --- robustness: exact equality on quality floats ---
        for (lhs, op, rhs) in comparisons(m) {
            let suspicious = |t: &str| {
                let lower = t.to_ascii_lowercase();
                is_float_literal(t) || lower.contains("ssim") || lower.contains("qoe")
            };
            if suspicious(&lhs) || suspicious(&rhs) {
                report(
                    f,
                    lineno,
                    "float-eq",
                    format!("exact `{op}` comparison involving `{}`; use a tolerance or waive with why exactness is sound",
                            if suspicious(&lhs) { &lhs } else { &rhs }),
                    uses,
                    out,
                );
            }
        }
    }
}

/// After all files ran: flag waivers that never fired and waivers with no
/// justification text.
pub fn check_waiver_hygiene(files: &[SourceFile], uses: &WaiverUse, out: &mut Vec<Violation>) {
    for f in files {
        for (&line, ws) in &f.waivers {
            for w in ws {
                if w.reason.is_empty() {
                    out.push(Violation::new(
                        f,
                        w.declared_on,
                        "waiver-missing-reason",
                        format!("waiver for `{}` has no justification", w.rule),
                    ));
                }
                let key = (f.rel_path.clone(), line, w.rule.clone());
                if !uses.used.contains(&key) {
                    out.push(Violation::new(
                        f,
                        w.declared_on,
                        "stale-waiver",
                        format!("waiver for `{}` suppresses nothing; remove it", w.rule),
                    ));
                }
            }
        }
    }
}

fn report(
    f: &SourceFile,
    lineno: usize,
    rule: &'static str,
    msg: String,
    uses: &mut WaiverUse,
    out: &mut Vec<Violation>,
) {
    if f.waiver_for(lineno, rule).is_some() {
        uses.mark(f, lineno, rule);
    } else {
        out.push(Violation::new(f, lineno, rule, msg));
    }
}

/// Word-boundary token search: `tok` not embedded in a longer identifier.
fn has_token(s: &str, tok: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = s[start..].find(tok) {
        let abs = start + pos;
        let before = s[..abs].chars().next_back();
        let after = s[abs + tok.len()..].chars().next();
        let is_ident = |c: char| c.is_alphanumeric() || c == '_';
        if !before.is_some_and(is_ident) && !after.is_some_and(is_ident) {
            return true;
        }
        start = abs + tok.len();
    }
    false
}

/// Extract `(lhs_token, op, rhs_token)` for each `==`/`!=` in a line.
fn comparisons(s: &str) -> Vec<(String, &'static str, String)> {
    let b: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        let op = match (b[i], b[i + 1]) {
            ('=', '=') => Some("=="),
            ('!', '=') => Some("!="),
            _ => None,
        };
        // Skip `<=`, `>=`, `=>`, `+=` style neighbours and `===` runs.
        let prev = if i > 0 { Some(b[i - 1]) } else { None };
        let next2 = b.get(i + 2).copied();
        let standalone = op.is_some()
            && !matches!(
                prev,
                Some('=')
                    | Some('<')
                    | Some('>')
                    | Some('+')
                    | Some('-')
                    | Some('*')
                    | Some('/')
                    | Some('%')
                    | Some('&')
                    | Some('|')
                    | Some('^')
            )
            && next2 != Some('=');
        if let (Some(op), true) = (op, standalone) {
            let lhs = token_back(&b, i);
            let rhs = token_fwd(&b, i + 2);
            out.push((lhs, op, rhs));
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn token_back(b: &[char], end: usize) -> String {
    let mut j = end;
    while j > 0 && b[j - 1] == ' ' {
        j -= 1;
    }
    let stop = j;
    while j > 0 && (b[j - 1].is_alphanumeric() || matches!(b[j - 1], '_' | '.')) {
        j -= 1;
    }
    b[j..stop].iter().collect()
}

fn token_fwd(b: &[char], start: usize) -> String {
    let mut j = start;
    while j < b.len() && b[j] == ' ' {
        j += 1;
    }
    let begin = j;
    while j < b.len() && (b[j].is_alphanumeric() || matches!(b[j], '_' | '.')) {
        j += 1;
    }
    b[begin..j].iter().collect()
}

/// `0.0`, `1.5e-3`, `1e6` — a literal that parses as f64 and is visibly
/// floating (contains `.` or an exponent). Plain integers don't count.
fn is_float_literal(t: &str) -> bool {
    if t.is_empty() || !t.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return false;
    }
    (t.contains('.') || t.contains('e') || t.contains('E')) && t.parse::<f64>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn run(crate_name: &str, path: &str, src: &str) -> Vec<Violation> {
        let f = SourceFile::parse(path, crate_name, src);
        let mut uses = WaiverUse::default();
        let mut out = Vec::new();
        check_file(&f, &mut uses, &mut out);
        check_waiver_hygiene(std::slice::from_ref(&f), &uses, &mut out);
        out
    }

    #[test]
    fn hashmap_fires_in_sim_critical_crate() {
        let v = run(
            "core",
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "nondeterministic-map");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn hashmap_quiet_outside_sim_critical_and_in_tests() {
        assert!(run(
            "media",
            "crates/media/src/x.rs",
            "use std::collections::HashMap;\n"
        )
        .is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(run("core", "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_waiver_with_reason_suppresses() {
        let src = "use std::collections::HashMap; // lint: allow(nondeterministic-map) memo table, lookup-only\n";
        assert!(run("abr", "crates/abr/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_a_violation() {
        let src = "use std::collections::HashMap; // lint: allow(nondeterministic-map)\n";
        let v = run("abr", "crates/abr/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "waiver-missing-reason");
    }

    #[test]
    fn stale_waiver_is_reported() {
        let src = "let x = 1; // lint: allow(panic) nothing panics here\n";
        let v = run("quic", "crates/quic/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "stale-waiver");
    }

    #[test]
    fn wall_clock_fires_everywhere_but_bench() {
        let src = "let t = std::time::Instant::now();\n";
        let v = run("sim", "crates/sim/src/x.rs", src);
        assert_eq!(v[0].rule, "wall-clock");
        assert!(run("bench", "crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_fires_on_unwrap_expect_panic() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"b\");\n    panic!(\"boom\");\n}\n";
        let v = run("quic", "crates/quic/src/x.rs", src);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(rules, vec![("panic", 2), ("panic", 3), ("panic", 4)]);
    }

    #[test]
    fn panic_rule_skips_bins_unwrap_or_and_strings() {
        let src = "fn f() { let s = \"don't .unwrap() me\"; let x = y.unwrap_or(0); }\n";
        assert!(run("quic", "crates/quic/src/x.rs", src).is_empty());
        let bin = "fn main() { x.unwrap(); }\n";
        assert!(run("quic", "crates/quic/src/bin/tool.rs", bin).is_empty());
    }

    #[test]
    fn float_eq_fires_on_float_literal_and_ssim_names() {
        let v = run("abr", "crates/abr/src/x.rs", "if score == 0.0 { }\n");
        assert_eq!(v[0].rule, "float-eq");
        let v2 = run(
            "media",
            "crates/media/src/x.rs",
            "if a.ssim != b.ssim { }\n",
        );
        assert_eq!(v2[0].rule, "float-eq");
    }

    #[test]
    fn deep_import_fires_only_in_examples() {
        let src = "use voxel::media::video::Video;\nuse voxel_core::Config;\nuse voxel::prelude::*;\nuse std::sync::Arc;\n";
        let v = run("examples", "examples/demo.rs", src);
        let lines: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(lines, vec![("deep-import", 1), ("deep-import", 2)]);
        // The same imports are fine outside examples/.
        assert!(run("bench", "crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn deep_import_waiver_and_bin_style_panics_in_examples() {
        let src = "use voxel::prep::analysis::BytesQoeMap; // lint: allow(deep-import) the example is about prep internals\nfn main() { x.unwrap(); }\n";
        assert!(run("examples", "examples/demo.rs", src).is_empty());
    }

    #[test]
    fn float_eq_quiet_on_integers_and_compound_ops() {
        assert!(run("abr", "crates/abr/src/x.rs", "if n == 0 { }\n").is_empty());
        assert!(run("abr", "crates/abr/src/x.rs", "x += 1.0; if a <= 2.0 {}\n").is_empty());
        assert!(run("abr", "crates/abr/src/x.rs", "let ok = idx != len;\n").is_empty());
    }
}
