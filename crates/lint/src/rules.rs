//! Token-accurate lint rules.
//!
//! Every rule walks the token stream (`scan::SourceFile`), so string and
//! comment contents can never trip a rule, and constructs split across
//! lines (`.lock()\n.expect(..)`) are matched exactly like single-line
//! ones. Rules skip `#[cfg(test)]` items and honour line- and item-level
//! `// lint: allow(<rule>) <reason>` waivers; a suppressed finding is
//! still recorded (with `waived = true`) so `--json` can report it and
//! the hygiene pass can prove the waiver earns its keep.

use crate::lexer::{self, TokKind};
use crate::scan::SourceFile;
use std::collections::BTreeSet;
use std::path::Path;

/// Crates whose iteration order feeds the deterministic simulation.
pub const SIM_CRITICAL: &[&str] = &["sim", "quic", "http", "abr", "core", "netem", "fleet"];

/// One lint finding. `waived = true` means a justified waiver suppressed
/// it — reported in machine output, but not a failure.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
    pub waived: bool,
}

impl Violation {
    pub(crate) fn new(path: &str, line: usize, rule: &'static str, msg: String) -> Violation {
        Violation {
            path: path.to_string(),
            line,
            rule,
            msg,
            waived: false,
        }
    }
}

/// Tracks which waivers actually suppressed a finding.
#[derive(Debug, Default)]
pub struct WaiverUse {
    used: BTreeSet<(String, usize, String)>,
}

impl WaiverUse {
    pub(crate) fn mark(&mut self, f: &SourceFile, declared_on: usize, rule: &str) {
        self.used
            .insert((f.rel_path.clone(), declared_on, rule.to_string()));
    }
}

/// Report a finding at `line`, consulting waivers.
pub(crate) fn report(
    f: &SourceFile,
    line: usize,
    rule: &'static str,
    msg: String,
    uses: &mut WaiverUse,
    out: &mut Vec<Violation>,
) {
    let mut v = Violation::new(&f.rel_path, line, rule, msg);
    if let Some(w) = f.waiver_for(line, rule) {
        uses.mark(f, w.declared_on, rule);
        v.waived = true;
    }
    out.push(v);
}

/// Is this file binary-style code (panics acceptable)?
fn is_bin(f: &SourceFile) -> bool {
    f.rel_path.ends_with("main.rs") || f.rel_path.contains("/bin/") || f.crate_name == "examples"
}

/// Run the classic token rules over one file: `nondeterministic-map`,
/// `wall-clock`, `panic`, `float-eq`, `deep-import`.
pub fn check_file(f: &SourceFile, uses: &mut WaiverUse, out: &mut Vec<Violation>) {
    let sig = f.sig_indices();
    let text = |s: usize| -> &str {
        match sig.get(s) {
            Some(&i) => f.tok_text(&f.toks[i]),
            None => "",
        }
    };
    let kind = |s: usize| -> Option<TokKind> { sig.get(s).map(|&i| f.toks[i].kind) };
    let line = |s: usize| -> usize {
        match sig.get(s) {
            Some(&i) => f.toks[i].line,
            None => 0,
        }
    };
    let bin = is_bin(f);

    for s in 0..sig.len() {
        let l = line(s);
        if f.is_test(l) {
            continue;
        }
        let t = text(s);
        let k = kind(s);

        // --- determinism: unordered collections in sim-critical crates ---
        if k == Some(TokKind::Ident)
            && (t == "HashMap" || t == "HashSet")
            && SIM_CRITICAL.contains(&f.crate_name.as_str())
        {
            report(
                f,
                l,
                "nondeterministic-map",
                format!(
                    "{t} in sim-critical crate `{}`; use BTreeMap/BTreeSet or waive with a reason",
                    f.crate_name
                ),
                uses,
                out,
            );
        }

        // --- determinism: wall-clock access outside bench ---
        if f.crate_name != "bench" && k == Some(TokKind::Ident) {
            let pat = if t == "Instant"
                && text(s + 1) == ":"
                && text(s + 2) == ":"
                && text(s + 3) == "now"
            {
                Some("Instant::now")
            } else if t == "SystemTime" {
                Some("SystemTime")
            } else if t == "thread"
                && text(s + 1) == ":"
                && text(s + 2) == ":"
                && text(s + 3) == "sleep"
            {
                Some("thread::sleep")
            } else {
                None
            };
            if let Some(pat) = pat {
                report(
                    f,
                    l,
                    "wall-clock",
                    format!("`{pat}` breaks sim-time determinism; use voxel_sim::SimTime"),
                    uses,
                    out,
                );
            }
        }

        // --- robustness: panics in library code ---
        if f.crate_name != "bench" && !bin {
            let hit = if t == "."
                && text(s + 1) == "unwrap"
                && text(s + 2) == "("
                && text(s + 3) == ")"
            {
                Some(("unwrap", line(s + 1)))
            } else if t == "." && text(s + 1) == "expect" && text(s + 2) == "(" {
                Some(("expect", line(s + 1)))
            } else if k == Some(TokKind::Ident) && t == "panic" && text(s + 1) == "!" {
                Some(("panic!", l))
            } else {
                None
            };
            if let Some((what, at)) = hit {
                if !f.is_test(at) {
                    report(
                        f,
                        at,
                        "panic",
                        format!(
                            "`{what}` in library code; propagate an error or waive with the invariant that makes it unreachable"
                        ),
                        uses,
                        out,
                    );
                }
            }
        }
    }

    // --- robustness: exact equality involving quality floats ---
    check_float_eq(f, uses, out);

    // --- API surface: examples go through the facade prelude ---
    if f.crate_name == "examples" {
        for it in &f.items {
            if it.kind != crate::parse::ItemKind::Use || f.is_test(it.kw_line) {
                continue;
            }
            let target = it.name.as_str();
            let deep = target.starts_with("voxel_")
                || target
                    .strip_prefix("voxel::")
                    .is_some_and(|rest| !rest.starts_with("prelude"));
            if deep {
                report(
                    f,
                    it.kw_line,
                    "deep-import",
                    format!(
                        "example imports `{target}` directly; use `voxel::prelude::*` (or waive with why the deep path is the point)"
                    ),
                    uses,
                    out,
                );
            }
        }
    }
}

/// `==`/`!=` where an operand is a float literal or an ssim/qoe-named
/// identifier. Works on the raw token stream so adjacency (`<=`, `=>`,
/// `+=`, `===`) is judged by byte spans, not per-line character context.
fn check_float_eq(f: &SourceFile, uses: &mut WaiverUse, out: &mut Vec<Violation>) {
    let toks = &f.toks;
    let ptext = |i: usize| f.tok_text(&toks[i]);
    for i in 0..toks.len().saturating_sub(1) {
        let (a, b) = (&toks[i], &toks[i + 1]);
        if a.kind != TokKind::Punct || b.kind != TokKind::Punct || a.end != b.start {
            continue;
        }
        let op = match (ptext(i), ptext(i + 1)) {
            ("=", "=") => "==",
            ("!", "=") => "!=",
            _ => continue,
        };
        // Not part of a longer operator: `<=`, `>=`, `+=`, `..=`, `=>`.
        let glued_before = i > 0
            && toks[i - 1].kind == TokKind::Punct
            && toks[i - 1].end == a.start
            && matches!(
                ptext(i - 1),
                "=" | "<" | ">" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "!" | "."
            );
        let glued_after = toks.get(i + 2).is_some_and(|c| {
            c.kind == TokKind::Punct && c.end > c.start && b.end == c.start && ptext(i + 2) == "="
        });
        if glued_before || glued_after || f.is_test(a.line) {
            continue;
        }
        let lhs = toks[..i].iter().rev().find(|t| !t.kind.is_trivia());
        let rhs = toks[i + 2..].iter().find(|t| !t.kind.is_trivia());
        let suspicious = |t: Option<&&crate::lexer::Tok>| -> Option<String> {
            let t = t?;
            let s = f.tok_text(t);
            match t.kind {
                TokKind::Num if lexer::is_float_literal(s) => Some(s.to_string()),
                TokKind::Ident => {
                    let lower = s.to_ascii_lowercase();
                    if lower.contains("ssim") || lower.contains("qoe") {
                        Some(s.to_string())
                    } else {
                        None
                    }
                }
                _ => None,
            }
        };
        if let Some(operand) = suspicious(lhs.as_ref()).or_else(|| suspicious(rhs.as_ref())) {
            report(
                f,
                a.line,
                "float-eq",
                format!(
                    "exact `{op}` comparison involving `{operand}`; use a tolerance or waive with why exactness is sound"
                ),
                uses,
                out,
            );
        }
    }
}

/// Unsafe-audit: every `unsafe` keyword outside tests needs an adjacent
/// `// SAFETY:` justification, and the workspace-wide count is held to a
/// ratcheted budget in `lint/unsafe-budget.txt` (`VOXEL_BLESS=1` rewrites
/// it; raising it is a deliberate, reviewed edit).
pub fn check_unsafe(
    files: &[SourceFile],
    root: &Path,
    bless: bool,
    uses: &mut WaiverUse,
    out: &mut Vec<Violation>,
) -> Result<(), String> {
    let mut count = 0usize;
    for f in files {
        for &i in &f.sig_indices() {
            let t = &f.toks[i];
            if t.kind != TokKind::Ident || f.tok_text(t) != "unsafe" || f.is_test(t.line) {
                continue;
            }
            count += 1;
            if !safety_comment_adjacent(f, t.line) {
                report(
                    f,
                    t.line,
                    "unsafe-audit",
                    "`unsafe` without an adjacent `// SAFETY:` justification".to_string(),
                    uses,
                    out,
                );
            }
        }
    }

    let budget_path = root.join("lint").join("unsafe-budget.txt");
    let budget_rel = "lint/unsafe-budget.txt";
    if bless {
        let body = format!(
            "# Ratcheted unsafe budget for the VOXEL workspace (voxel-lint).\n\
             # Number of `unsafe` keywords outside #[cfg(test)] code. The lint\n\
             # fails when the workspace exceeds OR undershoots this number;\n\
             # re-bless with `VOXEL_BLESS=1 cargo run -p voxel-lint` to ratchet\n\
             # down. Raising it is a deliberate, reviewed edit of this file.\n\
             {count}\n"
        );
        if let Some(dir) = budget_path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&budget_path, body)
            .map_err(|e| format!("write {}: {e}", budget_path.display()))?;
        return Ok(());
    }
    let budget = match std::fs::read_to_string(&budget_path) {
        Ok(body) => body
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .and_then(|l| l.parse::<usize>().ok()),
        Err(_) => None,
    };
    match budget {
        None => out.push(Violation::new(
            budget_rel,
            0,
            "unsafe-budget",
            format!(
                "missing or unreadable unsafe budget; bless with `VOXEL_BLESS=1` (current count: {count})"
            ),
        )),
        Some(b) if count > b => out.push(Violation::new(
            budget_rel,
            0,
            "unsafe-budget",
            format!(
                "{count} unsafe site(s) exceed the ratcheted budget of {b}; remove them or raise lint/unsafe-budget.txt in review"
            ),
        )),
        Some(b) if count < b => out.push(Violation::new(
            budget_rel,
            0,
            "unsafe-budget",
            format!(
                "budget {b} is stale ({count} unsafe site(s) remain); ratchet down with `VOXEL_BLESS=1`"
            ),
        )),
        Some(_) => {}
    }
    Ok(())
}

/// A `SAFETY:` comment on the same line, or in the contiguous comment /
/// attribute block immediately above.
fn safety_comment_adjacent(f: &SourceFile, lineno: usize) -> bool {
    if f.line_text(lineno).contains("SAFETY:") {
        return true;
    }
    let mut l = lineno;
    while l > 1 {
        l -= 1;
        let t = f.line_text(l).trim();
        if t.is_empty() || t.starts_with("//") || t.starts_with("#[") || t.starts_with('*') {
            if t.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// After all files ran: flag waivers that never fired and waivers with no
/// justification text.
pub fn check_waiver_hygiene(files: &[SourceFile], uses: &WaiverUse, out: &mut Vec<Violation>) {
    for f in files {
        for w in f.all_waivers() {
            if w.reason.is_empty() {
                out.push(Violation::new(
                    &f.rel_path,
                    w.declared_on,
                    "waiver-missing-reason",
                    format!("waiver for `{}` has no justification", w.rule),
                ));
            }
            let key = (f.rel_path.clone(), w.declared_on, w.rule.clone());
            if !uses.used.contains(&key) {
                out.push(Violation::new(
                    &f.rel_path,
                    w.declared_on,
                    "stale-waiver",
                    format!("waiver for `{}` suppresses nothing; remove it", w.rule),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn run(crate_name: &str, path: &str, src: &str) -> Vec<Violation> {
        let f = SourceFile::parse(path, crate_name, src);
        let mut uses = WaiverUse::default();
        let mut out = Vec::new();
        check_file(&f, &mut uses, &mut out);
        check_waiver_hygiene(std::slice::from_ref(&f), &uses, &mut out);
        out.retain(|v| !v.waived);
        out
    }

    #[test]
    fn hashmap_fires_in_sim_critical_crate() {
        let v = run(
            "core",
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "nondeterministic-map");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn hashmap_in_string_or_comment_is_quiet() {
        let src = "let s = \"HashMap\"; // a HashMap joke\n/* HashMap */\n";
        assert!(run("core", "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_quiet_outside_sim_critical_and_in_tests() {
        assert!(run(
            "media",
            "crates/media/src/x.rs",
            "use std::collections::HashMap;\n"
        )
        .is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(run("core", "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hashmap_waiver_with_reason_suppresses() {
        let src = "use std::collections::HashMap; // lint: allow(nondeterministic-map) memo table, lookup-only\n";
        assert!(run("abr", "crates/abr/src/x.rs", src).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_a_violation() {
        let src = "use std::collections::HashMap; // lint: allow(nondeterministic-map)\n";
        let v = run("abr", "crates/abr/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "waiver-missing-reason");
    }

    #[test]
    fn stale_waiver_is_reported() {
        let src = "let x = 1; // lint: allow(panic) nothing panics here\n";
        let v = run("quic", "crates/quic/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "stale-waiver");
    }

    #[test]
    fn wall_clock_fires_everywhere_but_bench() {
        let src = "let t = std::time::Instant::now();\n";
        let v = run("sim", "crates/sim/src/x.rs", src);
        assert_eq!(v[0].rule, "wall-clock");
        assert!(run("bench", "crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_fires_on_unwrap_expect_panic() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"b\");\n    panic!(\"boom\");\n}\n";
        let v = run("quic", "crates/quic/src/x.rs", src);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(rules, vec![("panic", 2), ("panic", 3), ("panic", 4)]);
    }

    #[test]
    fn panic_rule_catches_multi_line_chain() {
        let src = "fn f() {\n    let g = self\n        .inner\n        .lock()\n        .expect(\"poisoned\");\n}\n";
        let v = run("quic", "crates/quic/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), ("panic", 5));
    }

    #[test]
    fn panic_rule_skips_bins_unwrap_or_and_strings() {
        let src = "fn f() { let s = \"don't .unwrap() me\"; let x = y.unwrap_or(0); }\n";
        assert!(run("quic", "crates/quic/src/x.rs", src).is_empty());
        let bin = "fn main() { x.unwrap(); }\n";
        assert!(run("quic", "crates/quic/src/bin/tool.rs", bin).is_empty());
    }

    #[test]
    fn float_eq_fires_on_float_literal_and_ssim_names() {
        let v = run("abr", "crates/abr/src/x.rs", "if score == 0.0 { }\n");
        assert_eq!(v[0].rule, "float-eq");
        let v2 = run(
            "media",
            "crates/media/src/x.rs",
            "if a.ssim != b.ssim { }\n",
        );
        assert_eq!(v2[0].rule, "float-eq");
    }

    #[test]
    fn float_eq_quiet_on_integers_and_compound_ops() {
        assert!(run("abr", "crates/abr/src/x.rs", "if n == 0 { }\n").is_empty());
        assert!(run("abr", "crates/abr/src/x.rs", "x += 1.0; if a <= 2.0 {}\n").is_empty());
        assert!(run("abr", "crates/abr/src/x.rs", "let ok = idx != len;\n").is_empty());
        assert!(run("abr", "crates/abr/src/x.rs", "let r = 0..=1.0;\n").is_empty());
    }

    #[test]
    fn deep_import_fires_only_in_examples_and_sees_multiline_use() {
        let src = "use voxel::media::video::Video;\nuse voxel_core::Config;\nuse voxel::prelude::*;\nuse std::sync::Arc;\n";
        let v = run("examples", "examples/demo.rs", src);
        let lines: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(lines, vec![("deep-import", 1), ("deep-import", 2)]);
        // The same imports are fine outside examples/.
        assert!(run("bench", "crates/bench/src/x.rs", src).is_empty());
        // A use split across lines is still one import.
        let multi = "use voxel::media::{\n    Video,\n    Ladder,\n};\n";
        let v2 = run("examples", "examples/demo2.rs", multi);
        assert_eq!(v2.len(), 1);
        assert_eq!(v2[0].line, 1);
    }

    #[test]
    fn deep_import_waiver_and_bin_style_panics_in_examples() {
        let src = "use voxel::prep::analysis::BytesQoeMap; // lint: allow(deep-import) the example is about prep internals\nfn main() { x.unwrap(); }\n";
        assert!(run("examples", "examples/demo.rs", src).is_empty());
    }

    #[test]
    fn unsafe_audit_requires_safety_comment() {
        let ok = "fn f() {\n    // SAFETY: the slot was initialized above\n    let x = unsafe { read() };\n}\n";
        let bad = "fn f() {\n    let x = unsafe { read() };\n}\n";
        let dir = std::env::temp_dir(); // budget handled separately; only audit here
        let _ = dir;
        let check = |src: &str| -> Vec<Violation> {
            let f = SourceFile::parse("crates/quic/src/x.rs", "quic", src);
            let mut uses = WaiverUse::default();
            let mut out = Vec::new();
            // Use a root with no lint/ dir: the budget violation is
            // expected; filter to the audit rule.
            let root = std::path::Path::new("/nonexistent-lint-root");
            check_unsafe(std::slice::from_ref(&f), root, false, &mut uses, &mut out)
                .expect("check_unsafe runs");
            out.retain(|v| v.rule == "unsafe-audit" && !v.waived);
            out
        };
        assert!(check(ok).is_empty());
        let v = check(bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }
}
