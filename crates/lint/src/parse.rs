//! Lightweight item parser over the token stream.
//!
//! Recovers just enough structure for the rules: the item tree (`mod` /
//! `fn` / `impl` / `trait` / type and value items), each item's line
//! extent, visibility, `unsafe` marker, and `#[cfg(test)]` attribution.
//! It is *not* a Rust parser — expressions are never interpreted, and
//! anything that does not look like an item header is skipped as plain
//! code. The design constraint is the same as the lexer's: total on
//! arbitrary input, and conservative (an unrecognized construct degrades
//! to "no item here", never to a crash or a bogus extent).
//!
//! Item detection is anchored on *item position*: a header may only start
//! at the beginning of the file or after `;`, `{`, `}`, or a closed
//! attribute. That is what keeps `-> impl Iterator`, `let f: fn(u32)`,
//! and `Fn()` bounds from being mistaken for `impl`/`fn` items.

use crate::lexer::{Tok, TokKind};

/// What kind of item a header introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Impl,
    Trait,
    Struct,
    Enum,
    Union,
    Const,
    Static,
    TypeAlias,
    Use,
    MacroDef,
    /// Statement-position macro invocation (`thread_local! { .. }`,
    /// `trace_event!(..);`) — modelled as an item so a waiver above it
    /// covers its whole (possibly multi-line) extent.
    MacroCall,
}

impl ItemKind {
    /// Short label used by the API baseline file.
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Mod => "mod",
            ItemKind::Fn => "fn",
            ItemKind::Impl => "impl",
            ItemKind::Trait => "trait",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Union => "union",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
            ItemKind::Use => "use",
            ItemKind::MacroDef => "macro",
            ItemKind::MacroCall => "macro-call",
        }
    }
}

/// One parsed item. Items form a tree via `parent` indices into the same
/// vector; the vector is ordered by header appearance.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name. For `impl` blocks this is the self-type identifier
    /// (inherent) or `"<Trait> for <Type>"`; for `use` items it is the
    /// imported path text with whitespace collapsed.
    pub name: String,
    /// Unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    pub is_unsafe: bool,
    /// Carries a `#[cfg(test)]`-style attribute directly (`not(test)` does
    /// not count).
    pub cfg_test: bool,
    /// Carries `#[macro_export]`.
    pub macro_export: bool,
    /// `impl Type { .. }` as opposed to `impl Trait for Type { .. }`.
    pub inherent_impl: bool,
    /// First line of the header including attributes (where an item-level
    /// waiver or doc block starts attaching).
    pub header_line: usize,
    /// Line of the introducing keyword.
    pub kw_line: usize,
    /// Last line of the item (closing brace or semicolon). For an item
    /// whose end was never seen (truncated input) this is the header line.
    pub end_line: usize,
    pub parent: Option<usize>,
}

impl Item {
    /// Does `line` fall inside this item (attributes included)?
    pub fn covers(&self, line: usize) -> bool {
        self.header_line <= line && line <= self.end_line
    }
}

/// An in-flight item header waiting for its body `{` or terminating `;`.
struct Pending {
    item: usize,
    paren: i32,
    bracket: i32,
    is_impl: bool,
    /// Significant token texts between `impl` and its body, for inherent /
    /// trait-impl classification.
    impl_hdr: Vec<String>,
}

/// Parse the token stream of `src` into an item tree.
pub fn parse(src: &str, toks: &[Tok]) -> Vec<Item> {
    let sig: Vec<usize> = (0..toks.len())
        .filter(|&i| !toks[i].kind.is_trivia())
        .collect();
    let text = |si: usize| -> &str {
        match sig.get(si) {
            Some(&ti) => &src[toks[ti].start..toks[ti].end],
            None => "",
        }
    };
    let kind_of = |si: usize| -> Option<TokKind> { sig.get(si).map(|&ti| toks[ti].kind) };
    let line_of = |si: usize| -> usize {
        match sig.get(si) {
            Some(&ti) => toks[ti].line,
            None => 0,
        }
    };

    let mut items: Vec<Item> = Vec::new();
    let mut open: Vec<(usize, i32)> = Vec::new(); // (item, depth at open)
    let mut depth: i32 = 0;
    let mut pending: Option<Pending> = None;
    let mut attrs: Vec<(usize, String)> = Vec::new();
    let mut item_pos = true;
    let mut k = 0usize;

    while k < sig.len() {
        let t_text = text(k);
        let t_kind = match kind_of(k) {
            Some(x) => x,
            None => break,
        };
        let t_line = line_of(k);

        if let Some(p) = pending.as_mut() {
            let mut resolved = false;
            let mut reprocess = false;
            match t_text {
                "(" => p.paren += 1,
                ")" => p.paren -= 1,
                "[" => p.bracket += 1,
                "]" => p.bracket -= 1,
                "{" if p.paren == 0 && p.bracket == 0 => {
                    if p.is_impl {
                        let (name, inherent) = impl_name(&p.impl_hdr);
                        items[p.item].name = name;
                        items[p.item].inherent_impl = inherent;
                    }
                    open.push((p.item, depth));
                    depth += 1;
                    resolved = true;
                }
                ";" if p.paren == 0 && p.bracket == 0 => {
                    items[p.item].end_line = t_line;
                    resolved = true;
                }
                "}" => {
                    // Malformed header (macro fragment, truncated input):
                    // abandon the pending item and let the brace close
                    // whatever scope it belongs to.
                    items[p.item].end_line = t_line;
                    resolved = true;
                    reprocess = true;
                }
                _ => {
                    if p.is_impl {
                        p.impl_hdr.push(t_text.to_string());
                    }
                }
            }
            if resolved {
                pending = None;
                item_pos = true;
                if !reprocess {
                    k += 1;
                    continue;
                }
            } else {
                k += 1;
                continue;
            }
        }

        match (t_kind, t_text) {
            (TokKind::Punct, "{") => {
                depth += 1;
                item_pos = true;
                attrs.clear();
                k += 1;
            }
            (TokKind::Punct, "}") => {
                depth -= 1;
                while let Some(&(idx, d)) = open.last() {
                    if d >= depth {
                        items[idx].end_line = t_line;
                        open.pop();
                    } else {
                        break;
                    }
                }
                item_pos = true;
                attrs.clear();
                k += 1;
            }
            (TokKind::Punct, ";") => {
                item_pos = true;
                attrs.clear();
                k += 1;
            }
            (TokKind::Punct, "#") if item_pos && matches!(text(k + 1), "[" | "!") => {
                // #[attr] or #![attr]: bracket-match and record.
                let open_at = if text(k + 1) == "!" { k + 2 } else { k + 1 };
                if text(open_at) != "[" {
                    item_pos = false;
                    k += 1;
                    continue;
                }
                let mut j = open_at + 1;
                let mut bd = 1i32;
                let mut inner = String::new();
                while j < sig.len() && bd > 0 {
                    match text(j) {
                        "[" => bd += 1,
                        "]" => bd -= 1,
                        _ => {}
                    }
                    if bd > 0 {
                        inner.push_str(text(j));
                    }
                    j += 1;
                }
                attrs.push((t_line, inner));
                k = j;
                // item_pos stays true: an attribute precedes an item.
            }
            (TokKind::Ident, _) if item_pos => {
                match try_item(&sig, toks, src, k, &attrs, &mut items, &open) {
                    Some((next_k, new_pending)) => {
                        attrs.clear();
                        pending = new_pending;
                        item_pos = pending.is_none();
                        k = next_k;
                    }
                    None => {
                        item_pos = false;
                        attrs.clear();
                        k += 1;
                    }
                }
            }
            _ => {
                item_pos = false;
                k += 1;
            }
        }
    }

    // Close anything still open at EOF.
    let last_line = toks.last().map(|t| t.line).unwrap_or(1);
    while let Some((idx, _)) = open.pop() {
        items[idx].end_line = last_line;
    }
    items
}

/// Try to parse an item header whose first significant token is at `k`.
/// On success returns the index to resume at and the pending state (None
/// for leaf items that were fully consumed).
#[allow(clippy::too_many_arguments)]
fn try_item(
    sig: &[usize],
    toks: &[Tok],
    src: &str,
    k: usize,
    attrs: &[(usize, String)],
    items: &mut Vec<Item>,
    open: &[(usize, i32)],
) -> Option<(usize, Option<Pending>)> {
    let text = |si: usize| -> &str {
        match sig.get(si) {
            Some(&ti) => &src[toks[ti].start..toks[ti].end],
            None => "",
        }
    };
    let line_of = |si: usize| -> usize {
        match sig.get(si) {
            Some(&ti) => toks[ti].line,
            None => 0,
        }
    };

    let mut j = k;
    let mut is_pub = false;
    let mut is_unsafe = false;
    // Modifier run: pub[(..)], const/async/default/unsafe, extern "abi".
    loop {
        match text(j) {
            "pub" => {
                if text(j + 1) == "(" {
                    // Restricted visibility: skip to matching ')'.
                    let mut d = 1i32;
                    let mut m = j + 2;
                    while m < sig.len() && d > 0 {
                        match text(m) {
                            "(" => d += 1,
                            ")" => d -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    j = m;
                } else {
                    is_pub = true;
                    j += 1;
                }
            }
            "const" => {
                // `const fn` / `const unsafe fn` are modifiers; `const X`
                // is an item keyword handled below.
                if matches!(text(j + 1), "fn" | "unsafe" | "extern" | "async") {
                    j += 1;
                } else {
                    break;
                }
            }
            "unsafe" => {
                if text(j + 1) == "{" {
                    // `unsafe { .. }` block expression, not an item.
                    return None;
                }
                is_unsafe = true;
                j += 1;
            }
            "async" | "default" => j += 1,
            "extern" => {
                // `extern "C" fn` modifier or `extern crate x;` item.
                if text(j + 1) == "crate" {
                    let mut m = j + 2;
                    while m < sig.len() && text(m) != ";" {
                        m += 1;
                    }
                    return Some((m + 1, None));
                }
                j += 1;
                if sig.get(j).is_some_and(|&ti| toks[ti].kind == TokKind::Str) {
                    j += 1;
                }
            }
            _ => break,
        }
        if j >= sig.len() {
            return None;
        }
    }

    let kw = text(j);
    let header_line = attrs.first().map(|a| a.0).unwrap_or_else(|| line_of(k));
    let kw_line = line_of(j);
    let cfg_test = attrs.iter().any(|(_, a)| attr_is_cfg_test(a));
    let macro_export = attrs.iter().any(|(_, a)| a.starts_with("macro_export"));
    let parent = open.last().map(|&(idx, _)| idx);
    let mut mk = |kind: ItemKind, name: String| -> usize {
        items.push(Item {
            kind,
            name,
            is_pub,
            is_unsafe,
            cfg_test,
            macro_export,
            inherent_impl: false,
            header_line,
            kw_line,
            end_line: kw_line,
            parent,
        });
        items.len() - 1
    };

    let name_after = |j: usize| -> String {
        if sig
            .get(j + 1)
            .is_some_and(|&ti| toks[ti].kind == TokKind::Ident)
        {
            text(j + 1).to_string()
        } else {
            "_".to_string()
        }
    };

    match kw {
        "fn" => {
            let idx = mk(ItemKind::Fn, name_after(j));
            Some((
                j + 2,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: false,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        "mod" => {
            let idx = mk(ItemKind::Mod, name_after(j));
            Some((
                j + 2,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: false,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        "trait" => {
            let idx = mk(ItemKind::Trait, name_after(j));
            Some((
                j + 2,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: false,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        "struct" | "enum" | "union" => {
            let kind = match kw {
                "struct" => ItemKind::Struct,
                "enum" => ItemKind::Enum,
                _ => ItemKind::Union,
            };
            let idx = mk(kind, name_after(j));
            Some((
                j + 2,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: false,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        "impl" => {
            let idx = mk(ItemKind::Impl, String::new());
            Some((
                j + 1,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: true,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        "static" => {
            let at = if text(j + 1) == "mut" { j + 1 } else { j };
            let idx = mk(ItemKind::Static, name_after(at));
            Some((
                at + 2,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: false,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        "const" => {
            let idx = mk(ItemKind::Const, name_after(j));
            Some((
                j + 2,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: false,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        "type" => {
            let idx = mk(ItemKind::TypeAlias, name_after(j));
            Some((
                j + 2,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: false,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        "use" => {
            // Leaf: capture the path text up to the terminating `;`
            // (brace groups `use x::{a, b};` keep their braces balanced).
            let mut m = j + 1;
            let mut bd = 0i32;
            while m < sig.len() {
                match text(m) {
                    "{" => bd += 1,
                    "}" => bd -= 1,
                    ";" if bd <= 0 => break,
                    _ => {}
                }
                m += 1;
            }
            let parts: Vec<&str> = (j + 1..m).map(text).collect();
            let idx = mk(ItemKind::Use, normalize_path(&parts));
            items[idx].end_line = line_of(m.min(sig.len().saturating_sub(1)));
            Some((m + 1, None))
        }
        "macro_rules" => {
            // macro_rules ! name { .. }
            if text(j + 1) != "!" {
                return None;
            }
            let name = if sig
                .get(j + 2)
                .is_some_and(|&ti| toks[ti].kind == TokKind::Ident)
            {
                text(j + 2).to_string()
            } else {
                "_".to_string()
            };
            let idx = mk(ItemKind::MacroDef, name);
            Some((
                j + 3,
                Some(Pending {
                    item: idx,
                    paren: 0,
                    bracket: 0,
                    is_impl: false,
                    impl_hdr: Vec::new(),
                }),
            ))
        }
        _ => {
            // Statement-position macro invocation: `name! { .. }`,
            // `name!(..);`, `name![..];`.
            if text(j + 1) == "!" && matches!(text(j + 2), "{" | "(" | "[") {
                let idx = mk(ItemKind::MacroCall, kw.to_string());
                return Some((
                    j + 2,
                    Some(Pending {
                        item: idx,
                        paren: 0,
                        bracket: 0,
                        is_impl: false,
                        impl_hdr: Vec::new(),
                    }),
                ));
            }
            None
        }
    }
}

/// Classify an impl header (`impl_hdr` = significant token texts between
/// `impl` and `{`) and derive its display name.
fn impl_name(hdr: &[String]) -> (String, bool) {
    // A `for` not followed by `<` marks a trait impl (`for<'a>` is HRTB).
    let mut for_at = None;
    for (i, t) in hdr.iter().enumerate() {
        if t == "for" && hdr.get(i + 1).map(String::as_str) != Some("<") {
            for_at = Some(i);
            break;
        }
    }
    match for_at {
        Some(i) => {
            let trait_name = first_type_ident(&hdr[..i]);
            let type_name = first_type_ident(&hdr[i + 1..]);
            (format!("{trait_name} for {type_name}"), false)
        }
        None => (first_type_ident(hdr), true),
    }
}

/// First identifier of a type path, skipping a leading generic parameter
/// list (`<T: Bound>`) and references (`&`, `&'a mut`).
fn first_type_ident(toks: &[String]) -> String {
    let mut i = 0;
    if toks.first().map(String::as_str) == Some("<") {
        let mut d = 1i32;
        i = 1;
        while i < toks.len() && d > 0 {
            match toks[i].as_str() {
                "<" => d += 1,
                ">" => d -= 1,
                _ => {}
            }
            i += 1;
        }
    }
    // The self-type path's *last* leading segment is the interesting one
    // (`fmt::Display` -> `Display`): walk `seg :: seg` while it lasts.
    let mut name = String::from("_");
    while i < toks.len() {
        let t = &toks[i];
        if t == "&" || t == "mut" || t.starts_with('\'') {
            i += 1;
            continue;
        }
        if t.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            name = t.clone();
            // Continue through `::` path segments.
            if toks.get(i + 1).map(String::as_str) == Some(":")
                && toks.get(i + 2).map(String::as_str) == Some(":")
            {
                i += 3;
                continue;
            }
        }
        break;
    }
    name
}

/// Rebuild a `use` path from its significant tokens: space only between
/// two word tokens (`x as y`), everything else packed tight, so
/// `voxel :: prelude :: *` renders as `voxel::prelude::*`.
fn normalize_path(parts: &[&str]) -> String {
    let word_edge = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut out = String::new();
    for (i, t) in parts.iter().enumerate() {
        if i > 0 && word_edge(parts[i - 1].chars().last()) && word_edge(t.chars().next()) {
            out.push(' ');
        }
        out.push_str(t);
    }
    out
}

/// `cfg(test)`, `cfg(all(test, ..))`, `cfg(any(.., test))` — but not
/// `cfg(not(test))` and not substrings like `testkit`.
fn attr_is_cfg_test(attr: &str) -> bool {
    if !attr.starts_with("cfg") {
        return false;
    }
    if attr.contains("not(test)") {
        return false;
    }
    // Word-boundary search for `test`.
    let bytes: Vec<char> = attr.chars().collect();
    let pat: Vec<char> = "test".chars().collect();
    let isw = |c: char| c.is_alphanumeric() || c == '_';
    let mut i = 0;
    while i + pat.len() <= bytes.len() {
        if bytes[i..i + pat.len()] == pat[..] {
            let before = if i == 0 { None } else { Some(bytes[i - 1]) };
            let after = bytes.get(i + pat.len()).copied();
            if !before.is_some_and(isw) && !after.is_some_and(isw) {
                return true;
            }
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Vec<Item> {
        parse(src, &lex(src))
    }

    #[test]
    fn fn_mod_extents_and_nesting() {
        let src = "fn a() {\n    let x = 1;\n}\nmod m {\n    fn b() {}\n}\n";
        let items = parse_src(src);
        assert_eq!(items.len(), 3);
        assert_eq!((items[0].kind, items[0].name.as_str()), (ItemKind::Fn, "a"));
        assert_eq!(items[0].end_line, 3);
        assert_eq!(
            (items[1].kind, items[1].name.as_str()),
            (ItemKind::Mod, "m")
        );
        assert_eq!(items[2].parent, Some(1));
    }

    #[test]
    fn cfg_test_marks_items_not_not_test() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n#[cfg(not(test))]\nfn live() {}\n#[cfg(feature = \"testkit\")]\nfn feat() {}\n";
        let items = parse_src(src);
        assert!(items[0].cfg_test);
        assert_eq!(items[0].header_line, 1);
        assert!(!items[2].cfg_test, "not(test) must not count");
        assert!(!items[3].cfg_test, "testkit substring must not count");
    }

    #[test]
    fn impl_inherent_vs_trait() {
        let src = "impl Foo {\n    pub fn new() -> Foo { Foo }\n}\nimpl fmt::Display for Foo {\n    fn fmt(&self) {}\n}\nimpl<T: Clone> Wrap<T> {\n    fn g() {}\n}\n";
        let items = parse_src(src);
        let impls: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Impl).collect();
        assert_eq!(impls.len(), 3);
        assert!(impls[0].inherent_impl);
        assert_eq!(impls[0].name, "Foo");
        assert!(!impls[1].inherent_impl);
        assert_eq!(impls[1].name, "Display for Foo");
        assert!(impls[2].inherent_impl);
        assert_eq!(impls[2].name, "Wrap");
    }

    #[test]
    fn impl_in_return_position_is_not_an_item() {
        let src = "fn f() -> impl Iterator<Item = u8> {\n    std::iter::empty()\n}\n";
        let items = parse_src(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, ItemKind::Fn);
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let src = "fn g() {\n    let f: fn(u32) -> u32 = id;\n    f(1);\n}\n";
        let items = parse_src(src);
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn pub_and_restricted_visibility() {
        let src = "pub fn a() {}\npub(crate) fn b() {}\npub struct S;\nstatic mut G: u32 = 0;\n";
        let items = parse_src(src);
        assert!(items[0].is_pub);
        assert!(!items[1].is_pub);
        assert!(items[2].is_pub);
        assert_eq!(items[3].kind, ItemKind::Static);
        assert_eq!(items[3].name, "G");
    }

    #[test]
    fn use_groups_and_macro_defs() {
        let src = "pub use crate::prelude::*;\nuse std::collections::{BTreeMap, BTreeSet};\n#[macro_export]\nmacro_rules! ev {\n    ($x:expr) => { $x };\n}\n";
        let items = parse_src(src);
        assert_eq!(items[0].kind, ItemKind::Use);
        assert!(items[0].is_pub);
        assert_eq!(items[0].name, "crate::prelude::*");
        assert_eq!(items[1].kind, ItemKind::Use);
        let mac = &items[2];
        assert_eq!(mac.kind, ItemKind::MacroDef);
        assert_eq!(mac.name, "ev");
        assert!(mac.macro_export);
        assert_eq!(mac.end_line, 6);
    }

    #[test]
    fn unsafe_fn_and_trait_methods() {
        let src = "pub unsafe fn danger() {}\npub trait T {\n    fn req(&self);\n    fn prov(&self) {}\n}\n";
        let items = parse_src(src);
        assert!(items[0].is_unsafe);
        let t = items.iter().position(|i| i.kind == ItemKind::Trait);
        let methods: Vec<&Item> = items.iter().filter(|i| i.parent == t).collect();
        assert_eq!(methods.len(), 2);
        assert_eq!(methods[0].name, "req");
        assert_eq!(methods[0].end_line, 3);
    }

    #[test]
    fn survives_arbitrary_garbage() {
        for src in [
            "impl impl impl",
            "fn",
            "pub pub pub fn",
            "}}}{{{",
            "macro_rules!",
            "use ;;; fn f( {",
            "#[cfg(test) fn x",
        ] {
            let _ = parse_src(src);
        }
    }
}
