//! `voxel-lint` — dependency-free static analysis for the VOXEL workspace.
//!
//! The engine lexes every first-party source file into a spanned token
//! stream (`lexer`), recovers the item tree (`parse`), and runs
//! token-accurate rules over it (`scan` carries the per-file model).
//! Enforced invariants, per DESIGN.md §10:
//!
//! - **Determinism**: no `HashMap`/`HashSet` in sim-critical crates, no
//!   wall-clock access outside `bench`.
//! - **Robustness**: no `unwrap()`/`expect()`/`panic!` in library code,
//!   no exact `==`/`!=` on SSIM/QoE floats.
//! - **Shard safety**: no `Rc`/`RefCell`/`Cell`/`static mut`/raw-pointer
//!   state in shard-crossing crates; no lock-order inversions anywhere.
//! - **Unsafe audit**: every `unsafe` carries a `// SAFETY:` note, and the
//!   total count is held to the ratcheted `lint/unsafe-budget.txt`.
//! - **API baseline**: the workspace `pub` surface matches the checked-in
//!   `lint/api-baseline.txt`; bless deliberate changes with `VOXEL_BLESS=1`.
//! - **Trace taxonomy**: every `trace_event!` kind and metric name must
//!   match the DESIGN.md §9 table, and vice versa.
//!
//! Findings are suppressed with `// lint: allow(<rule>) <reason>` — on a
//! line (trailing or standalone) or, when placed above an item header,
//! for the whole item. Reasonless and stale waivers are violations
//! themselves.

pub mod api;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod shard;
pub mod taxonomy;

pub use rules::Violation;

use scan::SourceFile;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// First-party crates to scan (vendored stand-ins for external deps —
/// `bytes`, `rand`, `proptest`, `criterion` — are third-party idiom and
/// exempt).
pub const FIRST_PARTY: &[&str] = &[
    "sim", "trace", "obs", "media", "prep", "netem", "quic", "http", "abr", "core", "fleet",
    "bench", "lint", "testkit",
];

/// Rule families selectable with `--only`.
pub const FAMILIES: &[&str] = &["rules", "shard", "unsafe", "taxonomy", "api"];

/// Knobs for one lint pass.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Rewrite the API baseline and unsafe budget instead of diffing them.
    pub bless: bool,
    /// Restrict the pass to one rule family (waiver hygiene is skipped,
    /// since staleness can only be judged by a full pass).
    pub only: Option<String>,
}

impl Options {
    /// `VOXEL_BLESS=1` in the environment turns on bless mode.
    pub fn from_env() -> Options {
        Options {
            bless: std::env::var("VOXEL_BLESS").is_ok_and(|v| v == "1"),
            only: None,
        }
    }
}

/// Run the full lint pass over the workspace rooted at `root`.
/// Returns all violations (waived findings included) sorted by path and
/// line; callers gate on the unwaived subset.
pub fn run(root: &Path) -> Result<Vec<Violation>, String> {
    run_with(root, &Options::from_env())
}

/// Run a (possibly family-restricted) lint pass.
pub fn run_with(root: &Path, opts: &Options) -> Result<Vec<Violation>, String> {
    if let Some(only) = opts.only.as_deref() {
        if !FAMILIES.contains(&only) {
            return Err(format!(
                "unknown rule family `{only}` (expected one of: {})",
                FAMILIES.join(", ")
            ));
        }
    }
    let fam = |name: &str| opts.only.as_deref().is_none_or(|o| o == name);

    let mut files = Vec::new();
    for name in FIRST_PARTY {
        let src = root.join("crates").join(name).join("src");
        collect(&src, root, name, &mut files)?;
    }
    collect(&root.join("src"), root, ".", &mut files)?;
    collect(&root.join("examples"), root, "examples", &mut files)?;

    let mut violations = Vec::new();
    let mut uses = rules::WaiverUse::default();

    if fam("rules") {
        for f in &files {
            rules::check_file(f, &mut uses, &mut violations);
        }
    }
    if fam("shard") {
        shard::check_shard(&files, &mut uses, &mut violations);
    }
    if fam("unsafe") {
        rules::check_unsafe(&files, root, opts.bless, &mut uses, &mut violations)?;
    }
    if fam("taxonomy") {
        // The lint's own source mentions `trace_event!(` and `Layer::` as
        // pattern strings, and the testkit's oracles match on event-kind
        // literals; neither is an emission.
        let mut emissions = Vec::new();
        let mut by_path: BTreeMap<&str, &SourceFile> = BTreeMap::new();
        for f in &files {
            by_path.insert(f.rel_path.as_str(), f);
            if f.crate_name != "lint" && f.crate_name != "testkit" {
                emissions.extend(taxonomy::extract(f));
            }
        }
        let design_path = root.join("DESIGN.md");
        let design = fs::read_to_string(&design_path)
            .map_err(|e| format!("read {}: {e}", design_path.display()))?;
        let tax = taxonomy::parse_design(&design)?;
        taxonomy::cross_check(
            &tax,
            &emissions,
            "DESIGN.md",
            &by_path,
            &mut uses,
            &mut violations,
        );
    }
    if fam("api") {
        api::check(&files, root, opts.bless, &mut violations)?;
    }
    if opts.only.is_none() {
        rules::check_waiver_hygiene(&files, &uses, &mut violations);
    }

    violations.sort();
    Ok(violations)
}

/// Render violations as a JSON array (one object per finding, waived
/// findings included so downstream tooling sees the full picture).
pub fn render_json(violations: &[Violation]) -> String {
    fn esc(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }
    let mut s = String::from("[\n");
    for (i, v) in violations.iter().enumerate() {
        s.push_str("  {\"path\":\"");
        esc(&v.path, &mut s);
        s.push_str(&format!("\",\"line\":{},\"rule\":\"", v.line));
        esc(v.rule, &mut s);
        s.push_str("\",\"message\":\"");
        esc(&v.msg, &mut s);
        s.push_str(&format!("\",\"waived\":{}}}", v.waived));
        s.push_str(if i + 1 == violations.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    s.push_str("]\n");
    s
}

/// Recursively collect `.rs` files under `dir` into parsed `SourceFile`s.
fn collect(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let content =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::parse(&rel, crate_name, &content));
        }
    }
    Ok(())
}

/// The repo root as seen from this crate's build location.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance check: the lint stays quiet on the real,
    /// clean workspace. Every hazard is either fixed or carries a
    /// justified waiver, the unsafe budget matches, and the public
    /// surface matches the blessed baseline.
    #[test]
    fn workspace_is_clean() {
        let violations = run_with(&default_root(), &Options::default()).expect("lint pass runs");
        let rendered: Vec<String> = violations
            .iter()
            .filter(|v| !v.waived)
            .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.msg))
            .collect();
        assert!(
            rendered.is_empty(),
            "workspace has lint violations:\n{}",
            rendered.join("\n")
        );
    }

    /// Each classic rule fires on a seeded bad fixture (end-to-end
    /// through the same entry points the binary uses).
    #[test]
    fn seeded_fixture_trips_every_rule() {
        let bad = "\
use std::collections::HashMap;
use std::rc::Rc;
fn lib(x: Option<u32>) {
    let t = std::time::Instant::now();
    let v = x.unwrap();
    if ssim == 1.0 { panic!(\"boom\"); }
    let p: *mut u8 = q;
    let y = unsafe { *p };
}
// lint: allow(panic)
let w = y.unwrap();
";
        let f = scan::SourceFile::parse("crates/quic/src/bad.rs", "quic", bad);
        let files = [f];
        let mut uses = rules::WaiverUse::default();
        let mut out = Vec::new();
        rules::check_file(&files[0], &mut uses, &mut out);
        shard::check_shard(&files, &mut uses, &mut out);
        rules::check_unsafe(
            &files,
            Path::new("/nonexistent-lint-root"),
            false,
            &mut uses,
            &mut out,
        )
        .expect("unsafe check runs");
        rules::check_waiver_hygiene(&files, &uses, &mut out);
        let fired: std::collections::BTreeSet<&str> = out.iter().map(|v| v.rule).collect();
        for rule in [
            "nondeterministic-map",
            "wall-clock",
            "panic",
            "float-eq",
            "shard-unshareable",
            "unsafe-audit",
            "unsafe-budget",
            "waiver-missing-reason",
        ] {
            assert!(fired.contains(rule), "{rule} did not fire: {out:?}");
        }
    }

    #[test]
    fn json_rendering_escapes_and_round_trips_shape() {
        let v = vec![
            Violation {
                path: "crates/quic/src/x.rs".to_string(),
                line: 3,
                rule: "panic",
                msg: "a \"quoted\" message\twith tab".to_string(),
                waived: false,
            },
            Violation {
                path: "crates/abr/src/y.rs".to_string(),
                line: 9,
                rule: "float-eq",
                msg: "waived one".to_string(),
                waived: true,
            },
        ];
        let json = render_json(&v);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\t"));
        assert!(json.contains("\"waived\":true"));
        assert!(json.contains("\"waived\":false"));
        assert_eq!(json.matches("{\"path\"").count(), 2);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(render_json(&[]).trim(), "[\n]".trim_start_matches('\n'));
    }

    #[test]
    fn only_unknown_family_is_an_error() {
        let opts = Options {
            bless: false,
            only: Some("bogus".to_string()),
        };
        assert!(run_with(&default_root(), &opts).is_err());
    }

    #[test]
    fn only_api_family_runs_alone_and_is_clean() {
        let opts = Options {
            bless: false,
            only: Some("api".to_string()),
        };
        let v = run_with(&default_root(), &opts).expect("api pass runs");
        let unwaived: Vec<_> = v.iter().filter(|v| !v.waived).collect();
        assert!(unwaived.is_empty(), "{unwaived:?}");
    }
}
