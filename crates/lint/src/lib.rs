//! `voxel-lint` — dependency-free static analysis for the VOXEL workspace.
//!
//! Enforces the project invariants DESIGN.md §10 documents:
//!
//! - **Determinism**: no `HashMap`/`HashSet` in sim-critical crates, no
//!   wall-clock access outside `bench`.
//! - **Robustness**: no `unwrap()`/`expect()`/`panic!` in library code,
//!   no exact `==`/`!=` on SSIM/QoE floats.
//! - **Trace taxonomy**: every `trace_event!` kind and metric name must
//!   match the DESIGN.md §9 table, and vice versa.
//!
//! Findings are suppressed per-line with `// lint: allow(<rule>) <reason>`;
//! reasonless and stale waivers are violations themselves.

pub mod rules;
pub mod scan;
pub mod taxonomy;

pub use rules::Violation;

use scan::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// First-party crates to scan (vendored stand-ins for external deps —
/// `bytes`, `rand`, `proptest`, `criterion` — are third-party idiom and
/// exempt).
pub const FIRST_PARTY: &[&str] = &[
    "sim", "trace", "obs", "media", "prep", "netem", "quic", "http", "abr", "core", "fleet",
    "bench", "lint", "testkit",
];

/// Run the full lint pass over the workspace rooted at `root`.
/// Returns all violations sorted by path and line.
pub fn run(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    for name in FIRST_PARTY {
        let src = root.join("crates").join(name).join("src");
        collect(&src, root, name, &mut files)?;
    }
    collect(&root.join("src"), root, ".", &mut files)?;
    collect(&root.join("examples"), root, "examples", &mut files)?;

    let mut violations = Vec::new();
    let mut uses = rules::WaiverUse::default();
    let mut emissions = Vec::new();
    for f in &files {
        rules::check_file(f, &mut uses, &mut violations);
        // The lint's own source mentions `trace_event!(` and `Layer::` as
        // pattern strings, and the testkit's oracles match on event-kind
        // literals; neither is an emission.
        if f.crate_name != "lint" && f.crate_name != "testkit" {
            emissions.extend(taxonomy::extract(f));
        }
    }
    rules::check_waiver_hygiene(&files, &uses, &mut violations);

    let design_path = root.join("DESIGN.md");
    let design = fs::read_to_string(&design_path)
        .map_err(|e| format!("read {}: {e}", design_path.display()))?;
    let tax = taxonomy::parse_design(&design)?;
    taxonomy::cross_check(&tax, &emissions, "DESIGN.md", &mut violations);

    violations.sort();
    Ok(violations)
}

/// Recursively collect `.rs` files under `dir` into parsed `SourceFile`s.
fn collect(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("read dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let content =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::parse(&rel, crate_name, &content));
        }
    }
    Ok(())
}

/// The repo root as seen from this crate's build location.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance check: the lint stays quiet on the real,
    /// clean workspace. Every hazard is either fixed or carries a
    /// justified waiver.
    #[test]
    fn workspace_is_clean() {
        let violations = run(&default_root()).expect("lint pass runs");
        let rendered: Vec<String> = violations
            .iter()
            .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.msg))
            .collect();
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            rendered.join("\n")
        );
    }

    /// Each rule fires on a seeded bad fixture (end-to-end through the
    /// same entry points the binary uses).
    #[test]
    fn seeded_fixture_trips_every_rule() {
        let bad = "\
use std::collections::HashMap;
fn lib(x: Option<u32>) {
    let t = std::time::Instant::now();
    let v = x.unwrap();
    if ssim == 1.0 { panic!(\"boom\"); }
}
// lint: allow(panic)
let w = y.unwrap();
";
        let f = scan::SourceFile::parse("crates/quic/src/bad.rs", "quic", bad);
        let mut uses = rules::WaiverUse::default();
        let mut out = Vec::new();
        rules::check_file(&f, &mut uses, &mut out);
        rules::check_waiver_hygiene(std::slice::from_ref(&f), &uses, &mut out);
        let fired: std::collections::BTreeSet<&str> = out.iter().map(|v| v.rule).collect();
        for rule in [
            "nondeterministic-map",
            "wall-clock",
            "panic",
            "float-eq",
            "waiver-missing-reason",
        ] {
            assert!(fired.contains(rule), "{rule} did not fire: {out:?}");
        }
    }
}
