//! Token-level lexer for the lint engine.
//!
//! Produces a flat token stream over one source file. Three properties are
//! load-bearing and property-tested (`tests/lexer_prop.rs`):
//!
//! - **total**: lexing arbitrary input never panics;
//! - **tiling**: token byte spans cover the input exactly, in order, with
//!   no gaps or overlaps (`t[k].end == t[k+1].start`);
//! - **classified**: comments and string/char literal *contents* become
//!   trivia or literal tokens, so a rule that matches identifier tokens can
//!   never fire on `"HashMap"` inside a string or a doc comment.
//!
//! Handled Rust surface: line comments, nested block comments, plain and
//! raw (`r#"..."#`) strings, byte strings/chars (`b"..."`, `b'x'`),
//! char-literal vs lifetime disambiguation (`'a'` vs `'a`), raw
//! identifiers (`r#match`), and numeric literals with fraction/exponent
//! (`1.5e-3`). Unterminated constructs extend to end of input instead of
//! erroring — the lexer is a measurement instrument, not a compiler front
//! end.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Whitespace run (including newlines).
    Ws,
    /// `// ...` up to (not including) the newline.
    LineComment,
    /// `/* ... */` with nesting.
    BlockComment,
    /// String literal including quotes: `"..."`, `r#"..."#`, `b"..."`.
    Str,
    /// Char or byte-char literal including quotes: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// Numeric literal: `42`, `0xff`, `1.5e-3`, `2.0_f32`.
    Num,
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Any single other character.
    Punct,
}

impl TokKind {
    /// Whitespace and comments — skipped by the parser and the rules.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// One token: half-open byte span `[start, end)` plus the 1-based line its
/// first byte sits on.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Lex `src` into a complete token stream.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<(usize, char)> = src.char_indices().collect();
    let n = b.len();
    let peek = |j: usize| b.get(j).map(|&(_, c)| c);
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < n {
        let start_i = i;
        let start_line = line;
        let c = b[i].1;
        let kind = if c.is_whitespace() {
            while i < n && b[i].1.is_whitespace() {
                if b[i].1 == '\n' {
                    line += 1;
                }
                i += 1;
            }
            TokKind::Ws
        } else if c == '/' && peek(i + 1) == Some('/') {
            while i < n && b[i].1 != '\n' {
                i += 1;
            }
            TokKind::LineComment
        } else if c == '/' && peek(i + 1) == Some('*') {
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if b[i].1 == '/' && peek(i + 1) == Some('*') {
                    depth += 1;
                    i += 2;
                } else if b[i].1 == '*' && peek(i + 1) == Some('/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i].1 == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            TokKind::BlockComment
        } else if let Some(k) = try_raw_or_byte(&b, i, &mut line, &mut i) {
            k
        } else if c == '"' {
            i += 1;
            scan_str_body(&b, &mut i, &mut line);
            TokKind::Str
        } else if c == '\'' {
            scan_char_or_lifetime(&b, &mut i, &mut line)
        } else if c.is_ascii_digit() {
            scan_number(&b, &mut i);
            TokKind::Num
        } else if is_ident_start(c) {
            i += 1;
            while i < n && is_ident_char(b[i].1) {
                i += 1;
            }
            TokKind::Ident
        } else {
            i += 1;
            TokKind::Punct
        };
        let end = match b.get(i) {
            Some(&(off, _)) => off,
            None => src.len(),
        };
        toks.push(Tok {
            kind,
            start: b[start_i].0,
            end,
            line: start_line,
        });
    }
    toks
}

/// Raw strings (`r"..."`, `r#"..."#`), byte strings (`b"..."`, `br#"..."#`),
/// byte chars (`b'x'`), and raw identifiers (`r#match`). Returns `None` when
/// position `i` starts none of these (plain ident handling takes over).
fn try_raw_or_byte(
    b: &[(usize, char)],
    start: usize,
    line: &mut usize,
    i: &mut usize,
) -> Option<TokKind> {
    let peek = |j: usize| b.get(j).map(|&(_, c)| c);
    let c = b.get(start)?.1;
    if c != 'r' && c != 'b' {
        return None;
    }
    // b'x' byte char.
    if c == 'b' && peek(start + 1) == Some('\'') {
        *i = start + 1;
        // Reuse the char scanner on the quote; a byte char is never a
        // lifetime, but the scanner degrades safely either way.
        let _ = scan_char_or_lifetime(b, i, line);
        return Some(TokKind::Char);
    }
    // b"...": plain string body after the b.
    if c == 'b' && peek(start + 1) == Some('"') {
        *i = start + 2;
        scan_str_body(b, i, line);
        return Some(TokKind::Str);
    }
    // r"..." / r#"..."# / br#"..."#.
    let r_at = if c == 'r' {
        start
    } else if peek(start + 1) == Some('r') {
        start + 1
    } else {
        return None;
    };
    let mut j = r_at + 1;
    let mut hashes = 0usize;
    while peek(j) == Some('#') {
        hashes += 1;
        j += 1;
    }
    if peek(j) == Some('"') {
        // Raw string: scan until `"` followed by `hashes` hashes.
        *i = j + 1;
        while *i < b.len() {
            let ch = b[*i].1;
            if ch == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if peek(*i + 1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    *i += 1 + hashes;
                    return Some(TokKind::Str);
                }
            }
            if ch == '\n' {
                *line += 1;
            }
            *i += 1;
        }
        return Some(TokKind::Str); // unterminated: extends to EOF
    }
    if c == 'r' && hashes == 1 && peek(j).is_some_and(is_ident_start) {
        // Raw identifier r#match.
        *i = j + 1;
        while *i < b.len() && is_ident_char(b[*i].1) {
            *i += 1;
        }
        return Some(TokKind::Ident);
    }
    None
}

/// Scan a plain string body; `*i` is just past the opening quote on entry
/// and just past the closing quote (or at EOF) on exit.
fn scan_str_body(b: &[(usize, char)], i: &mut usize, line: &mut usize) {
    while *i < b.len() {
        match b[*i].1 {
            '\\' => {
                if b.get(*i + 1).is_some_and(|&(_, e)| e == '\n') {
                    *line += 1;
                }
                *i = (*i + 2).min(b.len());
            }
            '"' => {
                *i += 1;
                return;
            }
            ch => {
                if ch == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }
}

/// Disambiguate `'a'` (char) from `'a` (lifetime); `*i` is at the opening
/// quote on entry.
fn scan_char_or_lifetime(b: &[(usize, char)], i: &mut usize, line: &mut usize) -> TokKind {
    let peek = |j: usize| b.get(j).map(|&(_, c)| c);
    let c1 = peek(*i + 1);
    if c1 == Some('\\') {
        // Escaped char literal: consume quote, backslash, the escaped char,
        // then anything up to the closing quote.
        *i = (*i + 2).min(b.len());
        if *i < b.len() {
            if b[*i].1 == '\n' {
                *line += 1;
            }
            *i += 1;
        }
        while *i < b.len() && b[*i].1 != '\'' {
            if b[*i].1 == '\n' {
                *line += 1;
            }
            *i += 1;
        }
        if *i < b.len() {
            *i += 1;
        }
        TokKind::Char
    } else if c1.is_some() && c1 != Some('\'') && peek(*i + 2) == Some('\'') {
        // 'x' — but `'a'` where `a` could also start a lifetime is a char
        // literal precisely because the closing quote follows immediately.
        if c1 == Some('\n') {
            *line += 1;
        }
        *i += 3;
        TokKind::Char
    } else {
        // Lifetime tick: `'` + ident chars (possibly zero for stray quotes).
        *i += 1;
        while *i < b.len() && is_ident_char(b[*i].1) {
            *i += 1;
        }
        TokKind::Lifetime
    }
}

/// Scan a numeric literal starting at an ASCII digit.
fn scan_number(b: &[(usize, char)], i: &mut usize) {
    let peek = |j: usize| b.get(j).map(|&(_, c)| c);
    let is_hex = b[*i].1 == '0' && matches!(peek(*i + 1), Some('x') | Some('X'));
    *i += 1;
    while *i < b.len() {
        let ch = b[*i].1;
        if ch.is_ascii_alphanumeric() || ch == '_' {
            *i += 1;
        } else if ch == '.' && peek(*i + 1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` continues the literal; `1..5` and `1.max(2)` do not.
            *i += 1;
        } else if (ch == '+' || ch == '-') && !is_hex && *i > 0 && matches!(b[*i - 1].1, 'e' | 'E')
        {
            // Exponent sign in `1e+5` (suppressed for hex, where `E` is a
            // digit and `-` would be subtraction).
            *i += 1;
        } else {
            break;
        }
    }
}

/// Is this `Num` token text a *floating* literal (`0.5`, `1e6`, `2.0_f32`)?
/// Plain integers and hex/binary/octal literals are not.
pub fn is_float_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0b") || lower.starts_with("0o") {
        return false;
    }
    text.contains('.') || lower.contains('e')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, src[t.start..t.end].to_string()))
            .collect()
    }

    fn assert_tiles(src: &str) {
        let toks = lex(src);
        let mut off = 0;
        for t in &toks {
            assert_eq!(t.start, off, "gap/overlap at {off} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            off = t.end;
        }
        assert_eq!(off, src.len(), "tokens do not reach EOF in {src:?}");
    }

    #[test]
    fn idents_strings_comments_classified() {
        let src = "let s = \"HashMap\"; // HashMap\n/* HashMap /* nested */ */ HashMap";
        assert_tiles(src);
        let idents: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t)
            .collect();
        // Only the final bare identifier counts; string and comments do not.
        assert_eq!(idents, vec!["let", "s", "HashMap"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = "let r = r#\"quote \" inside\"#; let k = r#match; let b = br\"x\";";
        assert_tiles(src);
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quote")));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#match"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Str && t == "br\"x\""));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let n = '\\n'; }";
        assert_tiles(src);
        let ks = kinds(src);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Char && t == "'\\''"));
    }

    #[test]
    fn numbers_and_floats() {
        let src = "let a = 1..5; let b = 1.5e-3; let c = 0xEE; let d = 2.0_f32;";
        assert_tiles(src);
        let nums: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(nums, vec!["1", "5", "1.5e-3", "0xEE", "2.0_f32"]);
        assert!(is_float_literal("1.5e-3"));
        assert!(is_float_literal("2.0_f32"));
        assert!(!is_float_literal("0xEE"));
        assert!(!is_float_literal("42"));
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panicking() {
        for src in ["\"abc", "/* never closed", "r#\"raw", "'", "b'", "// x"] {
            assert_tiles(src);
        }
    }

    #[test]
    fn line_numbers_track_every_multiline_token() {
        let src = "a\n\"x\ny\"\n/* c\nd */\nz";
        let toks = lex(src);
        let z = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && &src[t.start..t.end] == "z")
            .expect("z token");
        assert_eq!(z.line, 6);
    }
}
