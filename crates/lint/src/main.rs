//! CLI for the workspace lint pass. Exit code 1 on any unwaived
//! violation (or a blown wall-time guard), 2 on operational error.
//!
//! Usage: `cargo run -p voxel-lint [-- --root <path>] [--json <file>]
//! [--only <family>] [--max-seconds <n>]`
//!
//! `VOXEL_BLESS=1` rewrites `lint/api-baseline.txt` and
//! `lint/unsafe-budget.txt` from the current workspace instead of
//! diffing against them.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let t0 = std::time::Instant::now(); // lint: allow(wall-clock) measures the lint pass itself for the CI wall-time guard, never sim state
    let mut args = std::env::args().skip(1);
    let mut root = voxel_lint::default_root();
    let mut json_path: Option<PathBuf> = None;
    let mut max_seconds: Option<u64> = None;
    let mut opts = voxel_lint::Options::from_env();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_error("--root requires a path"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage_error("--json requires an output path"),
            },
            "--only" => match args.next() {
                Some(f) => opts.only = Some(f),
                None => {
                    return usage_error(&format!(
                        "--only requires a rule family ({})",
                        voxel_lint::FAMILIES.join(", ")
                    ))
                }
            },
            "--max-seconds" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => max_seconds = Some(n),
                None => return usage_error("--max-seconds requires an integer"),
            },
            "--help" | "-h" => {
                println!("voxel-lint: workspace invariant lints (see DESIGN.md §10)");
                println!(
                    "usage: voxel-lint [--root <repo-root>] [--json <file>] [--only <family>] [--max-seconds <n>]"
                );
                println!("families: {}", voxel_lint::FAMILIES.join(", "));
                println!("env: VOXEL_BLESS=1 re-blesses the API baseline and unsafe budget");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument: {other}")),
        }
    }

    let violations = match voxel_lint::run_with(&root, &opts) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("voxel-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &json_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, voxel_lint::render_json(&violations)) {
            eprintln!("voxel-lint: error: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let waived = violations.iter().filter(|v| v.waived).count();
    let unwaived: Vec<_> = violations.iter().filter(|v| !v.waived).collect();
    for v in &unwaived {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.msg);
    }
    let mut failed = !unwaived.is_empty();
    if failed {
        println!(
            "voxel-lint: {} violation(s), {waived} waived finding(s)",
            unwaived.len()
        );
    } else {
        println!("voxel-lint: clean ({waived} waived finding(s))");
    }

    if let Some(max) = max_seconds {
        let elapsed = t0.elapsed();
        if elapsed.as_secs_f64() > max as f64 {
            println!(
                "voxel-lint: wall-time guard: pass took {:.2}s (limit {max}s)",
                elapsed.as_secs_f64()
            );
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("voxel-lint: {msg}");
    ExitCode::from(2)
}
