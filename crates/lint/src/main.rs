//! CLI for the workspace lint pass. Exit code 1 on any violation.
//!
//! Usage: `cargo run -p voxel-lint [-- --root <path>]`

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = voxel_lint::default_root();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("voxel-lint: workspace invariant lints (see DESIGN.md §10)");
                println!("usage: voxel-lint [--root <repo-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    match voxel_lint::run(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("voxel-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.msg);
            }
            println!("voxel-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("voxel-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
