//! Source model for the lint pass, built on the token stream.
//!
//! `SourceFile` lexes the file once (`lexer`), recovers the item tree
//! (`parse`), and resolves waivers. Rules consume tokens — so a pattern
//! inside a string literal or comment can never fire — and attribute
//! findings to the line of the offending token, which makes multi-line
//! constructs (`.lock()\n.expect(..)`, `trace_event!(\n..)`) first-class.
//!
//! ## Waivers
//!
//! `// lint: allow(<rule>) <reason>` suppresses a finding for `<rule>`:
//!
//! - **trailing** on a code line: applies to that line;
//! - **standalone** above a plain code line: applies to the next code line;
//! - **standalone** above an *item header* (fn/mod/impl/struct/use/...):
//!   applies to the whole item, attributes included — this is the
//!   scope-aware form that lets one justified waiver cover an item whose
//!   findings span many lines.
//!
//! Waivers without a reason, and waivers that suppress nothing, are
//! violations themselves (`rules::check_waiver_hygiene`).

use crate::lexer::{self, Tok, TokKind};
use crate::parse::{self, Item};
use std::collections::BTreeMap;

/// One `// lint: allow(rule) reason` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Free-text justification after the closing paren.
    pub reason: String,
    /// 1-based line the waiver comment appears on.
    pub declared_on: usize,
}

/// A parsed source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the repo root, with `/` separators.
    pub rel_path: String,
    /// Workspace crate directory name (`"quic"`, `"core"`, ...); the
    /// root `voxel` package uses `"."`.
    pub crate_name: String,
    /// Full source text.
    pub text: String,
    /// Complete token stream (spans tile `text`).
    pub toks: Vec<Tok>,
    /// Item tree from the lightweight parser.
    pub items: Vec<Item>,
    /// Line-level waivers keyed by the 1-based line they apply to.
    pub line_waivers: BTreeMap<usize, Vec<Waiver>>,
    /// Item-level waivers: `(item index, waiver)`.
    pub item_waivers: Vec<(usize, Waiver)>,
    /// Byte range of each 1-based line (index 0 unused).
    line_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex + parse `content` and resolve waivers.
    pub fn parse(rel_path: &str, crate_name: &str, content: &str) -> SourceFile {
        let toks = lexer::lex(content);
        let items = parse::parse(content, &toks);

        // Line table.
        let mut line_spans = vec![(0usize, 0usize)];
        let mut start = 0usize;
        for (off, ch) in content.char_indices() {
            if ch == '\n' {
                line_spans.push((start, off));
                start = off + ch.len_utf8();
            }
        }
        line_spans.push((start, content.len()));

        let mut f = SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            text: content.to_string(),
            toks,
            items,
            line_waivers: BTreeMap::new(),
            item_waivers: Vec::new(),
            line_spans,
        };
        f.attach_waivers();
        f
    }

    /// The source text of a token.
    pub fn tok_text(&self, t: &Tok) -> &str {
        self.text.get(t.start..t.end).unwrap_or("")
    }

    /// The raw text of a 1-based line (empty for out-of-range lines).
    pub fn line_text(&self, lineno: usize) -> &str {
        match self.line_spans.get(lineno) {
            Some(&(s, e)) => self.text.get(s..e).unwrap_or(""),
            None => "",
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_spans.len().saturating_sub(1)
    }

    /// Is `lineno` inside a `#[cfg(test)]` item (attribute lines included)?
    pub fn is_test(&self, lineno: usize) -> bool {
        self.items.iter().any(|it| it.cfg_test && it.covers(lineno))
    }

    /// Indices of non-trivia tokens, in order.
    pub fn sig_indices(&self) -> Vec<usize> {
        (0..self.toks.len())
            .filter(|&i| !self.toks[i].kind.is_trivia())
            .collect()
    }

    /// Waiver for `rule` covering 1-based `lineno`: a line-level waiver on
    /// that exact line, else the innermost item-level waiver whose item
    /// extent contains the line.
    pub fn waiver_for(&self, lineno: usize, rule: &str) -> Option<&Waiver> {
        if let Some(ws) = self.line_waivers.get(&lineno) {
            if let Some(w) = ws.iter().find(|w| w.rule == rule) {
                return Some(w);
            }
        }
        // Innermost covering item: later items are deeper in the tree, so
        // scan in reverse.
        self.item_waivers
            .iter()
            .rev()
            .find(|(idx, w)| {
                w.rule == rule && self.items.get(*idx).is_some_and(|it| it.covers(lineno))
            })
            .map(|(_, w)| w)
    }

    /// All waivers (line-level and item-level) for hygiene checks.
    pub fn all_waivers(&self) -> Vec<&Waiver> {
        let mut out: Vec<&Waiver> = self
            .line_waivers
            .values()
            .flat_map(|ws| ws.iter())
            .collect();
        out.extend(self.item_waivers.iter().map(|(_, w)| w));
        out.sort_by_key(|w| (w.declared_on, w.rule.clone()));
        out
    }

    /// Resolve every waiver comment to a line or an item.
    fn attach_waivers(&mut self) {
        let mut line_waivers: BTreeMap<usize, Vec<Waiver>> = BTreeMap::new();
        let mut item_waivers: Vec<(usize, Waiver)> = Vec::new();
        for (i, t) in self.toks.iter().enumerate() {
            if t.kind != TokKind::LineComment {
                continue;
            }
            let Some(w) = parse_waiver(self.tok_text(t), t.line) else {
                continue;
            };
            // Trailing: any non-trivia token earlier on the same line.
            let trailing = self.toks[..i]
                .iter()
                .rev()
                .take_while(|p| p.line == t.line)
                .any(|p| !p.kind.is_trivia());
            if trailing {
                line_waivers.entry(t.line).or_default().push(w);
                continue;
            }
            // Standalone: find the next non-trivia token.
            let next = self.toks[i + 1..].iter().find(|p| !p.kind.is_trivia());
            let Some(next) = next else {
                // Dangling waiver at EOF: attach to its own line (it will
                // be reported stale).
                line_waivers.entry(t.line).or_default().push(w);
                continue;
            };
            // Item whose header starts exactly on the next code line: the
            // waiver covers the whole item. The first (outermost) match
            // wins so a waiver above `mod m { ... }` covers the module.
            let item = self
                .items
                .iter()
                .position(|it| it.header_line == next.line || it.kw_line == next.line);
            match item {
                Some(idx) => item_waivers.push((idx, w)),
                None => line_waivers.entry(next.line).or_default().push(w),
            }
        }
        self.line_waivers = line_waivers;
        self.item_waivers = item_waivers;
    }
}

/// Extract a waiver from one line comment's text. Only a comment that *is*
/// a waiver counts: after the `//`/`//!`/`///` marker and whitespace the
/// text must start with `lint: allow(` — prose that merely mentions the
/// syntax (like this sentence) is ignored.
fn parse_waiver(comment: &str, lineno: usize) -> Option<Waiver> {
    let body = comment.trim_start_matches(['/', '!']).trim_start();
    let after = body.strip_prefix("lint: allow(")?;
    let close = after.find(')')?;
    let rule = after[..close].trim().to_string();
    let reason = after[close + 1..].trim().trim_start_matches('-').trim();
    Some(Waiver {
        rule,
        reason: reason.to_string(),
        declared_on: lineno,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_never_produce_ident_tokens() {
        let f = SourceFile::parse(
            "x.rs",
            "quic",
            "let s = \"HashMap inside\"; // HashMap too\n",
        );
        let idents: Vec<&str> = f
            .sig_indices()
            .into_iter()
            .filter(|&i| f.toks[i].kind == TokKind::Ident)
            .map(|i| f.tok_text(&f.toks[i]))
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn cfg_test_region_tracked_by_parser() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::parse("x.rs", "quic", src);
        assert!(!f.is_test(1));
        assert!(f.is_test(2), "attribute line is part of the test item");
        assert!(f.is_test(3));
        assert!(f.is_test(4));
        assert!(f.is_test(5));
        assert!(!f.is_test(6));
    }

    #[test]
    fn waiver_trailing_and_standalone() {
        let src = "use std::collections::HashMap; // lint: allow(nondeterministic-map) memo only\n// lint: allow(panic) checked above\nlet v = x.unwrap();\n";
        let f = SourceFile::parse("x.rs", "quic", src);
        let w = f.waiver_for(1, "nondeterministic-map");
        assert_eq!(w.map(|w| w.reason.as_str()), Some("memo only"));
        let w2 = f.waiver_for(3, "panic");
        assert_eq!(w2.map(|w| w.reason.as_str()), Some("checked above"));
        assert!(f.waiver_for(2, "panic").is_none());
    }

    #[test]
    fn item_level_waiver_covers_whole_item() {
        let src = "// lint: allow(shard-unshareable) per-thread telemetry only\nthread_local! {\n    static A: Cell<u64> = const { Cell::new(0) };\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", "sim", src);
        // `thread_local! { .. }` is a MacroCall item, so the waiver covers
        // the whole block, including the `Cell` on line 3.
        assert!(f.waiver_for(2, "shard-unshareable").is_some());
        assert!(f.waiver_for(3, "shard-unshareable").is_some());
        assert!(f.waiver_for(5, "shard-unshareable").is_none());
    }

    #[test]
    fn item_level_waiver_on_fn_covers_every_line_of_the_fn() {
        let src = "// lint: allow(panic) this path is structurally unreachable\n#[inline]\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = SourceFile::parse("x.rs", "quic", src);
        assert!(f.waiver_for(4, "panic").is_some(), "line inside the fn");
        assert!(f.waiver_for(5, "panic").is_some(), "closing brace line");
        assert!(f.waiver_for(6, "panic").is_none(), "after the fn");
    }

    #[test]
    fn waiver_without_match_is_line_scoped() {
        let src = "fn f() {\n    // lint: allow(wall-clock) quarantined\n    let t = now();\n}\n";
        let f = SourceFile::parse("x.rs", "obs", src);
        assert!(f.waiver_for(3, "wall-clock").is_some());
        assert!(f.waiver_for(1, "wall-clock").is_none());
    }
}
