//! Source model for the lint pass.
//!
//! Each file is reduced to a per-line view with three projections:
//!
//! - `raw`    — the original text,
//! - `code`   — comments removed, string literals kept (used by the
//!   taxonomy extractor, which reads event-kind literals),
//! - `masked` — comments removed *and* string-literal contents blanked
//!   (used by the token rules so `"HashMap"` inside a string or doc
//!   comment cannot trip a lint).
//!
//! The scanner also tracks `#[cfg(test)]` regions by brace depth (rules
//! skip test-only code) and collects `// lint: allow(<rule>) <reason>`
//! waivers. A waiver written on its own comment line attaches to the next
//! code line; a trailing waiver attaches to the line it sits on.

use std::collections::BTreeMap;

/// One `// lint: allow(rule) reason` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Free-text justification after the closing paren.
    pub reason: String,
    /// 1-based line the waiver comment appears on.
    pub declared_on: usize,
}

/// A single source line in all projections.
#[derive(Debug, Clone)]
pub struct Line {
    pub raw: String,
    pub code: String,
    pub masked: String,
    /// Inside a `#[cfg(test)]` item (module, fn, or the attribute line).
    pub in_test: bool,
}

/// A parsed source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the repo root, with `/` separators.
    pub rel_path: String,
    /// Workspace crate directory name (`"quic"`, `"core"`, ...); the
    /// root `voxel` package uses `"."`.
    pub crate_name: String,
    pub lines: Vec<Line>,
    /// Waivers keyed by the 1-based line they apply to.
    pub waivers: BTreeMap<usize, Vec<Waiver>>,
}

impl SourceFile {
    /// Parse `content` into the line model.
    pub fn parse(rel_path: &str, crate_name: &str, content: &str) -> SourceFile {
        let stripped = strip(content);
        let in_test = test_regions(&stripped);
        let mut lines = Vec::with_capacity(stripped.len());
        let mut waivers: BTreeMap<usize, Vec<Waiver>> = BTreeMap::new();
        for (i, s) in stripped.iter().enumerate() {
            let lineno = i + 1;
            for w in parse_waivers(&s.comment, lineno) {
                let target = if s.masked.trim().is_empty() {
                    // Standalone comment line: attach to the next code line.
                    stripped
                        .iter()
                        .enumerate()
                        .skip(i + 1)
                        .find(|(_, t)| !t.masked.trim().is_empty())
                        .map(|(j, _)| j + 1)
                        .unwrap_or(lineno)
                } else {
                    lineno
                };
                waivers.entry(target).or_default().push(w);
            }
            lines.push(Line {
                raw: s.raw.clone(),
                code: s.code.clone(),
                masked: s.masked.clone(),
                in_test: in_test[i],
            });
        }
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            lines,
            waivers,
        }
    }

    /// Waivers attached to 1-based `lineno` for `rule`.
    pub fn waiver_for(&self, lineno: usize, rule: &str) -> Option<&Waiver> {
        self.waivers
            .get(&lineno)
            .and_then(|ws| ws.iter().find(|w| w.rule == rule))
    }
}

/// Per-line output of the comment/string stripper.
struct Stripped {
    raw: String,
    code: String,
    masked: String,
    comment: String,
}

/// Lexer state carried across lines.
enum St {
    Code,
    /// Nested block comment depth.
    Block(u32),
    Str,
    /// Raw string with `n` hashes (`r#"..."#`).
    RawStr(u8),
}

/// Split `content` into lines, removing comments and (for `masked`)
/// blanking string contents. Handles line/nested-block comments, plain
/// and raw strings, escapes, char literals, and lifetimes.
fn strip(content: &str) -> Vec<Stripped> {
    let mut out = Vec::new();
    let mut st = St::Code;
    for raw_line in content.split('\n') {
        let b: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(b.len());
        let mut masked = String::with_capacity(b.len());
        let mut comment = String::new();
        let mut i = 0usize;
        while i < b.len() {
            match st {
                St::Code => {
                    let c = b[i];
                    let next = b.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        comment.push_str(&b[i..].iter().collect::<String>());
                        break;
                    } else if c == '/' && next == Some('*') {
                        st = St::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        masked.push('"');
                        st = St::Str;
                        i += 1;
                    } else if c == 'r' && matches!(next, Some('"') | Some('#')) {
                        // Possible raw string: r"..." or r#"..."#.
                        let mut j = i + 1;
                        let mut hashes = 0u8;
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&'"') {
                            code.push_str(&b[i..=j].iter().collect::<String>());
                            masked.push_str(&b[i..=j].iter().collect::<String>());
                            st = St::RawStr(hashes);
                            i = j + 1;
                        } else {
                            code.push(c);
                            masked.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime.
                        if next == Some('\\') {
                            // '\n' style: copy until closing quote.
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            let lit: String = b[i..=j.min(b.len() - 1)].iter().collect();
                            code.push_str(&lit);
                            masked.push_str(&lit);
                            i = j + 1;
                        } else if b.get(i + 2) == Some(&'\'') {
                            let lit: String = b[i..=i + 2].iter().collect();
                            code.push_str(&lit);
                            masked.push_str(&lit);
                            i += 3;
                        } else {
                            // Lifetime tick.
                            code.push(c);
                            masked.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        masked.push(c);
                        i += 1;
                    }
                }
                St::Block(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        st = St::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(b[i]);
                        i += 1;
                    }
                }
                St::Str => {
                    let c = b[i];
                    if c == '\\' {
                        code.push(c);
                        if let Some(&e) = b.get(i + 1) {
                            code.push(e);
                        }
                        masked.push(' ');
                        masked.push(' ');
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        masked.push('"');
                        st = St::Code;
                        i += 1;
                    } else {
                        code.push(c);
                        masked.push(' ');
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    let c = b[i];
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if b.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            let close: String = b[i..=i + hashes as usize].iter().collect();
                            code.push_str(&close);
                            masked.push_str(&close);
                            st = St::Code;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    code.push(c);
                    masked.push(' ');
                    i += 1;
                }
            }
        }
        out.push(Stripped {
            raw: raw_line.to_string(),
            code,
            masked,
            comment,
        });
    }
    out
}

/// Mark lines inside `#[cfg(test)]` items by tracking brace depth on the
/// masked projection (so braces in strings don't confuse the count).
fn test_regions(lines: &[Stripped]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut in_test = false;
    let mut depth = 0i64;
    let mut pending = false;
    for (i, s) in lines.iter().enumerate() {
        let m = &s.masked;
        if in_test {
            flags[i] = true;
            depth += brace_delta(m);
            if depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if m.contains("#[cfg(test)]") {
            pending = true;
        }
        if pending {
            flags[i] = true;
            let opens = m.chars().filter(|&c| c == '{').count() as i64;
            let delta = brace_delta(m);
            if opens > 0 && delta > 0 {
                depth = delta;
                in_test = true;
                pending = false;
            } else if opens > 0 && delta <= 0 {
                // Single-line item: `#[cfg(test)] fn x() {}`.
                pending = false;
            } else if !m.contains("#[cfg(test)]") && m.trim_end().ends_with(';') {
                // `#[cfg(test)] mod tests;` style — ends without a body.
                pending = false;
            }
        }
    }
    flags
}

fn brace_delta(s: &str) -> i64 {
    let mut d = 0i64;
    for c in s.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Extract a waiver from one comment's text. Only a comment that *is* a
/// waiver counts: after the `//` marker and whitespace the text must
/// start with `lint: allow(` — prose that merely mentions the syntax
/// (like this sentence) is ignored.
fn parse_waivers(comment: &str, lineno: usize) -> Vec<Waiver> {
    let body = comment.trim_start_matches(['/', '!']).trim_start();
    let Some(after) = body.strip_prefix("lint: allow(") else {
        return Vec::new();
    };
    let Some(close) = after.find(')') else {
        return Vec::new();
    };
    let rule = after[..close].trim().to_string();
    let reason = after[close + 1..].trim().trim_start_matches('-').trim();
    vec![Waiver {
        rule,
        reason: reason.to_string(),
        declared_on: lineno,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_masked_but_kept_in_code() {
        let f = SourceFile::parse("x.rs", "quic", "let s = \"HashMap inside\";\n");
        assert!(f.lines[0].code.contains("HashMap inside"));
        assert!(!f.lines[0].masked.contains("HashMap"));
        assert!(f.lines[0].masked.contains("let s = \""));
    }

    #[test]
    fn comments_are_removed_from_both() {
        let src = "let x = 1; // HashMap here\n/* HashMap\nblock */ let y = 2;\n";
        let f = SourceFile::parse("x.rs", "quic", src);
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[2].code.contains("let y"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ still comment */ let z = 3;\n";
        let f = SourceFile::parse("x.rs", "quic", src);
        assert!(f.lines[0].code.contains("let z"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"Instant::now\"#; let c = '\"'; }\n";
        let f = SourceFile::parse("x.rs", "quic", src);
        assert!(!f.lines[0].masked.contains("Instant::now"));
        assert!(f.lines[0].masked.contains("fn f<'a>"));
        // The '"' char literal must not open a string.
        assert!(f.lines[0].masked.contains('}'));
    }

    #[test]
    fn cfg_test_region_tracked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = SourceFile::parse("x.rs", "quic", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        // (the trailing empty line comes from the final newline)
        assert_eq!(flags, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn waiver_trailing_and_standalone() {
        let src = "use std::collections::HashMap; // lint: allow(nondeterministic-map) memo only\n// lint: allow(panic) checked above\nlet v = x.unwrap();\n";
        let f = SourceFile::parse("x.rs", "quic", src);
        let w = f.waiver_for(1, "nondeterministic-map");
        assert_eq!(w.map(|w| w.reason.as_str()), Some("memo only"));
        let w2 = f.waiver_for(3, "panic");
        assert_eq!(w2.map(|w| w.reason.as_str()), Some("checked above"));
        assert!(f.waiver_for(2, "panic").is_none());
    }
}
