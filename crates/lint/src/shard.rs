//! Shard-safety rules gating the parallel-fleet refactor (ROADMAP item 1).
//!
//! Before sessions move across worker threads, state that cannot cross a
//! shard boundary has to be visible in review:
//!
//! - `shard-unshareable`: `Rc`, `RefCell`, `Cell`, `UnsafeCell`,
//!   `thread_local!`, `static mut`, and raw-pointer types in the crates
//!   that will straddle shards (`sim`, `netem`, `fleet`, `quic`, `core`).
//!   Waivable — a per-thread telemetry slot is fine *when the waiver says
//!   so*.
//! - `lock-order`: two locks acquired in opposite orders in different
//!   functions is a deadlock waiting for shard parallelism to arrive.
//!   Checked across every first-party crate so the invariant holds before
//!   the first real contention exists.

use crate::lexer::TokKind;
use crate::parse::ItemKind;
use crate::rules::{report, Violation, WaiverUse};
use crate::scan::SourceFile;
use std::collections::BTreeMap;

/// Crates whose state will cross shard boundaries in the parallel fleet.
pub const SHARD_CRATES: &[&str] = &["sim", "netem", "fleet", "quic", "core"];

/// Run both shard-safety families over the workspace.
pub fn check_shard(files: &[SourceFile], uses: &mut WaiverUse, out: &mut Vec<Violation>) {
    for f in files {
        if SHARD_CRATES.contains(&f.crate_name.as_str()) {
            check_unshareable(f, uses, out);
        }
    }
    check_lock_order(files, uses, out);
}

/// Flag single-thread-only state in shard-crossing crates.
fn check_unshareable(f: &SourceFile, uses: &mut WaiverUse, out: &mut Vec<Violation>) {
    let sig = f.sig_indices();
    let text = |s: usize| -> &str {
        match sig.get(s) {
            Some(&i) => f.tok_text(&f.toks[i]),
            None => "",
        }
    };
    for (s, &ti) in sig.iter().enumerate() {
        let tok = &f.toks[ti];
        if f.is_test(tok.line) {
            continue;
        }
        let t = text(s);
        let what = match tok.kind {
            TokKind::Ident => match t {
                "Rc" | "RefCell" | "Cell" | "UnsafeCell" => Some(format!("`{t}`")),
                "thread_local" => Some("`thread_local!`".to_string()),
                "static" if text(s + 1) == "mut" => Some("`static mut`".to_string()),
                _ => None,
            },
            TokKind::Punct if t == "*" && matches!(text(s + 1), "mut" | "const") => {
                Some(format!("raw pointer (`*{}`)", text(s + 1)))
            }
            _ => None,
        };
        if let Some(what) = what {
            report(
                f,
                tok.line,
                "shard-unshareable",
                format!(
                    "{what} in shard-crossing crate `{}` cannot move across worker threads; use Arc/Mutex/atomics or waive with why it stays shard-local",
                    f.crate_name
                ),
                uses,
                out,
            );
        }
    }
}

/// One lock acquisition: receiver name + where.
struct LockSite {
    file: usize,
    recv: String,
    line: usize,
}

/// Detect lock-order inversions: `a` then `b` in one function, `b` then
/// `a` in another.
fn check_lock_order(files: &[SourceFile], uses: &mut WaiverUse, out: &mut Vec<Violation>) {
    // Sites grouped by enclosing function, in acquisition (token) order.
    let mut per_fn: BTreeMap<(usize, usize), Vec<LockSite>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        let has_rwlock = f.text.contains("RwLock");
        let sig = f.sig_indices();
        let text = |s: usize| -> &str {
            match sig.get(s) {
                Some(&i) => f.tok_text(&f.toks[i]),
                None => "",
            }
        };
        let kind = |s: usize| -> Option<TokKind> { sig.get(s).map(|&i| f.toks[i].kind) };
        for (s, &ti) in sig.iter().enumerate().skip(2) {
            let t = text(s);
            let is_lock = t == "lock" || (has_rwlock && (t == "read" || t == "write"));
            if !is_lock
                || kind(s) != Some(TokKind::Ident)
                || text(s.wrapping_sub(1)) != "."
                || text(s + 1) != "("
                || kind(s - 2) != Some(TokKind::Ident)
            {
                continue;
            }
            let line = f.toks[ti].line;
            if f.is_test(line) {
                continue;
            }
            let mut recv = text(s - 2).to_string();
            if recv == "self" {
                // `self.lock()`: name the lock after the impl's type.
                recv = innermost(f, line, |k| k == ItemKind::Impl)
                    .map(|it| it.name.clone())
                    .unwrap_or(recv);
            }
            let Some(fn_idx) = innermost_idx(f, line, |k| k == ItemKind::Fn) else {
                continue;
            };
            per_fn.entry((fi, fn_idx)).or_default().push(LockSite {
                file: fi,
                recv,
                line,
            });
        }
    }

    // Ordered pairs within one function become edges `a held when b taken`,
    // remembering the first site that takes `b` after `a`.
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for sites in per_fn.values() {
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                let (a, b) = (&sites[i].recv, &sites[j].recv);
                if a != b {
                    edges
                        .entry((a.clone(), b.clone()))
                        .or_insert((sites[j].file, sites[j].line));
                }
            }
        }
    }
    for ((a, b), &(fi, line)) in &edges {
        if a >= b {
            continue; // handle each unordered pair once, at the (b, a) site
        }
        if let Some(&(ofi, oline)) = edges.get(&(b.clone(), a.clone())) {
            let f = &files[ofi];
            report(
                f,
                oline,
                "lock-order",
                format!(
                    "lock `{a}` acquired while `{b}` is held, but {}:{line} takes `{a}` then `{b}`; pick one global order",
                    files[fi].rel_path
                ),
                uses,
                out,
            );
        }
    }
}

/// Innermost item covering `line` with a matching kind (parse order puts
/// nested items after their parents, so a reverse scan finds the deepest).
fn innermost(
    f: &SourceFile,
    line: usize,
    pred: impl Fn(ItemKind) -> bool,
) -> Option<&crate::parse::Item> {
    innermost_idx(f, line, pred).map(|i| &f.items[i])
}

fn innermost_idx(f: &SourceFile, line: usize, pred: impl Fn(ItemKind) -> bool) -> Option<usize> {
    f.items
        .iter()
        .enumerate()
        .rev()
        .find(|(_, it)| pred(it.kind) && it.covers(line))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str, &str)]) -> Vec<Violation> {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(p, c, src)| SourceFile::parse(p, c, src))
            .collect();
        let mut uses = WaiverUse::default();
        let mut out = Vec::new();
        check_shard(&parsed, &mut uses, &mut out);
        out.retain(|v| !v.waived);
        out
    }

    #[test]
    fn unshareable_fires_on_rc_refcell_static_mut_raw_ptr() {
        let src = "use std::rc::Rc;\nstruct S { c: RefCell<u32>, p: *mut u8 }\nstatic mut GLOBAL: u32 = 0;\n";
        let v = run(&[("crates/core/src/x.rs", "core", src)]);
        let hits: Vec<_> = v
            .iter()
            .filter(|v| v.rule == "shard-unshareable")
            .map(|v| v.line)
            .collect();
        assert_eq!(hits, vec![1, 2, 2, 3]);
    }

    #[test]
    fn unshareable_quiet_outside_shard_crates_and_in_tests() {
        let src = "use std::rc::Rc;\n";
        assert!(run(&[("crates/media/src/x.rs", "media", src)]).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::cell::RefCell;\n}\n";
        assert!(run(&[("crates/core/src/x.rs", "core", test_src)]).is_empty());
    }

    #[test]
    fn unshareable_item_waiver_covers_thread_local_block() {
        let src = "// lint: allow(shard-unshareable) per-thread counters drained at sim barriers\nthread_local! {\n    static HITS: Cell<u64> = const { Cell::new(0) };\n}\n";
        assert!(run(&[("crates/sim/src/x.rs", "sim", src)]).is_empty());
    }

    #[test]
    fn lock_order_inversion_across_functions() {
        let a = "fn ab(s: &St) {\n    let _a = s.alpha.lock();\n    let _b = s.beta.lock();\n}\n";
        let b = "fn ba(s: &St) {\n    let _b = s.beta.lock();\n    let _a = s.alpha.lock();\n}\n";
        let v = run(&[
            ("crates/trace/src/a.rs", "trace", a),
            ("crates/trace/src/b.rs", "trace", b),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-order");
        assert_eq!(
            (v[0].path.as_str(), v[0].line),
            ("crates/trace/src/b.rs", 3)
        );
        assert!(v[0].msg.contains("crates/trace/src/a.rs:3"), "{}", v[0].msg);
    }

    #[test]
    fn lock_order_consistent_order_is_quiet() {
        let a = "fn ab(s: &St) {\n    let _a = s.alpha.lock();\n    let _b = s.beta.lock();\n}\nfn ab2(s: &St) {\n    let _a = s.alpha.lock();\n    let _b = s.beta.lock();\n}\n";
        assert!(run(&[("crates/trace/src/a.rs", "trace", a)]).is_empty());
    }

    #[test]
    fn lock_order_self_receiver_uses_impl_type_and_rwlock_gating() {
        // `self.lock()` inside `impl Recorder` is the lock named `Recorder`;
        // `rs.read()` only counts as a lock when the file mentions RwLock.
        let a = "impl Recorder {\n    fn snap(&self, other: &Mutex<u32>) {\n        let _g = self.lock();\n        let _o = other.lock();\n    }\n}\nfn elsewhere(r: &Recorder, other: &Mutex<u32>) {\n    let _o = other.lock();\n    let _g = r.rec.lock();\n}\nfn stream(rs: &mut TcpStream) {\n    rs.read(&mut buf);\n}\n";
        // `Recorder`/`other` vs `other`/`rec`: different names, no cycle;
        // and `rs.read` is not a lock site here.
        assert!(run(&[("crates/obs/src/a.rs", "obs", a)]).is_empty());
        let inv = "impl Recorder {\n    fn snap(&self, other: &Mutex<u32>) {\n        let _g = self.lock();\n        let _o = other.lock();\n    }\n    fn snap2(&self, other: &Mutex<u32>) {\n        let _o = other.lock();\n        let _g = self.lock();\n    }\n}\n";
        let v = run(&[("crates/obs/src/a.rs", "obs", inv)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-order");
    }

    #[test]
    fn lock_order_waiver_suppresses() {
        let src = "fn ab(s: &St) {\n    let _a = s.alpha.lock();\n    let _b = s.beta.lock();\n}\nfn ba(s: &St) {\n    let _b = s.beta.lock();\n    let _a = s.alpha.lock(); // lint: allow(lock-order) beta is never held here in practice: disjoint phases\n}\n";
        assert!(run(&[("crates/trace/src/a.rs", "trace", src)]).is_empty());
    }
}
