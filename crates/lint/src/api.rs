//! Public-API baseline: the workspace's `pub` surface, extracted from the
//! item tree and diffed against a checked-in `lint/api-baseline.txt`.
//!
//! Each entry is one tab-separated line: `crate<TAB>kind<TAB>path`. The
//! path is the module path plus the item name; inherent-impl members and
//! trait methods are recorded as `Type::method`. A surface change — in
//! either direction — fails the lint until the baseline is re-blessed
//! with `VOXEL_BLESS=1`, which turns silent API drift into a reviewed
//! diff of the baseline file. `api-baseline` findings are not waivable:
//! blessing *is* the approval mechanism.

use crate::parse::{Item, ItemKind};
use crate::rules::Violation;
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Extract the public surface: entry text → first declaration site.
pub fn surface(files: &[SourceFile]) -> BTreeMap<String, (String, usize)> {
    let mut out: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for f in files {
        let Some(base) = file_mod_path(&f.rel_path, &f.crate_name) else {
            continue;
        };
        let crate_label = if f.crate_name == "." {
            "voxel"
        } else {
            f.crate_name.as_str()
        };
        'items: for it in f.items.iter() {
            if f.is_test(it.kw_line) {
                continue;
            }
            // Walk ancestors: collect module path, find an owning
            // impl/trait, and bail on anything body-local.
            let mut mods: Vec<&str> = Vec::new();
            let mut owner: Option<&Item> = None;
            let mut p = it.parent;
            let mut immediate = true;
            while let Some(pi) = p {
                let pit = &f.items[pi];
                match pit.kind {
                    ItemKind::Mod => {
                        if !pit.is_pub {
                            continue 'items;
                        }
                        mods.push(&pit.name);
                    }
                    ItemKind::Impl | ItemKind::Trait if immediate => owner = Some(pit),
                    _ => continue 'items, // inside a fn, macro body, etc.
                }
                immediate = false;
                p = pit.parent;
            }
            mods.reverse();

            let (label, display) = match owner {
                None => match it.kind {
                    ItemKind::Impl | ItemKind::MacroCall => continue,
                    ItemKind::MacroDef => {
                        if !it.macro_export {
                            continue;
                        }
                        (it.kind.label(), it.name.clone())
                    }
                    _ => {
                        if !it.is_pub {
                            continue;
                        }
                        (it.kind.label(), it.name.clone())
                    }
                },
                Some(ow) => {
                    if !matches!(
                        it.kind,
                        ItemKind::Fn | ItemKind::Const | ItemKind::TypeAlias
                    ) {
                        continue;
                    }
                    let visible = match ow.kind {
                        // Inherent-impl members carry their own `pub`;
                        // trait-impl members are the trait's surface, not new API.
                        ItemKind::Impl => ow.inherent_impl && it.is_pub,
                        // Trait members are public iff the trait is.
                        _ => ow.is_pub,
                    };
                    if !visible {
                        continue;
                    }
                    (it.kind.label(), format!("{}::{}", ow.name, it.name))
                }
            };

            let mut path: Vec<&str> = base.iter().map(String::as_str).collect();
            path.extend(mods);
            let full = if path.is_empty() {
                display
            } else {
                format!("{}::{display}", path.join("::"))
            };
            let entry = format!("{crate_label}\t{label}\t{full}");
            out.entry(entry)
                .or_insert_with(|| (f.rel_path.clone(), it.kw_line));
        }
    }
    out
}

/// Module path of a source file, or `None` for binary-style files that
/// carry no library surface.
fn file_mod_path(rel: &str, crate_name: &str) -> Option<Vec<String>> {
    if crate_name == "examples" || rel.ends_with("main.rs") || rel.contains("/bin/") {
        return None;
    }
    let tail = if let Some(pos) = rel.find("/src/") {
        &rel[pos + 5..]
    } else {
        rel.strip_prefix("src/")?
    };
    let mut parts: Vec<String> = tail.split('/').map(str::to_string).collect();
    let last = parts.pop()?;
    if last != "lib.rs" && last != "mod.rs" {
        parts.push(last.strip_suffix(".rs")?.to_string());
    }
    Some(parts)
}

/// Diff the current surface against `lint/api-baseline.txt` (or rewrite
/// the baseline when `bless` is set).
pub fn check(
    files: &[SourceFile],
    root: &Path,
    bless: bool,
    out: &mut Vec<Violation>,
) -> Result<(), String> {
    let surf = surface(files);
    let baseline_path = root.join("lint").join("api-baseline.txt");
    let baseline_rel = "lint/api-baseline.txt";
    if bless {
        let mut body = String::from(
            "# Public API baseline for the VOXEL workspace (voxel-lint).\n\
             # One entry per line: crate<TAB>kind<TAB>module::path. Any drift\n\
             # from the live `pub` surface fails the lint; after reviewing a\n\
             # deliberate change, re-bless with:\n\
             #     VOXEL_BLESS=1 cargo run -p voxel-lint\n",
        );
        for entry in surf.keys() {
            body.push_str(entry);
            body.push('\n');
        }
        if let Some(dir) = baseline_path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        return std::fs::write(&baseline_path, body)
            .map_err(|e| format!("write {}: {e}", baseline_path.display()));
    }
    let Ok(body) = std::fs::read_to_string(&baseline_path) else {
        out.push(Violation::new(
            baseline_rel,
            0,
            "api-baseline",
            format!(
                "missing API baseline; bless with `VOXEL_BLESS=1` ({} public entries found)",
                surf.len()
            ),
        ));
        return Ok(());
    };
    let baseline: BTreeSet<&str> = body
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    for (entry, (path, line)) in &surf {
        if !baseline.contains(entry.as_str()) {
            out.push(Violation::new(
                path,
                *line,
                "api-baseline",
                format!(
                    "new public API `{}` is not in lint/api-baseline.txt; review the surface change and bless with `VOXEL_BLESS=1`",
                    entry.replace('\t', " ")
                ),
            ));
        }
    }
    for b in &baseline {
        if !surf.contains_key(*b) {
            out.push(Violation::new(
                baseline_rel,
                0,
                "api-baseline",
                format!(
                    "baselined public API `{}` no longer exists; re-bless with `VOXEL_BLESS=1`",
                    b.replace('\t', " ")
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surf(files: &[(&str, &str, &str)]) -> Vec<String> {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(p, c, s)| SourceFile::parse(p, c, s))
            .collect();
        surface(&parsed).into_keys().collect()
    }

    #[test]
    fn pub_items_impl_members_and_trait_methods() {
        let src = "pub struct Pacer { budget: u64 }\nimpl Pacer {\n    pub fn new() -> Pacer { Pacer { budget: 0 } }\n    fn internal(&self) {}\n}\npub trait Clock {\n    fn now_ms(&self) -> u64;\n}\nimpl Clock for Pacer {\n    fn now_ms(&self) -> u64 { 0 }\n}\npub fn free() {}\nfn private() {}\n";
        let got = surf(&[("crates/quic/src/pacer.rs", "quic", src)]);
        assert_eq!(
            got,
            vec![
                "quic\tfn\tpacer::Clock::now_ms",
                "quic\tfn\tpacer::Pacer::new",
                "quic\tfn\tpacer::free",
                "quic\tstruct\tpacer::Pacer",
                "quic\ttrait\tpacer::Clock",
            ]
        );
    }

    #[test]
    fn module_paths_visibility_and_test_code() {
        let src = "pub mod outer {\n    pub fn visible() {}\n    mod hidden {\n        pub fn buried() {}\n    }\n}\npub use crate::outer::visible;\n#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\nfn body() {\n    pub struct Local;\n}\n";
        let got = surf(&[("crates/core/src/lib.rs", "core", src)]);
        assert_eq!(
            got,
            vec![
                "core\tfn\touter::visible",
                "core\tmod\touter",
                "core\tuse\tcrate::outer::visible",
            ]
        );
    }

    #[test]
    fn macro_export_root_crate_and_bin_files() {
        let files = [
            (
                "crates/trace/src/lib.rs",
                "trace",
                "#[macro_export]\nmacro_rules! trace_event {\n    () => {};\n}\nmacro_rules! private_mac {\n    () => {};\n}\n",
            ),
            ("src/lib.rs", ".", "pub fn facade() {}\n"),
            ("crates/lint/src/main.rs", "lint", "pub fn not_api() {}\n"),
            ("examples/demo.rs", "examples", "pub fn also_not() {}\n"),
        ];
        let got = surf(&files);
        assert_eq!(got, vec!["trace\tmacro\ttrace_event", "voxel\tfn\tfacade"]);
    }

    #[test]
    fn mod_rs_and_nested_file_paths() {
        let files = [
            (
                "crates/media/src/video/mod.rs",
                "media",
                "pub struct Video;\n",
            ),
            (
                "crates/media/src/video/ladder.rs",
                "media",
                "pub fn rungs() {}\n",
            ),
        ];
        let got = surf(&files);
        assert_eq!(
            got,
            vec![
                "media\tfn\tvideo::ladder::rungs",
                "media\tstruct\tvideo::Video"
            ]
        );
    }

    #[test]
    fn bless_then_check_round_trip_and_drift() {
        let scratch =
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/lint-scratch/api-round-trip");
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).expect("scratch dir");

        let v1 = [(
            "crates/quic/src/lib.rs".to_string(),
            "quic".to_string(),
            "pub fn send() {}\n".to_string(),
        )];
        let parse_all = |files: &[(String, String, String)]| -> Vec<SourceFile> {
            files
                .iter()
                .map(|(p, c, s)| SourceFile::parse(p, c, s))
                .collect()
        };

        // No baseline yet: one finding, pointing at the bless workflow.
        let mut out = Vec::new();
        check(&parse_all(&v1), &scratch, false, &mut out).expect("check");
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("missing API baseline"));

        // Bless, then the same surface is clean.
        check(&parse_all(&v1), &scratch, true, &mut Vec::new()).expect("bless");
        let mut out = Vec::new();
        check(&parse_all(&v1), &scratch, false, &mut out).expect("check");
        assert!(out.is_empty(), "{out:?}");

        // Add a pub fn: fails at the new item until re-blessed; remove
        // one: fails at the baseline file.
        let v2 = [(
            "crates/quic/src/lib.rs".to_string(),
            "quic".to_string(),
            "pub fn send() {}\npub fn recv() {}\n".to_string(),
        )];
        let mut out = Vec::new();
        check(&parse_all(&v2), &scratch, false, &mut out).expect("check");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "api-baseline");
        assert_eq!(
            (out[0].path.as_str(), out[0].line),
            ("crates/quic/src/lib.rs", 2)
        );

        let v3: [(String, String, String); 0] = [];
        let mut out = Vec::new();
        check(&parse_all(&v3), &scratch, false, &mut out).expect("check");
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("no longer exists"));
        assert_eq!(out[0].path, "lint/api-baseline.txt");

        let _ = std::fs::remove_dir_all(&scratch);
    }
}
