//! Trace-taxonomy cross-check.
//!
//! DESIGN.md §9 carries the authoritative table of event kinds and metric
//! names per layer. This module parses that table, extracts every
//! `trace_event!` kind and `tracer.count`/`tracer.observe` metric name
//! from (non-test) source, and reports drift in both directions: kinds or
//! metrics emitted but undocumented, and documented but never emitted.
//!
//! Extraction walks the token stream, so an emission reformatted across
//! any number of lines is still one site, and the finding lands on the
//! line of the call itself — where a waiver comment naturally sits.

use crate::lexer::TokKind;
use crate::rules::{report, Violation, WaiverUse};
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// The documented taxonomy: event kinds per layer plus one flat metric
/// namespace (names are globally unique, prefixed by layer).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Taxonomy {
    pub kinds: BTreeMap<String, BTreeSet<String>>,
    pub metrics: BTreeSet<String>,
}

/// Parse the §9 table out of DESIGN.md. The table is recognised by a
/// header row whose first cell is `layer`; metric cells may abbreviate a
/// shared prefix as `` `.packets_acked` `` which expands against the last
/// fully-qualified name in the same cell run.
pub fn parse_design(md: &str) -> Result<Taxonomy, String> {
    let mut tax = Taxonomy::default();
    let mut in_table = false;
    let mut found = false;
    for line in md.lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            in_table = false;
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if !in_table {
            if cells
                .first()
                .is_some_and(|c| c.trim_matches('`').eq_ignore_ascii_case("layer"))
            {
                in_table = true;
                found = true;
            }
            continue;
        }
        if cells
            .iter()
            .all(|c| c.chars().all(|ch| ch == '-' || ch == ':' || ch == ' '))
        {
            continue; // separator row
        }
        if cells.len() < 2 {
            continue;
        }
        let layer = cells[0].trim_matches('`').to_string();
        if layer.is_empty() {
            continue;
        }
        let kind_set = tax.kinds.entry(layer).or_default();
        for k in backticked(cells[1]) {
            kind_set.insert(k);
        }
        let mut prefix = String::new();
        for cell in cells.iter().skip(2) {
            for name in backticked(cell) {
                let full = if let Some(stripped) = name.strip_prefix('.') {
                    format!("{prefix}.{stripped}")
                } else {
                    if let Some(dot) = name.find('.') {
                        prefix = name[..dot].to_string();
                    }
                    name.clone()
                };
                tax.metrics.insert(full);
            }
        }
    }
    if !found {
        return Err("DESIGN.md: no taxonomy table (header cell `layer`) found".to_string());
    }
    Ok(tax)
}

/// All `` `token` `` spans in a table cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        match after.find('`') {
            Some(close) => {
                let tok = after[..close].trim();
                if !tok.is_empty() && tok != "—" {
                    out.push(tok.to_string());
                }
                rest = &after[close + 1..];
            }
            None => break,
        }
    }
    out
}

/// One extracted emission site.
#[derive(Debug, PartialEq, Eq)]
pub struct Emission {
    pub path: String,
    pub line: usize,
    /// `Some((layer, kind))` for `trace_event!`, `None` for a metric.
    pub kind: Option<(String, String)>,
    pub metric: Option<String>,
}

/// Strip the quotes off a plain string-literal token (`"x"` → `x`);
/// raw/byte strings are not used for taxonomy names.
fn str_content(text: &str) -> Option<&str> {
    text.strip_prefix('"')?.strip_suffix('"')
}

/// Extract event kinds and metric names from the non-test code of `f`.
pub fn extract(f: &SourceFile) -> Vec<Emission> {
    let sig = f.sig_indices();
    let text = |s: usize| -> &str {
        match sig.get(s) {
            Some(&i) => f.tok_text(&f.toks[i]),
            None => "",
        }
    };
    let kind_of = |s: usize| -> Option<TokKind> { sig.get(s).map(|&i| f.toks[i].kind) };

    let mut out = Vec::new();
    for s in 0..sig.len() {
        let anchor = &f.toks[sig[s]];
        if anchor.kind != TokKind::Ident || f.is_test(anchor.line) {
            continue;
        }
        let t = text(s);

        // trace_event!(tracer, t, Layer::X, "kind", ...) — however many
        // lines rustfmt spreads it over. The finding anchors to the line
        // of `trace_event` itself.
        if t == "trace_event" && text(s + 1) == "!" && text(s + 2) == "(" {
            let mut depth = 1i32;
            let mut j = s + 3;
            let mut layer: Option<String> = None;
            let mut kind: Option<String> = None;
            while j < sig.len() && depth > 0 && kind.is_none() {
                match text(j) {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "Layer" if text(j + 1) == ":" && text(j + 2) == ":" => {
                        layer = Some(text(j + 3).to_ascii_lowercase());
                        j += 3;
                    }
                    lit if layer.is_some() && kind_of(j) == Some(TokKind::Str) => {
                        kind = str_content(lit).map(str::to_string);
                    }
                    _ => {}
                }
                j += 1;
            }
            if let (Some(layer), Some(kind)) = (layer, kind) {
                out.push(Emission {
                    path: f.rel_path.clone(),
                    line: anchor.line,
                    kind: Some((layer, kind)),
                    metric: None,
                });
            }
            continue;
        }

        // tracer.count("name", ..) / .observe( / .set_counter( — plus the
        // profiler's free-function form `voxel_obs::observe("name", ..)`.
        let is_metric_call = matches!(t, "count" | "observe" | "set_counter")
            && text(s + 1) == "("
            && kind_of(s + 2) == Some(TokKind::Str)
            && (text(s.wrapping_sub(1)) == "."
                || (t == "observe" && s >= 2 && text(s - 1) == ":" && text(s - 2) == ":"));
        if is_metric_call {
            if let Some(name) = str_content(text(s + 2)) {
                out.push(Emission {
                    path: f.rel_path.clone(),
                    line: anchor.line,
                    kind: None,
                    metric: Some(name.to_string()),
                });
            }
        }
    }
    out
}

/// Cross-check emissions against the documented taxonomy (both ways).
/// Undocumented-emission findings are waivable at the emission site
/// (`trace-taxonomy`); documented-but-never-emitted drift has no code
/// line to waive on and stays hard.
pub fn cross_check(
    tax: &Taxonomy,
    emissions: &[Emission],
    design_path: &str,
    files: &BTreeMap<&str, &SourceFile>,
    uses: &mut WaiverUse,
    out: &mut Vec<Violation>,
) {
    let mut at_site =
        |path: &str, line: usize, msg: String, out: &mut Vec<Violation>| match files.get(path) {
            Some(f) => report(f, line, "trace-taxonomy", msg, uses, out),
            None => out.push(Violation::new(path, line, "trace-taxonomy", msg)),
        };
    let mut seen_kinds: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut seen_metrics: BTreeSet<String> = BTreeSet::new();
    for e in emissions {
        if let Some((layer, kind)) = &e.kind {
            seen_kinds
                .entry(layer.clone())
                .or_default()
                .insert(kind.clone());
            let documented = tax.kinds.get(layer).is_some_and(|set| set.contains(kind));
            if !documented {
                at_site(
                    &e.path,
                    e.line,
                    format!(
                        "event kind `{kind}` (layer `{layer}`) is not in the DESIGN.md §9 table"
                    ),
                    out,
                );
            }
        }
        if let Some(m) = &e.metric {
            seen_metrics.insert(m.clone());
            if !tax.metrics.contains(m) {
                at_site(
                    &e.path,
                    e.line,
                    format!("metric `{m}` is not in the DESIGN.md §9 table"),
                    out,
                );
            }
        }
    }
    for (layer, kinds) in &tax.kinds {
        for kind in kinds {
            let emitted = seen_kinds.get(layer).is_some_and(|s| s.contains(kind));
            if !emitted {
                out.push(Violation::new(
                    design_path,
                    0,
                    "trace-taxonomy",
                    format!("documented event kind `{kind}` (layer `{layer}`) is never emitted"),
                ));
            }
        }
    }
    for m in &tax.metrics {
        if !seen_metrics.contains(m) {
            out.push(Violation::new(
                design_path,
                0,
                "trace-taxonomy",
                format!("documented metric `{m}` is never emitted"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = "\
## 9. Taxonomy

| layer | events | counters | histograms |
|-------|--------|----------|------------|
| `quic` | `pkt_sent`, `loss` | counters `quic.packets_sent`, `.loss_events` | `quic.cwnd_bytes` |
| `session` | `trial_start`, `progress` (debug) | — | — |
";

    fn check(tax: &Taxonomy, fs: &[&SourceFile]) -> Vec<Violation> {
        let mut emissions = Vec::new();
        let mut map = BTreeMap::new();
        for f in fs {
            emissions.extend(extract(f));
            map.insert(f.rel_path.as_str(), *f);
        }
        let mut uses = WaiverUse::default();
        let mut out = Vec::new();
        cross_check(tax, &emissions, "DESIGN.md", &map, &mut uses, &mut out);
        out.retain(|v| !v.waived);
        out
    }

    #[test]
    fn parses_table_with_prefix_expansion() {
        let tax = parse_design(TABLE).expect("table parses");
        assert_eq!(
            tax.kinds["quic"],
            ["pkt_sent", "loss"].iter().map(|s| s.to_string()).collect()
        );
        assert!(tax.kinds["session"].contains("progress"));
        assert!(tax.metrics.contains("quic.packets_sent"));
        assert!(tax.metrics.contains("quic.loss_events"));
        assert!(tax.metrics.contains("quic.cwnd_bytes"));
        assert_eq!(tax.metrics.len(), 3);
    }

    #[test]
    fn missing_table_is_an_error() {
        assert!(parse_design("# no tables here\n").is_err());
    }

    #[test]
    fn extracts_multiline_macro_and_metrics() {
        let src = "fn f(tracer: &Tracer) {\n    tracer.count(\"quic.packets_sent\", 1);\n    trace_event!(\n        tracer,\n        t,\n        Layer::Quic,\n        \"pkt_sent\",\n        \"pn\" = pn,\n    );\n}\n";
        let f = SourceFile::parse("crates/quic/src/x.rs", "quic", src);
        let em = extract(&f);
        assert_eq!(em.len(), 2);
        assert_eq!(em[0].metric, Some("quic.packets_sent".to_string()));
        assert_eq!(em[0].line, 2);
        assert_eq!(
            em[1].kind,
            Some(("quic".to_string(), "pkt_sent".to_string()))
        );
        assert_eq!(em[1].line, 3, "finding anchors to the trace_event! line");
    }

    #[test]
    fn cross_check_flags_drift_both_ways() {
        let tax = parse_design(TABLE).expect("table parses");
        let src = "fn f() {\n    trace_event!(tracer, t, Layer::Quic, \"mystery\", \"a\" = 1);\n    tracer.count(\"quic.packets_sent\", 1);\n    tracer.count(\"quic.loss_events\", 1);\n    tracer.observe(\"quic.cwnd_bytes\", 1);\n}\n";
        let f = SourceFile::parse("crates/quic/src/x.rs", "quic", src);
        let out = check(&tax, &[&f]);
        let msgs: Vec<_> = out.iter().map(|v| v.msg.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`mystery`")), "{msgs:?}");
        // Documented kinds never emitted: pkt_sent, loss, trial_start, progress.
        assert_eq!(
            out.iter()
                .filter(|v| v.msg.contains("never emitted"))
                .count(),
            4
        );
    }

    #[test]
    fn extracts_metric_split_across_lines() {
        let src = "fn f(tracer: &Tracer) {\n    tracer.observe(\n        \"fleet.session_stall_ms\",\n        v,\n    );\n}\n";
        let f = SourceFile::parse("crates/fleet/src/x.rs", "fleet", src);
        let em = extract(&f);
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].metric, Some("fleet.session_stall_ms".to_string()));
        assert_eq!(em[0].line, 2, "anchored to the call, where a waiver sits");
    }

    #[test]
    fn extracts_obs_free_functions_and_snapshot_injections() {
        let src = "fn f(snap: &mut MetricsSnapshot) {\n    voxel_obs::observe(\"obs.queue_depth\", 3);\n    snap.set_counter(\"trace.dropped\", 7);\n}\n";
        let f = SourceFile::parse("crates/fleet/src/x.rs", "fleet", src);
        let metrics: Vec<String> = extract(&f).into_iter().filter_map(|e| e.metric).collect();
        assert!(
            metrics.contains(&"obs.queue_depth".to_string()),
            "{metrics:?}"
        );
        assert!(
            metrics.contains(&"trace.dropped".to_string()),
            "{metrics:?}"
        );
    }

    #[test]
    fn extract_skips_test_modules_and_string_mentions() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(tracer: &Tracer) { tracer.count(\"fake.metric\", 1); }\n}\n";
        let f = SourceFile::parse("crates/quic/src/x.rs", "quic", src);
        assert!(extract(&f).is_empty());
        // A string mentioning the pattern is not an emission.
        let s2 = "fn f() { let doc = \"call tracer.count(\\\"x\\\", 1)\"; }\n";
        let f2 = SourceFile::parse("crates/quic/src/y.rs", "quic", s2);
        assert!(extract(&f2).is_empty());
    }

    #[test]
    fn undocumented_emission_is_waivable_at_the_call_line() {
        let tax = parse_design(TABLE).expect("table parses");
        // Emit everything documented so only the waiver behaviour is under test.
        let base = "fn f() {\n    trace_event!(t, n, Layer::Quic, \"pkt_sent\");\n    trace_event!(t, n, Layer::Quic, \"loss\");\n    trace_event!(t, n, Layer::Session, \"trial_start\");\n    trace_event!(t, n, Layer::Session, \"progress\");\n    tracer.count(\"quic.packets_sent\", 1);\n    tracer.count(\"quic.loss_events\", 1);\n    tracer.observe(\"quic.cwnd_bytes\", 1);\n    // lint: allow(trace-taxonomy) experimental kind, graduates with the shard work\n    trace_event!(\n        t,\n        n,\n        Layer::Quic,\n        \"experimental\",\n    );\n}\n";
        let f = SourceFile::parse("crates/quic/src/x.rs", "quic", base);
        let out = check(&tax, &[&f]);
        assert!(out.is_empty(), "{out:?}");
    }
}
