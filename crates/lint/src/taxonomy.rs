//! Trace-taxonomy cross-check.
//!
//! DESIGN.md §9 carries the authoritative table of event kinds and metric
//! names per layer. This module parses that table, extracts every
//! `trace_event!` kind and `tracer.count`/`tracer.observe` metric name
//! from (non-test) source, and reports drift in both directions: kinds or
//! metrics emitted but undocumented, and documented but never emitted.

use crate::rules::Violation;
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// The documented taxonomy: event kinds per layer plus one flat metric
/// namespace (names are globally unique, prefixed by layer).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Taxonomy {
    pub kinds: BTreeMap<String, BTreeSet<String>>,
    pub metrics: BTreeSet<String>,
}

/// Parse the §9 table out of DESIGN.md. The table is recognised by a
/// header row whose first cell is `layer`; metric cells may abbreviate a
/// shared prefix as `` `.packets_acked` `` which expands against the last
/// fully-qualified name in the same cell run.
pub fn parse_design(md: &str) -> Result<Taxonomy, String> {
    let mut tax = Taxonomy::default();
    let mut in_table = false;
    let mut found = false;
    for line in md.lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            in_table = false;
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if !in_table {
            if cells
                .first()
                .is_some_and(|c| c.trim_matches('`').eq_ignore_ascii_case("layer"))
            {
                in_table = true;
                found = true;
            }
            continue;
        }
        if cells
            .iter()
            .all(|c| c.chars().all(|ch| ch == '-' || ch == ':' || ch == ' '))
        {
            continue; // separator row
        }
        if cells.len() < 2 {
            continue;
        }
        let layer = cells[0].trim_matches('`').to_string();
        if layer.is_empty() {
            continue;
        }
        let kind_set = tax.kinds.entry(layer).or_default();
        for k in backticked(cells[1]) {
            kind_set.insert(k);
        }
        let mut prefix = String::new();
        for cell in cells.iter().skip(2) {
            for name in backticked(cell) {
                let full = if let Some(stripped) = name.strip_prefix('.') {
                    format!("{prefix}.{stripped}")
                } else {
                    if let Some(dot) = name.find('.') {
                        prefix = name[..dot].to_string();
                    }
                    name.clone()
                };
                tax.metrics.insert(full);
            }
        }
    }
    if !found {
        return Err("DESIGN.md: no taxonomy table (header cell `layer`) found".to_string());
    }
    Ok(tax)
}

/// All `` `token` `` spans in a table cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        match after.find('`') {
            Some(close) => {
                let tok = after[..close].trim();
                if !tok.is_empty() && tok != "—" {
                    out.push(tok.to_string());
                }
                rest = &after[close + 1..];
            }
            None => break,
        }
    }
    out
}

/// One extracted emission site.
#[derive(Debug, PartialEq, Eq)]
pub struct Emission {
    pub path: String,
    pub line: usize,
    /// `Some((layer, kind))` for `trace_event!`, `None` for a metric.
    pub kind: Option<(String, String)>,
    pub metric: Option<String>,
}

/// Extract event kinds and metric names from the non-test code of `f`.
pub fn extract(f: &SourceFile) -> Vec<Emission> {
    // Concatenate non-test code lines (string literals intact) with a
    // byte-offset → line map so multi-line macro calls scan cleanly.
    let mut text = String::new();
    let mut line_starts = Vec::new();
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        line_starts.push((text.len(), i + 1));
        text.push_str(&l.code);
        text.push('\n');
    }
    let line_of = |off: usize| match line_starts.binary_search_by_key(&off, |&(o, _)| o) {
        Ok(idx) => line_starts[idx].1,
        Err(0) => 1,
        Err(idx) => line_starts[idx - 1].1,
    };

    let mut out = Vec::new();
    // trace_event!(tracer, t, Layer::X, "kind", ...)
    let mut start = 0;
    while let Some(pos) = text[start..].find("trace_event!(") {
        let abs = start + pos;
        let window = &text[abs..text.len().min(abs + 400)];
        if let Some(lpos) = window.find("Layer::") {
            let after_layer = &window[lpos + "Layer::".len()..];
            let layer: String = after_layer
                .chars()
                .take_while(|c| c.is_alphanumeric())
                .collect();
            if let Some(q) = after_layer.find('"') {
                let lit = &after_layer[q + 1..];
                if let Some(endq) = lit.find('"') {
                    out.push(Emission {
                        path: f.rel_path.clone(),
                        line: line_of(abs),
                        kind: Some((layer.to_ascii_lowercase(), lit[..endq].to_string())),
                        metric: None,
                    });
                }
            }
        }
        start = abs + "trace_event!(".len();
    }
    // tracer.count("name", ...) / tracer.observe("name", ...) — rustfmt
    // may break the line after the paren, so skip whitespace to the quote.
    // `::observe(` catches the profiler's free-function gauges
    // (`voxel_obs::observe("obs.queue_depth", ..)`) and `.set_counter(`
    // the snapshot-time injections (`snap.set_counter("trace.dropped", ..)`).
    for pat in [".count(", ".observe(", "::observe(", ".set_counter("] {
        let mut start = 0;
        while let Some(pos) = text[start..].find(pat) {
            let abs = start + pos;
            let after = &text[abs + pat.len()..];
            let lead = after.len() - after.trim_start().len();
            if let Some(lit) = after.trim_start().strip_prefix('"') {
                if let Some(endq) = lit.find('"') {
                    out.push(Emission {
                        path: f.rel_path.clone(),
                        line: line_of(abs + pat.len() + lead + 1),
                        kind: None,
                        metric: Some(lit[..endq].to_string()),
                    });
                }
            }
            start = abs + pat.len();
        }
    }
    out
}

/// Cross-check emissions against the documented taxonomy (both ways).
pub fn cross_check(
    tax: &Taxonomy,
    emissions: &[Emission],
    design_path: &str,
    out: &mut Vec<Violation>,
) {
    let mut seen_kinds: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut seen_metrics: BTreeSet<String> = BTreeSet::new();
    for e in emissions {
        if let Some((layer, kind)) = &e.kind {
            seen_kinds
                .entry(layer.clone())
                .or_default()
                .insert(kind.clone());
            let documented = tax.kinds.get(layer).is_some_and(|set| set.contains(kind));
            if !documented {
                out.push(Violation {
                    path: e.path.clone(),
                    line: e.line,
                    rule: "trace-taxonomy",
                    msg: format!(
                        "event kind `{kind}` (layer `{layer}`) is not in the DESIGN.md §9 table"
                    ),
                });
            }
        }
        if let Some(m) = &e.metric {
            seen_metrics.insert(m.clone());
            if !tax.metrics.contains(m) {
                out.push(Violation {
                    path: e.path.clone(),
                    line: e.line,
                    rule: "trace-taxonomy",
                    msg: format!("metric `{m}` is not in the DESIGN.md §9 table"),
                });
            }
        }
    }
    for (layer, kinds) in &tax.kinds {
        for kind in kinds {
            let emitted = seen_kinds.get(layer).is_some_and(|s| s.contains(kind));
            if !emitted {
                out.push(Violation {
                    path: design_path.to_string(),
                    line: 0,
                    rule: "trace-taxonomy",
                    msg: format!(
                        "documented event kind `{kind}` (layer `{layer}`) is never emitted"
                    ),
                });
            }
        }
    }
    for m in &tax.metrics {
        if !seen_metrics.contains(m) {
            out.push(Violation {
                path: design_path.to_string(),
                line: 0,
                rule: "trace-taxonomy",
                msg: format!("documented metric `{m}` is never emitted"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = "\
## 9. Taxonomy

| layer | events | counters | histograms |
|-------|--------|----------|------------|
| `quic` | `pkt_sent`, `loss` | counters `quic.packets_sent`, `.loss_events` | `quic.cwnd_bytes` |
| `session` | `trial_start`, `progress` (debug) | — | — |
";

    #[test]
    fn parses_table_with_prefix_expansion() {
        let tax = parse_design(TABLE).expect("table parses");
        assert_eq!(
            tax.kinds["quic"],
            ["pkt_sent", "loss"].iter().map(|s| s.to_string()).collect()
        );
        assert!(tax.kinds["session"].contains("progress"));
        assert!(tax.metrics.contains("quic.packets_sent"));
        assert!(tax.metrics.contains("quic.loss_events"));
        assert!(tax.metrics.contains("quic.cwnd_bytes"));
        assert_eq!(tax.metrics.len(), 3);
    }

    #[test]
    fn missing_table_is_an_error() {
        assert!(parse_design("# no tables here\n").is_err());
    }

    #[test]
    fn extracts_multiline_macro_and_metrics() {
        let src = "fn f(tracer: &Tracer) {\n    tracer.count(\"quic.packets_sent\", 1);\n    trace_event!(\n        tracer,\n        t,\n        Layer::Quic,\n        \"pkt_sent\",\n        \"pn\" = pn,\n    );\n}\n";
        let f = SourceFile::parse("crates/quic/src/x.rs", "quic", src);
        let em = extract(&f);
        assert_eq!(em.len(), 2);
        assert_eq!(
            em[0].kind,
            Some(("quic".to_string(), "pkt_sent".to_string()))
        );
        assert_eq!(em[0].line, 3);
        assert_eq!(em[1].metric, Some("quic.packets_sent".to_string()));
        assert_eq!(em[1].line, 2);
    }

    #[test]
    fn cross_check_flags_drift_both_ways() {
        let tax = parse_design(TABLE).expect("table parses");
        let src = "fn f() {\n    trace_event!(tracer, t, Layer::Quic, \"mystery\", \"a\" = 1);\n    tracer.count(\"quic.packets_sent\", 1);\n    tracer.count(\"quic.loss_events\", 1);\n    tracer.observe(\"quic.cwnd_bytes\", 1);\n}\n";
        let f = SourceFile::parse("crates/quic/src/x.rs", "quic", src);
        let mut out = Vec::new();
        cross_check(&tax, &extract(&f), "DESIGN.md", &mut out);
        let msgs: Vec<_> = out.iter().map(|v| v.msg.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`mystery`")), "{msgs:?}");
        // Documented kinds never emitted: pkt_sent, loss, trial_start, progress.
        assert_eq!(
            out.iter()
                .filter(|v| v.msg.contains("never emitted"))
                .count(),
            4
        );
    }

    #[test]
    fn extracts_metric_split_across_lines() {
        let src = "fn f(tracer: &Tracer) {\n    tracer.observe(\n        \"fleet.session_stall_ms\",\n        v,\n    );\n}\n";
        let f = SourceFile::parse("crates/fleet/src/x.rs", "fleet", src);
        let em = extract(&f);
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].metric, Some("fleet.session_stall_ms".to_string()));
        assert_eq!(em[0].line, 3);
    }

    #[test]
    fn extracts_obs_free_functions_and_snapshot_injections() {
        let src = "fn f(snap: &mut MetricsSnapshot) {\n    voxel_obs::observe(\"obs.queue_depth\", 3);\n    snap.set_counter(\"trace.dropped\", 7);\n}\n";
        let f = SourceFile::parse("crates/fleet/src/x.rs", "fleet", src);
        let metrics: Vec<String> = extract(&f).into_iter().filter_map(|e| e.metric).collect();
        assert!(
            metrics.contains(&"obs.queue_depth".to_string()),
            "{metrics:?}"
        );
        assert!(
            metrics.contains(&"trace.dropped".to_string()),
            "{metrics:?}"
        );
    }

    #[test]
    fn extract_skips_test_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(tracer: &Tracer) { tracer.count(\"fake.metric\", 1); }\n}\n";
        let f = SourceFile::parse("crates/quic/src/x.rs", "quic", src);
        assert!(extract(&f).is_empty());
    }
}
