//! Bandwidth traces and synthetic trace generators.
//!
//! The paper uses five recorded traces — 3 LTE traces from Winstein et al.
//! (T-Mobile, Verizon, AT&T), a 3G commute trace from Riiser et al., and an
//! FCC fixed-line broadband trace — each linearly offset so its mean matches
//! the 10 Mbps top bitrate, plus constant and step traces for the Fig 11
//! dissection. The recordings are not redistributable here, so we generate
//! synthetic traces matched to the statistics the paper reports:
//!
//! | trace    | std dev (paper) | character                        |
//! |----------|-----------------|----------------------------------|
//! | T-Mobile | ≈10 Mbps        | violent swings, deep outages     |
//! | Verizon  | ≈9 Mbps         | violent swings                   |
//! | AT&T     | 2.88 Mbps       | moderate variation               |
//! | 3G       | 1.1 Mbps        | mild variation (after offset)    |
//! | FCC      | 2.35 Mbps       | slow fixed-line variation        |
//!
//! The generators use a regime-switching AR(1) process (good/degraded/outage
//! states with Markov transitions) — the same burst structure cellular
//! recordings exhibit — and then apply the paper's linear offset so the mean
//! is exactly the requested value.

use voxel_sim::{SimRng, SimTime};

/// A per-second bandwidth trace in Mbps.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthTrace {
    /// Human-readable name (figure legends).
    pub name: String,
    /// Bandwidth in Mbps for each 1-second interval; the trace repeats
    /// cyclically past its end.
    pub mbps: Vec<f64>,
}

/// Minimum bandwidth floor in Mbps: even "outages" deliver a trickle
/// (keeps the simulation's integrals finite, as `tc` does with its token
/// bucket floor).
const FLOOR_MBPS: f64 = 0.05;

impl BandwidthTrace {
    /// Build from raw per-second Mbps samples.
    pub fn new(name: impl Into<String>, mbps: Vec<f64>) -> BandwidthTrace {
        assert!(!mbps.is_empty(), "trace must have at least one sample");
        let mbps = mbps.into_iter().map(|m| m.max(FLOOR_MBPS)).collect();
        BandwidthTrace {
            name: name.into(),
            mbps,
        }
    }

    /// Constant-rate trace (Fig 11 "const.").
    pub fn constant(mbps: f64, duration_s: usize) -> BandwidthTrace {
        Self::new(format!("constant-{mbps}"), vec![mbps; duration_s.max(1)])
    }

    /// Step trace: `before` Mbps until `step_at_s`, then `after` (Fig 11
    /// "step": 10.75 → 10.5 Mbps after 70 s).
    pub fn step(before: f64, after: f64, step_at_s: usize, duration_s: usize) -> BandwidthTrace {
        let mut v = vec![before; step_at_s.min(duration_s)];
        v.resize(duration_s.max(step_at_s + 1), after);
        Self::new(format!("step-{before}-{after}"), v)
    }

    /// Trace duration in seconds.
    pub fn duration_s(&self) -> usize {
        self.mbps.len()
    }

    /// Mean rate in Mbps.
    pub fn mean_mbps(&self) -> f64 {
        self.mbps.iter().sum::<f64>() / self.mbps.len() as f64
    }

    /// Standard deviation in Mbps.
    pub fn std_mbps(&self) -> f64 {
        voxel_sim::stats::std_dev(&self.mbps)
    }

    /// Rate at virtual time `t`, in bits/second (cyclic past the end).
    pub fn rate_bps(&self, t: SimTime) -> f64 {
        let idx = (t.as_micros() / 1_000_000) as usize % self.mbps.len();
        self.mbps[idx] * 1e6
    }

    /// The paper's linear offset: add a constant so the mean becomes
    /// `target_mbps` ("the adjustments leave the network throughput
    /// variations intact"). Samples are floored at a small positive rate.
    pub fn offset_to_mean(&self, target_mbps: f64) -> BandwidthTrace {
        let delta = target_mbps - self.mean_mbps();
        Self::new(
            self.name.clone(),
            self.mbps.iter().map(|m| m + delta).collect(),
        )
    }

    /// Cyclic shift by `seconds` — the 30-trial protocol shifts by `d/30` per
    /// repetition to explore interactions between throughput and VBR
    /// variations (§5 "Experiments").
    pub fn shift(&self, seconds: usize) -> BandwidthTrace {
        let n = self.mbps.len();
        let s = seconds % n;
        let mut v = Vec::with_capacity(n);
        v.extend_from_slice(&self.mbps[s..]);
        v.extend_from_slice(&self.mbps[..s]);
        BandwidthTrace {
            name: self.name.clone(),
            mbps: v,
        }
    }

    /// Truncate to the first `seconds` samples (at least one). The
    /// testkit's failure minimizer uses this to find the shortest trace
    /// prefix that still reproduces a failure; the prefix repeats
    /// cyclically like any other trace.
    pub fn prefix(&self, seconds: usize) -> BandwidthTrace {
        let n = seconds.clamp(1, self.mbps.len());
        BandwidthTrace {
            name: self.name.clone(),
            mbps: self.mbps[..n].to_vec(),
        }
    }

    /// Time at which `bytes` of service completes if service starts at
    /// `start` and proceeds at this trace's (piecewise-constant) rate.
    pub fn service_finish(&self, start: SimTime, bytes: u64) -> SimTime {
        let mut remaining_bits = bytes as f64 * 8.0;
        let mut t_us = start.as_micros();
        loop {
            let sec_idx = (t_us / 1_000_000) as usize % self.mbps.len();
            let rate_bps = self.mbps[sec_idx] * 1e6;
            let sec_end_us = (t_us / 1_000_000 + 1) * 1_000_000;
            let avail_us = (sec_end_us - t_us) as f64;
            let capacity_bits = rate_bps * avail_us / 1e6;
            if capacity_bits >= remaining_bits {
                let need_us = remaining_bits / rate_bps * 1e6;
                return SimTime::from_micros(t_us + need_us.ceil() as u64);
            }
            remaining_bits -= capacity_bits;
            t_us = sec_end_us;
        }
    }
}

/// Named generators for the five recorded traces of §5, matched to their
/// published statistics. `duration_s` is the trace length; experiments use
/// 300 s (one clip).
pub mod generators {
    use super::*;

    /// Regime-switching AR(1) generator.
    ///
    /// `mean`/`std` target the *offset* statistics; `outage_p` is the
    /// per-second probability of entering a deep-fade regime and
    /// `outage_len` its mean length in seconds.
    #[allow(clippy::too_many_arguments)]
    fn regime_ar1(
        name: &str,
        seed: u64,
        duration_s: usize,
        mean: f64,
        std: f64,
        rho: f64,
        outage_p: f64,
        outage_len: f64,
    ) -> BandwidthTrace {
        let mut rng = SimRng::derive(seed, name);
        let innovation = std * (1.0 - rho * rho).sqrt();
        let mut x = mean;
        let mut outage_left = 0.0f64;
        let mut v = Vec::with_capacity(duration_s);
        for _ in 0..duration_s {
            if outage_left > 0.0 {
                outage_left -= 1.0;
                // Deep fade: a trickle of bandwidth.
                v.push(rng.uniform_range(0.05, 0.4));
                continue;
            }
            if rng.chance(outage_p) {
                outage_left = rng.exponential(1.0 / outage_len).max(1.0);
            }
            x = mean + rho * (x - mean) + innovation * rng.normal();
            v.push(x.max(FLOOR_MBPS));
        }
        // Affine-fit the sample to the target mean/std. Flooring at the
        // trickle rate re-distorts the moments slightly, so iterate the fit;
        // a handful of rounds converges. (For recorded traces the paper only
        // shifts; a synthetic generator must also hit the published std.)
        for _ in 0..6 {
            let m = voxel_sim::stats::mean(&v);
            let s = voxel_sim::stats::std_dev(&v).max(1e-9);
            let scale = std / s;
            for x in v.iter_mut() {
                *x = (mean + (*x - m) * scale).max(FLOOR_MBPS);
            }
        }
        // Final exact mean correction (tiny, preserves fades ≥ floor).
        let m = voxel_sim::stats::mean(&v);
        let delta = mean - m;
        for x in v.iter_mut() {
            *x = (*x + delta).max(FLOOR_MBPS);
        }
        BandwidthTrace::new(name, v)
    }

    /// T-Mobile LTE (Winstein et al.): the most violently varying trace —
    /// std ≈ 10 Mbps after offsetting to a 10 Mbps mean, with deep fades.
    pub fn tmobile_lte(seed: u64, duration_s: usize) -> BandwidthTrace {
        regime_ar1("T-Mobile", seed, duration_s, 10.0, 10.0, 0.75, 0.05, 3.0)
    }

    /// Verizon LTE: similarly varying, std ≈ 9 Mbps.
    pub fn verizon_lte(seed: u64, duration_s: usize) -> BandwidthTrace {
        regime_ar1("Verizon", seed, duration_s, 10.0, 9.0, 0.72, 0.035, 2.0)
    }

    /// AT&T LTE: moderate variation, std ≈ 2.88 Mbps.
    pub fn att_lte(seed: u64, duration_s: usize) -> BandwidthTrace {
        regime_ar1("AT&T", seed, duration_s, 10.0, 2.88, 0.7, 0.004, 1.5)
    }

    /// The offset 3G trace of Fig 6b: std ≈ 1.1 Mbps around the 10 Mbps mean.
    pub fn norway_3g(seed: u64, duration_s: usize) -> BandwidthTrace {
        regime_ar1("3G", seed, duration_s, 10.0, 1.1, 0.8, 0.002, 1.5)
    }

    /// FCC fixed-line broadband: slow variation, std ≈ 2.35 Mbps.
    pub fn fcc(seed: u64, duration_s: usize) -> BandwidthTrace {
        regime_ar1("FCC", seed, duration_s, 10.0, 2.35, 0.93, 0.0, 1.0)
    }

    /// One of the 86 raw (un-offset) Riiser 3G commute traces used in the
    /// Fig 10 stress test: low means (1–4 Mbps) with commute-style dips.
    pub fn norway_3g_raw(index: usize, duration_s: usize) -> BandwidthTrace {
        assert!(index < 86, "the Riiser set has 86 traces");
        let seed = 0x3663 + index as u64;
        let mut rng = SimRng::derive(seed, "3g-raw-mean");
        let mean = rng.uniform_range(1.2, 4.0);
        let std = mean * rng.uniform_range(0.35, 0.6);
        regime_ar1(
            &format!("3G-raw-{index}"),
            seed,
            duration_s,
            mean,
            std,
            0.85,
            0.015,
            4.0,
        )
    }

    /// An "in-the-wild" university-WiFi-like trace for the Fig 11d/13
    /// experiments: high mean, moderate variation, occasional contention dips.
    pub fn wild_wifi(seed: u64, duration_s: usize) -> BandwidthTrace {
        regime_ar1("in-the-wild", seed, duration_s, 11.0, 3.5, 0.8, 0.01, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::generators::*;
    use super::*;

    #[test]
    fn constant_trace_is_flat() {
        let t = BandwidthTrace::constant(10.5, 300);
        assert_eq!(t.duration_s(), 300);
        assert_eq!(t.mean_mbps(), 10.5);
        assert_eq!(t.std_mbps(), 0.0);
        assert_eq!(t.rate_bps(SimTime::from_secs(123)), 10.5e6);
    }

    #[test]
    fn step_trace_steps_at_the_right_time() {
        let t = BandwidthTrace::step(10.75, 10.5, 70, 300);
        assert_eq!(t.rate_bps(SimTime::from_secs(69)), 10.75e6);
        assert_eq!(t.rate_bps(SimTime::from_secs(70)), 10.5e6);
        assert_eq!(t.duration_s(), 300);
    }

    #[test]
    fn offset_to_mean_hits_target_exactly_when_no_flooring() {
        let t = BandwidthTrace::new("x", vec![4.0, 6.0, 8.0]);
        let o = t.offset_to_mean(10.0);
        assert!((o.mean_mbps() - 10.0).abs() < 1e-9);
        // Variations intact.
        assert!((o.std_mbps() - t.std_mbps()).abs() < 1e-9);
    }

    #[test]
    fn prefix_truncates_and_floors_at_one() {
        let t = BandwidthTrace::new("x", vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.prefix(2).mbps, vec![1.0, 2.0]);
        assert_eq!(t.prefix(0).mbps, vec![1.0]);
        assert_eq!(t.prefix(99).mbps, t.mbps);
    }

    #[test]
    fn shift_is_cyclic() {
        let t = BandwidthTrace::new("x", vec![1.0, 2.0, 3.0, 4.0]);
        let s = t.shift(1);
        assert_eq!(s.mbps, vec![2.0, 3.0, 4.0, 1.0]);
        let s2 = t.shift(5);
        assert_eq!(s2.mbps, vec![2.0, 3.0, 4.0, 1.0]);
        assert_eq!(t.shift(0).mbps, t.mbps);
    }

    #[test]
    fn rate_is_cyclic_past_end() {
        let t = BandwidthTrace::new("x", vec![1.0, 2.0]);
        assert_eq!(t.rate_bps(SimTime::from_secs(0)), 1e6);
        assert_eq!(t.rate_bps(SimTime::from_secs(3)), 2e6);
        assert_eq!(t.rate_bps(SimTime::from_secs(4)), 1e6);
    }

    #[test]
    fn service_finish_constant_rate() {
        let t = BandwidthTrace::constant(8.0, 10); // 1 MB/s
        let fin = t.service_finish(SimTime::ZERO, 500_000);
        assert_eq!(fin.as_micros(), 500_000);
    }

    #[test]
    fn service_finish_spans_rate_change() {
        // 1 Mbps for 1 s then 9 Mbps: 1 Mbit takes 1 s; next 0.9 Mbit takes 0.1 s.
        let t = BandwidthTrace::new("x", vec![1.0, 9.0]);
        let fin = t.service_finish(SimTime::ZERO, (1.9e6 / 8.0) as u64);
        assert!(
            (fin.as_secs_f64() - 1.1).abs() < 1e-3,
            "finish at {}",
            fin.as_secs_f64()
        );
    }

    #[test]
    fn service_finish_is_monotone_in_bytes() {
        let t = tmobile_lte(1, 300);
        let mut prev = SimTime::ZERO;
        for kb in [1u64, 10, 100, 1000, 10_000] {
            let fin = t.service_finish(SimTime::from_secs(5), kb * 1000);
            assert!(fin >= prev);
            prev = fin;
        }
    }

    #[test]
    fn lte_generators_match_published_stats() {
        for (t, target_std, tol) in [
            (tmobile_lte(7, 3000), 10.0, 0.35),
            (verizon_lte(7, 3000), 9.0, 0.35),
            (att_lte(7, 3000), 2.88, 0.3),
            (norway_3g(7, 3000), 1.1, 0.3),
            (fcc(7, 3000), 2.35, 0.3),
        ] {
            assert!(
                (t.mean_mbps() - 10.0).abs() < 0.01,
                "{}: mean {}",
                t.name,
                t.mean_mbps()
            );
            let rel = (t.std_mbps() - target_std).abs() / target_std;
            assert!(
                rel < tol,
                "{}: std {} vs {target_std}",
                t.name,
                t.std_mbps()
            );
        }
    }

    #[test]
    fn tmobile_has_deep_fades_fcc_does_not() {
        let tm = tmobile_lte(3, 1000);
        let fc = fcc(3, 1000);
        let tm_low = tm.mbps.iter().filter(|&&m| m < 1.0).count();
        let fc_low = fc.mbps.iter().filter(|&&m| m < 1.0).count();
        assert!(tm_low > 20, "T-Mobile deep fades: {tm_low}");
        assert!(fc_low < 10, "FCC deep fades: {fc_low}");
    }

    #[test]
    fn raw_3g_traces_are_low_bandwidth_and_distinct() {
        let a = norway_3g_raw(0, 300);
        let b = norway_3g_raw(1, 300);
        assert_ne!(a.mbps, b.mbps);
        for i in [0, 17, 42, 85] {
            let t = norway_3g_raw(i, 300);
            assert!(
                (0.5..5.0).contains(&t.mean_mbps()),
                "trace {i} mean {}",
                t.mean_mbps()
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(tmobile_lte(9, 100).mbps, tmobile_lte(9, 100).mbps);
        assert_ne!(tmobile_lte(9, 100).mbps, tmobile_lte(10, 100).mbps);
    }

    #[test]
    #[should_panic(expected = "86 traces")]
    fn raw_3g_index_bounds() {
        let _ = norway_3g_raw(86, 10);
    }
}

/// Mahimahi trace interop.
///
/// Mahimahi (the tool the paper's cited Winstein et al. traces ship in)
/// describes a link as one line per 1500-byte packet-delivery opportunity,
/// each line the opportunity's time in integer milliseconds. These helpers
/// convert to/from the per-second Mbps representation used here, so
/// recorded cellular traces can be dropped into any experiment.
pub mod mahimahi {
    use super::BandwidthTrace;

    /// Bytes per mahimahi delivery opportunity.
    pub const MTU_BYTES: f64 = 1500.0;

    /// Serialize a trace to mahimahi lines.
    pub fn to_lines(trace: &BandwidthTrace) -> String {
        let mut out = String::new();
        let mut credit = 0.0f64;
        for (sec, &mbps) in trace.mbps.iter().enumerate() {
            // Deliveries this second, spread uniformly.
            credit += mbps * 1e6 / 8.0 / MTU_BYTES;
            let n = credit.floor() as u64;
            credit -= n as f64;
            for k in 0..n {
                let ms = sec as u64 * 1000 + k * 1000 / n.max(1);
                out.push_str(&ms.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Parse mahimahi lines into a per-second trace.
    ///
    /// Returns `None` on any unparsable line. Empty input or input shorter
    /// than one second yields a single floor-rate bucket.
    pub fn from_lines(name: &str, text: &str) -> Option<BandwidthTrace> {
        let mut per_second: Vec<u64> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ms: u64 = line.parse().ok()?;
            let sec = (ms / 1000) as usize;
            if per_second.len() <= sec {
                per_second.resize(sec + 1, 0);
            }
            per_second[sec] += 1;
        }
        if per_second.is_empty() {
            per_second.push(0);
        }
        let mbps: Vec<f64> = per_second
            .iter()
            .map(|&n| n as f64 * MTU_BYTES * 8.0 / 1e6)
            .collect();
        Some(BandwidthTrace::new(name, mbps))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_preserves_rates() {
            let t = BandwidthTrace::new("x", vec![12.0, 6.0, 1.2, 24.0]);
            let lines = to_lines(&t);
            let back = from_lines("x", &lines).expect("parses");
            assert_eq!(back.duration_s(), 4);
            for (a, b) in t.mbps.iter().zip(&back.mbps) {
                // 1500-byte quantization: within one packet per second.
                assert!((a - b).abs() <= 0.013, "{a} vs {b}");
            }
        }

        #[test]
        fn lines_are_sorted_and_nonempty() {
            let t = BandwidthTrace::constant(10.0, 3);
            let lines = to_lines(&t);
            let ms: Vec<u64> = lines.lines().map(|l| l.parse().unwrap()).collect();
            assert!(!ms.is_empty());
            for w in ms.windows(2) {
                assert!(w[0] <= w[1]);
            }
            assert!(*ms.last().unwrap() < 3000);
        }

        #[test]
        fn malformed_input_is_rejected() {
            assert!(from_lines("x", "12\nabc\n").is_none());
        }

        #[test]
        fn empty_input_yields_floor_trace() {
            let t = from_lines("x", "").expect("parses");
            assert_eq!(t.duration_s(), 1);
            assert!(t.mean_mbps() < 0.1);
        }

        #[test]
        fn generated_trace_roundtrips_in_shape() {
            let t = super::super::generators::verizon_lte(5, 60);
            let back = from_lines("verizon", &to_lines(&t)).expect("parses");
            assert!((back.mean_mbps() - t.mean_mbps()).abs() < 0.2);
            assert!((back.std_mbps() - t.std_mbps()).abs() < 0.5);
        }
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Service completion is monotone in both start time and size, and
        /// conserves work: finishing N bytes then M more equals finishing
        /// N+M at once.
        #[test]
        fn service_finish_is_consistent(
            rates in proptest::collection::vec(0.05f64..50.0, 1..30),
            start_ms in 0u64..20_000,
            a in 1u64..2_000_000,
            b in 1u64..2_000_000,
        ) {
            let t = BandwidthTrace::new("p", rates);
            let start = SimTime::from_millis(start_ms);
            let f_a = t.service_finish(start, a);
            let f_ab = t.service_finish(start, a + b);
            prop_assert!(f_a >= start);
            prop_assert!(f_ab >= f_a, "more bytes finished earlier");
            // Work conservation: each call rounds its finish time up to the
            // next microsecond, so the chained variant can only finish
            // later — by at most the one lost microsecond re-served at the
            // worst-case rate ratio (fastest second's bits re-paid at the
            // slowest second's rate), ~1200 us for the 0.05..50 Mbps range.
            let chained = t.service_finish(f_a, b);
            let direct_us = f_ab.as_micros() as i64;
            let chained_us = chained.as_micros() as i64;
            prop_assert!(chained_us >= direct_us - 2,
                "chained {chained_us} finished before direct {direct_us}");
            prop_assert!(chained_us - direct_us <= 1200,
                "chained {chained_us} vs direct {direct_us}");
        }

        /// Mahimahi write→read round-trip: for arbitrary valid traces, the
        /// reconstructed per-second rates differ by at most one 1500-byte
        /// delivery opportunity (0.012 Mbps), and the shape is preserved.
        #[test]
        fn mahimahi_roundtrip_bounds_quantization(
            rates in proptest::collection::vec(0.05f64..60.0, 1..40),
        ) {
            let t = BandwidthTrace::new("p", rates);
            let lines = mahimahi::to_lines(&t);
            let back = mahimahi::from_lines("p", &lines).expect("own output parses");
            prop_assert_eq!(back.duration_s(), t.duration_s());
            // to_lines carries fractional-packet credit across seconds, so
            // any one second can be off by the floor()ed carry plus the
            // parse-side floor at FLOOR_MBPS.
            let mtu_mbps = mahimahi::MTU_BYTES * 8.0 / 1e6;
            for (a, b) in t.mbps.iter().zip(&back.mbps) {
                prop_assert!((a - b).abs() <= mtu_mbps + FLOOR_MBPS,
                    "second rate {a} came back as {b}");
            }
            prop_assert!((t.mean_mbps() - back.mean_mbps()).abs() <= mtu_mbps + FLOOR_MBPS);
        }

        /// Mahimahi read→write round-trip: arbitrary valid line sets
        /// reconstruct the same per-second delivery counts (within the one
        /// packet float credit can defer into the next second). Counts
        /// start above the FLOOR_MBPS equivalent (~4 pkts/s) — idle
        /// seconds legitimately come back at the floor rate, a lossy case
        /// the unit tests pin separately.
        #[test]
        fn mahimahi_read_write_preserves_counts(
            counts in proptest::collection::vec(5u64..200, 1..20),
        ) {
            let mut text = String::new();
            for (sec, &n) in counts.iter().enumerate() {
                for k in 0..n {
                    text.push_str(&format!("{}\n", sec as u64 * 1000 + (k * 1000) / n.max(1)));
                }
            }
            let t = mahimahi::from_lines("p", &text).expect("valid lines parse");
            prop_assert_eq!(t.duration_s(), counts.len());
            let lines2 = mahimahi::to_lines(&t);
            let back = mahimahi::from_lines("p", &lines2).expect("own output parses");
            for (sec, (&n, b)) in counts.iter().zip(&back.mbps).enumerate() {
                let n_back = (b / (mahimahi::MTU_BYTES * 8.0 / 1e6)).round() as i64;
                // Zero-count seconds come back at the trace floor, which
                // to_lines may round to a single opportunity.
                prop_assert!((n_back - n as i64).abs() <= 1 + i64::from(n == 0),
                    "second {sec}: {n} opportunities came back as {n_back}");
            }
        }

        /// Offsetting to a mean then measuring gives that mean (when no
        /// sample hits the floor), and shifting never changes the moments.
        #[test]
        fn offset_and_shift_preserve_stats(
            rates in proptest::collection::vec(5.0f64..50.0, 2..50),
            target in 8.0f64..30.0,
            shift in 0usize..100,
        ) {
            let t = BandwidthTrace::new("p", rates);
            // The mean is exact only when no offset sample hits the floor.
            let delta = target - t.mean_mbps();
            let min = t.mbps.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assume!(min + delta > 0.06);
            let o = t.offset_to_mean(target);
            prop_assert!((o.mean_mbps() - target).abs() < 1e-6);
            let s = t.shift(shift);
            prop_assert!((s.mean_mbps() - t.mean_mbps()).abs() < 1e-9);
            prop_assert!((s.std_mbps() - t.std_mbps()).abs() < 1e-9);
        }
    }
}
