//! The bottleneck path: server — router(queue) — client.
//!
//! "Each triplet emulates a one-hop network — a server and client connected
//! via an intermediate host (or router). We shape the traffic flowing
//! through the router … we fixed the network queue size to 1.25× the
//! bandwidth-delay product [or 32 packets for the trace experiments, or 750
//! packets for the cached-LTE appendix]. We configured a 30 ms delay on the
//! router-to-client link." (§5)
//!
//! The router serves a FIFO droptail queue at the trace's time-varying rate.
//! Because the queue is FIFO, a packet's departure time is fully determined
//! at enqueue time (later arrivals cannot affect it), so the path computes
//! exact departure timestamps by integrating the rate curve — no per-byte
//! stepping.

use crate::trace::BandwidthTrace;
use std::collections::VecDeque;
use voxel_sim::{SimDuration, SimTime};

/// Configuration of a bottleneck path.
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// Service-rate trace of the bottleneck link.
    pub trace: BandwidthTrace,
    /// Droptail queue capacity in packets.
    pub queue_packets: usize,
    /// Propagation delay router → client (the paper's last-mile 30 ms).
    pub delay_down: SimDuration,
    /// Propagation delay client → server (return path for ACKs/requests).
    pub delay_up: SimDuration,
}

impl PathConfig {
    /// The paper's default: 30 ms last-mile down, symmetric return path.
    pub fn new(trace: BandwidthTrace, queue_packets: usize) -> PathConfig {
        PathConfig {
            trace,
            queue_packets,
            delay_down: SimDuration::from_millis(30),
            delay_up: SimDuration::from_millis(30),
        }
    }

    /// Queue size as `factor ×` the bandwidth-delay product at `rate_mbps`
    /// with this path's RTT, in packets of `mtu` bytes (min 4 packets).
    pub fn bdp_queue_packets(rate_mbps: f64, rtt: SimDuration, mtu: usize, factor: f64) -> usize {
        let bdp_bytes = rate_mbps * 1e6 / 8.0 * rtt.as_secs_f64();
        ((bdp_bytes * factor / mtu as f64).round() as usize).max(4)
    }
}

/// Counters for the path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Packets delivered to the client.
    pub delivered: u64,
    /// Packets dropped at the droptail queue.
    pub dropped: u64,
    /// Bytes delivered to the client.
    pub bytes_delivered: u64,
}

/// The simulated one-hop path.
#[derive(Debug, Clone)]
pub struct BottleneckPath {
    config: PathConfig,
    /// Departure (service-completion) times of packets still in the queue.
    departures: VecDeque<SimTime>,
    /// When the server of the queue becomes free.
    busy_until: SimTime,
    stats: PathStats,
}

impl BottleneckPath {
    /// Create a fresh path.
    pub fn new(config: PathConfig) -> BottleneckPath {
        BottleneckPath {
            config,
            departures: VecDeque::new(),
            busy_until: SimTime::ZERO,
            stats: PathStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PathConfig {
        &self.config
    }

    /// Path statistics so far.
    pub fn stats(&self) -> PathStats {
        self.stats
    }

    /// Number of packets queued (not yet fully serviced) at `now`.
    pub fn queue_len(&mut self, now: SimTime) -> usize {
        while let Some(&dep) = self.departures.front() {
            if dep <= now {
                self.departures.pop_front();
            } else {
                break;
            }
        }
        self.departures.len()
    }

    /// Send a packet of `bytes` from the server towards the client at `now`.
    ///
    /// Returns the client-side arrival time, or `None` if the droptail queue
    /// was full.
    pub fn send_downlink(&mut self, now: SimTime, bytes: usize) -> Option<SimTime> {
        let _obs = voxel_obs::span!("netem.send_downlink");
        let qlen = self.queue_len(now);
        if qlen >= self.config.queue_packets {
            self.stats.dropped += 1;
            return None;
        }
        let start = self.busy_until.max(now);
        let done = self.config.trace.service_finish(start, bytes as u64);
        self.busy_until = done;
        self.departures.push_back(done);
        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes as u64;
        Some(done + self.config.delay_down)
    }

    /// Send a (small) packet from client to server at `now`; the uplink is
    /// not bandwidth-constrained (ACK/request traffic is negligible next to
    /// the video stream). Returns the server-side arrival time.
    pub fn send_uplink(&self, now: SimTime) -> SimTime {
        now + self.config.delay_up
    }

    /// Base RTT of the path (both propagation delays, no queueing).
    pub fn base_rtt(&self) -> SimDuration {
        self.config.delay_down + self.config.delay_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::BandwidthTrace;

    fn path(mbps: f64, queue: usize) -> BottleneckPath {
        BottleneckPath::new(PathConfig::new(BandwidthTrace::constant(mbps, 3600), queue))
    }

    #[test]
    fn single_packet_latency_is_serialization_plus_delay() {
        let mut p = path(12.0, 32); // 1500 B at 12 Mbps = 1 ms
        let t = p.send_downlink(SimTime::ZERO, 1500).unwrap();
        assert_eq!(t.as_micros(), 1_000 + 30_000);
    }

    #[test]
    fn fifo_packets_queue_behind_each_other() {
        let mut p = path(12.0, 32);
        let t1 = p.send_downlink(SimTime::ZERO, 1500).unwrap();
        let t2 = p.send_downlink(SimTime::ZERO, 1500).unwrap();
        assert_eq!((t2 - t1).as_micros(), 1_000);
    }

    #[test]
    fn droptail_drops_when_full() {
        let mut p = path(1.0, 4);
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match p.send_downlink(SimTime::ZERO, 1500) {
                Some(_) => delivered += 1,
                None => dropped += 1,
            }
        }
        assert_eq!(delivered, 4);
        assert_eq!(dropped, 6);
        assert_eq!(p.stats().dropped, 6);
        assert_eq!(p.stats().delivered, 4);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut p = path(12.0, 4);
        for _ in 0..4 {
            p.send_downlink(SimTime::ZERO, 1500).unwrap();
        }
        assert!(p.send_downlink(SimTime::ZERO, 1500).is_none());
        // After 4 ms the queue has fully drained.
        let later = SimTime::from_millis(4);
        assert_eq!(p.queue_len(later), 0);
        assert!(p.send_downlink(later, 1500).is_some());
    }

    #[test]
    fn idle_gap_resets_service_start() {
        let mut p = path(12.0, 32);
        p.send_downlink(SimTime::ZERO, 1500).unwrap();
        // Send long after the first drained: service starts at `now`.
        let t = p.send_downlink(SimTime::from_secs(5), 1500).unwrap();
        assert_eq!(t.as_micros(), 5_000_000 + 1_000 + 30_000);
    }

    #[test]
    fn varying_rate_slows_departures() {
        let trace = BandwidthTrace::new("x", vec![12.0, 1.2]);
        let mut p = BottleneckPath::new(PathConfig::new(trace, 100));
        // Packet sent in second 0 (12 Mbps): 1 ms serialization.
        let a = p.send_downlink(SimTime::ZERO, 1500).unwrap();
        // Packet sent in second 1 (1.2 Mbps): 10 ms serialization.
        let b = p.send_downlink(SimTime::from_secs(1), 1500).unwrap();
        assert_eq!((a - SimTime::ZERO).as_micros() - 30_000, 1_000);
        assert_eq!((b - SimTime::from_secs(1)).as_micros() - 30_000, 10_000);
    }

    #[test]
    fn uplink_adds_only_delay() {
        let p = path(12.0, 32);
        assert_eq!(
            p.send_uplink(SimTime::from_secs(1)).as_micros(),
            1_000_000 + 30_000
        );
        assert_eq!(p.base_rtt().as_micros(), 60_000);
    }

    #[test]
    fn bdp_queue_sizing() {
        // 10 Mbps × 60 ms = 75 kB; ×1.25 / 1500 B = 62.5 → 63 packets.
        let n = PathConfig::bdp_queue_packets(10.0, SimDuration::from_millis(60), 1500, 1.25);
        assert_eq!(n, 63);
        // Tiny BDPs floor at 4.
        let tiny = PathConfig::bdp_queue_packets(0.1, SimDuration::from_millis(1), 1500, 1.0);
        assert_eq!(tiny, 4);
    }

    #[test]
    fn bytes_delivered_accumulates() {
        let mut p = path(12.0, 32);
        p.send_downlink(SimTime::ZERO, 1000).unwrap();
        p.send_downlink(SimTime::ZERO, 500).unwrap();
        assert_eq!(p.stats().bytes_delivered, 1500);
    }
}
