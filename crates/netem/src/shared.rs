//! A shared bottleneck link serving N flows (fleet experiments).
//!
//! [`crate::path::BottleneckPath`] models one video flow owning the whole
//! bottleneck, which lets it compute each packet's departure at enqueue
//! time (FIFO order never changes afterwards). With several flows sharing
//! the link that shortcut breaks — under round-robin scheduling a later
//! arrival on another flow changes the service order — so [`SharedLink`]
//! is event-driven instead: exactly one packet is in service at a time,
//! the driver asks for the next completion via [`SharedLink::next_departure`]
//! and pops completions with [`SharedLink::pop_due`], and the scheduler
//! picks the next packet only when the link actually frees up
//! (work-conserving, service rate integrated over the bandwidth trace).
//!
//! Two disciplines:
//!
//! - [`Discipline::Fifo`]: one global droptail queue in arrival order —
//!   flows interact exactly as they would through a dumb router buffer.
//! - [`Discipline::Drr`]: deficit round robin — each active flow accrues
//!   a byte quantum per round and sends while its deficit covers the head
//!   packet, giving approximately fair byte-shares regardless of packet
//!   sizes.
//!
//! Per-flow packet order is preserved under both disciplines, so a driver
//! holding per-flow payload queues stays aligned with the byte-level
//! model here.

use crate::trace::BandwidthTrace;
use std::collections::VecDeque;
use voxel_sim::{SimDuration, SimTime};

/// Scheduling discipline of the shared bottleneck queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// One global FIFO: packets depart in arrival order.
    Fifo,
    /// Deficit round robin with the given per-round byte quantum.
    Drr {
        /// Bytes added to an active flow's deficit each scheduling round.
        quantum_bytes: usize,
    },
}

impl Discipline {
    /// DRR with a one-MTU (1500 byte) quantum — the classic choice.
    pub fn drr() -> Discipline {
        Discipline::Drr {
            quantum_bytes: 1500,
        }
    }

    /// Stable lowercase name (`fifo` / `drr`) used in fleet specs.
    pub fn as_str(&self) -> &'static str {
        match self {
            Discipline::Fifo => "fifo",
            Discipline::Drr { .. } => "drr",
        }
    }
}

/// Shared-link parameters.
#[derive(Debug, Clone)]
pub struct SharedLinkConfig {
    /// Bandwidth trace shaping the link's service rate.
    pub trace: BandwidthTrace,
    /// Droptail capacity in packets (waiting + in service), shared by all
    /// flows.
    pub queue_packets: usize,
    /// Scheduling discipline.
    pub discipline: Discipline,
    /// Router → client propagation delay (applies after service).
    pub delay_down: SimDuration,
    /// Client → router/server propagation delay (uplink is unconstrained).
    pub delay_up: SimDuration,
}

impl SharedLinkConfig {
    /// Config with the testbed's default 30 ms last-mile delays.
    pub fn new(trace: BandwidthTrace, queue_packets: usize, discipline: Discipline) -> Self {
        SharedLinkConfig {
            trace,
            queue_packets,
            discipline,
            delay_down: SimDuration::from_millis(30),
            delay_up: SimDuration::from_millis(30),
        }
    }
}

/// Per-flow accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets rejected by the droptail.
    pub dropped: u64,
    /// Packets that completed service.
    pub delivered: u64,
    /// Bytes that completed service.
    pub bytes_delivered: u64,
}

/// One completed (or in-flight) link service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Departure {
    /// The flow the packet belongs to.
    pub flow: usize,
    /// Packet size in bytes.
    pub bytes: usize,
    /// Service completion time at the router. Add the link's downlink
    /// delay for the client-side arrival time.
    pub at: SimTime,
}

/// The shared bottleneck link. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct SharedLink {
    config: SharedLinkConfig,
    /// Per-flow queued packet sizes (order preserved per flow).
    queues: Vec<VecDeque<usize>>,
    /// Arrival order of queued packets' flow ids (FIFO discipline).
    arrivals: VecDeque<usize>,
    /// DRR per-flow deficit counters, bytes.
    deficits: Vec<u64>,
    /// DRR round-robin position: next flow to visit when the current
    /// flow's deficit runs out.
    cursor: usize,
    /// DRR: flow currently holding the scheduling round, if any.
    current: Option<usize>,
    in_service: Option<Departure>,
    waiting: usize,
    stats: Vec<FlowStats>,
}

impl SharedLink {
    /// A link shared by `flows` flows.
    pub fn new(config: SharedLinkConfig, flows: usize) -> SharedLink {
        SharedLink {
            config,
            queues: vec![VecDeque::new(); flows],
            arrivals: VecDeque::new(),
            deficits: vec![0; flows],
            cursor: 0,
            current: None,
            in_service: None,
            waiting: 0,
            stats: vec![FlowStats::default(); flows],
        }
    }

    /// Number of flows sharing the link.
    pub fn flows(&self) -> usize {
        self.queues.len()
    }

    /// The link's configuration.
    pub fn config(&self) -> &SharedLinkConfig {
        &self.config
    }

    /// Queue occupancy (waiting + in service), in packets.
    pub fn queue_len(&self) -> usize {
        self.waiting + usize::from(self.in_service.is_some())
    }

    /// Offer a packet of `bytes` from `flow` to the queue at `now`.
    /// Returns `false` (and counts a drop) when the droptail rejects it.
    /// The driver must have popped all departures due at or before `now`
    /// first, so occupancy reflects the link state at `now`.
    pub fn enqueue(&mut self, now: SimTime, flow: usize, bytes: usize) -> bool {
        let _obs = voxel_obs::span!("netem.enqueue");
        if self.queue_len() >= self.config.queue_packets {
            self.stats[flow].dropped += 1;
            return false;
        }
        self.stats[flow].enqueued += 1;
        self.queues[flow].push_back(bytes);
        self.arrivals.push_back(flow);
        self.waiting += 1;
        if self.in_service.is_none() {
            self.start_service(now);
        }
        true
    }

    /// When the packet currently in service completes, if any.
    pub fn next_departure(&self) -> Option<SimTime> {
        self.in_service.map(|d| d.at)
    }

    /// Pop every service completion at or before `now`, starting the next
    /// packet's service back-to-back at each completion instant
    /// (work-conserving).
    pub fn pop_due(&mut self, now: SimTime) -> Vec<Departure> {
        let mut out = Vec::new();
        self.pop_due_into(now, &mut out);
        out
    }

    /// [`SharedLink::pop_due`] into a caller-provided buffer (appended, not
    /// cleared), so a driver pumping the link once per barrier round can
    /// recycle one departure buffer instead of allocating per call.
    pub fn pop_due_into(&mut self, now: SimTime, out: &mut Vec<Departure>) {
        let _obs = voxel_obs::span!("netem.pop_due");
        while let Some(dep) = self.in_service {
            if dep.at > now {
                break;
            }
            self.stats[dep.flow].delivered += 1;
            self.stats[dep.flow].bytes_delivered += dep.bytes as u64;
            self.in_service = None;
            out.push(dep);
            self.start_service(dep.at);
        }
    }

    /// Uplink (client → server) arrival time for a packet sent at `now`;
    /// the reverse direction is delay-only, as in the single-flow path.
    pub fn uplink(&self, now: SimTime) -> SimTime {
        now + self.config.delay_up
    }

    /// Router → client propagation delay.
    pub fn delay_down(&self) -> SimDuration {
        self.config.delay_down
    }

    /// Accounting for one flow.
    pub fn flow_stats(&self, flow: usize) -> FlowStats {
        self.stats[flow]
    }

    /// Accounting for every flow, indexed by flow id.
    pub fn stats(&self) -> &[FlowStats] {
        &self.stats
    }

    /// Begin serving the next scheduled packet at `at`, if any is waiting.
    fn start_service(&mut self, at: SimTime) {
        let Some(flow) = self.select_next() else {
            return;
        };
        let Some(bytes) = self.queues[flow].pop_front() else {
            return;
        };
        self.waiting -= 1;
        if let Discipline::Drr { .. } = self.config.discipline {
            self.deficits[flow] = self.deficits[flow].saturating_sub(bytes as u64);
            if self.queues[flow].is_empty() {
                // Classic DRR: an emptied flow leaves the active list and
                // forfeits its residual deficit.
                self.deficits[flow] = 0;
                self.current = None;
            }
        }
        let done = self.config.trace.service_finish(at, bytes as u64);
        self.in_service = Some(Departure {
            flow,
            bytes,
            at: done,
        });
    }

    /// Pick the flow whose head packet is served next, per discipline.
    fn select_next(&mut self) -> Option<usize> {
        if self.waiting == 0 {
            return None;
        }
        match self.config.discipline {
            Discipline::Fifo => self.arrivals.pop_front(),
            Discipline::Drr { quantum_bytes } => {
                // Stay aligned with the byte-level model even though the
                // arrival list is only consulted by FIFO.
                self.arrivals.pop_front();
                if let Some(f) = self.current {
                    match self.queues[f].front() {
                        Some(&head) if self.deficits[f] >= head as u64 => return Some(f),
                        _ => self.current = None,
                    }
                }
                // Rotate over active flows, topping each up by the
                // quantum, until one can afford its head packet. Some
                // queue is non-empty (waiting > 0) and its deficit grows
                // each visit, so this terminates.
                loop {
                    let f = self.cursor;
                    self.cursor = (self.cursor + 1) % self.queues.len();
                    let Some(&head) = self.queues[f].front() else {
                        continue;
                    };
                    self.deficits[f] += quantum_bytes as u64;
                    if self.deficits[f] >= head as u64 {
                        self.current = Some(f);
                        return Some(f);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(discipline: Discipline, queue: usize) -> SharedLink {
        // 8 Mbit/s constant: a 1000-byte packet takes exactly 1 ms.
        let cfg = SharedLinkConfig::new(BandwidthTrace::constant(8.0, 600), queue, discipline);
        SharedLink::new(cfg, 2)
    }

    #[test]
    fn fifo_departs_in_arrival_order() {
        let mut l = link(Discipline::Fifo, 32);
        let t0 = SimTime::ZERO;
        assert!(l.enqueue(t0, 0, 1000));
        assert!(l.enqueue(t0, 1, 1000));
        assert!(l.enqueue(t0, 0, 1000));
        let deps = l.pop_due(SimTime::from_secs(1));
        let order: Vec<usize> = deps.iter().map(|d| d.flow).collect();
        assert_eq!(order, [0, 1, 0]);
        // Back-to-back service at 8 Mbit/s: 1 ms per packet.
        assert_eq!(deps[0].at, SimTime::from_millis(1));
        assert_eq!(deps[1].at, SimTime::from_millis(2));
        assert_eq!(deps[2].at, SimTime::from_millis(3));
    }

    #[test]
    fn drr_interleaves_a_backlogged_flow_with_a_late_arrival() {
        let mut l = link(Discipline::drr(), 64);
        let t0 = SimTime::ZERO;
        for _ in 0..4 {
            assert!(l.enqueue(t0, 0, 1000));
        }
        // Flow 1 arrives while flow 0's first packet is in service; under
        // FIFO it would wait behind all four. DRR serves it next round.
        assert!(l.enqueue(SimTime::from_micros(100), 1, 1000));
        let deps = l.pop_due(SimTime::from_secs(1));
        let order: Vec<usize> = deps.iter().map(|d| d.flow).collect();
        assert_eq!(order, [0, 1, 0, 0, 0]);
    }

    #[test]
    fn drr_byte_shares_are_fair_for_mismatched_packet_sizes() {
        let mut l = link(Discipline::drr(), 1024);
        let t0 = SimTime::ZERO;
        // Flow 0 sends 1500-byte packets, flow 1 sends 300-byte packets.
        for _ in 0..40 {
            l.enqueue(t0, 0, 1500);
        }
        for _ in 0..200 {
            l.enqueue(t0, 1, 300);
        }
        // Pop a bounded window of service and compare byte shares.
        let deps = l.pop_due(SimTime::from_millis(40));
        let bytes = |flow: usize| -> u64 {
            deps.iter()
                .filter(|d| d.flow == flow)
                .map(|d| d.bytes as u64)
                .sum()
        };
        let (b0, b1) = (bytes(0) as f64, bytes(1) as f64);
        assert!(b0 > 0.0 && b1 > 0.0);
        let ratio = b0 / b1;
        assert!((0.7..1.4).contains(&ratio), "byte share ratio {ratio}");
    }

    #[test]
    fn droptail_counts_per_flow_drops() {
        let mut l = link(Discipline::Fifo, 3);
        let t0 = SimTime::ZERO;
        assert!(l.enqueue(t0, 0, 1000));
        assert!(l.enqueue(t0, 0, 1000));
        assert!(l.enqueue(t0, 1, 1000));
        assert!(!l.enqueue(t0, 1, 1000), "queue full");
        assert_eq!(l.flow_stats(1).dropped, 1);
        assert_eq!(l.flow_stats(0).dropped, 0);
        assert_eq!(l.queue_len(), 3);
    }

    #[test]
    fn work_conserving_across_idle_gaps() {
        let mut l = link(Discipline::Fifo, 32);
        assert!(l.enqueue(SimTime::ZERO, 0, 1000));
        let first = l.pop_due(SimTime::from_secs(1));
        assert_eq!(first.len(), 1);
        assert_eq!(l.next_departure(), None, "link idle");
        // A packet arriving after the idle gap starts service immediately.
        let t = SimTime::from_millis(500);
        assert!(l.enqueue(t, 1, 1000));
        assert_eq!(l.next_departure(), Some(SimTime::from_millis(501)));
        let stats = l.stats();
        assert_eq!(stats[0].delivered, 1);
        assert_eq!(stats[0].bytes_delivered, 1000);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run = || {
            let mut l = link(Discipline::drr(), 16);
            let mut deps = Vec::new();
            for i in 0..50u64 {
                let t = SimTime::from_micros(i * 137);
                l.enqueue(t, (i % 2) as usize, 400 + (i as usize % 5) * 300);
                deps.extend(l.pop_due(t));
            }
            deps.extend(l.pop_due(SimTime::from_secs(10)));
            (deps, l.stats().to_vec())
        };
        assert_eq!(run(), run());
    }
}
