//! Harpoon-like cross-traffic (§5 "In-lab trials with cross traffic").
//!
//! Harpoon is a flow-level traffic generator: clients fetch files of varying
//! (heavy-tailed) sizes at varying times from servers, producing self-similar
//! load "with many high and low bandwidth regions". We reproduce it at the
//! same level of abstraction: Poisson session arrivals with bounded-Pareto
//! transfer sizes, run through a fluid processor-sharing model of the
//! bottleneck (TCP flows sharing a link converge to fair shares), with the
//! video connection counted as one additional flow. The output is a
//! fine-grained trace of the bandwidth *available to the video flow*, which
//! then drives [`crate::BottleneckPath`] exactly like a recorded trace.

use crate::trace::BandwidthTrace;
use voxel_sim::SimRng;

/// Parameters of the cross-traffic workload.
#[derive(Debug, Clone)]
pub struct CrossTrafficConfig {
    /// Bottleneck link capacity in Mbps (the paper uses 20 Mbps).
    pub capacity_mbps: f64,
    /// Target average offered load in Mbps (10, 15 or 20 in the paper).
    pub offered_mbps: f64,
    /// Mean flow size in bytes (web-object scale).
    pub mean_flow_bytes: f64,
    /// Pareto shape for flow sizes (heavy tail; Harpoon's default regime).
    pub pareto_shape: f64,
}

impl CrossTrafficConfig {
    /// The paper's setup: 20 Mbps link with the given offered load.
    pub fn paper(offered_mbps: f64) -> CrossTrafficConfig {
        CrossTrafficConfig {
            capacity_mbps: 20.0,
            offered_mbps,
            mean_flow_bytes: 180_000.0,
            pareto_shape: 1.2,
        }
    }
}

/// Generate the per-second trace of bandwidth available to the video flow
/// while the cross-traffic workload runs.
///
/// Harpoon is *closed-loop*: a fixed pool of clients alternates between
/// thinking and fetching a heavy-tailed-sized file from the servers ("it
/// takes a number of clients C and servers S as input … We vary C to
/// generate varying amounts of cross traffic"). The fluid model advances in
/// 100 ms steps: each fetching client and the (phantom) video flow get an
/// equal share of the capacity; a client departs to think time when its
/// transfer completes. Per-second averages of the video flow's share form
/// the returned trace — bursty, with high regions (all clients thinking)
/// and low regions (a heavy transfer holding the link).
pub fn available_bandwidth(
    config: &CrossTrafficConfig,
    duration_s: usize,
    seed: u64,
) -> BandwidthTrace {
    let mut rng = SimRng::derive(seed, "crosstraffic");
    let cap_bytes_per_s = config.capacity_mbps * 1e6 / 8.0;

    // Client pool sized so that the offered (unconstrained) load averages
    // `offered_mbps`: each client cycle ≈ think + transfer-at-solo-rate.
    let think_mean_s = 4.0;
    let solo_xfer_s = config.mean_flow_bytes / cap_bytes_per_s;
    let per_client_bps = config.mean_flow_bytes * 8.0 / (think_mean_s + solo_xfer_s);
    let clients = ((config.offered_mbps * 1e6 / per_client_bps).round() as usize).max(1);

    // Bounded Pareto with the requested mean: scale = mean*(shape-1)/shape
    // (cap correction is small for shape > 1 with a generous cap).
    let scale = config.mean_flow_bytes * (config.pareto_shape - 1.0) / config.pareto_shape;
    let cap = config.mean_flow_bytes * 500.0;

    // Client state: Some(remaining_bytes) = fetching, None scheduled via
    // wake times.
    let mut remaining: Vec<Option<f64>> = vec![None; clients];
    let mut wake_at: Vec<f64> = (0..clients)
        .map(|_| rng.exponential(1.0 / think_mean_s))
        .collect();

    let step_s = 0.1;
    let steps_per_sec = 10usize;
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(duration_s);

    for _ in 0..duration_s {
        let mut acc = 0.0f64;
        for _ in 0..steps_per_sec {
            // Wake thinkers whose timer expired: start a fetch.
            for c in 0..clients {
                if remaining[c].is_none() && wake_at[c] <= t {
                    remaining[c] = Some(rng.pareto(scale, config.pareto_shape, cap));
                }
            }
            let active = remaining.iter().filter(|r| r.is_some()).count();
            let share = cap_bytes_per_s / (active as f64 + 1.0);
            let served = share * step_s;
            for c in 0..clients {
                if let Some(rem) = remaining[c].as_mut() {
                    *rem -= served;
                    if *rem <= 0.0 {
                        remaining[c] = None;
                        wake_at[c] = t + rng.exponential(1.0 / think_mean_s);
                    }
                }
            }
            acc += share * 8.0 / 1e6 * step_s;
            t += step_s;
        }
        out.push(acc);
    }
    BandwidthTrace::new(format!("xtraffic-{}mbps", config.offered_mbps), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_offered_load_leaves_less_available() {
        let t10 = available_bandwidth(&CrossTrafficConfig::paper(10.0), 600, 1);
        let t20 = available_bandwidth(&CrossTrafficConfig::paper(20.0), 600, 1);
        assert!(
            t20.mean_mbps() < t10.mean_mbps(),
            "20M offered {} vs 10M offered {}",
            t20.mean_mbps(),
            t10.mean_mbps()
        );
    }

    #[test]
    fn available_is_bounded_by_capacity() {
        let t = available_bandwidth(&CrossTrafficConfig::paper(15.0), 300, 2);
        for &m in &t.mbps {
            assert!(m <= 20.0 + 1e-9);
            assert!(m > 0.0);
        }
    }

    #[test]
    fn heavy_load_still_leaves_a_workable_share() {
        // Even at 20 Mbps offered on a 20 Mbps link, fair sharing leaves the
        // video flow a few Mbps on average (the paper's ABRs sustain
        // ~3-5 Mbps under this load, Fig 12b).
        let t = available_bandwidth(&CrossTrafficConfig::paper(20.0), 900, 3);
        let m = t.mean_mbps();
        assert!((2.0..12.0).contains(&m), "mean available {m}");
    }

    #[test]
    fn load_is_bursty_not_constant() {
        // Self-similar traffic ⇒ "many high and low bandwidth regions".
        let t = available_bandwidth(&CrossTrafficConfig::paper(20.0), 900, 4);
        assert!(t.std_mbps() > 1.0, "std {}", t.std_mbps());
        let m = t.mean_mbps();
        let high = t.mbps.iter().filter(|&&x| x > 1.5 * m).count();
        let low = t.mbps.iter().filter(|&&x| x < 0.5 * m).count();
        assert!(high > 10, "high regions {high}");
        assert!(low > 10, "low regions {low}");
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = available_bandwidth(&CrossTrafficConfig::paper(15.0), 120, 9);
        let b = available_bandwidth(&CrossTrafficConfig::paper(15.0), 120, 9);
        let c = available_bandwidth(&CrossTrafficConfig::paper(15.0), 120, 10);
        assert_eq!(a.mbps, b.mbps);
        assert_ne!(a.mbps, c.mbps);
    }
}
