#![warn(missing_docs)]
//! # voxel-netem
//!
//! Network emulation substrate reproducing the paper's testbed (§5
//! "Network testbed"): a one-hop server—router—client topology where the
//! router is the bottleneck, shaped per-second by a bandwidth trace, with a
//! droptail queue and a 30 ms "last-mile" delay on the router→client link.
//!
//! - [`trace`]: per-second bandwidth traces — synthetic generators matched
//!   to the statistics of the paper's recorded traces (T-Mobile / Verizon /
//!   AT&T LTE, the Riiser 3G set, FCC fixed-line) plus the constant and
//!   step traces of Fig 11, with the paper's linear offset-to-mean and the
//!   `d/30` shift protocol.
//! - [`path`]: the bottleneck path — FIFO droptail queue with time-varying
//!   service rate and propagation delays; computes exact per-packet
//!   departure times by integrating the rate curve.
//! - [`crosstraffic`]: a Harpoon-like flow-level web-workload generator
//!   (Poisson session arrivals, bounded-Pareto transfer sizes) run through a
//!   fluid fair-sharing model to produce the bandwidth actually available
//!   to the video flow.
//! - [`shared`]: the multi-flow variant of the bottleneck — one link
//!   shared by N sessions under FIFO or deficit-round-robin scheduling
//!   with per-flow accounting, driving the fleet runtime in `voxel-fleet`.
//! - [`fault`]: the seeded fault-injection plane the testkit threads
//!   through sessions — loss bursts, reorder/dup windows, bandwidth cliffs
//!   and stuck-trace stretches (DESIGN.md §11).
//! - [`origin`]: the edge → origin backhaul of the fleet's edge serving
//!   tier — a fluid FIFO object-fetch pipe cache misses fan in to
//!   (DESIGN.md §16).

pub mod crosstraffic;
pub mod fault;
pub mod origin;
pub mod path;
pub mod shared;
pub mod trace;

pub use fault::{FaultKind, FaultPlane, PacketFate};
pub use origin::OriginLink;
pub use path::{BottleneckPath, PathConfig, PathStats};
pub use shared::{Departure, Discipline, FlowStats, SharedLink, SharedLinkConfig};
pub use trace::BandwidthTrace;
