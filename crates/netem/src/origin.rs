//! The edge → origin backhaul link (DESIGN.md §16).
//!
//! Cache misses at an edge fan in to one shared origin over this link: a
//! fluid FIFO pipe with a fixed rate and a one-way propagation delay.
//! Unlike [`crate::shared::SharedLink`] it carries *object fetches*, not
//! packets — the edge tier only needs to know **when** the missed bytes
//! are available at the edge, so service is modelled as back-to-back
//! transmission of each fetch in request order (work-conserving, one
//! fetch in service at a time). A flash crowd of misses therefore queues:
//! each fetch's ready time includes every earlier fetch still in flight,
//! which is exactly the origin-overload signal the edge report surfaces
//! as `edge.origin_load_pct`.

use voxel_sim::{SimDuration, SimTime};

/// The shared origin backhaul. Deterministic: ready times are a pure
/// function of the fetch sequence.
#[derive(Debug, Clone)]
pub struct OriginLink {
    rate_bps: f64,
    delay: SimDuration,
    busy_until: SimTime,
    total_bytes: u64,
    fetches: u64,
    busy: SimDuration,
}

impl OriginLink {
    /// An origin link serving `mbps` with the given one-way delay.
    pub fn new(mbps: f64, delay: SimDuration) -> OriginLink {
        OriginLink {
            rate_bps: (mbps.max(1e-6)) * 1e6,
            delay,
            busy_until: SimTime::ZERO,
            total_bytes: 0,
            fetches: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Fetch `bytes` from the origin at `now`; returns the time the bytes
    /// are fully available at the edge (service completion + delay).
    pub fn fetch(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let service = SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps);
        let done = start + service;
        self.busy_until = done;
        self.total_bytes += bytes;
        self.fetches += 1;
        self.busy += service;
        done + self.delay
    }

    /// Total bytes fetched so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total fetches so far.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Cumulative service (busy) time, seconds — divided by the run's
    /// duration this is the origin's load.
    pub fn busy_s(&self) -> f64 {
        self.busy.as_secs_f64()
    }

    /// The time the link frees up (the backlog horizon).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetches_serialize_in_fifo_order() {
        // 8 Mbit/s, 10 ms delay: 1 MB takes 1 s of service.
        let mut o = OriginLink::new(8.0, SimDuration::from_millis(10));
        let t0 = SimTime::from_secs_f64(5.0);
        let a = o.fetch(t0, 1_000_000);
        assert!((a.as_secs_f64() - 6.01).abs() < 1e-6, "{a:?}");
        // A concurrent fetch queues behind the first.
        let b = o.fetch(t0, 1_000_000);
        assert!((b.as_secs_f64() - 7.01).abs() < 1e-6, "{b:?}");
        // A later fetch after the link idles starts fresh.
        let c = o.fetch(SimTime::from_secs_f64(100.0), 1_000_000);
        assert!((c.as_secs_f64() - 101.01).abs() < 1e-6, "{c:?}");
        assert_eq!(o.total_bytes(), 3_000_000);
        assert_eq!(o.fetches(), 3);
        assert!((o.busy_s() - 3.0).abs() < 1e-6);
    }
}
