//! Seeded fault injection for deterministic-simulation testing.
//!
//! The testkit (DESIGN.md §11) stresses the stack beyond what the recorded
//! traces produce on their own: radio loss bursts, reordering and
//! duplication windows, bandwidth cliffs, and stuck-trace stretches. Two
//! mechanisms cover them:
//!
//! - **Packet faults** ([`FaultPlane`]): consulted by the session loop for
//!   every packet handed to the path, in either direction. Each active
//!   fault window draws from a seeded [`SimRng`], so a given
//!   `(seed, faults)` pair perturbs a given packet sequence identically on
//!   every run — faults are part of the deterministic simulation, not
//!   noise on top of it.
//! - **Trace faults** ([`cliff`], [`stuck`]): pure transforms of a
//!   [`BandwidthTrace`], applied before the path is built.
//!
//! Drops here model loss *after* the bottleneck (air interface), so a
//! dropped packet still consumed queue space and service time.

use crate::trace::BandwidthTrace;
use voxel_sim::{SimDuration, SimRng, SimTime};

/// One injected network fault, active inside a `[start_s, start_s+len_s)`
/// window of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Drop each packet with probability `prob` (radio loss burst).
    LossBurst {
        /// Window start, seconds of sim time.
        start_s: f64,
        /// Window length, seconds.
        len_s: f64,
        /// Per-packet drop probability.
        prob: f64,
    },
    /// Hold each packet back an extra `extra_ms` with probability `prob`,
    /// letting later packets overtake it (reordering window).
    Reorder {
        /// Window start, seconds of sim time.
        start_s: f64,
        /// Window length, seconds.
        len_s: f64,
        /// Extra delay applied to reordered packets, milliseconds.
        extra_ms: u64,
        /// Per-packet reorder probability.
        prob: f64,
    },
    /// Deliver each packet twice with probability `prob`, the copy
    /// `extra_ms` later (duplication window).
    Duplicate {
        /// Window start, seconds of sim time.
        start_s: f64,
        /// Window length, seconds.
        len_s: f64,
        /// Lag of the duplicate copy, milliseconds.
        extra_ms: u64,
        /// Per-packet duplication probability.
        prob: f64,
    },
}

impl FaultKind {
    fn window(&self) -> (f64, f64) {
        match *self {
            FaultKind::LossBurst { start_s, len_s, .. }
            | FaultKind::Reorder { start_s, len_s, .. }
            | FaultKind::Duplicate { start_s, len_s, .. } => (start_s, start_s + len_s),
        }
    }

    fn active_at(&self, now: SimTime) -> bool {
        let t = now.as_secs_f64();
        let (a, b) = self.window();
        t >= a && t < b
    }
}

/// What the fault plane decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Deliver normally.
    Deliver,
    /// Drop after the bottleneck (the packet still consumed the queue).
    Drop,
    /// Deliver with the given extra delay (reordering).
    Delay(SimDuration),
    /// Deliver, plus a duplicate copy lagging by the given delay.
    Duplicate(SimDuration),
}

/// Counters of what the plane actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets the plane saw.
    pub packets: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets held back for reordering.
    pub delayed: u64,
    /// Packets duplicated.
    pub duplicated: u64,
}

/// The seeded packet-fault plane one session consults.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    faults: Vec<FaultKind>,
    rng: SimRng,
    stats: FaultStats,
}

impl FaultPlane {
    /// A plane applying `faults`, with all probabilistic draws derived
    /// from `seed`.
    pub fn new(seed: u64, faults: Vec<FaultKind>) -> FaultPlane {
        FaultPlane {
            faults,
            rng: SimRng::derive(seed, "fault-plane"),
            stats: FaultStats::default(),
        }
    }

    /// Whether any fault window is configured at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decide the fate of one packet handed to the path at `now`.
    ///
    /// The first active fault that fires wins; one RNG draw is made per
    /// active window per packet, keeping the stream reproducible.
    pub fn next_fate(&mut self, now: SimTime) -> PacketFate {
        self.stats.packets += 1;
        let mut fate = PacketFate::Deliver;
        for f in &self.faults {
            if !f.active_at(now) {
                continue;
            }
            let fired = match *f {
                FaultKind::LossBurst { prob, .. }
                | FaultKind::Reorder { prob, .. }
                | FaultKind::Duplicate { prob, .. } => self.rng.chance(prob),
            };
            if !fired || fate != PacketFate::Deliver {
                continue;
            }
            fate = match *f {
                FaultKind::LossBurst { .. } => PacketFate::Drop,
                FaultKind::Reorder { extra_ms, .. } => {
                    PacketFate::Delay(SimDuration::from_millis(extra_ms))
                }
                FaultKind::Duplicate { extra_ms, .. } => {
                    PacketFate::Duplicate(SimDuration::from_millis(extra_ms))
                }
            };
        }
        match fate {
            PacketFate::Deliver => {}
            PacketFate::Drop => self.stats.dropped += 1,
            PacketFate::Delay(_) => self.stats.delayed += 1,
            PacketFate::Duplicate(_) => self.stats.duplicated += 1,
        }
        fate
    }
}

/// Bandwidth cliff: multiply every sample from `at_s` onward by `factor`
/// (the sudden capacity collapse a handover or contention event causes).
pub fn cliff(trace: &BandwidthTrace, at_s: usize, factor: f64) -> BandwidthTrace {
    let mbps = trace
        .mbps
        .iter()
        .enumerate()
        .map(|(i, &m)| if i >= at_s { m * factor } else { m })
        .collect();
    BandwidthTrace::new(format!("{}+cliff{at_s}", trace.name), mbps)
}

/// Stuck trace: freeze the sample at `at_s` for `len_s` seconds (a shaper
/// that stops updating), pushing the rest of the trace out behind it.
pub fn stuck(trace: &BandwidthTrace, at_s: usize, len_s: usize) -> BandwidthTrace {
    let n = trace.mbps.len();
    let at = at_s.min(n.saturating_sub(1));
    let mut mbps = Vec::with_capacity(n + len_s);
    mbps.extend_from_slice(&trace.mbps[..=at]);
    mbps.extend(std::iter::repeat_n(trace.mbps[at], len_s));
    mbps.extend_from_slice(&trace.mbps[at + 1..]);
    BandwidthTrace::new(format!("{}+stuck{at_s}", trace.name), mbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(prob: f64) -> FaultKind {
        FaultKind::LossBurst {
            start_s: 10.0,
            len_s: 5.0,
            prob,
        }
    }

    #[test]
    fn fates_are_deterministic_per_seed() {
        let draw = |seed: u64| {
            let mut plane = FaultPlane::new(seed, vec![burst(0.5)]);
            (0..200)
                .map(|i| plane.next_fate(SimTime::from_millis(10_000 + i * 10)))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn faults_only_fire_inside_their_window() {
        let mut plane = FaultPlane::new(7, vec![burst(1.0)]);
        assert_eq!(plane.next_fate(SimTime::from_secs(9)), PacketFate::Deliver);
        assert_eq!(plane.next_fate(SimTime::from_secs(10)), PacketFate::Drop);
        assert_eq!(plane.next_fate(SimTime::from_secs(14)), PacketFate::Drop);
        assert_eq!(plane.next_fate(SimTime::from_secs(15)), PacketFate::Deliver);
        assert_eq!(plane.stats().dropped, 2);
        assert_eq!(plane.stats().packets, 4);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut plane = FaultPlane::new(3, vec![burst(0.3)]);
        for i in 0..10_000 {
            plane.next_fate(SimTime::from_millis(10_000 + i % 5_000));
        }
        let rate = plane.stats().dropped as f64 / plane.stats().packets as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn reorder_and_duplicate_carry_their_delays() {
        let faults = vec![
            FaultKind::Reorder {
                start_s: 0.0,
                len_s: 1.0,
                extra_ms: 40,
                prob: 1.0,
            },
            FaultKind::Duplicate {
                start_s: 1.0,
                len_s: 1.0,
                extra_ms: 15,
                prob: 1.0,
            },
        ];
        let mut plane = FaultPlane::new(9, faults);
        assert_eq!(
            plane.next_fate(SimTime::from_millis(500)),
            PacketFate::Delay(SimDuration::from_millis(40))
        );
        assert_eq!(
            plane.next_fate(SimTime::from_millis(1_500)),
            PacketFate::Duplicate(SimDuration::from_millis(15))
        );
        assert_eq!(plane.stats().delayed, 1);
        assert_eq!(plane.stats().duplicated, 1);
    }

    #[test]
    fn cliff_scales_the_tail_only() {
        let t = BandwidthTrace::new("x", vec![8.0; 10]);
        let c = cliff(&t, 4, 0.25);
        assert_eq!(c.mbps[3], 8.0);
        assert_eq!(c.mbps[4], 2.0);
        assert_eq!(c.mbps[9], 2.0);
        assert_eq!(c.duration_s(), 10);
    }

    #[test]
    fn stuck_freezes_and_stretches() {
        let t = BandwidthTrace::new("x", vec![1.0, 2.0, 3.0, 4.0]);
        let s = stuck(&t, 1, 3);
        assert_eq!(s.mbps, vec![1.0, 2.0, 2.0, 2.0, 2.0, 3.0, 4.0]);
        // Degenerate anchor past the end clamps.
        let e = stuck(&t, 99, 2);
        assert_eq!(e.duration_s(), 6);
    }
}
