//! Vendored stand-in for the `bytes` crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the small subset of the `bytes` 1.x API that the QUIC\* and HTTP layers
//! use: a cheaply cloneable, sliceable byte buffer ([`Bytes`]), a growable
//! builder ([`BytesMut`]), and the [`Buf`]/[`BufMut`] cursor traits.
//! Semantics match the upstream crate for this subset (big-endian integer
//! accessors, `freeze`, zero-copy `slice`/`split_to`).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable region of memory.
///
/// Internally an `Arc<[u8]>` plus a `[start, end)` window, so `clone`,
/// [`Bytes::slice`], and [`Bytes::split_to`] are O(1) and share storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_arc(Arc::from(&[][..]))
    }

    /// A buffer viewing `slice` (copied once into shared storage).
    pub fn from_static(slice: &'static [u8]) -> Bytes {
        Bytes::from_arc(Arc::from(slice))
    }

    /// Copy `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Bytes {
        Bytes::from_arc(Arc::from(slice))
    }

    fn from_arc(data: Arc<[u8]>) -> Bytes {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of this buffer sharing the same storage.
    ///
    /// Panics if the range is out of bounds, as upstream does.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Drop all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Append `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.vec), f)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec.extend(iter);
    }
}

/// Read-cursor over a contiguous buffer (upstream `bytes::Buf` subset).
///
/// Integer accessors are big-endian, as upstream.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes (contiguous for every implementor here).
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume and return one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume and return a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Consume and return a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consume and return a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-cursor over a growable buffer (upstream `bytes::BufMut` subset).
///
/// Integer writers are big-endian, as upstream.
pub trait BufMut {
    /// Append `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let mut rest = b.slice(2..);
        let head = rest.split_to(1);
        assert_eq!(&head[..], &[3]);
        assert_eq!(&rest[..], &[4, 5]);
        assert_eq!(b.len(), 5, "parent view unchanged");
    }

    #[test]
    fn buf_cursor_reads_big_endian() {
        let mut m = BytesMut::new();
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090A0B0C0D0E);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x03040506);
        assert_eq!(b.get_u64(), 0x0708090A0B0C0D0E);
        assert!(!b.has_remaining());
    }

    #[test]
    fn advance_moves_window() {
        let mut b = Bytes::from_static(b"hello");
        b.advance(2);
        assert_eq!(&b[..], b"llo");
        assert_eq!(b.chunk(), b"llo");
    }

    #[test]
    fn equality_across_forms() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, Bytes::copy_from_slice(b"abc"));
        assert_eq!(b, b"abc"[..].to_vec());
        assert_eq!(b.slice(..0), Bytes::new());
    }
}
