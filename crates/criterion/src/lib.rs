//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! a small wall-clock benchmark harness exposing the criterion API surface
//! `benches/micro.rs` uses: `Criterion`, `bench_function`, `benchmark_group`
//! with `sample_size`, the `criterion_group!`/`criterion_main!` macros, and
//! `black_box`.
//!
//! Each benchmark warms up briefly, then collects `sample_size` samples;
//! every sample times a batch of iterations sized so a batch takes at least
//! ~5 ms. Reported numbers are the per-iteration median, minimum, and
//! maximum across samples.
//!
//! `VOXEL_BENCH_FAST=1` switches to a smoke mode (3 samples, ~1 ms
//! batches) so CI can check that every benchmark *runs* without paying
//! for statistically meaningful numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Run `f` as the benchmark named `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Start a named group of benchmarks with its own sample size.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 30,
        }
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup` subset).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run `f` as the benchmark `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; its `iter` runs and
/// times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// `VOXEL_BENCH_FAST=1`: smoke mode for CI (fewer samples, tiny batches).
fn fast_mode() -> bool {
    std::env::var("VOXEL_BENCH_FAST").as_deref() == Ok("1")
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let fast = fast_mode();
    let sample_size = if fast {
        sample_size.min(3)
    } else {
        sample_size
    };
    let batch_floor = Duration::from_millis(if fast { 1 } else { 5 });
    // Calibrate: find an iteration count whose batch takes >= the floor.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= batch_floor || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    // Collect samples.
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    println!(
        "{name:<40} median {:>12}  min {:>12}  max {:>12}  ({} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        per_iter_ns.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one name, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
