//! Robust MPC (Yin et al., SIGCOMM '15).
//!
//! Model-predictive control: plan the next `H` = 5 segments by maximizing
//! `QoE = Σ bitrate − μ·rebuffer − λ·|bitrate switches|` against a
//! conservative throughput forecast (harmonic mean of the last five
//! samples, discounted by the maximum recent prediction error — the
//! "robust" part). The search over the 13^H quality plans is done with
//! memoized depth-first search over (step, level, discretized buffer),
//! which is exact for the discretized model and fast enough to run inside
//! every trial.
//!
//! The paper finds MPC's predictions cope poorly with the violently varying
//! LTE traces (§5.1) — reproducing that requires faithfully reproducing
//! this planner, not improving it.

use crate::traits::{Abr, AbrContext, Decision};
// lint: allow(nondeterministic-map) memo table — key lookup only, never iterated
use std::collections::HashMap;
use voxel_media::ladder::{QualityLevel, NUM_LEVELS};
use voxel_media::video::SEGMENT_DURATION_S;

/// Robust MPC.
#[derive(Debug, Clone)]
pub struct Mpc {
    /// Lookahead horizon in segments.
    pub horizon: usize,
    /// Rebuffer penalty μ per second of stall (the MPC paper's 4.3-ish
    /// weight, expressed in Mbps of equivalent bitrate).
    pub rebuffer_penalty: f64,
    /// Switching penalty λ per Mbps of bitrate change.
    pub switch_penalty: f64,
}

impl Default for Mpc {
    fn default() -> Self {
        Mpc {
            horizon: 5,
            rebuffer_penalty: 4.3,
            switch_penalty: 1.0,
        }
    }
}

/// Buffer discretization for the memo table (0.25 s buckets).
const BUCKET_S: f64 = 0.25;

// lint: allow(nondeterministic-map) the whole impl is the memoized DP: HashMap is key-lookup only, never iterated
impl Mpc {
    fn plan(&self, ctx: &AbrContext<'_>, predicted_bps: f64) -> QualityLevel {
        let last = ctx.last_level.unwrap_or(QualityLevel::MIN);
        let num_segments = ctx.manifest.num_segments();
        let mut memo: HashMap<(usize, usize, i64), (f64, usize)> = HashMap::new();
        let (_, first) = self.search(
            ctx,
            predicted_bps,
            0,
            last.index(),
            ctx.buffer_s,
            num_segments,
            &mut memo,
        );
        QualityLevel(first as u8)
    }

    /// Returns (best QoE over the remaining horizon, best first-step level).
    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        ctx: &AbrContext<'_>,
        bps: f64,
        step: usize,
        prev_level: usize,
        buffer_s: f64,
        num_segments: usize,
        memo: &mut HashMap<(usize, usize, i64), (f64, usize)>,
    ) -> (f64, usize) {
        if step >= self.horizon || ctx.segment_index + step >= num_segments {
            return (0.0, prev_level);
        }
        let bucket = (buffer_s / BUCKET_S) as i64;
        if let Some(&hit) = memo.get(&(step, prev_level, bucket)) {
            return hit;
        }
        let seg = ctx.segment_index + step;
        let mut best = (f64::NEG_INFINITY, 0usize);
        for level in 0..NUM_LEVELS {
            let q = QualityLevel(level as u8);
            let bits = ctx.manifest.entry(seg, q).total_bytes() as f64 * 8.0;
            let download_s = bits / bps.max(1.0);
            let stall = (download_s - buffer_s).max(0.0);
            let next_buffer =
                ((buffer_s - download_s).max(0.0) + SEGMENT_DURATION_S).min(ctx.buffer_capacity_s);
            let bitrate_mbps = bits / SEGMENT_DURATION_S / 1e6;
            // Switch penalty on the ladder's nominal bitrates for *both*
            // levels — mixing exact segment sizes with ladder averages
            // would charge a phantom "switch" for staying at one level.
            let level_mbps = q.avg_bitrate_mbps();
            let prev_mbps = QualityLevel(prev_level as u8).avg_bitrate_mbps();
            let qoe = bitrate_mbps
                - self.rebuffer_penalty * stall
                - self.switch_penalty * (level_mbps - prev_mbps).abs();
            let (future, _) =
                self.search(ctx, bps, step + 1, level, next_buffer, num_segments, memo);
            let total = qoe + future;
            if total > best.0 {
                best = (total, level);
            }
        }
        memo.insert((step, prev_level, bucket), best);
        best
    }
}

impl Abr for Mpc {
    fn name(&self) -> &'static str {
        "MPC"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Decision {
        let Some(pred) = ctx.conservative_throughput_bps.or(ctx.throughput_bps) else {
            return Decision::full(QualityLevel::MIN);
        };
        Decision::full(self.plan(ctx, pred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::qoe::QoeModel;
    use voxel_media::video::Video;
    use voxel_prep::manifest::Manifest;

    fn manifest() -> Manifest {
        let video = Video::generate(VideoId::Tos);
        Manifest::prepare_levels(&video, &QoeModel::default(), &[])
    }

    fn ctx<'a>(
        m: &'a Manifest,
        buffer_s: f64,
        tput: Option<f64>,
        last: Option<QualityLevel>,
    ) -> AbrContext<'a> {
        AbrContext {
            segment_index: 10,
            buffer_s,
            buffer_capacity_s: 28.0,
            throughput_bps: tput,
            conservative_throughput_bps: tput,
            last_level: last,
            manifest: m,
            rebuffering: false,
        }
    }

    #[test]
    fn no_estimate_starts_at_lowest() {
        let m = manifest();
        let mut mpc = Mpc::default();
        assert_eq!(
            mpc.choose(&ctx(&m, 0.0, None, None)).level,
            QualityLevel::MIN
        );
    }

    #[test]
    fn high_bandwidth_full_buffer_picks_high_quality() {
        let m = manifest();
        let mut mpc = Mpc::default();
        let d = mpc.choose(&ctx(&m, 24.0, Some(50e6), Some(QualityLevel::MAX)));
        assert!(d.level >= QualityLevel(11), "got {}", d.level);
    }

    #[test]
    fn low_bandwidth_picks_sustainable_quality() {
        let m = manifest();
        let mut mpc = Mpc::default();
        let d = mpc.choose(&ctx(&m, 8.0, Some(1e6), Some(QualityLevel(3))));
        // 1 Mbps: the plan must not exceed what avoids heavy stalls — a
        // quality around Q4 (0.75 Mbps) or lower.
        assert!(d.level <= QualityLevel(5), "got {}", d.level);
    }

    #[test]
    fn quality_is_monotone_in_bandwidth() {
        let m = manifest();
        let mut mpc = Mpc::default();
        let mut prev = QualityLevel::MIN;
        for mbps in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let d = mpc.choose(&ctx(&m, 12.0, Some(mbps * 1e6), Some(prev)));
            assert!(
                d.level >= prev,
                "{mbps} Mbps: {} < previous {prev}",
                d.level
            );
            prev = d.level;
        }
    }

    #[test]
    fn switch_penalty_damps_oscillation() {
        let m = manifest();
        // With an enormous switching penalty, MPC should hold the previous
        // level rather than jump for marginal bitrate gain.
        let mut sticky = Mpc {
            switch_penalty: 100.0,
            ..Mpc::default()
        };
        let d = sticky.choose(&ctx(&m, 16.0, Some(12e6), Some(QualityLevel(6))));
        assert_eq!(d.level, QualityLevel(6));
    }

    #[test]
    fn empty_buffer_with_low_bandwidth_is_cautious() {
        let m = manifest();
        let mut mpc = Mpc::default();
        let d = mpc.choose(&ctx(&m, 0.0, Some(2e6), Some(QualityLevel(8))));
        assert!(d.level <= QualityLevel(4), "got {}", d.level);
    }

    #[test]
    fn horizon_respects_end_of_video() {
        let m = manifest();
        let mut mpc = Mpc::default();
        // Second-to-last segment: horizon truncates without panicking.
        let mut c = ctx(&m, 10.0, Some(10e6), Some(QualityLevel(5)));
        c.segment_index = m.num_segments() - 1;
        let d = mpc.choose(&c);
        assert!(d.level <= QualityLevel::MAX);
    }
}
