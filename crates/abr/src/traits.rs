//! The ABR interface shared by all six algorithms.

use voxel_media::ladder::QualityLevel;
use voxel_media::video::SEGMENT_DURATION_S;
use voxel_prep::analysis::QoePoint;
use voxel_prep::manifest::Manifest;

/// What the player tells an ABR before each segment decision.
#[derive(Debug, Clone, Copy)]
pub struct AbrContext<'a> {
    /// Index of the segment about to be fetched.
    pub segment_index: usize,
    /// Current playback buffer level in seconds.
    pub buffer_s: f64,
    /// Playback buffer capacity in seconds.
    pub buffer_capacity_s: f64,
    /// Smoothed throughput estimate in bits/second (None before the first
    /// sample).
    pub throughput_bps: Option<f64>,
    /// Conservative (harmonic/error-discounted) estimate for robust
    /// planning, bits/second.
    pub conservative_throughput_bps: Option<f64>,
    /// Quality of the previously fetched segment.
    pub last_level: Option<QualityLevel>,
    /// The (extended) manifest.
    pub manifest: &'a Manifest,
    /// Whether playback is currently stalled.
    pub rebuffering: bool,
}

impl AbrContext<'_> {
    /// Buffer level in segments.
    pub fn buffer_segments(&self) -> f64 {
        self.buffer_s / SEGMENT_DURATION_S
    }

    /// Buffer capacity in segments.
    pub fn capacity_segments(&self) -> f64 {
        self.buffer_capacity_s / SEGMENT_DURATION_S
    }

    /// Total bytes of `segment` at `level` (payload + headers) — the exact
    /// per-segment sizes the paper feeds BOLA and MPC instead of
    /// video-average bitrates (§5 "ABR algorithms", footnote 3).
    pub fn segment_bytes(&self, level: QualityLevel) -> u64 {
        self.manifest.entry(self.segment_index, level).total_bytes()
    }
}

/// The choice an ABR makes for one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Quality level to fetch.
    pub level: QualityLevel,
    /// Partial-download target (VOXEL virtual quality level); `None` means
    /// download the complete segment.
    pub target: Option<QoePoint>,
}

impl Decision {
    /// Fetch the whole segment at `level`.
    pub fn full(level: QualityLevel) -> Decision {
        Decision {
            level,
            target: None,
        }
    }
}

/// Mid-download state reported to [`Abr::on_progress`].
#[derive(Debug, Clone, Copy)]
pub struct DownloadProgress {
    /// Payload bytes of the *unreliable/body* part received so far.
    pub bytes_received: u64,
    /// Target payload bytes of the current decision.
    pub bytes_target: u64,
    /// Seconds since the segment download started.
    pub elapsed_s: f64,
    /// Current buffer level in seconds.
    pub buffer_s: f64,
    /// Recent goodput of this download, bits/second.
    pub download_rate_bps: f64,
}

impl DownloadProgress {
    /// Estimated seconds to finish at the current rate.
    pub fn eta_s(&self) -> f64 {
        if self.download_rate_bps <= 0.0 {
            return f64::INFINITY;
        }
        (self.bytes_target.saturating_sub(self.bytes_received)) as f64 * 8.0
            / self.download_rate_bps
    }
}

/// What to do with an in-flight download.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbandonAction {
    /// Keep downloading.
    Continue,
    /// Discard everything and restart this segment at `level` (classic
    /// BOLA/BETA abandonment — wastes the bytes already fetched).
    RestartAt(QualityLevel),
    /// VOXEL's extension (§4.3): stop here, keep the partial segment, and
    /// move on to the next segment.
    KeepPartial,
}

/// An adaptive-bitrate algorithm.
pub trait Abr {
    /// Display name used in figures.
    fn name(&self) -> &'static str;

    /// Decide quality (and optional partial target) for the next segment.
    fn choose(&mut self, ctx: &AbrContext<'_>) -> Decision;

    /// Consulted periodically during a download; default: never abandon.
    fn on_progress(
        &mut self,
        _ctx: &AbrContext<'_>,
        _progress: &DownloadProgress,
    ) -> AbandonAction {
        AbandonAction::Continue
    }

    /// Whether this ABR wants the VOXEL split (I-frame + headers reliable,
    /// bodies unreliable). Algorithms designed for vanilla QUIC return
    /// false and fetch everything reliably.
    fn uses_unreliable_transport(&self) -> bool {
        false
    }

    /// The player was idle (buffer full) for `_idle_s` seconds — lets
    /// BOLA-family algorithms grow their placeholder buffer.
    fn on_idle(&mut self, _idle_s: f64) {}

    /// Playback stalled — lets BOLA-family algorithms reset their
    /// placeholder buffer.
    fn on_rebuffer(&mut self) {}

    /// Structural audit of the algorithm's internal state (DESIGN.md
    /// §10); the `paranoid` runtime layer calls this at event-loop
    /// boundaries. Stateless algorithms have nothing to check.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_full_has_no_target() {
        let d = Decision::full(QualityLevel(5));
        assert_eq!(d.level, QualityLevel(5));
        assert!(d.target.is_none());
    }

    #[test]
    fn progress_eta() {
        let p = DownloadProgress {
            bytes_received: 250_000,
            bytes_target: 1_250_000,
            elapsed_s: 1.0,
            buffer_s: 8.0,
            download_rate_bps: 4_000_000.0,
        };
        // 1 MB remaining at 4 Mbps = 2 s.
        assert!((p.eta_s() - 2.0).abs() < 1e-9);
        let stalled = DownloadProgress {
            download_rate_bps: 0.0,
            ..p
        };
        assert!(stalled.eta_s().is_infinite());
    }
}
