//! BOLA-SSIM: the first of the two §4.3 upgrades.
//!
//! "First, we changed the utility function to use SSIMs and added the
//! capability to select partial-segment downloads."
//!
//! The decision space is no longer the 13 ladder rungs but a set of
//! *(level, bytes→QoE point)* candidates from the extended manifest — the
//! virtual quality levels of §3 insight 3. Utility is `−ln(1 − score)` on
//! the chosen QoE metric (log-distortion: equal utility steps are equal
//! multiplicative reductions in impairment), so the algorithm is
//! metric-agnostic by construction (SSIM / VMAF / PSNR, Fig 7).

use crate::traits::{AbandonAction, Abr, AbrContext, Decision, DownloadProgress};
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::{QoeMetric, QoeModel};
use voxel_media::video::SEGMENT_DURATION_S;
use voxel_prep::analysis::QoePoint;
use voxel_prep::manifest::SegmentEntry;

/// A candidate decision: a quality level plus a partial-download point.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The quality level.
    pub level: QualityLevel,
    /// The bytes→QoE point (the full segment is the last point).
    pub point: QoePoint,
    /// Whether this is the complete segment.
    pub is_full: bool,
}

/// How many virtual points (beyond the full segment) to consider per level.
const POINTS_PER_LEVEL: usize = 4;

/// Enumerate the candidate set for one segment: for each level, the point
/// reaching the §4.1 bound, a few evenly spaced points above it, and the
/// full segment. This keeps the decision scan linear and small, which is
/// why BOLA was the right base ("the complexity of choosing a segment's
/// quality is linear in the number of qualities", §4.3).
pub fn candidates(entry: &SegmentEntry) -> Vec<Candidate> {
    let mut out = Vec::new();
    let full_idx = entry.ssims.len() - 1;
    let min_idx = entry
        .ssims
        .iter()
        .position(|p| p.ssim >= entry.bound)
        .unwrap_or(full_idx);
    let mut indices: Vec<usize> = Vec::with_capacity(POINTS_PER_LEVEL + 1);
    for k in 0..=POINTS_PER_LEVEL {
        indices.push(min_idx + (full_idx - min_idx) * k / POINTS_PER_LEVEL);
    }
    indices.dedup();
    for idx in indices {
        out.push(Candidate {
            level: entry.level,
            point: entry.ssims[idx],
            is_full: idx == full_idx,
        });
    }
    // Virtual-level monotonicity (§4.1): within a level, spending more
    // bytes can only raise SSIM. The paranoid layer audits the invariant
    // on every enumeration.
    #[cfg(feature = "paranoid")]
    for w in out.windows(2) {
        assert!(
            w[1].point.bytes >= w[0].point.bytes && w[1].point.ssim >= w[0].point.ssim,
            "virtual levels not monotone: ({}, {}) then ({}, {})",
            w[0].point.bytes,
            w[0].point.ssim,
            w[1].point.bytes,
            w[1].point.ssim
        );
    }
    out
}

/// Utility of a QoE score under `metric`: log-distortion, shifted so the
/// lowest possible score has utility ≥ 0.
fn utility(metric: QoeMetric, ssim: f64) -> f64 {
    let score = match metric {
        QoeMetric::Ssim => ssim,
        QoeMetric::Vmaf => QoeModel::ssim_to_vmaf(ssim) / 100.0,
        // PSNR in dB is already logarithmic; normalize to ~[0,1].
        QoeMetric::Psnr => (QoeModel::ssim_to_psnr(ssim) / 50.0).clamp(0.0, 1.0),
    };
    match metric {
        QoeMetric::Psnr => 6.0 * score,
        _ => -((1.0 - score).max(1e-4)).ln(),
    }
}

/// The BOLA-SSIM algorithm.
#[derive(Debug, Clone)]
pub struct BolaSsim {
    /// QoE metric used for the utility (VOXEL is metric-agnostic).
    pub metric: QoeMetric,
    /// Bandwidth-safety factor applied to throughput estimates (§5.2: the
    /// single tuning knob; 1.0 = aggressive, <1 underestimates).
    pub safety: f64,
    placeholder_s: f64,
    current: Option<Candidate>,
}

impl Default for BolaSsim {
    fn default() -> Self {
        Self::new(QoeMetric::Ssim)
    }
}

impl BolaSsim {
    /// BOLA-SSIM optimizing `metric`.
    pub fn new(metric: QoeMetric) -> BolaSsim {
        BolaSsim {
            metric,
            safety: 1.0,
            placeholder_s: 0.0,
            current: None,
        }
    }

    /// Tuned (V, γp) for the candidate utility range (same construction as
    /// base BOLA, §4.3 "VOXEL automatically tunes γ and V").
    fn params(&self, capacity_s: f64, u_max: f64) -> (f64, f64) {
        let b_min = (0.3 * capacity_s).max(SEGMENT_DURATION_S * 0.5);
        let b_target = (0.9 * capacity_s).max(b_min + 0.1);
        let v = (b_target - b_min) / u_max.max(0.1);
        let gp = b_min / v;
        (v, gp)
    }

    /// Pick the best candidate for the segment at the given virtual buffer.
    fn pick(&self, ctx: &AbrContext<'_>, q_s: f64) -> Candidate {
        let mut all: Vec<Candidate> = Vec::with_capacity(13 * (POINTS_PER_LEVEL + 1));
        for level in QualityLevel::all() {
            all.extend(candidates(ctx.manifest.entry(ctx.segment_index, level)));
        }
        let u_max = all
            .iter()
            .map(|c| utility(self.metric, c.point.ssim))
            .fold(0.0f64, f64::max);
        let (v, gp) = self.params(ctx.buffer_capacity_s, u_max);

        let mut best = all[0];
        let mut best_score = f64::NEG_INFINITY;
        for c in &all {
            let reliable = ctx.manifest.entry(ctx.segment_index, c.level).reliable_size;
            let bits = (c.point.bytes + reliable) as f64 * 8.0;
            let u = utility(self.metric, c.point.ssim);
            let score = (v * (u + gp) - q_s) / bits;
            if score > best_score {
                best_score = score;
                best = *c;
            }
        }
        best
    }
}

impl Abr for BolaSsim {
    fn name(&self) -> &'static str {
        "BOLA-SSIM"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Decision {
        // Startup placeholder (BOLA-E): seed the virtual buffer from the
        // first throughput sample so the opening segments aren't forced to
        // the lowest rung (the paper's VOXEL "never drops below 0.95"
        // during startup, Fig 11a).
        // lint: allow(float-eq) exact sentinel — placeholder is 0.0 only before first seeding
        if ctx.last_level.is_none() && self.placeholder_s == 0.0 {
            if let Some(est) = ctx.throughput_bps {
                let sustainable = QualityLevel::all()
                    .rfind(|l| l.avg_bitrate_bps() <= est * self.safety * 0.9)
                    .unwrap_or(QualityLevel::MIN);
                let e = ctx.manifest.entry(ctx.segment_index, sustainable);
                let u = utility(self.metric, e.pristine_ssim);
                let (v, gp) = self.params(ctx.buffer_capacity_s, u.max(1.0));
                self.placeholder_s = v * (u + gp);
            }
        }
        self.placeholder_s = self
            .placeholder_s
            .min(ctx.buffer_capacity_s - ctx.buffer_s.min(ctx.buffer_capacity_s));
        let q = ctx.buffer_s + self.placeholder_s;
        let mut best = self.pick(ctx, q);

        // Throughput-feasibility rule with the bandwidth-safety factor:
        // never pick a candidate whose download would outlast the buffer
        // (the generalized form of BOLA-E's insufficient-buffer rule; with
        // large buffers the budget is generous and nothing changes).
        {
            let est = ctx.throughput_bps.map(|e| e * self.safety);
            let budget_s = (ctx.buffer_s * 0.9).max(SEGMENT_DURATION_S * 0.5);
            let entry = |c: &Candidate| {
                ctx.manifest.entry(ctx.segment_index, c.level).reliable_size + c.point.bytes
            };
            match est {
                Some(est) => {
                    if entry(&best) as f64 * 8.0 / est > budget_s {
                        // Walk down the candidate space: cheapest candidate
                        // per level, lowest levels last.
                        let mut all: Vec<Candidate> = Vec::new();
                        for level in QualityLevel::all() {
                            all.extend(candidates(ctx.manifest.entry(ctx.segment_index, level)));
                        }
                        all.sort_by(|a, b| b.point.ssim.total_cmp(&a.point.ssim));
                        best = *all
                            .iter()
                            .find(|c| entry(c) as f64 * 8.0 / est <= budget_s)
                            // lint: allow(panic) candidates() always returns at least one entry
                            .unwrap_or(all.last().expect("non-empty"));
                    }
                }
                None => {
                    best = Candidate {
                        level: QualityLevel::MIN,
                        point: *ctx
                            .manifest
                            .entry(ctx.segment_index, QualityLevel::MIN)
                            .ssims
                            .last()
                            // lint: allow(panic) prep builds every SSIM map with the full-segment point
                            .expect("non-empty"),
                        is_full: true,
                    };
                }
            }
        }

        self.current = Some(best);
        Decision {
            level: best.level,
            target: (!best.is_full).then_some(best.point),
        }
    }

    fn on_progress(&mut self, ctx: &AbrContext<'_>, p: &DownloadProgress) -> AbandonAction {
        // BOLA-SSIM retains BOLA's restart-style, score-based abandonment
        // (the keep-partial extension is what ABR* adds on top).
        let Some(current) = self.current else {
            return AbandonAction::Continue;
        };
        let remaining = p.bytes_target.saturating_sub(p.bytes_received);
        if p.elapsed_s < 0.3 || remaining * 4 < p.bytes_target || p.eta_s() < p.buffer_s {
            return AbandonAction::Continue;
        }
        // Compare continuing (remaining bytes at the current utility)
        // against refetching a lower candidate whole — BOLA-E's rule on
        // the enlarged decision space.
        let u_cur = utility(self.metric, current.point.ssim);
        let (v, gp) = self.params(ctx.buffer_capacity_s, u_cur.max(1.0));
        let q = p.buffer_s;
        let score = |u: f64, bits: f64| (v * (u + gp) - q) / bits;
        let score_continue = score(u_cur, (remaining as f64 * 8.0).max(1.0));
        let mut best: Option<(QualityLevel, f64)> = None;
        let mut level = current.level.lower();
        while let Some(l) = level {
            let e = ctx.manifest.entry(ctx.segment_index, l);
            let bound_point = e
                .cheapest_reaching(e.bound)
                // lint: allow(panic) prep builds every SSIM map with the full-segment point
                .unwrap_or(*e.ssims.last().expect("non-empty"));
            let bits = (bound_point.bytes + e.reliable_size) as f64 * 8.0;
            let s = score(utility(self.metric, bound_point.ssim), bits);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((l, s));
            }
            level = l.lower();
        }
        match best {
            Some((l, s)) if s > score_continue => {
                // Track the new candidate so subsequent progress checks
                // compare against it, not the abandoned one.
                let e = ctx.manifest.entry(ctx.segment_index, l);
                self.current = Some(Candidate {
                    level: l,
                    // lint: allow(panic) prep builds every SSIM map with the full-segment point
                    point: *e.ssims.last().expect("non-empty"),
                    is_full: true,
                });
                AbandonAction::RestartAt(l)
            }
            _ => AbandonAction::Continue,
        }
    }

    fn uses_unreliable_transport(&self) -> bool {
        true
    }

    fn on_idle(&mut self, idle_s: f64) {
        self.placeholder_s += idle_s;
    }

    fn on_rebuffer(&mut self) {
        self.placeholder_s = 0.0;
    }

    fn check_invariants(&self) -> Result<(), String> {
        if !self.placeholder_s.is_finite() || self.placeholder_s < 0.0 {
            return Err(format!(
                "placeholder buffer corrupted: {} s",
                self.placeholder_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::video::Video;
    use voxel_prep::manifest::Manifest;

    fn manifest() -> Manifest {
        let video = Video::generate(VideoId::Bbb);
        Manifest::prepare_levels(
            &video,
            &QoeModel::default(),
            &[QualityLevel::MAX, QualityLevel(11), QualityLevel(9)],
        )
    }

    fn ctx<'a>(
        m: &'a Manifest,
        buffer_s: f64,
        capacity_s: f64,
        tput: Option<f64>,
    ) -> AbrContext<'a> {
        AbrContext {
            segment_index: 5,
            buffer_s,
            buffer_capacity_s: capacity_s,
            throughput_bps: tput,
            conservative_throughput_bps: tput,
            last_level: None,
            manifest: m,
            rebuffering: false,
        }
    }

    #[test]
    fn candidate_enumeration_covers_bound_to_full() {
        let m = manifest();
        let e = m.entry(5, QualityLevel::MAX);
        let cs = candidates(e);
        assert!(cs.len() >= 2, "at least bound + full");
        assert!(cs.last().unwrap().is_full);
        assert!(cs.first().unwrap().point.ssim >= e.bound - 1e-9);
        // Monotone in bytes.
        for w in cs.windows(2) {
            assert!(w[0].point.bytes <= w[1].point.bytes);
        }
    }

    #[test]
    fn partial_targets_appear_under_constrained_buffer() {
        // Somewhere in the (buffer, throughput) plane — particularly in the
        // low-buffer regime where the bandwidth budget falls between a
        // level's minimum (bound) bytes and its full size — a virtual
        // quality level must be selected. This is §3 insight 3 in action.
        let m = manifest();
        // Engineer the bandwidth budget to fall between Q12's minimum
        // (bound-reaching) bytes and its full size: the only candidates in
        // that window are Q12 virtual levels, which outrank every lower
        // level's pristine SSIM.
        let e = m.entry(5, QualityLevel::MAX);
        let full = e.ssims.last().unwrap().bytes;
        let window_mid = e.reliable_size + (e.min_bytes + full) / 2;
        // 2-segment capacity, healthy buffer: BOLA wants Q12, but the
        // budget only admits a partial Q12.
        let buffer_s = 6.0;
        let budget_s: f64 = 5.4; // 0.9 * buffer
        let tput = window_mid as f64 * 8.0 / budget_s;
        let mut abr = BolaSsim::default();
        let d = abr.choose(&ctx(&m, buffer_s, 8.0, Some(tput)));
        assert_eq!(d.level, QualityLevel::MAX);
        let target = d.target.expect("a virtual quality level is selected");
        assert!(target.bytes < full);
        assert!(target.ssim >= e.bound - 1e-9);
    }

    #[test]
    fn full_buffer_prefers_pristine_high_quality() {
        let m = manifest();
        let mut abr = BolaSsim::default();
        let d = abr.choose(&ctx(&m, 26.0, 28.0, Some(20e6)));
        assert!(d.level >= QualityLevel(11), "got {}", d.level);
    }

    #[test]
    fn low_buffer_low_throughput_is_cautious() {
        let m = manifest();
        let mut abr = BolaSsim::default();
        let d = abr.choose(&ctx(&m, 2.0, 8.0, Some(1.5e6)));
        let e = m.entry(5, d.level);
        let bytes = e.reliable_size + d.target.map(|p| p.bytes).unwrap_or(e.total_bytes());
        // Must fit in ~1.6s at 1.5 Mbps.
        assert!(
            bytes as f64 * 8.0 / 1.5e6 <= 2.2,
            "picked {} bytes at {}",
            bytes,
            d.level
        );
    }

    #[test]
    fn safety_factor_reduces_aggressiveness() {
        let m = manifest();
        let mut aggressive = BolaSsim::default();
        let mut tuned = BolaSsim {
            safety: 0.7,
            ..BolaSsim::default()
        };
        let c = ctx(&m, 3.0, 8.0, Some(4e6));
        let da = aggressive.choose(&c);
        let dt = tuned.choose(&c);
        let bytes = |d: &Decision| {
            let e = m.entry(5, d.level);
            e.reliable_size + d.target.map(|p| p.bytes).unwrap_or(e.total_bytes())
        };
        assert!(bytes(&dt) <= bytes(&da), "tuned must not fetch more");
    }

    #[test]
    fn metric_agnostic_utilities_are_monotone() {
        for metric in [QoeMetric::Ssim, QoeMetric::Vmaf, QoeMetric::Psnr] {
            let mut prev = f64::NEG_INFINITY;
            for i in 0..50 {
                let ssim = 0.5 + 0.01 * i as f64;
                let u = utility(metric, ssim);
                assert!(u >= prev, "{metric:?} not monotone at {ssim}");
                prev = u;
            }
        }
    }

    #[test]
    fn vmaf_and_psnr_variants_still_choose_sane_levels() {
        let m = manifest();
        for metric in [QoeMetric::Vmaf, QoeMetric::Psnr] {
            let mut abr = BolaSsim::new(metric);
            let d = abr.choose(&ctx(&m, 24.0, 28.0, Some(20e6)));
            assert!(d.level >= QualityLevel(9), "{metric:?} got {}", d.level);
            let d = abr.choose(&ctx(&m, 1.0, 28.0, Some(1e6)));
            assert!(d.level <= QualityLevel(4), "{metric:?} got {}", d.level);
        }
    }

    #[test]
    fn abandonment_restarts_lower_on_collapse() {
        let m = manifest();
        let mut abr = BolaSsim::default();
        let c = ctx(&m, 10.0, 28.0, Some(10e6));
        let d = abr.choose(&c);
        let e = m.entry(5, d.level);
        let target = d.target.map(|p| p.bytes).unwrap_or(e.total_bytes());
        let p = DownloadProgress {
            bytes_received: target / 20,
            bytes_target: target,
            elapsed_s: 3.0,
            buffer_s: 1.5,
            download_rate_bps: 150_000.0,
        };
        match abr.on_progress(&c, &p) {
            AbandonAction::RestartAt(l) => assert!(l < d.level),
            AbandonAction::Continue => {
                panic!("expected restart with collapsed rate")
            }
            AbandonAction::KeepPartial => panic!("BOLA-SSIM never keeps partials"),
        }
    }
}
