//! MPC\*: robust MPC adapted to VOXEL's decision space.
//!
//! §4.3 notes that "it is relatively simple to update MPC to use a QoE
//! metric as the utility function. MPC, however, searches the entire
//! decision space within a window … the large decision space provided by
//! VOXEL would require further modifications to MPC to curb the search
//! space." This module is that modification:
//!
//! - utility = SSIM (log-distortion, like BOLA-SSIM) instead of bitrate;
//! - per quality level the planner considers only the handful of curbed
//!   candidate points BOLA-SSIM uses (the §4.1 bound point, a few evenly
//!   spaced virtual levels above it, and the full segment) — a per-step
//!   branching factor of ~65 instead of the thousands of raw byte targets;
//! - lookahead and memoized search as in [`crate::mpc`].
//!
//! Mid-download it adopts ABR\*'s keep-partial abandonment (it runs over
//! QUIC\*, so a cut segment is still playable).

use crate::bola_ssim::candidates;
use crate::traits::{AbandonAction, Abr, AbrContext, Decision, DownloadProgress};
// lint: allow(nondeterministic-map) memo table — key lookup only, never iterated
use std::collections::HashMap;
use voxel_media::ladder::QualityLevel;
use voxel_media::video::SEGMENT_DURATION_S;
use voxel_prep::analysis::QoePoint;

/// MPC over virtual quality levels.
#[derive(Debug, Clone)]
pub struct MpcStar {
    /// Lookahead horizon in segments.
    pub horizon: usize,
    /// Rebuffer penalty per second of stall (utility units).
    pub rebuffer_penalty: f64,
    /// Switch penalty per unit of utility change between segments.
    pub switch_penalty: f64,
}

impl Default for MpcStar {
    fn default() -> Self {
        MpcStar {
            horizon: 5,
            rebuffer_penalty: 8.0,
            switch_penalty: 0.3,
        }
    }
}

/// One curbed option: (level, point, is_full).
#[derive(Debug, Clone, Copy)]
struct Option_ {
    level: QualityLevel,
    point: QoePoint,
    is_full: bool,
}

/// Buffer discretization for memoization (0.25 s buckets).
const BUCKET_S: f64 = 0.25;

fn utility(ssim: f64) -> f64 {
    // Floor the distortion at 1e-3: SSIM differences below 0.001 are
    // imperceptible, and without the floor the log utility of a *perfect*
    // segment dwarfs every virtual level, re-collapsing the decision space
    // to full segments only.
    -((1.0 - ssim).max(1e-3)).ln()
}

// lint: allow(nondeterministic-map) the whole impl is the memoized DP: HashMap is key-lookup only, never iterated
impl MpcStar {
    /// The curbed option set for one segment: BOLA-SSIM's candidate points
    /// (bound, a few intermediates, full) per level.
    fn options(ctx: &AbrContext<'_>, seg: usize) -> Vec<Option_> {
        let mut out = Vec::with_capacity(65);
        for level in QualityLevel::all() {
            let entry = ctx
                .manifest
                .entry(seg.min(ctx.manifest.num_segments() - 1), level);
            for c in candidates(entry) {
                out.push(Option_ {
                    level,
                    point: c.point,
                    is_full: c.is_full,
                });
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        ctx: &AbrContext<'_>,
        bps: f64,
        step: usize,
        prev_u: i64,
        buffer_s: f64,
        memo: &mut HashMap<(usize, i64, i64), (f64, usize)>,
    ) -> (f64, usize) {
        if step >= self.horizon || ctx.segment_index + step >= ctx.manifest.num_segments() {
            return (0.0, 0);
        }
        let key = (step, prev_u, (buffer_s / BUCKET_S) as i64);
        if let Some(&hit) = memo.get(&key) {
            return hit;
        }
        let seg = ctx.segment_index + step;
        let options = Self::options(ctx, seg);
        let mut best = (f64::NEG_INFINITY, 0usize);
        for (idx, opt) in options.iter().enumerate() {
            let reliable = ctx.manifest.entry(seg, opt.level).reliable_size;
            let bits = (opt.point.bytes + reliable) as f64 * 8.0;
            let download_s = bits / bps.max(1.0);
            let stall = (download_s - buffer_s).max(0.0);
            let next_buffer =
                ((buffer_s - download_s).max(0.0) + SEGMENT_DURATION_S).min(ctx.buffer_capacity_s);
            let u = utility(opt.point.ssim);
            // Quantize utility for the memo key of the next step.
            let u_q = (u * 10.0) as i64;
            let qoe = u
                - self.rebuffer_penalty * stall
                - self.switch_penalty * (u_q - prev_u).abs() as f64 / 10.0;
            let (future, _) = self.search(ctx, bps, step + 1, u_q, next_buffer, memo);
            let total = qoe + future;
            if total > best.0 {
                best = (total, idx);
            }
        }
        memo.insert(key, best);
        best
    }
}

impl Abr for MpcStar {
    fn name(&self) -> &'static str {
        "MPC*"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Decision {
        let Some(pred) = ctx.conservative_throughput_bps.or(ctx.throughput_bps) else {
            return Decision::full(QualityLevel::MIN);
        };
        // lint: allow(nondeterministic-map) memo table — key lookup only, never iterated
        let mut memo = HashMap::new();
        let prev_u = ctx
            .last_level
            .map(|l| {
                let e = ctx.manifest.entry(ctx.segment_index.saturating_sub(1), l);
                (utility(e.pristine_ssim) * 10.0) as i64
            })
            .unwrap_or(0);
        let (_, idx) = self.search(ctx, pred, 0, prev_u, ctx.buffer_s, &mut memo);
        let options = Self::options(ctx, ctx.segment_index);
        let opt = options[idx.min(options.len() - 1)];
        Decision {
            level: opt.level,
            target: (!opt.is_full).then_some(opt.point),
        }
    }

    fn on_progress(&mut self, _ctx: &AbrContext<'_>, p: &DownloadProgress) -> AbandonAction {
        // ABR*-style deadline-driven keep-partial.
        let remaining = p.bytes_target.saturating_sub(p.bytes_received);
        if remaining == 0 || p.elapsed_s < 0.25 {
            return AbandonAction::Continue;
        }
        let eta = p.eta_s();
        if eta + 0.5 < p.buffer_s || p.buffer_s > 1.0 {
            return AbandonAction::Continue;
        }
        AbandonAction::KeepPartial
    }

    fn uses_unreliable_transport(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::qoe::QoeModel;
    use voxel_media::video::Video;
    use voxel_prep::manifest::Manifest;

    fn manifest() -> Manifest {
        let video = Video::generate(VideoId::Bbb);
        Manifest::prepare_levels(
            &video,
            &QoeModel::default(),
            &[QualityLevel::MAX, QualityLevel(9)],
        )
    }

    fn ctx<'a>(m: &'a Manifest, buffer_s: f64, tput: Option<f64>) -> AbrContext<'a> {
        AbrContext {
            segment_index: 10,
            buffer_s,
            buffer_capacity_s: 28.0,
            throughput_bps: tput,
            conservative_throughput_bps: tput,
            last_level: None,
            manifest: m,
            rebuffering: false,
        }
    }

    #[test]
    fn curbed_option_set_is_small() {
        let m = manifest();
        let c = ctx(&m, 10.0, Some(10e6));
        let opts = MpcStar::options(&c, 10);
        // At most 5 per level (BOLA-SSIM's curbed candidates).
        assert!(opts.len() <= 65, "{} options", opts.len());
        assert!(opts.len() >= 13);
    }

    #[test]
    fn no_estimate_starts_lowest() {
        let m = manifest();
        let mut mpc = MpcStar::default();
        assert_eq!(mpc.choose(&ctx(&m, 0.0, None)).level, QualityLevel::MIN);
    }

    #[test]
    fn rich_conditions_pick_high_quality() {
        let m = manifest();
        let mut mpc = MpcStar::default();
        let d = mpc.choose(&ctx(&m, 24.0, Some(50e6)));
        assert!(d.level >= QualityLevel(11), "got {}", d.level);
    }

    #[test]
    fn quality_is_monotone_in_bandwidth() {
        let m = manifest();
        let mut mpc = MpcStar::default();
        let mut prev_bits = 0u64;
        for mbps in [1.0, 3.0, 8.0, 20.0] {
            let d = mpc.choose(&ctx(&m, 12.0, Some(mbps * 1e6)));
            let e = m.entry(10, d.level);
            let bits = e.reliable_size + d.target.map(|p| p.bytes).unwrap_or(e.total_bytes());
            assert!(
                bits >= prev_bits,
                "{mbps} Mbps picked fewer bytes than a slower link"
            );
            prev_bits = bits;
        }
    }

    #[test]
    fn partial_targets_appear_when_bandwidth_pinches() {
        // Sweep the plane; MPC* must sometimes pick a partial Q12 rather
        // than dropping a whole level.
        let m = manifest();
        let mut saw_partial = false;
        for tput in [6e6, 8e6, 9e6, 10e6, 11e6, 12e6] {
            for buf in [4.0, 8.0, 12.0, 16.0] {
                let mut mpc = MpcStar::default();
                if mpc.choose(&ctx(&m, buf, Some(tput))).target.is_some() {
                    saw_partial = true;
                }
            }
        }
        assert!(saw_partial, "MPC* never used a virtual level");
    }

    #[test]
    fn keep_partial_under_imminent_stall() {
        let mut mpc = MpcStar::default();
        let m = manifest();
        let c = ctx(&m, 0.6, Some(10e6));
        let p = DownloadProgress {
            bytes_received: 100_000,
            bytes_target: 4_000_000,
            elapsed_s: 2.0,
            buffer_s: 0.6,
            download_rate_bps: 300_000.0,
        };
        assert_eq!(mpc.on_progress(&c, &p), AbandonAction::KeepPartial);
        // Healthy buffer → continue.
        let healthy = DownloadProgress {
            buffer_s: 10.0,
            download_rate_bps: 20e6,
            ..p
        };
        assert_eq!(mpc.on_progress(&c, &healthy), AbandonAction::Continue);
    }
}
