//! ABR-layer trace instrumentation.
//!
//! One event kind, `decision`, emitted per segment choice. The fields
//! capture everything the algorithm saw and chose: segment index, level,
//! the optional partial-download target (VOXEL's virtual level), buffer
//! occupancy, and the throughput estimate the choice was based on.
//!
//! Metrics: counters `abr.decisions`, `abr.partial_decisions`; histograms
//! `abr.level` (chosen level index) and `abr.buffer_ms` (buffer occupancy
//! at decision time).

use crate::traits::{AbrContext, Decision};
use voxel_sim::SimTime;
use voxel_trace::{trace_event, Layer, Tracer};

/// Record one segment decision.
pub fn trace_decision(tracer: &Tracer, t: SimTime, ctx: &AbrContext<'_>, d: &Decision) {
    if !tracer.enabled() {
        return;
    }
    tracer.count("abr.decisions", 1);
    if d.target.is_some() {
        tracer.count("abr.partial_decisions", 1);
    }
    tracer.observe("abr.level", d.level.index() as u64);
    tracer.observe("abr.buffer_ms", (ctx.buffer_s.max(0.0) * 1e3) as u64);
    let full_bytes = ctx.segment_bytes(d.level);
    let (target_bytes, target_ssim) = match &d.target {
        Some(p) => (p.bytes, p.ssim),
        None => (full_bytes, f64::NAN), // NAN renders as null in JSON
    };
    trace_event!(
        tracer,
        t,
        Layer::Abr,
        "decision",
        "seg" = ctx.segment_index,
        "level" = d.level.index(),
        "partial" = d.target.is_some(),
        "target_bytes" = target_bytes,
        "full_bytes" = full_bytes,
        "target_ssim" = target_ssim,
        "buffer_s" = ctx.buffer_s,
        "tput_bps" = ctx.throughput_bps.unwrap_or(f64::NAN),
        "rebuffering" = ctx.rebuffering,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::ladder::QualityLevel;
    use voxel_media::qoe::QoeModel;
    use voxel_media::video::Video;
    use voxel_prep::manifest::Manifest;
    use voxel_trace::Value;

    #[test]
    fn decision_event_carries_choice_and_context() {
        let video = Video::generate(VideoId::Bbb);
        let manifest = Manifest::prepare_levels(&video, &QoeModel::default(), &[QualityLevel::MAX]);
        let ctx = AbrContext {
            segment_index: 7,
            buffer_s: 12.5,
            buffer_capacity_s: 28.0,
            throughput_bps: Some(4e6),
            conservative_throughput_bps: Some(3e6),
            last_level: None,
            manifest: &manifest,
            rebuffering: false,
        };
        let (tracer, handle) = Tracer::memory(1, 8);
        trace_decision(
            &tracer,
            SimTime::from_secs(3),
            &ctx,
            &Decision::full(QualityLevel::MAX),
        );
        let events = handle.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, "decision");
        assert_eq!(e.layer, Layer::Abr);
        let field = |name: &str| {
            e.fields
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(field("seg"), Value::from(7u64));
        assert_eq!(field("level"), Value::from(12u64));
        assert_eq!(field("partial"), Value::from(false));
        let snap = tracer.metrics_snapshot(SimTime::from_secs(3)).unwrap();
        assert_eq!(snap.counter("abr.decisions"), 1);
        assert_eq!(snap.counter("abr.partial_decisions"), 0);
        assert_eq!(snap.histogram("abr.buffer_ms").unwrap().count, 1);
    }
}
