//! Throughput estimation and the naive throughput-based ABR ("Tput").
//!
//! The paper uses a naive throughput ABR "to identify what — the transport
//! or the ABR algorithm, or both — contributes the most" (§5). The
//! estimator here is shared by all algorithms: an EWMA for the headline
//! estimate plus a harmonic mean of the last five samples with an error
//! discount for robust (MPC-style) planning.

use crate::traits::{Abr, AbrContext, Decision};
use voxel_media::ladder::QualityLevel;

/// Sliding-window throughput estimator.
#[derive(Debug, Clone)]
pub struct ThroughputEstimator {
    samples: Vec<f64>,
    ewma: Option<f64>,
    /// Relative prediction errors of the last few predictions.
    errors: Vec<f64>,
    last_prediction: Option<f64>,
    alpha: f64,
    window: usize,
}

impl Default for ThroughputEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputEstimator {
    /// Estimator with the standard window of 5 samples.
    pub fn new() -> ThroughputEstimator {
        ThroughputEstimator {
            samples: Vec::new(),
            ewma: None,
            errors: Vec::new(),
            last_prediction: None,
            alpha: 0.6,
            window: 5,
        }
    }

    /// Record a download: `bytes` over `seconds` of active transfer.
    pub fn on_sample(&mut self, bytes: u64, seconds: f64) {
        if seconds <= 1e-6 || bytes == 0 {
            return;
        }
        let bps = bytes as f64 * 8.0 / seconds;
        // Track the error of the previous prediction (RobustMPC's
        // max-error discount).
        if let Some(pred) = self.last_prediction {
            let err = ((pred - bps) / bps).abs().min(1.0);
            self.errors.push(err);
            if self.errors.len() > self.window {
                self.errors.remove(0);
            }
        }
        self.samples.push(bps);
        if self.samples.len() > self.window {
            self.samples.remove(0);
        }
        self.ewma = Some(match self.ewma {
            None => bps,
            Some(e) => self.alpha * bps + (1.0 - self.alpha) * e,
        });
        self.last_prediction = Some(self.harmonic_mean().unwrap_or(bps));
    }

    /// EWMA estimate, bits/second.
    pub fn estimate_bps(&self) -> Option<f64> {
        self.ewma
    }

    /// Harmonic mean of the window (robust to outliers), bits/second.
    pub fn harmonic_mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let denom: f64 = self.samples.iter().map(|s| 1.0 / s.max(1.0)).sum();
        Some(self.samples.len() as f64 / denom)
    }

    /// RobustMPC's conservative estimate: harmonic mean discounted by the
    /// maximum recent relative prediction error.
    pub fn conservative_bps(&self) -> Option<f64> {
        let hm = self.harmonic_mean()?;
        let max_err = self.errors.iter().cloned().fold(0.0f64, f64::max);
        Some(hm / (1.0 + max_err))
    }

    /// Number of samples observed (capped at the window size).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been seen.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// The naive throughput-matching ABR.
#[derive(Debug, Clone)]
pub struct ThroughputAbr {
    /// Fraction of the estimate the ABR dares to use (classic 0.8 safety).
    pub safety: f64,
}

impl Default for ThroughputAbr {
    fn default() -> Self {
        ThroughputAbr { safety: 0.8 }
    }
}

impl Abr for ThroughputAbr {
    fn name(&self) -> &'static str {
        "Tput"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Decision {
        let Some(est) = ctx.throughput_bps else {
            return Decision::full(QualityLevel::MIN);
        };
        let budget = est * self.safety;
        // Highest level whose *actual segment* bitrate fits the budget.
        let mut pick = QualityLevel::MIN;
        for level in QualityLevel::all() {
            let bits = ctx.segment_bytes(level) as f64 * 8.0;
            let needed_bps = bits / voxel_media::video::SEGMENT_DURATION_S;
            if needed_bps <= budget {
                pick = level;
            }
        }
        Decision::full(pick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_warms_up() {
        let mut e = ThroughputEstimator::new();
        assert!(e.estimate_bps().is_none());
        assert!(e.conservative_bps().is_none());
        e.on_sample(1_250_000, 1.0); // 10 Mbps
        assert_eq!(e.estimate_bps(), Some(10e6));
        assert_eq!(e.harmonic_mean(), Some(10e6));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn harmonic_mean_is_pessimistic_vs_arithmetic() {
        let mut e = ThroughputEstimator::new();
        e.on_sample(1_250_000, 1.0); // 10 Mbps
        e.on_sample(125_000, 1.0); // 1 Mbps
        let hm = e.harmonic_mean().unwrap();
        assert!(hm < 5.5e6, "harmonic {hm} must be below arithmetic mean");
        assert!((hm - 2.0 / (1.0 / 10e6 + 1.0 / 1e6)).abs() < 1.0);
    }

    #[test]
    fn conservative_discounts_after_errors() {
        let mut e = ThroughputEstimator::new();
        // Stable samples: conservative ≈ harmonic.
        for _ in 0..5 {
            e.on_sample(1_250_000, 1.0);
        }
        let stable = e.conservative_bps().unwrap();
        assert!((stable - 10e6).abs() / 10e6 < 0.01);
        // A violent swing creates prediction error → discount.
        e.on_sample(125_000, 1.0);
        let shaky = e.conservative_bps().unwrap();
        assert!(shaky < e.harmonic_mean().unwrap());
    }

    #[test]
    fn window_slides() {
        let mut e = ThroughputEstimator::new();
        for _ in 0..10 {
            e.on_sample(125_000, 1.0); // 1 Mbps
        }
        for _ in 0..5 {
            e.on_sample(1_250_000, 1.0); // 10 Mbps fills the window
        }
        assert!((e.harmonic_mean().unwrap() - 10e6).abs() < 1.0);
        assert_eq!(e.len(), 5);
    }

    #[test]
    fn zero_duration_samples_are_ignored() {
        let mut e = ThroughputEstimator::new();
        e.on_sample(1000, 0.0);
        e.on_sample(0, 1.0);
        assert!(e.is_empty());
    }

    #[test]
    fn tput_abr_picks_feasible_quality() {
        use voxel_media::content::VideoId;
        use voxel_media::qoe::QoeModel;
        use voxel_media::video::Video;
        use voxel_prep::manifest::Manifest;

        let video = Video::generate(VideoId::Bbb);
        let manifest = Manifest::prepare_levels(&video, &QoeModel::default(), &[]);
        let mut abr = ThroughputAbr::default();
        let ctx = |tput: Option<f64>| AbrContext {
            segment_index: 10,
            buffer_s: 8.0,
            buffer_capacity_s: 28.0,
            throughput_bps: tput,
            conservative_throughput_bps: tput,
            last_level: None,
            manifest: &manifest,
            rebuffering: false,
        };
        // No estimate → lowest quality.
        assert_eq!(abr.choose(&ctx(None)).level, QualityLevel::MIN);
        // Plenty of bandwidth → top quality.
        let high = abr.choose(&ctx(Some(100e6))).level;
        assert_eq!(high, QualityLevel::MAX);
        // Moderate bandwidth → something in between, and monotone in rate.
        let mid = abr.choose(&ctx(Some(3e6))).level;
        assert!(mid > QualityLevel::MIN && mid < QualityLevel::MAX);
        let low = abr.choose(&ctx(Some(1e6))).level;
        assert!(low < mid);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The harmonic mean never exceeds the arithmetic mean, and the
        /// conservative estimate never exceeds the harmonic mean.
        #[test]
        fn estimator_orderings(samples in proptest::collection::vec((1_000u64..10_000_000, 1u64..20), 1..20)) {
            let mut e = ThroughputEstimator::new();
            let mut window: Vec<f64> = Vec::new();
            for (bytes, decis) in samples {
                let secs = decis as f64 / 10.0;
                e.on_sample(bytes, secs);
                window.push(bytes as f64 * 8.0 / secs);
                if window.len() > 5 {
                    window.remove(0);
                }
            }
            let hm = e.harmonic_mean().expect("samples fed");
            let am = window.iter().sum::<f64>() / window.len() as f64;
            prop_assert!(hm <= am * (1.0 + 1e-9), "harmonic {hm} > arithmetic {am}");
            let cons = e.conservative_bps().expect("samples fed");
            prop_assert!(cons <= hm * (1.0 + 1e-9), "conservative {cons} > harmonic {hm}");
            prop_assert!(cons > 0.0);
        }
    }
}
