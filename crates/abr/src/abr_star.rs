//! ABR\*: VOXEL's algorithm — the second §4.3 upgrade over BOLA-SSIM.
//!
//! "We then extended BOLA's segment abandonment option to keep a partial
//! segment and move on to the next download." Combined with QUIC\*'s
//! partially reliable delivery, this removes the wasted re-download that
//! BOLA performs for "more than 25% of the segments" in small-buffer
//! scenarios (§3 insight 3): because the frame headers and I-frame arrived
//! reliably and the manifest maps bytes→QoE, *any* prefix of the download
//! is a playable virtual quality level.
//!
//! The single tuning knob is the **bandwidth-safety factor** (§5.2): 1.0 by
//! default ("aggressive"), lowered to slightly underestimate throughput for
//! violently varying traces like T-Mobile (Fig 6d vs Fig 17c).

use crate::bola_ssim::BolaSsim;
use crate::traits::{AbandonAction, Abr, AbrContext, Decision, DownloadProgress};
use voxel_media::qoe::QoeMetric;

/// The ABR\* algorithm.
#[derive(Debug, Clone)]
pub struct AbrStar {
    inner: BolaSsim,
}

impl Default for AbrStar {
    fn default() -> Self {
        Self::new(QoeMetric::Ssim)
    }
}

impl AbrStar {
    /// ABR\* optimizing `metric` with the default (aggressive) safety.
    pub fn new(metric: QoeMetric) -> AbrStar {
        AbrStar {
            inner: BolaSsim::new(metric),
        }
    }

    /// ABR\* with an explicit bandwidth-safety factor (the Fig 6d tuning
    /// uses ≈0.85).
    pub fn with_safety(metric: QoeMetric, safety: f64) -> AbrStar {
        let mut inner = BolaSsim::new(metric);
        inner.safety = safety;
        AbrStar { inner }
    }

    /// The configured safety factor.
    pub fn safety(&self) -> f64 {
        self.inner.safety
    }
}

impl Abr for AbrStar {
    fn name(&self) -> &'static str {
        "VOXEL"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Decision {
        self.inner.choose(ctx)
    }

    fn on_progress(&mut self, ctx: &AbrContext<'_>, p: &DownloadProgress) -> AbandonAction {
        // The key difference from BOLA/BOLA-SSIM: when the download cannot
        // finish in time, keep what we have and move on. The partial
        // segment is decodable (headers + I-frame arrived reliably) and its
        // QoE is known from the manifest; and because QoE is monotone in
        // bytes, the *best* cut is the latest one -- so the download runs
        // until the playback deadline truly forces the cut, then stops
        // ("fine-level mid-segment quality adjustments", §3 insight 3).
        let remaining = p.bytes_target.saturating_sub(p.bytes_received);
        if remaining == 0 || p.elapsed_s < 0.25 {
            return AbandonAction::Continue;
        }
        // Will it finish comfortably at the safety-discounted rate?
        let rate = p.download_rate_bps * self.inner.safety;
        let eta_s = if rate <= 1.0 {
            f64::INFINITY
        } else {
            remaining as f64 * 8.0 / rate
        };
        if eta_s + 0.5 < p.buffer_s {
            return AbandonAction::Continue;
        }
        // At risk -- but cutting early would only reduce quality. Hold on
        // until the buffer is nearly drained (one cut-latency of slack:
        // RTT + a progress-check period, widened by a conservative safety
        // factor).
        let cut_threshold_s = 1.0 / self.inner.safety;
        if p.buffer_s > cut_threshold_s {
            return AbandonAction::Continue;
        }
        let _ = ctx;
        AbandonAction::KeepPartial
    }

    fn uses_unreliable_transport(&self) -> bool {
        true
    }

    fn on_idle(&mut self, idle_s: f64) {
        self.inner.on_idle(idle_s);
    }

    fn on_rebuffer(&mut self) {
        self.inner.on_rebuffer();
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.inner.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::ladder::QualityLevel;
    use voxel_media::qoe::QoeModel;
    use voxel_media::video::Video;
    use voxel_prep::manifest::Manifest;

    fn manifest() -> Manifest {
        let video = Video::generate(VideoId::Bbb);
        Manifest::prepare_levels(&video, &QoeModel::default(), &[QualityLevel::MAX])
    }

    fn ctx<'a>(m: &'a Manifest, buffer_s: f64, tput: Option<f64>) -> AbrContext<'a> {
        AbrContext {
            segment_index: 5,
            buffer_s,
            buffer_capacity_s: 28.0,
            throughput_bps: tput,
            conservative_throughput_bps: tput,
            last_level: None,
            manifest: m,
            rebuffering: false,
        }
    }

    #[test]
    fn keeps_partial_when_buffer_at_risk() {
        let m = manifest();
        let mut abr = AbrStar::default();
        let c = ctx(&m, 4.0, Some(10e6));
        let d = abr.choose(&c);
        let e = m.entry(5, d.level);
        let target = d.target.map(|p| p.bytes).unwrap_or(e.total_bytes());
        let p = DownloadProgress {
            bytes_received: target / 3,
            bytes_target: target,
            elapsed_s: 2.0,
            buffer_s: 1.0,
            download_rate_bps: 100_000.0,
        };
        assert_eq!(abr.on_progress(&c, &p), AbandonAction::KeepPartial);
    }

    #[test]
    fn never_restarts() {
        // ABR* must never produce RestartAt, whatever the progress state.
        let m = manifest();
        let mut abr = AbrStar::default();
        let c = ctx(&m, 2.0, Some(5e6));
        let d = abr.choose(&c);
        let e = m.entry(5, d.level);
        let target = d.target.map(|p| p.bytes).unwrap_or(e.total_bytes());
        for frac in [0.01, 0.3, 0.6, 0.95] {
            for rate in [10e3, 1e6, 50e6] {
                let p = DownloadProgress {
                    bytes_received: (target as f64 * frac) as u64,
                    bytes_target: target,
                    elapsed_s: 1.0,
                    buffer_s: 1.0,
                    download_rate_bps: rate,
                };
                assert!(
                    !matches!(abr.on_progress(&c, &p), AbandonAction::RestartAt(_)),
                    "restarted at frac {frac} rate {rate}"
                );
            }
        }
    }

    #[test]
    fn continues_when_healthy() {
        let m = manifest();
        let mut abr = AbrStar::default();
        let c = ctx(&m, 16.0, Some(20e6));
        let d = abr.choose(&c);
        let e = m.entry(5, d.level);
        let target = d.target.map(|p| p.bytes).unwrap_or(e.total_bytes());
        let p = DownloadProgress {
            bytes_received: target / 2,
            bytes_target: target,
            elapsed_s: 0.5,
            buffer_s: 16.0,
            download_rate_bps: 30e6,
        };
        assert_eq!(abr.on_progress(&c, &p), AbandonAction::Continue);
    }

    #[test]
    fn grace_period_before_abandoning() {
        let m = manifest();
        let mut abr = AbrStar::default();
        let c = ctx(&m, 1.0, Some(10e6));
        let d = abr.choose(&c);
        let e = m.entry(5, d.level);
        let target = d.target.map(|p| p.bytes).unwrap_or(e.total_bytes());
        let p = DownloadProgress {
            bytes_received: 0,
            bytes_target: target,
            elapsed_s: 0.1,
            buffer_s: 0.5,
            download_rate_bps: 0.0,
        };
        assert_eq!(abr.on_progress(&c, &p), AbandonAction::Continue);
    }

    #[test]
    fn safety_factor_is_configurable() {
        let tuned = AbrStar::with_safety(QoeMetric::Ssim, 0.85);
        assert!((tuned.safety() - 0.85).abs() < 1e-12);
        assert_eq!(AbrStar::default().safety(), 1.0);
    }

    #[test]
    fn reports_voxel_name_and_unreliable_transport() {
        let abr = AbrStar::default();
        assert_eq!(abr.name(), "VOXEL");
        assert!(abr.uses_unreliable_transport());
    }
}
