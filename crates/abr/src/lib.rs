#![warn(missing_docs)]
//! # voxel-abr
//!
//! Every ABR algorithm of the paper's evaluation (§5 "ABR algorithms" and
//! §4.3), behind one [`Abr`] trait the player drives:
//!
//! | name       | module       | transport | notes |
//! |------------|--------------|-----------|-------|
//! | Tput       | [`throughput`] | either  | naive rate-matching baseline |
//! | BOLA       | [`bola`]     | QUIC      | BOLA-E variant with segment abandonment (state of the art) |
//! | MPC        | [`mpc`]      | QUIC      | robust MPC, 5-segment lookahead |
//! | BETA       | [`beta`]     | reliable  | re-implemented from its paper: only unreferenced B-frames droppable, one virtual level per quality |
//! | BOLA-SSIM  | [`bola_ssim`]| QUIC\*    | BOLA-E + SSIM utility + partial-segment decision space (§4.3 intermediate step) |
//! | MPC\*      | [`mpc_star`] | QUIC\*    | robust MPC with the §4.3 curbed virtual-level search space (paper-discussed extension) |
//! | ABR\*      | [`abr_star`] | QUIC\*    | BOLA-SSIM + keep-partial-and-move-on abandonment + bandwidth-safety factor |
//!
//! The trait is deliberately transport-agnostic: algorithms see buffer
//! state, throughput estimates and the (extended) manifest, and return a
//! [`Decision`]; mid-download they are consulted for abandonment via
//! [`Abr::on_progress`].

pub mod abr_star;
pub mod beta;
pub mod bola;
pub mod bola_ssim;
pub mod mpc;
pub mod mpc_star;
pub mod throughput;
pub mod trace;
pub mod traits;

pub use abr_star::AbrStar;
pub use beta::Beta;
pub use bola::Bola;
pub use bola_ssim::BolaSsim;
pub use mpc::Mpc;
pub use mpc_star::MpcStar;
pub use throughput::{ThroughputAbr, ThroughputEstimator};
pub use traits::{AbandonAction, Abr, AbrContext, Decision, DownloadProgress};
