//! BETA (James et al., MMSys '19), re-implemented from its paper.
//!
//! "We implemented BETA from scratch, to the best of our ability, based on
//! the details in their paper, since it is not publicly available." (§5,
//! footnote 3). BETA's characteristics, as the VOXEL paper describes them:
//!
//! - runs over a **reliable** transport (TCP there; a reliable QUIC stream
//!   here) — no imperfect transmission;
//! - reorders **only unreferenced B-frames** to the segment tail (the video
//!   files are modified; we model the same ordering via
//!   `OrderingKind::UnreferencedTail`);
//! - knows **one virtual quality level per quality**: the segment with all
//!   unreferenced b-frames dropped. It cannot evaluate intermediate drop
//!   amounts ("BETA only determines one virtual quality threshold per
//!   quality level");
//! - under throughput shortfall it truncates at the b-frame boundary, and
//!   in the worst case "simply discard\[s\] the data and fetch\[es\] the same
//!   segment at the lowest quality".

use crate::traits::{AbandonAction, Abr, AbrContext, Decision, DownloadProgress};
use voxel_media::ladder::QualityLevel;
use voxel_media::video::SEGMENT_DURATION_S;
use voxel_prep::analysis::QoePoint;

/// The BETA algorithm.
#[derive(Debug, Clone, Default)]
pub struct Beta {
    current: Option<QualityLevel>,
}

impl Beta {
    /// New instance.
    pub fn new() -> Beta {
        Beta::default()
    }

    /// BETA's single virtual quality point for a segment: everything except
    /// the unreferenced b-frames (which its reordering placed at the tail).
    pub fn b_frame_boundary(ctx: &AbrContext<'_>, level: QualityLevel) -> QoePoint {
        let entry = ctx.manifest.entry(ctx.segment_index, level);
        // Under BETA's unreferenced-tail ordering the last 32 frames of the
        // download order are exactly the unreferenced b-frames; the
        // boundary point keeps everything before them.
        // lint: allow(panic) prep builds every BETA SSIM map non-empty
        let full = *entry.beta_ssims.last().expect("non-empty map");
        let keep_frames = full.frames.saturating_sub(Beta::unref_count()).max(1);
        entry
            .beta_ssims
            .iter()
            .copied()
            .find(|p| p.frames >= keep_frames)
            .unwrap_or(full)
    }

    /// Unreferenced-B count per segment (fixed by the GOP structure).
    fn unref_count() -> usize {
        32
    }
}

impl Abr for Beta {
    fn name(&self) -> &'static str {
        "BETA"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Decision {
        // Rate-based selection with a buffer-aware safety margin (BETA's
        // bandwidth-efficiency goal: pick by throughput, then stretch it
        // with the b-frame drop option).
        let Some(est) = ctx.throughput_bps else {
            self.current = Some(QualityLevel::MIN);
            return Decision::full(QualityLevel::MIN);
        };
        let safety = if ctx.buffer_s < 2.0 * SEGMENT_DURATION_S {
            0.7
        } else {
            0.85
        };
        let budget_bits = est * safety * SEGMENT_DURATION_S;
        let mut pick = QualityLevel::MIN;
        for level in QualityLevel::all() {
            // BETA may count on its virtual level: the b-frame-truncated
            // segment must fit the budget.
            let boundary = Beta::b_frame_boundary(ctx, level);
            let reliable = ctx.manifest.entry(ctx.segment_index, level).reliable_size;
            if (boundary.bytes + reliable) as f64 * 8.0 <= budget_bits {
                pick = level;
            }
        }
        self.current = Some(pick);
        // BETA requests the full segment and truncates only under pressure.
        Decision::full(pick)
    }

    fn on_progress(&mut self, ctx: &AbrContext<'_>, p: &DownloadProgress) -> AbandonAction {
        let Some(current) = self.current else {
            return AbandonAction::Continue;
        };
        // Grace period: no meaningful rate signal yet.
        if p.elapsed_s < 0.5 || p.eta_s() < p.buffer_s * 0.9 {
            return AbandonAction::Continue;
        }
        // Throughput shortfall. Option 1: if the b-frame boundary has been
        // reached (or will be before the buffer drains), truncate there —
        // BETA's one virtual quality level.
        let boundary = Beta::b_frame_boundary(ctx, current);
        if p.bytes_received >= boundary.bytes {
            return AbandonAction::KeepPartial;
        }
        let projected = p.bytes_received as f64 + p.download_rate_bps / 8.0 * p.buffer_s.max(0.3);
        if projected >= boundary.bytes as f64 {
            return AbandonAction::Continue; // boundary reachable in time
        }
        // Option 2 (worst case per §6): discard and refetch at the lowest
        // quality.
        if current > QualityLevel::MIN {
            self.current = Some(QualityLevel::MIN);
            AbandonAction::RestartAt(QualityLevel::MIN)
        } else {
            AbandonAction::Continue
        }
    }

    fn uses_unreliable_transport(&self) -> bool {
        false // BETA is TCP-based: fully reliable delivery.
    }
}

/// The number of unreferenced B-frames per segment in the synthetic GOP —
/// exposed for tests and the Fig 2 analysis.
pub fn unreferenced_b_frames_per_segment() -> usize {
    Beta::unref_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::qoe::QoeModel;
    use voxel_media::video::Video;
    use voxel_prep::manifest::Manifest;

    fn setup() -> (Video, Manifest) {
        let video = Video::generate(VideoId::Tos);
        let m = Manifest::prepare_levels(&video, &QoeModel::default(), &[QualityLevel::MAX]);
        (video, m)
    }

    fn ctx<'a>(m: &'a Manifest, buffer_s: f64, tput: Option<f64>) -> AbrContext<'a> {
        AbrContext {
            segment_index: 3,
            buffer_s,
            buffer_capacity_s: 28.0,
            throughput_bps: tput,
            conservative_throughput_bps: tput,
            last_level: None,
            manifest: m,
            rebuffering: false,
        }
    }

    #[test]
    fn unref_count_matches_gop() {
        let (video, _) = setup();
        let seg = &video.segments[0];
        let actual = seg
            .gop
            .frames
            .iter()
            .filter(|f| f.kind == voxel_media::gop::FrameKind::BUnref)
            .count();
        assert_eq!(actual, unreferenced_b_frames_per_segment());
    }

    #[test]
    fn boundary_point_is_below_full_segment() {
        let (_, m) = setup();
        let c = ctx(&m, 8.0, Some(10e6));
        let b = Beta::b_frame_boundary(&c, QualityLevel::MAX);
        let full = m.entry(3, QualityLevel::MAX).ssims.last().unwrap().bytes;
        assert!(b.bytes < full);
        assert!(b.frames <= 96 && b.frames >= 96 - 32);
    }

    #[test]
    fn chooses_by_throughput() {
        let (_, m) = setup();
        let mut beta = Beta::new();
        assert_eq!(beta.choose(&ctx(&m, 8.0, None)).level, QualityLevel::MIN);
        let lo = beta.choose(&ctx(&m, 8.0, Some(1e6))).level;
        let hi = beta.choose(&ctx(&m, 8.0, Some(30e6))).level;
        assert!(hi > lo);
        assert_eq!(hi, QualityLevel::MAX);
    }

    #[test]
    fn shortfall_past_boundary_keeps_partial() {
        let (_, m) = setup();
        let mut beta = Beta::new();
        // High throughput so BETA picks Q12 (the fully analysed level,
        // whose boundary point is strictly below the full segment).
        let c = ctx(&m, 3.0, Some(40e6));
        let d = beta.choose(&c);
        let boundary = Beta::b_frame_boundary(&c, d.level);
        let full = m.entry(3, d.level).ssims.last().unwrap().bytes;
        let p = DownloadProgress {
            bytes_received: boundary.bytes + 1,
            bytes_target: full,
            elapsed_s: 3.5,
            buffer_s: 1.0,
            download_rate_bps: 50_000.0,
        };
        assert_eq!(beta.on_progress(&c, &p), AbandonAction::KeepPartial);
    }

    #[test]
    fn shortfall_before_boundary_restarts_at_lowest() {
        let (_, m) = setup();
        let mut beta = Beta::new();
        let c = ctx(&m, 3.0, Some(40e6));
        let d = beta.choose(&c);
        assert!(d.level > QualityLevel::MIN);
        let full = m.entry(3, d.level).ssims.last().unwrap().bytes;
        let p = DownloadProgress {
            bytes_received: full / 20,
            bytes_target: full,
            elapsed_s: 3.5,
            buffer_s: 1.0,
            download_rate_bps: 50_000.0,
        };
        assert_eq!(
            beta.on_progress(&c, &p),
            AbandonAction::RestartAt(QualityLevel::MIN)
        );
    }

    #[test]
    fn healthy_download_continues() {
        let (_, m) = setup();
        let mut beta = Beta::new();
        let c = ctx(&m, 12.0, Some(10e6));
        let d = beta.choose(&c);
        let full = m.entry(3, d.level).ssims.last().unwrap().bytes;
        let p = DownloadProgress {
            bytes_received: full / 2,
            bytes_target: full,
            elapsed_s: 1.0,
            buffer_s: 12.0,
            download_rate_bps: 20e6,
        };
        assert_eq!(beta.on_progress(&c, &p), AbandonAction::Continue);
    }

    #[test]
    fn beta_is_reliable_transport() {
        assert!(!Beta::new().uses_unreliable_transport());
    }
}
