//! BOLA (Spiteri et al.) — the paper's state-of-the-art baseline.
//!
//! This is the BOLA-E variant described in "From Theory to Practice:
//! Improving Bitrate Adaptation in the DASH Reference Player" \[62\], the one
//! integrated in dash.js: Lyapunov utility maximization over buffer
//! occupancy, with
//!
//! - automatic tuning of the two parameters `V` and `γp` from the bitrate
//!   ladder (§4.3: "Before streaming, VOXEL automatically tunes γ and V for
//!   the video's bitrate ladder following a calculation described in \[63\]"),
//! - a placeholder buffer so startup and buffer-full periods don't collapse
//!   the decision to the lowest quality,
//! - an insufficient-buffer rule for low-buffer/live scenarios, and
//! - segment abandonment: discard a risky high-bitrate download and restart
//!   at a lower quality (the classic, wasteful form VOXEL improves on).

use crate::traits::{AbandonAction, Abr, AbrContext, Decision, DownloadProgress};
use voxel_media::ladder::QualityLevel;
use voxel_media::video::SEGMENT_DURATION_S;

/// The BOLA-E algorithm.
#[derive(Debug, Clone)]
pub struct Bola {
    /// Per-level utilities `ln(r_m / r_0)`.
    utilities: [f64; voxel_media::ladder::NUM_LEVELS],
    /// Placeholder buffer in seconds (virtual buffer extension).
    placeholder_s: f64,
    /// Current decision's level (for abandonment scoring).
    current: Option<QualityLevel>,
    /// Safety factor on throughput for the insufficient-buffer rule.
    safety: f64,
}

impl Default for Bola {
    fn default() -> Self {
        Self::new()
    }
}

impl Bola {
    /// BOLA with utilities derived from the Table 2 ladder.
    pub fn new() -> Bola {
        let r0 = QualityLevel::MIN.avg_bitrate_bps();
        let mut utilities = [0.0; voxel_media::ladder::NUM_LEVELS];
        for level in QualityLevel::all() {
            utilities[level.index()] = (level.avg_bitrate_bps() / r0).ln();
        }
        Bola {
            utilities,
            placeholder_s: 0.0,
            current: None,
            safety: 0.9,
        }
    }

    /// The automatic (V, γp) tuning of [63]: at buffer `B_min` the lowest
    /// quality wins, at `B_target` the highest does. Both scale with the
    /// configured buffer capacity so small-buffer (live) configurations
    /// remain meaningful.
    fn params(&self, capacity_s: f64) -> (f64, f64) {
        let b_min = (0.3 * capacity_s).max(SEGMENT_DURATION_S * 0.5);
        let b_target = (0.9 * capacity_s).max(b_min + 0.1);
        let u_max = self.utilities[QualityLevel::MAX.index()];
        let v = (b_target - b_min) / u_max;
        let gp = b_min / v;
        (v, gp)
    }

    /// BOLA's objective for fetching `bits` of utility `u` at buffer `q`.
    fn score(&self, v: f64, gp: f64, u: f64, q_s: f64, bits: f64) -> f64 {
        (v * (u + gp) - q_s) / bits
    }
}

impl Abr for Bola {
    fn name(&self) -> &'static str {
        "BOLA"
    }

    fn choose(&mut self, ctx: &AbrContext<'_>) -> Decision {
        let (v, gp) = self.params(ctx.buffer_capacity_s);
        // BOLA-E's startup placeholder: before the first segment, seed the
        // virtual buffer from the first throughput sample (the manifest
        // fetch) so startup quality matches the network rather than
        // defaulting to the lowest rung.
        // lint: allow(float-eq) exact sentinel — placeholder is 0.0 only before first seeding
        if ctx.last_level.is_none() && self.placeholder_s == 0.0 {
            if let Some(est) = ctx.throughput_bps {
                let sustainable = QualityLevel::all()
                    .rfind(|l| l.avg_bitrate_bps() <= est * 0.9)
                    .unwrap_or(QualityLevel::MIN);
                // Buffer level at which BOLA would pick `sustainable`:
                // V(u + gp) of that level.
                self.placeholder_s = v * (self.utilities[sustainable.index()] + gp);
            }
        }
        // Cap the placeholder so the virtual buffer stays within target.
        self.placeholder_s = self
            .placeholder_s
            .min(ctx.buffer_capacity_s - ctx.buffer_s.min(ctx.buffer_capacity_s));
        let q = ctx.buffer_s + self.placeholder_s;

        let mut best = QualityLevel::MIN;
        let mut best_score = f64::NEG_INFINITY;
        for level in QualityLevel::all() {
            let bits = ctx.segment_bytes(level) as f64 * 8.0;
            let s = self.score(v, gp, self.utilities[level.index()], q, bits);
            if s >= best_score {
                best_score = s;
                best = level;
            }
        }

        // Insufficient-buffer rule: with little real buffer, never pick a
        // segment we can't download in the time the buffer affords.
        if ctx.buffer_s < 2.0 * SEGMENT_DURATION_S {
            if let Some(est) = ctx.throughput_bps {
                let budget_s = (ctx.buffer_s * 0.8).max(SEGMENT_DURATION_S * 0.5);
                while best > QualityLevel::MIN {
                    let bits = ctx.segment_bytes(best) as f64 * 8.0;
                    if bits / (est * self.safety) <= budget_s {
                        break;
                    }
                    match best.lower() {
                        Some(l) => best = l,
                        None => break,
                    }
                }
            } else {
                best = QualityLevel::MIN;
            }
        }

        self.current = Some(best);
        Decision::full(best)
    }

    fn on_progress(&mut self, ctx: &AbrContext<'_>, p: &DownloadProgress) -> AbandonAction {
        let Some(current) = self.current else {
            return AbandonAction::Continue;
        };
        // Only consider abandoning when a meaningful fraction remains and
        // the buffer is at risk.
        let remaining = p.bytes_target.saturating_sub(p.bytes_received);
        if remaining * 4 < p.bytes_target || p.eta_s() < p.buffer_s {
            return AbandonAction::Continue;
        }
        let (v, gp) = self.params(ctx.buffer_capacity_s);
        let q = p.buffer_s;
        let score_continue = self.score(
            v,
            gp,
            self.utilities[current.index()],
            q,
            (remaining as f64 * 8.0).max(1.0),
        );
        let mut best: Option<(QualityLevel, f64)> = None;
        let mut level = current.lower();
        while let Some(l) = level {
            let bits = ctx.segment_bytes(l) as f64 * 8.0;
            let s = self.score(v, gp, self.utilities[l.index()], q, bits);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((l, s));
            }
            level = l.lower();
        }
        match best {
            Some((l, s)) if s > score_continue => {
                self.current = Some(l);
                AbandonAction::RestartAt(l)
            }
            _ => AbandonAction::Continue,
        }
    }

    fn on_idle(&mut self, idle_s: f64) {
        self.placeholder_s += idle_s;
    }

    fn on_rebuffer(&mut self) {
        self.placeholder_s = 0.0;
    }

    fn check_invariants(&self) -> Result<(), String> {
        if !self.placeholder_s.is_finite() || self.placeholder_s < 0.0 {
            return Err(format!(
                "placeholder buffer corrupted: {} s",
                self.placeholder_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_media::content::VideoId;
    use voxel_media::qoe::QoeModel;
    use voxel_media::video::Video;
    use voxel_prep::manifest::Manifest;

    fn manifest() -> Manifest {
        let video = Video::generate(VideoId::Bbb);
        Manifest::prepare_levels(&video, &QoeModel::default(), &[])
    }

    fn ctx<'a>(
        m: &'a Manifest,
        buffer_s: f64,
        capacity_s: f64,
        tput: Option<f64>,
    ) -> AbrContext<'a> {
        AbrContext {
            segment_index: 20,
            buffer_s,
            buffer_capacity_s: capacity_s,
            throughput_bps: tput,
            conservative_throughput_bps: tput,
            // Steady state (a previous segment exists), so the startup
            // placeholder stays out of these tests; see
            // `startup_placeholder_seeds_quality` for that path.
            last_level: Some(QualityLevel(5)),
            manifest: m,
            rebuffering: false,
        }
    }

    #[test]
    fn startup_placeholder_seeds_quality() {
        let m = manifest();
        let mut bola = Bola::new();
        let mut c = ctx(&m, 0.0, 28.0, Some(10e6));
        c.last_level = None; // first segment of the session
        let d = bola.choose(&c);
        // With a 10 Mbps first sample, startup should not sit at the floor.
        assert!(d.level >= QualityLevel(6), "startup picked {}", d.level);
        // Without any sample, it must stay conservative.
        let mut bola2 = Bola::new();
        let mut c2 = ctx(&m, 0.0, 28.0, None);
        c2.last_level = None;
        assert!(bola2.choose(&c2).level <= QualityLevel(1));
    }

    #[test]
    fn quality_increases_with_buffer() {
        let m = manifest();
        let mut bola = Bola::new();
        let mut prev = QualityLevel::MIN;
        for buf in [0.0, 7.0, 14.0, 21.0, 27.0] {
            let d = bola.choose(&ctx(&m, buf, 28.0, Some(20e6)));
            assert!(d.level >= prev, "buffer {buf}: {} < {prev}", d.level);
            prev = d.level;
            bola.placeholder_s = 0.0;
        }
        assert_eq!(prev, QualityLevel::MAX, "full buffer picks Q12");
    }

    #[test]
    fn empty_buffer_picks_low_quality() {
        let m = manifest();
        let mut bola = Bola::new();
        let d = bola.choose(&ctx(&m, 0.0, 28.0, Some(10e6)));
        assert!(d.level <= QualityLevel(2), "got {}", d.level);
    }

    #[test]
    fn insufficient_buffer_rule_caps_quality_by_throughput() {
        let m = manifest();
        let mut bola = Bola::new();
        // Small buffer, low throughput: whatever the utility says, the pick
        // must be downloadable within ~80% of the buffer.
        let c = ctx(&m, 4.0, 8.0, Some(2e6));
        let d = bola.choose(&c);
        let bits = c.segment_bytes(d.level) as f64 * 8.0;
        assert!(bits / (2e6 * 0.9) <= 3.3, "level {} too big", d.level);
    }

    #[test]
    fn no_throughput_estimate_and_low_buffer_is_conservative() {
        let m = manifest();
        let mut bola = Bola::new();
        let d = bola.choose(&ctx(&m, 2.0, 28.0, None));
        assert_eq!(d.level, QualityLevel::MIN);
    }

    #[test]
    fn placeholder_buffer_raises_quality_when_idle() {
        let m = manifest();
        let mut bola = Bola::new();
        let base = bola.choose(&ctx(&m, 6.0, 28.0, Some(20e6))).level;
        bola.on_idle(15.0);
        let with_placeholder = bola.choose(&ctx(&m, 6.0, 28.0, Some(20e6))).level;
        assert!(with_placeholder > base);
        bola.on_rebuffer();
        let after_reset = bola.choose(&ctx(&m, 6.0, 28.0, Some(20e6))).level;
        assert_eq!(after_reset, base);
    }

    #[test]
    fn abandonment_triggers_when_eta_exceeds_buffer() {
        let m = manifest();
        let mut bola = Bola::new();
        let c = ctx(&m, 10.0, 28.0, Some(10e6));
        let d = bola.choose(&c);
        assert!(d.level > QualityLevel::MIN);
        // Download rate collapsed: 90% of a large segment remains, buffer 2s.
        let target = c.segment_bytes(d.level);
        let p = DownloadProgress {
            bytes_received: target / 10,
            bytes_target: target,
            elapsed_s: 3.0,
            buffer_s: 2.0,
            download_rate_bps: 200_000.0,
        };
        match bola.on_progress(&c, &p) {
            AbandonAction::RestartAt(l) => assert!(l < d.level),
            other => panic!("expected restart, got {other:?}"),
        }
    }

    #[test]
    fn no_abandonment_when_nearly_done_or_safe() {
        let m = manifest();
        let mut bola = Bola::new();
        let c = ctx(&m, 10.0, 28.0, Some(10e6));
        let d = bola.choose(&c);
        let target = c.segment_bytes(d.level);
        // 90% done → keep going even if slow.
        let nearly_done = DownloadProgress {
            bytes_received: target * 9 / 10,
            bytes_target: target,
            elapsed_s: 3.0,
            buffer_s: 2.0,
            download_rate_bps: 100_000.0,
        };
        assert_eq!(bola.on_progress(&c, &nearly_done), AbandonAction::Continue);
        // Fast download → keep going.
        let safe = DownloadProgress {
            bytes_received: target / 10,
            bytes_target: target,
            elapsed_s: 0.3,
            buffer_s: 10.0,
            download_rate_bps: 50e6,
        };
        assert_eq!(bola.on_progress(&c, &safe), AbandonAction::Continue);
    }

    #[test]
    fn utilities_are_increasing_and_zero_based() {
        let bola = Bola::new();
        assert_eq!(bola.utilities[0], 0.0);
        for w in bola.utilities.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn params_scale_with_capacity() {
        let bola = Bola::new();
        let (v28, gp28) = bola.params(28.0);
        let (v8, _gp8) = bola.params(8.0);
        assert!(v28 > v8, "V grows with capacity");
        assert!(gp28 > 0.0 && v28 > 0.0);
    }
}
