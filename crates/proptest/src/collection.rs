//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length range accepted by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u128;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_span_the_size_range() {
        let strat = vec(0u8..=255, 1..5);
        let mut seen = [false; 5];
        let mut rng = TestRng::for_case(11, 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
    }
}
