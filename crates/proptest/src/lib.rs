//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the subset of proptest the test suites use: the `proptest!` macro with
//! `ident in strategy` bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, integer/float range strategies, tuples, `collection::vec`,
//! `bool::ANY`, `num::u8::ANY`, string-from-regex strategies (the small
//! character-class/quantifier subset actually used), plus the combinators
//! `Strategy::prop_map`, `Just`, and `prop_oneof!` (unweighted arms).
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case number and generated values left to the assertion message. Cases are
//! generated from a deterministic per-test seed, so failures reproduce
//! exactly across runs.

pub mod strategy;

pub mod test_runner;

pub mod collection;

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    pub use crate::strategy::BoolAny;
    /// Uniformly random `true`/`false`.
    pub const ANY: BoolAny = BoolAny;
}

/// Numeric strategies (`proptest::num::u8::ANY` and friends).
pub mod num {
    /// `u8` strategies.
    pub mod u8 {
        pub use crate::strategy::U8Any;
        /// Any `u8`, uniformly.
        pub const ANY: U8Any = U8Any;
    }
}

/// The traits and macros most tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run property-based tests.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..100, flag in proptest::bool::ANY) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal: expand each `fn name(args in strategies) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(
                ::core::module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__seed, __case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!("proptest case #{} of {}: {}", __case, stringify!($name), __msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure records the case and message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Uniform choice between strategies producing one value type
/// (upstream's `prop_oneof!`, unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::strategy::OneOf::new(::std::boxed::Box::new($first))
            $(.or(::std::boxed::Box::new($rest)))*
    };
}

/// Discard the current case (counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(
            a in 5u64..10,
            b in 0.0f64..=1.0,
            pair in (0usize..4, 1u32..3),
            flag in crate::bool::ANY,
            bytes in crate::collection::vec(crate::num::u8::ANY, 2..6),
            s in "/[a-z0-9]{1,5}",
        ) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(pair.0 < 4 && (1..3).contains(&pair.1));
            let _ = flag;
            prop_assert!(bytes.len() >= 2 && bytes.len() < 6);
            prop_assert!(s.starts_with('/'));
            prop_assert!(s.len() >= 2 && s.len() <= 6);
            prop_assert!(s[1..].chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_and_assume(x in 0u32..100) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
            prop_assert_eq!(x, x, "x = {}", x);
        }
    }

    proptest! {
        #[test]
        fn oneof_map_and_just_compose(
            v in crate::collection::vec(
                prop_oneof![(1u32..5).prop_map(|x| x * 10), Just(7u32)],
                1..30,
            ),
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == 7 || (x % 10 == 0 && (10..50).contains(&x))));
        }
    }

    #[test]
    fn oneof_draws_every_arm() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop_oneof![Just(0u8), Just(1u8)];
        let mut seen = [false; 2];
        for case in 0..64 {
            seen[strat.generate(&mut TestRng::for_case(17, case)) as usize] = true;
        }
        assert_eq!(seen, [true, true], "one arm was never selected");
    }

    #[test]
    #[should_panic(expected = "proptest case #")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let a: Vec<Vec<u64>> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case(99, c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..10)
            .map(|c| strat.generate(&mut TestRng::for_case(99, c)))
            .collect();
        assert_eq!(a, b);
    }
}
