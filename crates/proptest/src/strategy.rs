//! Value-generation strategies.
//!
//! A [`Strategy`] produces one value per call from the deterministic
//! [`TestRng`]; there is no shrinking in this vendored subset.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of generated values for `proptest!` bindings.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (upstream `Strategy::prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// Always yields a clone of the wrapped value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice between heterogeneous strategies sharing one value
/// type — what the [`prop_oneof!`](crate::prop_oneof) macro builds.
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Start from the first alternative (arms are never empty).
    pub fn new(first: Box<dyn Strategy<Value = V>>) -> OneOf<V> {
        OneOf {
            options: vec![first],
        }
    }

    /// Add one more alternative.
    pub fn or(mut self, next: Box<dyn Strategy<Value = V>>) -> OneOf<V> {
        self.options.push(next);
        self
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                // Map the 53-bit draw onto [lo, hi]: scale by span / (max+1)
                // then clamp, which reaches both endpoints.
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategy for `bool` (`proptest::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for `u8` (`proptest::num::u8::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct U8Any;

impl Strategy for U8Any {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        rng.below(256) as u8
    }
}

/// String-from-regex strategies: a `&str` pattern is itself a strategy, as
/// upstream. Supports the subset this workspace's tests use — literal
/// characters, `[...]` classes of single characters and `a-z` ranges, and
/// `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers (`*`/`+` capped at 8 repeats).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal (possibly escaped).
        let atom: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class in pattern")
                    + i;
                let set = expand_class(&chars[i + 1..close]);
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier in pattern")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("bad quantifier"),
                        n.parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let m = spec.parse::<usize>().expect("bad quantifier");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let reps = min + rng.below((max - min + 1) as u128) as usize;
        for _ in 0..reps {
            let pick = rng.below(atom.len() as u128) as usize;
            out.push(atom[pick]);
        }
    }
    out
}

/// Expand the inside of a `[...]` class into its member characters.
fn expand_class(body: &[char]) -> Vec<char> {
    assert!(
        body.first() != Some(&'^'),
        "negated character classes are not supported"
    );
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i] == '\\' {
            set.push(body[i + 1]);
            i += 2;
        } else if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "inverted range in character class");
            for c in lo..=hi {
                set.push(char::from_u32(c).expect("valid char range"));
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class");
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_expansion_handles_ranges_and_literals() {
        let set = expand_class(&"a-c/._-".chars().collect::<Vec<_>>());
        assert_eq!(set, vec!['a', 'b', 'c', '/', '.', '_', '-']);
    }

    #[test]
    fn trailing_dash_is_literal() {
        // `[a-z0-9/._-]` — the final `-` must parse as a literal member.
        let set = expand_class(&"a-z0-9/._-".chars().collect::<Vec<_>>());
        assert!(set.contains(&'-') && set.contains(&'q') && set.contains(&'7'));
        assert_eq!(set.len(), 26 + 10 + 4);
    }

    #[test]
    fn pattern_generation_respects_quantifiers() {
        let mut rng = TestRng::for_case(5, 0);
        for _ in 0..200 {
            let s = generate_from_pattern("/[a-z0-9/._-]{1,40}", &mut rng);
            assert!(s.starts_with('/'));
            assert!(s.len() >= 2 && s.len() <= 41, "len {}", s.len());
        }
        let s = generate_from_pattern("ab{3}c?", &mut rng);
        assert!(s.starts_with("abbb"));
    }

    #[test]
    fn inclusive_float_range_hits_interior() {
        let mut rng = TestRng::for_case(6, 0);
        for _ in 0..100 {
            let v = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&v));
        }
    }
}
