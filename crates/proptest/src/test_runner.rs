//! Test-runner plumbing: configuration, the per-case RNG, and the error
//! type `prop_assert!`/`prop_assume!` thread out of a test body.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exercising each property across a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// How a single generated case ended, when it did not simply pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(&'static str),
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

/// FNV-1a over a string — stable seed derivation from a test's path.
pub const fn fnv1a(label: &str) -> u64 {
    let bytes = label.as_bytes();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    h
}

/// Deterministic per-case generator (xoshiro256++ seeded by SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The generator for case number `case` of the test seeded with `seed`.
    pub fn for_case(seed: u64, case: u64) -> TestRng {
        let mut sm = seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)` (`span` > 0).
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        // 128-bit widening multiply avoids modulo bias for every span the
        // strategies here produce.
        let wide = (self.next_u64() as u128) * span;
        wide >> 64
    }
}
