#![warn(missing_docs)]
//! # voxel-testkit
//!
//! Deterministic simulation testing (DST) for the VOXEL stack
//! (DESIGN.md §11). Every trial in this workspace is already a
//! deterministic discrete-event simulation; this crate turns that property
//! into a test harness:
//!
//! - [`scenario`]: a compact, round-trippable spec language
//!   (`"BBB:VOXEL:tmobile:buf1:n2:loss@60+5x0.3"`) naming one scenario —
//!   (video × system × trace family × buffer × queue) plus optional
//!   injected faults — and a [`Matrix`](scenario::Matrix) that expands
//!   cartesian products of those axes from one-line specs.
//! - [`oracle`]: per-trial invariants every scenario must satisfy
//!   (stall accounting consistent with the traced timeline, QoE within
//!   per-family bounds, transport counters coherent) checked against both
//!   the [`TrialResult`](voxel_core::TrialResult) and the raw JSONL
//!   timeline.
//! - [`runner`]: runs a scenario's trials through
//!   [`voxel_core::experiment::run_instrumented_trial`] with the timeline
//!   captured in memory, the scenario's [`FaultPlane`](voxel_netem::FaultPlane)
//!   armed, and all oracles applied.
//! - [`sweep`]: runs every scenario across K seeds; on failure, shrinks to
//!   the smallest failing `(seed, trial-count, trace-prefix)` triple and
//!   emits a ready-to-paste `#[test]` reproduction.
//! - [`digest`]: stable FNV-1a digests of canonical scenario timelines,
//!   verified against `tests/golden/` and re-blessed with `VOXEL_BLESS=1`.
//!
//! The tier-2 entry point is `cargo run --release -p voxel-bench --bin
//! conformance`; `tests/testkit.rs` and `tests/golden_digests.rs` keep a
//! bounded slice of the same checks in tier-1.

pub mod digest;
pub mod fleet;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod sweep;

pub use digest::{
    check_or_bless, fnv64, run_golden, timeline_digest, GoldenScenario, GoldenStatus,
};
pub use fleet::{
    canonical_fleet_sessions, canonical_fleets, edge_hot_invariants, fleet_invariants,
    run_fleet_golden, run_fleet_golden_with_workers, shard_parity_failures, FleetGoldenRun,
    EDGE_HOT_HIT_RATIO_FLOOR, EDGE_HOT_ORIGIN_FRACTION_OF_COLD, EDGE_HOT_ORIGIN_LOAD_CEILING_PCT,
};
pub use oracle::Bounds;
pub use runner::{run_scenario, Content, ScenarioRun, TrialRun};
pub use scenario::{
    system_by_name, video_by_name, Inject, Matrix, Scenario, TraceFamily, TraceFault,
};
pub use sweep::{minimize, run_sweep, Repro, SweepOptions, SweepReport};
