//! Golden timeline digests.
//!
//! Identically-seeded runs emit byte-identical JSONL timelines (the
//! determinism contract `tests/tracing.rs` pins), so a stable 64-bit
//! digest of the timeline is a regression tripwire for the *entire*
//! cross-layer event sequence: any change to packet scheduling, ABR
//! decisions, stall timing or event emission shows up as a digest
//! mismatch. Canonical digests live under `tests/golden/` and are
//! re-blessed with `VOXEL_BLESS=1 cargo test` after intentional behavior
//! changes.

use crate::scenario::Scenario;
use std::path::Path;

/// FNV-1a 64-bit hash (stable across platforms and releases, no
/// dependency on `std`'s unstable hasher internals).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of one timeline: content hash plus event count (the count makes
/// mismatch reports actionable — "same events, different payloads" vs
/// "different event sequence").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    /// FNV-1a 64 over the raw JSONL bytes.
    pub hash: u64,
    /// Number of timeline lines.
    pub events: usize,
}

/// Digest a raw JSONL timeline.
pub fn timeline_digest(jsonl: &[u8]) -> Digest {
    Digest {
        hash: fnv64(jsonl),
        events: jsonl.iter().filter(|&&b| b == b'\n').count(),
    }
}

/// One canonical golden scenario.
#[derive(Debug, Clone, Copy)]
pub struct GoldenScenario {
    /// Stable file stem under `tests/golden/`.
    pub name: &'static str,
    /// Scenario spec (single trial).
    pub spec: &'static str,
    /// The seed the golden run uses.
    pub seed: u64,
}

/// The canonical scenarios whose digests are committed. Kept cheap (one
/// trial each) and diverse: reliable vs split transport, comfortable vs
/// starved constant rates, a seeded cellular trace, and a packet-fault
/// plane.
pub fn canonical_scenarios() -> Vec<GoldenScenario> {
    vec![
        GoldenScenario {
            name: "bola-const8",
            spec: "BBB:BOLA:const8",
            seed: 1,
        },
        GoldenScenario {
            name: "voxel-const3",
            spec: "BBB:VOXEL:const3",
            seed: 1,
        },
        GoldenScenario {
            name: "voxel-tmobile-buf1",
            spec: "ToS:VOXEL:tmobile:buf1",
            seed: 2021,
        },
        GoldenScenario {
            name: "bolassim-att",
            spec: "ED:BOLA-SSIM:att",
            seed: 7,
        },
        GoldenScenario {
            name: "voxel-lossburst",
            spec: "BBB:VOXEL:const5:loss@40+10x0.2",
            seed: 11,
        },
    ]
}

/// Outcome of a golden check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenStatus {
    /// The digest matched the committed golden.
    Matched,
    /// `VOXEL_BLESS=1`: the golden file was (re)written.
    Blessed,
}

/// Whether this process runs in bless mode.
pub fn blessing() -> bool {
    std::env::var("VOXEL_BLESS").as_deref() == Ok("1")
}

fn golden_line(g: &GoldenScenario, d: Digest) -> String {
    format!(
        "fnv64:{:016x} events:{} seed:{} spec:{}\n",
        d.hash, d.events, g.seed, g.spec
    )
}

/// Verify `jsonl`'s digest against `golden_dir/<name>.digest`, or rewrite
/// the file when `VOXEL_BLESS=1`.
pub fn check_or_bless(
    golden_dir: &Path,
    g: &GoldenScenario,
    jsonl: &[u8],
) -> Result<GoldenStatus, String> {
    let line = golden_line(g, timeline_digest(jsonl));
    let path = golden_dir.join(format!("{}.digest", g.name));
    if blessing() {
        std::fs::create_dir_all(golden_dir)
            .map_err(|e| format!("cannot create {}: {e}", golden_dir.display()))?;
        std::fs::write(&path, &line)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        return Ok(GoldenStatus::Blessed);
    }
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "no golden digest at {} ({e}); run `VOXEL_BLESS=1 cargo test golden` to create it",
            path.display()
        )
    })?;
    if committed == line {
        Ok(GoldenStatus::Matched)
    } else {
        Err(format!(
            "golden digest mismatch for {}:\n  committed: {}  observed:  {}\
             If the behavior change is intentional, re-bless with VOXEL_BLESS=1.",
            g.name,
            committed.trim_end().to_owned() + "\n",
            line
        ))
    }
}

/// Run one golden scenario and digest its (single) trial timeline.
pub fn run_golden(
    g: &GoldenScenario,
    content: &mut crate::runner::Content,
) -> Result<(Vec<u8>, Vec<String>), String> {
    let scenario = Scenario::parse(g.spec)?;
    let run = crate::runner::run_scenario(&scenario, g.seed, content)?;
    let timeline = run
        .trials
        .into_iter()
        .next()
        .map(|t| t.timeline)
        .ok_or_else(|| format!("golden {} produced no trials", g.name))?;
    Ok((timeline, run.failures))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_counts_lines_and_separates_content() {
        let a = timeline_digest(b"{\"t\":1}\n{\"t\":2}\n");
        assert_eq!(a.events, 2);
        let b = timeline_digest(b"{\"t\":1}\n{\"t\":3}\n");
        assert_eq!(b.events, 2);
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn canonical_scenarios_parse_and_are_single_trial() {
        let all = canonical_scenarios();
        assert!(all.len() >= 4, "need at least 4 committed goldens");
        let mut names: Vec<&str> = all.iter().map(|g| g.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "golden names must be unique");
        for g in &all {
            let s = Scenario::parse(g.spec).expect(g.spec);
            assert_eq!(s.trials, 1, "{} must stay cheap", g.name);
        }
    }

    #[test]
    fn bless_then_check_round_trips() {
        let dir = std::env::temp_dir().join(format!("voxel-golden-{}", std::process::id()));
        let g = GoldenScenario {
            name: "unit",
            spec: "BBB:BOLA:const8",
            seed: 1,
        };
        let jsonl = b"{\"t\":1}\n";
        // Write the golden directly (env-var bless mode is exercised by
        // tests/golden_digests.rs; mutating the env here would race other
        // tests in this binary).
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::fs::write(
            dir.join("unit.digest"),
            golden_line(&g, timeline_digest(jsonl)),
        )
        .expect("write golden");
        assert_eq!(
            check_or_bless(&dir, &g, jsonl).expect("clean check"),
            GoldenStatus::Matched
        );
        let err = check_or_bless(&dir, &g, b"{\"t\":2}\n").expect_err("mismatch");
        assert!(err.contains("mismatch"), "{err}");
        let missing = GoldenScenario { name: "nope", ..g };
        let err = check_or_bless(&dir, &missing, jsonl).expect_err("missing");
        assert!(err.contains("VOXEL_BLESS=1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
