//! The scenario spec language and the configuration matrix.
//!
//! A scenario names one experiment configuration plus optional injected
//! faults, in a compact colon-separated form that round-trips through
//! [`Scenario::spec`] / [`Scenario::parse`] — the failure minimizer leans
//! on that round-trip to emit copy-pasteable reproductions:
//!
//! ```text
//! <video>:<system>:<trace>[:buf<N>][:q<N>][:n<N>][:d<N>][:prefix<N>]
//!     [:loss@<start>+<len>x<prob>]
//!     [:reorder@<start>+<len>x<prob>~<ms>]
//!     [:dup@<start>+<len>x<prob>~<ms>]
//!     [:cliff@<at>x<factor>]
//!     [:stuck@<at>+<len>]
//!     [:inject=stall_skew]
//! ```
//!
//! e.g. `BBB:VOXEL:tmobile:buf1:n2:loss@60+5x0.3`. Defaults: `buf3`,
//! `q32`, `n1`, `d300`, no prefix, no faults. Trace families are either
//! synthetic (`const<mbps>`, `step<before>-<after>@<at>`) or the seeded §5
//! generators (`tmobile`, `verizon`, `att`, `3g`, `fcc`, `wifi`).

use voxel_media::content::VideoId;
use voxel_netem::fault::{cliff, stuck};
use voxel_netem::trace::generators;
use voxel_netem::{BandwidthTrace, FaultKind};

/// One axis value: which bandwidth trace family a scenario runs over.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceFamily {
    /// Constant rate in Mbps (`const8`, `const3.5`).
    Constant(f64),
    /// Step from `before` to `after` Mbps at `at_s` (`step8-2@60`).
    Step {
        /// Rate before the step, Mbps.
        before: f64,
        /// Rate after the step, Mbps.
        after: f64,
        /// Step time, seconds.
        at_s: usize,
    },
    /// T-Mobile LTE generator (violent swings, deep fades).
    TMobile,
    /// Verizon LTE generator.
    Verizon,
    /// AT&T LTE generator (moderate variation).
    Att,
    /// Norway 3G commute generator (mild variation).
    Norway3g,
    /// FCC fixed-line generator (slow variation).
    Fcc,
    /// In-the-wild WiFi generator.
    WildWifi,
}

impl TraceFamily {
    /// Parse a trace token (`const8`, `step8-2@60`, `tmobile`, …).
    pub fn parse(tok: &str) -> Result<TraceFamily, String> {
        match tok {
            "tmobile" => return Ok(TraceFamily::TMobile),
            "verizon" => return Ok(TraceFamily::Verizon),
            "att" => return Ok(TraceFamily::Att),
            "3g" => return Ok(TraceFamily::Norway3g),
            "fcc" => return Ok(TraceFamily::Fcc),
            "wifi" => return Ok(TraceFamily::WildWifi),
            _ => {}
        }
        if let Some(rate) = tok.strip_prefix("const") {
            let mbps: f64 = rate
                .parse()
                .map_err(|_| format!("bad constant-trace rate in {tok:?}"))?;
            // NaN must be rejected too, so compare against the valid side.
            if mbps <= 0.0 || !mbps.is_finite() {
                return Err(format!("constant-trace rate must be positive in {tok:?}"));
            }
            return Ok(TraceFamily::Constant(mbps));
        }
        if let Some(body) = tok.strip_prefix("step") {
            let (rates, at) = body
                .split_once('@')
                .ok_or_else(|| format!("step trace needs @<at_s> in {tok:?}"))?;
            let (before, after) = rates
                .split_once('-')
                .ok_or_else(|| format!("step trace needs <before>-<after> in {tok:?}"))?;
            return Ok(TraceFamily::Step {
                before: before
                    .parse()
                    .map_err(|_| format!("bad step before-rate in {tok:?}"))?,
                after: after
                    .parse()
                    .map_err(|_| format!("bad step after-rate in {tok:?}"))?,
                at_s: at
                    .parse()
                    .map_err(|_| format!("bad step time in {tok:?}"))?,
            });
        }
        Err(format!(
            "unknown trace family {tok:?} (const<mbps>, step<a>-<b>@<s>, tmobile, verizon, att, 3g, fcc, wifi)"
        ))
    }

    /// The canonical spec token (inverse of [`TraceFamily::parse`]).
    pub fn token(&self) -> String {
        match self {
            TraceFamily::Constant(m) => format!("const{m}"),
            TraceFamily::Step {
                before,
                after,
                at_s,
            } => format!("step{before}-{after}@{at_s}"),
            TraceFamily::TMobile => "tmobile".into(),
            TraceFamily::Verizon => "verizon".into(),
            TraceFamily::Att => "att".into(),
            TraceFamily::Norway3g => "3g".into(),
            TraceFamily::Fcc => "fcc".into(),
            TraceFamily::WildWifi => "wifi".into(),
        }
    }

    /// Materialize the trace. Synthetic families ignore `seed`; the §5
    /// generators derive everything from it, so distinct sweep seeds
    /// explore distinct (but reproducible) bandwidth processes.
    pub fn build(&self, seed: u64, duration_s: usize) -> BandwidthTrace {
        match *self {
            TraceFamily::Constant(mbps) => BandwidthTrace::constant(mbps, duration_s),
            TraceFamily::Step {
                before,
                after,
                at_s,
            } => BandwidthTrace::step(before, after, at_s, duration_s),
            TraceFamily::TMobile => generators::tmobile_lte(seed, duration_s),
            TraceFamily::Verizon => generators::verizon_lte(seed, duration_s),
            TraceFamily::Att => generators::att_lte(seed, duration_s),
            TraceFamily::Norway3g => generators::norway_3g(seed, duration_s),
            TraceFamily::Fcc => generators::fcc(seed, duration_s),
            TraceFamily::WildWifi => generators::wild_wifi(seed, duration_s),
        }
    }
}

/// A deterministic transform of the bandwidth trace itself (as opposed to
/// the packet-level [`FaultKind`]s).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceFault {
    /// Multiply every sample from `at_s` onward by `factor`
    /// (`cliff@120x0.25`).
    Cliff {
        /// Cliff time, seconds.
        at_s: usize,
        /// Multiplier applied to the tail.
        factor: f64,
    },
    /// Freeze the sample at `at_s` for `len_s` seconds (`stuck@60+20`).
    Stuck {
        /// Freeze time, seconds.
        at_s: usize,
        /// Freeze length, seconds.
        len_s: usize,
    },
}

impl TraceFault {
    /// Apply this transform to `trace`.
    pub fn apply(&self, trace: &BandwidthTrace) -> BandwidthTrace {
        match *self {
            TraceFault::Cliff { at_s, factor } => cliff(trace, at_s, factor),
            TraceFault::Stuck { at_s, len_s } => stuck(trace, at_s, len_s),
        }
    }
}

/// A deliberate bug armed inside the stack — the sweep's canary targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Skew the player's stall accounting by +100 ms per stall
    /// ([`voxel_core::Config::debug_stall_skew`]); the timeline drift
    /// oracle must catch it.
    StallSkew,
}

/// One fully-specified test scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The video to stream.
    pub video: VideoId,
    /// System under test, by §5 legend name (`BOLA`, `VOXEL`, …).
    pub system: String,
    /// Bandwidth trace family.
    pub trace: TraceFamily,
    /// Playback buffer capacity in segments.
    pub buffer_segments: usize,
    /// Droptail queue length in packets.
    pub queue_packets: usize,
    /// Trials (trace shifted by `d/n` each, per the §5 protocol).
    pub trials: usize,
    /// Trace duration in seconds.
    pub duration_s: usize,
    /// Optional trace-prefix truncation (the minimizer's shrink axis).
    pub trace_prefix_s: Option<usize>,
    /// Packet-level fault windows.
    pub faults: Vec<FaultKind>,
    /// Trace-level fault transforms.
    pub trace_faults: Vec<TraceFault>,
    /// Armed canary, if any.
    pub inject: Option<Inject>,
    /// Oracle-bounds override (defaults derive from the scenario shape).
    pub bounds: Option<crate::oracle::Bounds>,
}

// The §5 legend name tables (system → (ABR, transport), video names) live
// canonically in voxel-fleet's spec module so scenario specs and fleet
// specs can never disagree; re-exported here for the testkit surface.
pub use voxel_fleet::spec::{system_by_name, video_by_name};

/// Parse `<start>+<len>` (both numbers).
fn parse_window(body: &str, tok: &str) -> Result<(f64, f64), String> {
    let (start, len) = body
        .split_once('+')
        .ok_or_else(|| format!("fault window needs <start>+<len> in {tok:?}"))?;
    Ok((
        start
            .parse()
            .map_err(|_| format!("bad window start in {tok:?}"))?,
        len.parse()
            .map_err(|_| format!("bad window length in {tok:?}"))?,
    ))
}

impl Scenario {
    /// A scenario with the workspace defaults (`buf3:q32:n1:d300`).
    pub fn new(video: VideoId, system: impl Into<String>, trace: TraceFamily) -> Scenario {
        Scenario {
            video,
            system: system.into(),
            trace,
            buffer_segments: 3,
            queue_packets: 32,
            trials: 1,
            duration_s: 300,
            trace_prefix_s: None,
            faults: Vec::new(),
            trace_faults: Vec::new(),
            inject: None,
            bounds: None,
        }
    }

    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<Scenario, String> {
        let mut parts = spec.split(':');
        let video_tok = parts.next().unwrap_or_default();
        let video = video_by_name(video_tok)
            .ok_or_else(|| format!("unknown video {video_tok:?} in {spec:?}"))?;
        let system = parts
            .next()
            .ok_or_else(|| format!("spec {spec:?} is missing the system token"))?;
        system_by_name(system).ok_or_else(|| format!("unknown system {system:?} in {spec:?}"))?;
        let trace_tok = parts
            .next()
            .ok_or_else(|| format!("spec {spec:?} is missing the trace token"))?;
        let mut s = Scenario::new(video, system, TraceFamily::parse(trace_tok)?);

        for tok in parts {
            // Longest prefixes first: `dup@`/`prefix` must win over the
            // single-letter `d`/`q`/`n` numeric tokens.
            if let Some(v) = tok.strip_prefix("buf") {
                s.buffer_segments = v.parse().map_err(|_| format!("bad buffer in {tok:?}"))?;
            } else if let Some(v) = tok.strip_prefix("prefix") {
                s.trace_prefix_s = Some(v.parse().map_err(|_| format!("bad prefix in {tok:?}"))?);
            } else if let Some(body) = tok.strip_prefix("loss@") {
                let (window, prob) = body
                    .split_once('x')
                    .ok_or_else(|| format!("loss fault needs x<prob> in {tok:?}"))?;
                let (start_s, len_s) = parse_window(window, tok)?;
                s.faults.push(FaultKind::LossBurst {
                    start_s,
                    len_s,
                    prob: prob
                        .parse()
                        .map_err(|_| format!("bad loss probability in {tok:?}"))?,
                });
            } else if let Some(body) = tok
                .strip_prefix("reorder@")
                .map(|b| (b, false))
                .or_else(|| tok.strip_prefix("dup@").map(|b| (b, true)))
            {
                let (body, is_dup) = body;
                let (rest, ms) = body
                    .split_once('~')
                    .ok_or_else(|| format!("fault needs ~<ms> in {tok:?}"))?;
                let (window, prob) = rest
                    .split_once('x')
                    .ok_or_else(|| format!("fault needs x<prob> in {tok:?}"))?;
                let (start_s, len_s) = parse_window(window, tok)?;
                let extra_ms = ms.parse().map_err(|_| format!("bad delay in {tok:?}"))?;
                let prob: f64 = prob
                    .parse()
                    .map_err(|_| format!("bad probability in {tok:?}"))?;
                s.faults.push(if is_dup {
                    FaultKind::Duplicate {
                        start_s,
                        len_s,
                        extra_ms,
                        prob,
                    }
                } else {
                    FaultKind::Reorder {
                        start_s,
                        len_s,
                        extra_ms,
                        prob,
                    }
                });
            } else if let Some(body) = tok.strip_prefix("cliff@") {
                let (at, factor) = body
                    .split_once('x')
                    .ok_or_else(|| format!("cliff needs x<factor> in {tok:?}"))?;
                s.trace_faults.push(TraceFault::Cliff {
                    at_s: at
                        .parse()
                        .map_err(|_| format!("bad cliff time in {tok:?}"))?,
                    factor: factor
                        .parse()
                        .map_err(|_| format!("bad cliff factor in {tok:?}"))?,
                });
            } else if let Some(body) = tok.strip_prefix("stuck@") {
                let (at, len) = body
                    .split_once('+')
                    .ok_or_else(|| format!("stuck needs <at>+<len> in {tok:?}"))?;
                s.trace_faults.push(TraceFault::Stuck {
                    at_s: at
                        .parse()
                        .map_err(|_| format!("bad stuck time in {tok:?}"))?,
                    len_s: len
                        .parse()
                        .map_err(|_| format!("bad stuck length in {tok:?}"))?,
                });
            } else if let Some(what) = tok.strip_prefix("inject=") {
                s.inject = Some(match what {
                    "stall_skew" => Inject::StallSkew,
                    _ => return Err(format!("unknown injection {what:?} in {spec:?}")),
                });
            } else if let Some(v) = tok.strip_prefix("q") {
                s.queue_packets = v.parse().map_err(|_| format!("bad queue in {tok:?}"))?;
            } else if let Some(v) = tok.strip_prefix("n") {
                s.trials = v
                    .parse()
                    .map_err(|_| format!("bad trial count in {tok:?}"))?;
            } else if let Some(v) = tok.strip_prefix("d") {
                s.duration_s = v.parse().map_err(|_| format!("bad duration in {tok:?}"))?;
            } else {
                return Err(format!("unknown token {tok:?} in {spec:?}"));
            }
        }
        if s.trials == 0 || s.duration_s == 0 {
            return Err(format!("{spec:?}: trials and duration must be nonzero"));
        }
        Ok(s)
    }

    /// The canonical spec string (round-trips through [`Scenario::parse`]).
    pub fn spec(&self) -> String {
        let mut out = format!(
            "{}:{}:{}:buf{}:q{}:n{}:d{}",
            self.video.short_name(),
            self.system,
            self.trace.token(),
            self.buffer_segments,
            self.queue_packets,
            self.trials,
            self.duration_s,
        );
        if let Some(p) = self.trace_prefix_s {
            out.push_str(&format!(":prefix{p}"));
        }
        for f in &self.faults {
            match *f {
                FaultKind::LossBurst {
                    start_s,
                    len_s,
                    prob,
                } => {
                    out.push_str(&format!(":loss@{start_s}+{len_s}x{prob}"));
                }
                FaultKind::Reorder {
                    start_s,
                    len_s,
                    extra_ms,
                    prob,
                } => out.push_str(&format!(":reorder@{start_s}+{len_s}x{prob}~{extra_ms}")),
                FaultKind::Duplicate {
                    start_s,
                    len_s,
                    extra_ms,
                    prob,
                } => out.push_str(&format!(":dup@{start_s}+{len_s}x{prob}~{extra_ms}")),
            }
        }
        for f in &self.trace_faults {
            match *f {
                TraceFault::Cliff { at_s, factor } => {
                    out.push_str(&format!(":cliff@{at_s}x{factor}"));
                }
                TraceFault::Stuck { at_s, len_s } => {
                    out.push_str(&format!(":stuck@{at_s}+{len_s}"));
                }
            }
        }
        if let Some(Inject::StallSkew) = self.inject {
            out.push_str(":inject=stall_skew");
        }
        out
    }

    /// Short display name (the identifying axes only).
    pub fn name(&self) -> String {
        format!(
            "{}:{}:{}:buf{}",
            self.video.short_name(),
            self.system,
            self.trace.token(),
            self.buffer_segments
        )
    }

    /// The fully-materialized trace for `seed`: family build, then trace
    /// faults in declaration order, then the prefix truncation.
    pub fn build_trace(&self, seed: u64) -> BandwidthTrace {
        let mut t = self.trace.build(seed, self.duration_s);
        for f in &self.trace_faults {
            t = f.apply(&t);
        }
        if let Some(p) = self.trace_prefix_s {
            t = t.prefix(p);
        }
        t
    }

    /// Builder: override the trial count.
    pub fn with_trials(mut self, n: usize) -> Scenario {
        self.trials = n;
        self
    }

    /// Builder: truncate the trace to its first `seconds`.
    pub fn with_trace_prefix(mut self, seconds: usize) -> Scenario {
        self.trace_prefix_s = Some(seconds);
        self
    }

    /// Builder: add packet faults.
    pub fn with_faults(mut self, faults: Vec<FaultKind>) -> Scenario {
        self.faults = faults;
        self
    }

    /// Builder: arm a canary.
    pub fn with_inject(mut self, inject: Inject) -> Scenario {
        self.inject = Some(inject);
        self
    }

    /// Builder: override the oracle bounds.
    pub fn with_bounds(mut self, bounds: crate::oracle::Bounds) -> Scenario {
        self.bounds = Some(bounds);
        self
    }
}

/// A cartesian product of scenario axes, from a one-line spec:
///
/// ```text
/// systems=BOLA,VOXEL traces=const8,tmobile buffers=1,3 queues=32 trials=2
/// ```
///
/// `videos` (default `BBB`), `buffers` (default `3`), `queues` (default
/// `32`), `trials` (default `1`) and `duration` (default `300`) are
/// optional; `systems` and `traces` are required.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Videos axis.
    pub videos: Vec<VideoId>,
    /// Systems axis (legend names).
    pub systems: Vec<String>,
    /// Trace families axis.
    pub traces: Vec<TraceFamily>,
    /// Buffer-capacity axis, segments.
    pub buffers: Vec<usize>,
    /// Queue-length axis, packets.
    pub queues: Vec<usize>,
    /// Trials per scenario.
    pub trials: usize,
    /// Trace duration, seconds.
    pub duration_s: usize,
}

impl Matrix {
    /// Parse a whitespace-separated `key=v1,v2,…` matrix spec.
    pub fn parse(spec: &str) -> Result<Matrix, String> {
        let mut m = Matrix {
            videos: vec![VideoId::Bbb],
            systems: Vec::new(),
            traces: Vec::new(),
            buffers: vec![3],
            queues: vec![32],
            trials: 1,
            duration_s: 300,
        };
        for tok in spec.split_whitespace() {
            let (key, vals) = tok
                .split_once('=')
                .ok_or_else(|| format!("matrix token {tok:?} is not key=values"))?;
            let list: Vec<&str> = vals.split(',').filter(|v| !v.is_empty()).collect();
            if list.is_empty() {
                return Err(format!("matrix axis {key:?} has no values"));
            }
            match key {
                "videos" => {
                    m.videos = list
                        .iter()
                        .map(|v| video_by_name(v).ok_or_else(|| format!("unknown video {v:?}")))
                        .collect::<Result<_, _>>()?;
                }
                "systems" => {
                    for v in &list {
                        system_by_name(v).ok_or_else(|| format!("unknown system {v:?}"))?;
                    }
                    m.systems = list.iter().map(|v| v.to_string()).collect();
                }
                "traces" => {
                    m.traces = list
                        .iter()
                        .map(|v| TraceFamily::parse(v))
                        .collect::<Result<_, _>>()?;
                }
                "buffers" => {
                    m.buffers = Self::parse_usizes(&list, key)?;
                }
                "queues" => {
                    m.queues = Self::parse_usizes(&list, key)?;
                }
                "trials" => {
                    m.trials = Self::parse_usizes(&list, key)?
                        .first()
                        .copied()
                        .unwrap_or(1);
                }
                "duration" => {
                    m.duration_s = Self::parse_usizes(&list, key)?
                        .first()
                        .copied()
                        .unwrap_or(300);
                }
                _ => return Err(format!("unknown matrix axis {key:?}")),
            }
        }
        if m.systems.is_empty() || m.traces.is_empty() {
            return Err("matrix needs at least systems= and traces=".into());
        }
        Ok(m)
    }

    fn parse_usizes(list: &[&str], key: &str) -> Result<Vec<usize>, String> {
        list.iter()
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad {key} value {v:?}"))
            })
            .collect()
    }

    /// Expand to the full cartesian product, in axis order
    /// (video, system, trace, buffer, queue).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &video in &self.videos {
            for system in &self.systems {
                for trace in &self.traces {
                    for &buf in &self.buffers {
                        for &q in &self.queues {
                            let mut s = Scenario::new(video, system.clone(), trace.clone());
                            s.buffer_segments = buf;
                            s.queue_packets = q;
                            s.trials = self.trials;
                            s.duration_s = self.duration_s;
                            out.push(s);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_core::TransportMode;

    #[test]
    fn minimal_spec_gets_defaults() {
        let s = Scenario::parse("BBB:VOXEL:tmobile").expect("parses");
        assert_eq!(s.video, VideoId::Bbb);
        assert_eq!(s.system, "VOXEL");
        assert_eq!(s.trace, TraceFamily::TMobile);
        assert_eq!(
            (s.buffer_segments, s.queue_packets, s.trials, s.duration_s),
            (3, 32, 1, 300)
        );
        assert!(s.faults.is_empty() && s.trace_faults.is_empty() && s.inject.is_none());
    }

    #[test]
    fn full_spec_round_trips() {
        let spec = "ToS:BOLA-SSIM:step8-2@60:buf1:q64:n4:d120:prefix45:\
                    loss@60+5x0.3:reorder@10+2x0.5~40:dup@20+2x0.25~15:\
                    cliff@90x0.5:stuck@30+10:inject=stall_skew";
        let s = Scenario::parse(spec).expect("parses");
        assert_eq!(s.spec(), spec.replace(['\n', ' '], ""));
        let again = Scenario::parse(&s.spec()).expect("re-parses");
        assert_eq!(s, again);
        assert_eq!(s.faults.len(), 3);
        assert_eq!(s.trace_faults.len(), 2);
        assert_eq!(s.inject, Some(Inject::StallSkew));
        assert_eq!(s.trace_prefix_s, Some(45));
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("XYZ:BOLA:const8", "unknown video"),
            ("BBB:NOPE:const8", "unknown system"),
            ("BBB:BOLA:warp9", "unknown trace"),
            ("BBB:BOLA:const8:zzz", "unknown token"),
            ("BBB:BOLA:const8:loss@60x0.3", "<start>+<len>"),
            ("BBB:BOLA:const8:inject=divide_by_zero", "unknown injection"),
            ("BBB:BOLA:const8:n0", "nonzero"),
            ("BBB:BOLA", "missing the trace"),
        ] {
            let err = Scenario::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn trace_families_build_requested_durations() {
        for tok in [
            "const8",
            "const3.5",
            "step8-2@60",
            "tmobile",
            "verizon",
            "att",
            "3g",
            "fcc",
            "wifi",
        ] {
            let f = TraceFamily::parse(tok).expect(tok);
            assert_eq!(f.token(), tok);
            let t = f.build(1, 120);
            assert_eq!(t.duration_s(), 120, "{tok}");
            // Seeded families vary with the seed; synthetic ones don't.
            let other = f.build(2, 120);
            match f {
                TraceFamily::Constant(_) | TraceFamily::Step { .. } => assert_eq!(t, other),
                _ => assert_ne!(t.mbps, other.mbps, "{tok} ignores the seed"),
            }
        }
    }

    #[test]
    fn build_trace_applies_faults_then_prefix() {
        let s = Scenario::parse("BBB:BOLA:const8:d100:cliff@50x0.5:prefix60").expect("parses");
        let t = s.build_trace(0);
        assert_eq!(t.duration_s(), 60);
        assert_eq!(t.mbps[49], 8.0);
        assert_eq!(t.mbps[59], 4.0);
    }

    #[test]
    fn matrix_expands_the_cartesian_product() {
        let m = Matrix::parse(
            "videos=BBB,ED systems=BOLA,VOXEL traces=const8,tmobile buffers=1,3 queues=32,750 trials=2 duration=120",
        )
        .expect("parses");
        let all = m.scenarios();
        assert_eq!(all.len(), 2 * 2 * 2 * 2 * 2);
        assert!(all.iter().all(|s| s.trials == 2 && s.duration_s == 120));
        // Every scenario spec is unique and re-parseable.
        let mut specs: Vec<String> = all.iter().map(Scenario::spec).collect();
        specs.sort();
        specs.dedup();
        assert_eq!(specs.len(), all.len());
        for spec in &specs {
            Scenario::parse(spec).expect("matrix scenario re-parses");
        }
    }

    #[test]
    fn matrix_requires_systems_and_traces() {
        assert!(Matrix::parse("systems=BOLA").is_err());
        assert!(Matrix::parse("traces=const8").is_err());
        assert!(Matrix::parse("systems=BOLA traces=const8").is_ok());
    }

    #[test]
    fn system_table_matches_the_bench_legend() {
        for (name, transport) in [
            ("BOLA", TransportMode::Reliable),
            ("BOLA-SSIM", TransportMode::Split),
            ("MPC", TransportMode::Reliable),
            ("MPC*", TransportMode::Split),
            ("Tput", TransportMode::Reliable),
            ("BETA", TransportMode::Reliable),
            ("VOXEL", TransportMode::Split),
            ("VOXEL-tuned", TransportMode::Split),
            ("VOXEL-rel", TransportMode::Reliable),
        ] {
            let (_, t) = system_by_name(name).expect(name);
            assert_eq!(t, transport, "{name}");
        }
        assert!(system_by_name("XYZ").is_none());
    }

    #[test]
    fn videos_resolve_by_legend_name() {
        assert_eq!(video_by_name("BBB"), Some(VideoId::Bbb));
        assert_eq!(video_by_name("P10"), Some(VideoId::YouTube(10)));
        assert_eq!(video_by_name("P11"), None);
        assert_eq!(video_by_name("Q1"), None);
    }
}
