//! Run scenarios through the real experiment pipeline, timeline captured.
//!
//! Every trial goes through
//! [`voxel_core::experiment::run_instrumented_trial`] — the same path
//! shaping, player wiring and ABR instantiation as the figure harness —
//! with a JSONL tracer writing into memory and the scenario's fault plane
//! armed. All oracles run against each trial; violations accumulate on
//! the returned [`ScenarioRun`].
//!
//! Every trial's sink is teed through a [`FlightRecorder`]
//! (DESIGN.md §13): when an oracle fires, the trial's last events are
//! rendered into a pasteable postmortem on
//! [`ScenarioRun::postmortems`], and the recorder is installed on the
//! running thread so `paranoid` audits deep in the event loop dump the
//! same context before panicking.

use crate::oracle::{self, Bounds};
use crate::scenario::{system_by_name, Inject, Scenario};
use std::sync::Arc;
use voxel_core::experiment::run_instrumented_trial;
use voxel_core::{ContentCache, Experiment, TrialResult};
use voxel_media::content::VideoId;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_netem::FaultPlane;
use voxel_obs::FlightRecorder;
use voxel_prep::manifest::Manifest;
use voxel_trace::{JsonlSink, SharedBuf, Tracer};

/// Prepared-content cache shared across scenarios (§4.1 preparation is
/// one-time per video; the testkit prepares the top analyzed level only,
/// which every system in the legend can stream). Thin wrapper over
/// [`ContentCache::top_level_only`] so fleet scenarios and session
/// scenarios share one store.
pub struct Content {
    cache: ContentCache,
}

impl Default for Content {
    fn default() -> Content {
        Content::new()
    }
}

impl Content {
    /// Empty cache with the default QoE model.
    pub fn new() -> Content {
        Content {
            cache: ContentCache::top_level_only(),
        }
    }

    /// Get (or prepare) a video + manifest.
    pub fn get(&mut self, id: VideoId) -> (Arc<Manifest>, Arc<Video>, QoeModel) {
        let (m, v) = self.cache.get(id);
        (m, v, self.cache.qoe())
    }

    /// The underlying shared cache (what fleet runs take).
    pub fn cache(&self) -> &ContentCache {
        &self.cache
    }
}

/// One executed trial: its result and its captured timeline.
pub struct TrialRun {
    /// Trace shift of this trial (doubles as the session id).
    pub shift_s: usize,
    /// The trial result.
    pub result: TrialResult,
    /// The raw JSONL timeline.
    pub timeline: Vec<u8>,
}

/// One executed scenario across its trials.
pub struct ScenarioRun {
    /// The scenario's canonical spec.
    pub spec: String,
    /// The sweep seed the scenario ran under.
    pub seed: u64,
    /// All trials, in shift order.
    pub trials: Vec<TrialRun>,
    /// Oracle violations, each prefixed with the offending trial.
    pub failures: Vec<String>,
    /// Flight-recorder postmortems, one per failing trial: the last
    /// ring-buffered events plus profiler state at the moment the
    /// oracles fired (empty when every trial passed).
    pub postmortems: Vec<String>,
}

impl ScenarioRun {
    /// Whether every oracle passed on every trial.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run all trials of `scenario` under `seed`, applying every oracle.
///
/// Determinism contract: the same `(scenario, seed)` pair produces
/// byte-identical timelines and results on every run — trace
/// construction, fault-plane draws and the simulation itself all derive
/// from the pair alone.
pub fn run_scenario(
    scenario: &Scenario,
    seed: u64,
    content: &mut Content,
) -> Result<ScenarioRun, String> {
    let (abr, transport) = system_by_name(&scenario.system)
        .ok_or_else(|| format!("unknown system {:?}", scenario.system))?;
    let trace = scenario.build_trace(seed);
    let (manifest, video, qoe) = content.get(scenario.video);

    let config = Experiment::builder()
        .video(scenario.video)
        .abr(abr)
        .transport(transport)
        .buffer(scenario.buffer_segments)
        .trace(trace)
        .trials(scenario.trials)
        .queue(scenario.queue_packets)
        .debug_stall_skew(scenario.inject == Some(Inject::StallSkew))
        .build()
        .into_config();

    let bounds = Bounds::for_scenario(scenario);
    let d = config.trace.duration_s();
    let n = scenario.trials.max(1);
    let mut run = ScenarioRun {
        spec: scenario.spec(),
        seed,
        trials: Vec::with_capacity(n),
        failures: Vec::new(),
        postmortems: Vec::new(),
    };
    for i in 0..n {
        let shift = i * d / n;
        let buf = SharedBuf::new();
        // Tee the JSONL sink through a flight recorder so a failing trial
        // can replay its final events without re-running anything.
        let recorder = FlightRecorder::new(
            format!("spec={} seed={seed} trial={i} shift={shift}s", run.spec),
            voxel_obs::DEFAULT_CAPACITY,
        );
        let tracer = Tracer::new(
            shift as u64,
            Box::new(recorder.wrap(Box::new(JsonlSink::to_writer(Box::new(buf.clone()))))),
        );
        // Each trial gets its own plane stream so faults land on its own
        // packet sequence, still fully determined by (seed, trial).
        let faults = (!scenario.faults.is_empty())
            .then(|| FaultPlane::new(seed ^ ((i as u64) << 32), scenario.faults.clone()));
        let result = {
            // Bound to the thread for the duration of the trial so
            // paranoid audits can dump this recorder with no plumbing.
            let _bound = voxel_obs::install_recorder(&recorder);
            run_instrumented_trial(&config, &manifest, &video, &qoe, shift, tracer, faults)
        };
        let timeline = buf.contents();

        let mut violations = oracle::trial_invariants(&result);
        violations.extend(oracle::timeline_invariants(&timeline, &result));
        violations.extend(bounds.check(&result));
        if let Some(first) = violations.first() {
            run.postmortems
                .push(recorder.postmortem(&format!("trial {i} (shift {shift}s): {first}")));
        }
        run.failures.extend(
            violations
                .into_iter()
                .map(|v| format!("trial {i} (shift {shift}s): {v}")),
        );
        run.trials.push(TrialRun {
            shift_s: shift,
            result,
            timeline,
        });
    }
    Ok(run)
}
