//! Fleet conformance: oracles and golden digests for multi-session runs.
//!
//! A fleet run is a pure function of its [`FleetSpec`] (no sweep seed —
//! the spec fixes the timeline byte-for-byte), so the golden machinery
//! reuses [`crate::digest::check_or_bless`] with `seed: 0`. Oracles check
//! the cross-session properties single-session oracles cannot see:
//! conservation of link shares, fairness of homogeneous fleets, and
//! per-flow starvation.

use crate::digest::GoldenScenario;
use crate::runner::Content;
use voxel_fleet::{run_fleet, FleetResult, FleetSpec};
use voxel_obs::FlightRecorder;
use voxel_trace::{JsonlSink, SharedBuf, Tracer};

/// Homogeneous fleets must land at least this fair (Jain index) — CUBIC
/// flows with identical ABRs on one DRR link have no excuse not to.
pub const HOMOGENEOUS_JAIN_FLOOR: f64 = 0.8;

/// Homogeneous floor for all-delay fleets. Delay-based control has the
/// classic intra-protocol late-comer problem: a flow that arrives after
/// the queue has standing delay under-estimates its fair window, so even
/// identical delay flows on one FIFO converge slower and less evenly
/// than loss- or model-based ones. The band is looser, not absent.
pub const DELAY_HOMOGENEOUS_JAIN_FLOOR: f64 = 0.7;

/// The homogeneous fairness floor for a fleet running entirely on `cc`
/// — the per-cc leg of the cc-mix-parameterized fairness band.
pub fn homogeneous_jain_floor(cc: voxel_fleet::CcKind) -> f64 {
    match cc {
        voxel_fleet::CcKind::Delay => DELAY_HOMOGENEOUS_JAIN_FLOOR,
        _ => HOMOGENEOUS_JAIN_FLOOR,
    }
}

/// Fairness band for same-ABR fleets that differ only in congestion
/// control (`@cc` groups). Mixed-cc contention is *expected* to be
/// unfair — BBR's model-based window does not back off the way CUBIC
/// does — so these fleets answer to a looser floor instead of escaping
/// fairness oracles entirely.
pub const MIXED_CC_JAIN_FLOOR: f64 = 0.4;

/// Per-cc-group starvation floor: in a mixed-cc fleet, every cc group's
/// *mean* per-flow link share must stay above this fraction of the fair
/// share (`100/n` percent). Catches one controller collectively crushing
/// another even when no single flow is starved to zero bytes.
pub const CC_GROUP_SHARE_FRACTION: f64 = 0.25;

/// A *hot* edge fleet — full admission, hash routing, an unbounded
/// cache, every session on one video — must serve at least this fraction
/// of lookups from cache: only the leader session's distinct objects can
/// miss, so 16 same-video sessions have a ceiling of 1/16 misses.
pub const EDGE_HOT_HIT_RATIO_FLOOR: f64 = 0.9;

/// A hot edge fleet's origin traffic must stay at or below this fraction
/// of the equivalent cold (admission `none`) fleet's — the flash crowd is
/// absorbed by the cache, not forwarded.
pub const EDGE_HOT_ORIGIN_FRACTION_OF_COLD: f64 = 0.1;

/// Origin-load ceiling for hot edge fleets, percent of the run's
/// duration spent busy: a warm cache leaves the backhaul mostly idle.
pub const EDGE_HOT_ORIGIN_LOAD_CEILING_PCT: f64 = 25.0;

/// The canonical fleet specs whose digests are committed. One mixed
/// 8-session fleet (the acceptance scenario: 4 VOXEL, 2 BOLA, 2 BETA on
/// a shared 6 Mbit/s DRR link), one homogeneous VOXEL fleet pinning the
/// fairness floor, one capped 64-session mixed fleet exercising the
/// sharded runtime at scale (staggered starts, droptail pressure, the
/// cap-freeze path — everything the parity suite must hold byte-stable
/// across worker counts), plus the congestion-control pair: an all-BBR
/// homogeneous fleet and a BBR-vs-CUBIC contention mix on a FIFO
/// droptail link (DRR would referee the contention away). The
/// `edge4x16` pair exercises the edge serving tier (DESIGN.md §16): 16
/// same-video sessions over 4 hash-routed edges, once *hot* (full
/// admission — the cache absorbs the crowd and the hit ratio must clear
/// [`EDGE_HOT_HIT_RATIO_FLOOR`]) and once *cold* (admission `none` —
/// every object rides the origin backhaul, pinning the flash-crowd
/// degradation path).
pub fn canonical_fleets() -> Vec<GoldenScenario> {
    vec![
        GoldenScenario {
            name: "fleet-mixed8",
            spec: "BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2",
            seed: 0,
        },
        GoldenScenario {
            name: "fleet-voxel8",
            spec: "BBB:8xVOXEL:const6:buf3:q64:d300:drr:stg2",
            seed: 0,
        },
        GoldenScenario {
            name: "fleet-mixed64",
            spec: "BBB:28xVOXEL+20xBOLA+16xBETA:const48:buf3:q256:d120:drr:stg1:cap90",
            seed: 0,
        },
        GoldenScenario {
            name: "fleet-bbr8",
            spec: "BBB:8xVOXEL@bbr:const6:buf3:q64:d300:drr:stg2",
            seed: 0,
        },
        GoldenScenario {
            name: "fleet-ccmix8",
            spec: "BBB:4xVOXEL@bbr+4xVOXEL@cubic:const6:buf3:q64:d300:fifo:stg2",
            seed: 0,
        },
        GoldenScenario {
            name: "fleet-edge4x16-hot",
            spec: "BBB:16xVOXEL:const24:buf3:q128:d120:drr:stg0:cap90:e4:rhash:afull:plru:o50",
            seed: 0,
        },
        GoldenScenario {
            name: "fleet-edge4x16-cold",
            spec: "BBB:16xVOXEL:const24:buf3:q128:d120:drr:stg0:cap90:e4:rhash:anone:plru:o50",
            seed: 0,
        },
    ]
}

/// Expected session count per canonical fleet (keeps the spec strings
/// honest in tests and sizes parity sweeps).
pub fn canonical_fleet_sessions(name: &str) -> usize {
    match name {
        "fleet-mixed64" => 64,
        "fleet-edge4x16-hot" | "fleet-edge4x16-cold" => 16,
        _ => 8,
    }
}

/// Cross-session invariants every fleet run must satisfy. Returns
/// violations (empty = all oracles passed).
pub fn fleet_invariants(spec: &FleetSpec, r: &FleetResult) -> Vec<String> {
    let mut v = Vec::new();
    let n = spec.total_sessions();
    if r.sessions.len() != n {
        v.push(format!(
            "fleet produced {} session results for {} members",
            r.sessions.len(),
            n
        ));
    }
    if r.flows.len() != n {
        v.push(format!(
            "fleet produced {} flow stats for {} members",
            r.flows.len(),
            n
        ));
    }
    // An explicit cap (`:cap<N>`) deliberately freezes stragglers, so
    // completion is only an invariant for uncapped fleets.
    if spec.cap_s.is_none() && !r.all_completed() {
        let stuck: Vec<usize> = r
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.completed)
            .map(|(i, _)| i)
            .collect();
        v.push(format!("sessions {stuck:?} did not complete"));
    }
    let share_sum: f64 = r.shares_pct.iter().sum();
    if (share_sum - 100.0).abs() > 1e-6 {
        v.push(format!("flow shares sum to {share_sum}, not 100"));
    }
    if !(0.0..=1.0 + 1e-12).contains(&r.jain) {
        v.push(format!("Jain index {} outside [0, 1]", r.jain));
    }
    // The fairness band is parameterized by the fleet's cc mix: one
    // system on one cc answers to the strict homogeneous floor; one
    // system split across cc groups answers to the looser mixed-cc
    // floor; fleets mixing ABR systems have no Jain floor at all (their
    // fairness is a *finding*, not an invariant).
    let members = spec.session_members();
    let one_system = members.iter().all(|m| m.system == members[0].system);
    let mix = spec.cc_mix();
    if spec.homogeneous() {
        let floor = homogeneous_jain_floor(mix[0]);
        if r.jain < floor {
            v.push(format!(
                "homogeneous {}@{} fleet has Jain {:.3} < {floor}",
                spec.members[0].system,
                mix[0].name(),
                r.jain
            ));
        }
    } else if one_system && mix.len() > 1 && r.jain < MIXED_CC_JAIN_FLOOR {
        v.push(format!(
            "mixed-cc {} fleet ({mix:?}) has Jain {:.3} < {MIXED_CC_JAIN_FLOOR}",
            spec.members[0].system, r.jain
        ));
    }
    for (i, f) in r.flows.iter().enumerate() {
        if f.bytes_delivered == 0 {
            v.push(format!("flow {i} was starved (0 bytes delivered)"));
        }
    }
    // Per-cc-group starvation: no controller may collectively crush
    // another below a fraction of fair share, even if every individual
    // flow still moves some bytes.
    if mix.len() > 1 && r.shares_pct.len() == n {
        let fair = 100.0 / n as f64;
        for kind in &mix {
            let shares: Vec<f64> = members
                .iter()
                .zip(&r.shares_pct)
                .filter(|(m, _)| m.cc_kind() == *kind)
                .map(|(_, s)| *s)
                .collect();
            let mean = shares.iter().sum::<f64>() / shares.len() as f64;
            if mean < fair * CC_GROUP_SHARE_FRACTION {
                v.push(format!(
                    "cc group {} starved: mean share {mean:.2}% < {:.2}% \
                     ({CC_GROUP_SHARE_FRACTION} of fair share)",
                    kind.name(),
                    fair * CC_GROUP_SHARE_FRACTION
                ));
            }
        }
    }
    // Per-flow conservation: everything enqueued is either delivered or
    // still unaccounted-for queue residue at teardown — never invented.
    for (i, f) in r.flows.iter().enumerate() {
        if f.delivered > f.enqueued {
            v.push(format!(
                "flow {i} delivered {} packets but enqueued only {}",
                f.delivered, f.enqueued
            ));
        }
    }
    // Edge tier consistency: a topology spec must produce a report (and
    // only then), with every session routed, per-edge counters summing
    // to the fleet-wide ones, and admission `none` never hitting.
    match (&spec.edge, &r.edge) {
        (None, None) => {}
        (Some(_), None) => v.push("edge topology spec produced no edge report".into()),
        (None, Some(_)) => v.push("edge report without an edge topology spec".into()),
        (Some(t), Some(e)) => {
            if e.edges.len() != t.edges {
                v.push(format!(
                    "edge report covers {} edges for a topology of {}",
                    e.edges.len(),
                    t.edges
                ));
            }
            let routed: usize = e.edges.iter().map(|s| s.sessions).sum();
            if routed != n {
                v.push(format!("{routed} sessions routed to edges, fleet has {n}"));
            }
            let (hits, misses): (u64, u64) = e
                .edges
                .iter()
                .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
            if (hits, misses) != (e.hits, e.misses) {
                v.push(format!(
                    "per-edge hit/miss ({hits}/{misses}) disagree with fleet-wide ({}/{})",
                    e.hits, e.misses
                ));
            }
            let origin: u64 = e.edges.iter().map(|s| s.origin_bytes).sum();
            if origin != e.origin_bytes {
                v.push(format!(
                    "per-edge origin bytes {origin} disagree with backhaul total {}",
                    e.origin_bytes
                ));
            }
            if e.hits + e.misses == 0 {
                v.push("edge tier saw no lookups from a streaming fleet".into());
            }
            if !(0.0..=100.0 + 1e-9).contains(&e.hit_ratio_pct) {
                v.push(format!(
                    "edge hit ratio {}% outside [0, 100]",
                    e.hit_ratio_pct
                ));
            }
            if t.admission == voxel_core::Admission::None && e.hits > 0 {
                v.push(format!(
                    "admission `none` edge tier reported {} cache hits",
                    e.hits
                ));
            }
        }
    }
    v
}

/// Oracles specific to a *hot* edge fleet (full admission, hash routing,
/// unbounded cache, one video): the cache must absorb the crowd. Applied
/// to the hot golden and the `edge_sweep --smoke` acceptance gate — not
/// folded into [`fleet_invariants`], because generated zipf workloads
/// legitimately run colder.
pub fn edge_hot_invariants(r: &FleetResult) -> Vec<String> {
    let mut v = Vec::new();
    let Some(e) = &r.edge else {
        return vec!["hot edge fleet produced no edge report".into()];
    };
    if e.hit_ratio() < EDGE_HOT_HIT_RATIO_FLOOR {
        v.push(format!(
            "hot edge hit ratio {:.3} below the {EDGE_HOT_HIT_RATIO_FLOOR} floor",
            e.hit_ratio()
        ));
    }
    if e.origin_load_pct > EDGE_HOT_ORIGIN_LOAD_CEILING_PCT {
        v.push(format!(
            "hot edge origin load {:.1}% above the {EDGE_HOT_ORIGIN_LOAD_CEILING_PCT}% ceiling",
            e.origin_load_pct
        ));
    }
    v
}

/// One executed golden fleet: its timeline, oracle verdict, the full
/// [`FleetResult`], and — when an oracle fired — the flight-recorder
/// postmortem of the run's tail.
pub struct FleetGoldenRun {
    /// The raw JSONL timeline (what the digest is taken over).
    pub timeline: Vec<u8>,
    /// Cross-session oracle violations (empty = passed).
    pub failures: Vec<String>,
    /// Last-events dump, present exactly when `failures` is non-empty.
    pub postmortem: Option<String>,
    /// The run's metrics, for cross-worker-count parity comparison.
    pub result: FleetResult,
}

/// Run one golden fleet, its sink teed through a flight recorder.
pub fn run_fleet_golden(g: &GoldenScenario, content: &Content) -> Result<FleetGoldenRun, String> {
    run_fleet_golden_with_workers(g, content, None)
}

/// [`run_fleet_golden`] at an explicit shard worker count (`None` defers
/// to the spec / `VOXEL_SHARD_WORKERS`). The parity harness runs the same
/// golden at several counts and demands byte-identical timelines.
pub fn run_fleet_golden_with_workers(
    g: &GoldenScenario,
    content: &Content,
    workers: Option<usize>,
) -> Result<FleetGoldenRun, String> {
    let mut spec = FleetSpec::parse(g.spec).map_err(|e| e.to_string())?;
    if workers.is_some() {
        spec.workers = workers;
    }
    let buf = SharedBuf::new();
    let recorder = FlightRecorder::new(
        format!("fleet={} spec={}", g.name, g.spec),
        voxel_obs::DEFAULT_CAPACITY,
    );
    let tracer = Tracer::new(
        0,
        Box::new(recorder.wrap(Box::new(JsonlSink::to_writer(Box::new(buf.clone()))))),
    );
    let result = {
        let _bound = voxel_obs::install_recorder(&recorder);
        run_fleet(&spec, content.cache(), tracer)?
    };
    let failures = fleet_invariants(&spec, &result);
    let postmortem = failures.first().map(|first| recorder.postmortem(first));
    Ok(FleetGoldenRun {
        timeline: buf.contents(),
        failures,
        postmortem,
        result,
    })
}

/// Deterministic-parity oracle: run `g` at every worker count in
/// `counts` and compare each run against the first, byte-for-byte on the
/// timeline and field-by-field on the [`FleetResult`]. Returns the first
/// count's run (whose timeline is the digest candidate) and the
/// violations (empty = sharding is unobservable, as the determinism
/// contract demands).
pub fn shard_parity_failures(
    g: &GoldenScenario,
    content: &Content,
    counts: &[usize],
) -> Result<(FleetGoldenRun, Vec<String>), String> {
    let mut v = Vec::new();
    let mut reference: Option<(usize, FleetGoldenRun)> = None;
    for &w in counts {
        let run = run_fleet_golden_with_workers(g, content, Some(w))?;
        for f in &run.failures {
            v.push(format!("{} w={w}: oracle: {f}", g.name));
        }
        let Some((w0, base)) = &reference else {
            reference = Some((w, run));
            continue;
        };
        if run.timeline != base.timeline {
            let byte = run
                .timeline
                .iter()
                .zip(base.timeline.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| run.timeline.len().min(base.timeline.len()));
            v.push(format!(
                "{} w={w}: timeline diverges from w={w0} at byte {byte} \
                 ({} vs {} bytes total)",
                g.name,
                run.timeline.len(),
                base.timeline.len()
            ));
        }
        let (a, b) = (&run.result, &base.result);
        if a.loop_iters != b.loop_iters {
            v.push(format!(
                "{} w={w}: loop_iters {} != {} at w={w0}",
                g.name, a.loop_iters, b.loop_iters
            ));
        }
        if a.end_s != b.end_s {
            v.push(format!(
                "{} w={w}: end_s {} != {} at w={w0}",
                g.name, a.end_s, b.end_s
            ));
        }
        if a.jain != b.jain {
            v.push(format!(
                "{} w={w}: jain {} != {} at w={w0}",
                g.name, a.jain, b.jain
            ));
        }
        if a.shares_pct != b.shares_pct {
            v.push(format!("{} w={w}: flow shares differ from w={w0}", g.name));
        }
        if a.flows != b.flows {
            v.push(format!(
                "{} w={w}: per-flow link stats differ from w={w0}",
                g.name
            ));
        }
        if a.edge != b.edge {
            v.push(format!("{} w={w}: edge report differs from w={w0}", g.name));
        }
        for (i, (sa, sb)) in a.sessions.iter().zip(b.sessions.iter()).enumerate() {
            let same = sa.completed == sb.completed
                && sa.stall_s == sb.stall_s
                && sa.bytes_downloaded == sb.bytes_downloaded
                && sa.avg_ssim() == sb.avg_ssim()
                && sa.transport.packets_sent == sb.transport.packets_sent
                && sa.transport.packets_lost == sb.transport.packets_lost;
            if !same {
                v.push(format!(
                    "{} w={w}: session {i} result differs from w={w0}",
                    g.name
                ));
            }
        }
    }
    let (_, base) = reference.ok_or("parity sweep needs at least one worker count")?;
    Ok((base, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_core::TrialResult;
    use voxel_netem::FlowStats;

    fn fake_result(spec: &FleetSpec, delivered: &[u64]) -> FleetResult {
        let total: u64 = delivered.iter().sum();
        FleetResult {
            spec: spec.spec(),
            sessions: delivered
                .iter()
                .map(|_| TrialResult {
                    completed: true,
                    ..TrialResult::default()
                })
                .collect(),
            flows: delivered
                .iter()
                .map(|&b| FlowStats {
                    enqueued: 10,
                    dropped: 0,
                    delivered: 10,
                    bytes_delivered: b,
                })
                .collect(),
            shares_pct: delivered
                .iter()
                .map(|&b| 100.0 * b as f64 / total as f64)
                .collect(),
            jain: voxel_fleet::jain_index(&delivered.iter().map(|&b| b as f64).collect::<Vec<_>>()),
            end_s: 100.0,
            loop_iters: 1,
            edge: None,
        }
    }

    #[test]
    fn canonical_fleets_parse_and_are_unique() {
        let all = canonical_fleets();
        let mut names: Vec<&str> = all.iter().map(|g| g.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        for g in &all {
            let s = FleetSpec::parse(g.spec).expect(g.spec);
            assert_eq!(s.spec(), g.spec, "{} must be canonical", g.name);
            assert_eq!(s.total_sessions(), canonical_fleet_sessions(g.name));
        }
    }

    #[test]
    fn fleet_oracles_pass_on_a_fair_fleet() {
        let spec = FleetSpec::parse("BBB:2xVOXEL:const6").expect("spec");
        let r = fake_result(&spec, &[1000, 990]);
        assert_eq!(fleet_invariants(&spec, &r), Vec::<String>::new());
    }

    #[test]
    fn fleet_oracles_flag_unfair_and_starved_fleets() {
        let spec = FleetSpec::parse("BBB:2xVOXEL:const6").expect("spec");
        let mut r = fake_result(&spec, &[1000, 0]);
        // Starved flow 1: degenerate shares and a Jain of 0.5.
        r.shares_pct = vec![100.0, 0.0];
        let v = fleet_invariants(&spec, &r);
        assert!(v.iter().any(|m| m.contains("starved")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("Jain")), "{v:?}");

        let mut r = fake_result(&spec, &[1000, 1000]);
        r.sessions[1].completed = false;
        let v = fleet_invariants(&spec, &r);
        assert!(v.iter().any(|m| m.contains("did not complete")), "{v:?}");
    }

    /// The fairness band follows the cc mix: a same-ABR bbr+cubic fleet
    /// is held to the looser mixed-cc floor, not the homogeneous one —
    /// and not to nothing.
    #[test]
    fn mixed_cc_fleet_answers_to_the_relaxed_jain_floor() {
        let spec = FleetSpec::parse("BBB:2xVOXEL@bbr+2xVOXEL@cubic:const6").expect("spec");
        // Jain 0.757: unfair enough to fail the 0.8 homogeneous floor,
        // fair enough to clear the 0.4 mixed-cc floor.
        let r = fake_result(&spec, &[1000, 1000, 300, 300]);
        assert!(r.jain < HOMOGENEOUS_JAIN_FLOOR && r.jain > MIXED_CC_JAIN_FLOOR);
        assert_eq!(fleet_invariants(&spec, &r), Vec::<String>::new());
        // Jain 0.333: below even the mixed-cc band. (With 2 of 4 flows
        // equal-and-dominant Jain bottoms out at 0.5, so the sub-floor
        // case needs one runaway flow.)
        let r = fake_result(&spec, &[1000, 100, 30, 30]);
        assert!(r.jain < MIXED_CC_JAIN_FLOOR);
        let v = fleet_invariants(&spec, &r);
        assert!(v.iter().any(|m| m.contains("mixed-cc")), "{v:?}");
    }

    /// The edge consistency oracles: a topology spec demands a matching
    /// report, per-edge counters must sum to fleet-wide ones, and an
    /// admission-`none` tier can never hit. The hot-path oracle holds the
    /// cache to its hit-ratio floor and origin-load ceiling.
    #[test]
    fn edge_oracles_check_report_consistency() {
        use voxel_fleet::{EdgeReport, EdgeStats};
        let spec = FleetSpec::parse("BBB:2xVOXEL:const6:e2:rhash:afull:plru:o50").expect("spec");
        let mut r = fake_result(&spec, &[1000, 990]);
        let v = fleet_invariants(&spec, &r);
        assert!(v.iter().any(|m| m.contains("no edge report")), "{v:?}");

        let healthy = EdgeReport {
            edges: vec![
                EdgeStats {
                    sessions: 2,
                    hits: 95,
                    misses: 5,
                    origin_bytes: 5_000,
                    bytes_served: 100_000,
                    ..EdgeStats::default()
                },
                EdgeStats::default(),
            ],
            hits: 95,
            misses: 5,
            origin_bytes: 5_000,
            origin_fetches: 5,
            hit_ratio_pct: 95.0,
            origin_load_pct: 3.0,
            ..EdgeReport::default()
        };
        r.edge = Some(healthy.clone());
        assert_eq!(fleet_invariants(&spec, &r), Vec::<String>::new());
        assert_eq!(edge_hot_invariants(&r), Vec::<String>::new());

        // Books that don't balance: per-edge sums disagree fleet-wide.
        let mut cooked = healthy.clone();
        cooked.hits = 40;
        r.edge = Some(cooked);
        let v = fleet_invariants(&spec, &r);
        assert!(v.iter().any(|m| m.contains("disagree")), "{v:?}");

        // A cold tier claiming hits is lying.
        let cold = FleetSpec::parse("BBB:2xVOXEL:const6:e2:rhash:anone:plru:o50").expect("spec");
        r.edge = Some(healthy.clone());
        let v = fleet_invariants(&cold, &r);
        assert!(v.iter().any(|m| m.contains("admission `none`")), "{v:?}");

        // The hot oracle flags a cold cache and a busy backhaul.
        let mut lukewarm = healthy;
        lukewarm.hit_ratio_pct = 50.0;
        lukewarm.origin_load_pct = 80.0;
        r.edge = Some(lukewarm);
        let v = edge_hot_invariants(&r);
        assert!(v.iter().any(|m| m.contains("hit ratio")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("origin load")), "{v:?}");
    }

    /// The per-cc-group starvation oracle fires when one controller's
    /// flows are collectively crushed below a quarter of fair share,
    /// even though each flow individually still delivers bytes.
    #[test]
    fn cc_group_starvation_oracle_fires_per_mix() {
        let spec = FleetSpec::parse("BBB:2xVOXEL@bbr+2xVOXEL@cubic:const6").expect("spec");
        // cubic group mean share = 3% < 25% of the 25% fair share.
        let r = fake_result(&spec, &[470, 470, 30, 30]);
        let v = fleet_invariants(&spec, &r);
        assert!(
            v.iter().any(|m| m.contains("cc group cubic starved")),
            "{v:?}"
        );
        assert!(
            !v.iter().any(|m| m.contains("cc group bbr")),
            "bbr group is healthy: {v:?}"
        );
        // A single-cc fleet never triggers the group oracle.
        let homo = FleetSpec::parse("BBB:4xVOXEL@bbr:const6").expect("spec");
        let r = fake_result(&homo, &[500, 500, 480, 480]);
        assert_eq!(fleet_invariants(&homo, &r), Vec::<String>::new());
    }
}
