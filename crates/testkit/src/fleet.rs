//! Fleet conformance: oracles and golden digests for multi-session runs.
//!
//! A fleet run is a pure function of its [`FleetSpec`] (no sweep seed —
//! the spec fixes the timeline byte-for-byte), so the golden machinery
//! reuses [`crate::digest::check_or_bless`] with `seed: 0`. Oracles check
//! the cross-session properties single-session oracles cannot see:
//! conservation of link shares, fairness of homogeneous fleets, and
//! per-flow starvation.

use crate::digest::GoldenScenario;
use crate::runner::Content;
use voxel_fleet::{run_fleet, FleetResult, FleetSpec};
use voxel_obs::FlightRecorder;
use voxel_trace::{JsonlSink, SharedBuf, Tracer};

/// Homogeneous fleets must land at least this fair (Jain index) — CUBIC
/// flows with identical ABRs on one DRR link have no excuse not to.
pub const HOMOGENEOUS_JAIN_FLOOR: f64 = 0.8;

/// The canonical fleet specs whose digests are committed. One mixed
/// 8-session fleet (the acceptance scenario: 4 VOXEL, 2 BOLA, 2 BETA on
/// a shared 6 Mbit/s DRR link) and one homogeneous VOXEL fleet pinning
/// the fairness floor.
pub fn canonical_fleets() -> Vec<GoldenScenario> {
    vec![
        GoldenScenario {
            name: "fleet-mixed8",
            spec: "BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2",
            seed: 0,
        },
        GoldenScenario {
            name: "fleet-voxel8",
            spec: "BBB:8xVOXEL:const6:buf3:q64:d300:drr:stg2",
            seed: 0,
        },
    ]
}

/// Cross-session invariants every fleet run must satisfy. Returns
/// violations (empty = all oracles passed).
pub fn fleet_invariants(spec: &FleetSpec, r: &FleetResult) -> Vec<String> {
    let mut v = Vec::new();
    let n = spec.total_sessions();
    if r.sessions.len() != n {
        v.push(format!(
            "fleet produced {} session results for {} members",
            r.sessions.len(),
            n
        ));
    }
    if r.flows.len() != n {
        v.push(format!(
            "fleet produced {} flow stats for {} members",
            r.flows.len(),
            n
        ));
    }
    if !r.all_completed() {
        let stuck: Vec<usize> = r
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.completed)
            .map(|(i, _)| i)
            .collect();
        v.push(format!("sessions {stuck:?} did not complete"));
    }
    let share_sum: f64 = r.shares_pct.iter().sum();
    if (share_sum - 100.0).abs() > 1e-6 {
        v.push(format!("flow shares sum to {share_sum}, not 100"));
    }
    if !(0.0..=1.0 + 1e-12).contains(&r.jain) {
        v.push(format!("Jain index {} outside [0, 1]", r.jain));
    }
    if spec.homogeneous() && r.jain < HOMOGENEOUS_JAIN_FLOOR {
        v.push(format!(
            "homogeneous {} fleet has Jain {:.3} < {HOMOGENEOUS_JAIN_FLOOR}",
            spec.members[0].system, r.jain
        ));
    }
    for (i, f) in r.flows.iter().enumerate() {
        if f.bytes_delivered == 0 {
            v.push(format!("flow {i} was starved (0 bytes delivered)"));
        }
    }
    // Per-flow conservation: everything enqueued is either delivered or
    // still unaccounted-for queue residue at teardown — never invented.
    for (i, f) in r.flows.iter().enumerate() {
        if f.delivered > f.enqueued {
            v.push(format!(
                "flow {i} delivered {} packets but enqueued only {}",
                f.delivered, f.enqueued
            ));
        }
    }
    v
}

/// One executed golden fleet: its timeline, oracle verdict, and — when
/// an oracle fired — the flight-recorder postmortem of the run's tail.
pub struct FleetGoldenRun {
    /// The raw JSONL timeline (what the digest is taken over).
    pub timeline: Vec<u8>,
    /// Cross-session oracle violations (empty = passed).
    pub failures: Vec<String>,
    /// Last-events dump, present exactly when `failures` is non-empty.
    pub postmortem: Option<String>,
}

/// Run one golden fleet, its sink teed through a flight recorder.
pub fn run_fleet_golden(g: &GoldenScenario, content: &Content) -> Result<FleetGoldenRun, String> {
    let spec = FleetSpec::parse(g.spec)?;
    let buf = SharedBuf::new();
    let recorder = FlightRecorder::new(
        format!("fleet={} spec={}", g.name, g.spec),
        voxel_obs::DEFAULT_CAPACITY,
    );
    let tracer = Tracer::new(
        0,
        Box::new(recorder.wrap(Box::new(JsonlSink::to_writer(Box::new(buf.clone()))))),
    );
    let result = {
        let _bound = voxel_obs::install_recorder(&recorder);
        run_fleet(&spec, content.cache(), tracer)?
    };
    let failures = fleet_invariants(&spec, &result);
    let postmortem = failures.first().map(|first| recorder.postmortem(first));
    Ok(FleetGoldenRun {
        timeline: buf.contents(),
        failures,
        postmortem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_core::TrialResult;
    use voxel_netem::FlowStats;

    fn fake_result(spec: &FleetSpec, delivered: &[u64]) -> FleetResult {
        let total: u64 = delivered.iter().sum();
        FleetResult {
            spec: spec.spec(),
            sessions: delivered
                .iter()
                .map(|_| TrialResult {
                    completed: true,
                    ..TrialResult::default()
                })
                .collect(),
            flows: delivered
                .iter()
                .map(|&b| FlowStats {
                    enqueued: 10,
                    dropped: 0,
                    delivered: 10,
                    bytes_delivered: b,
                })
                .collect(),
            shares_pct: delivered
                .iter()
                .map(|&b| 100.0 * b as f64 / total as f64)
                .collect(),
            jain: voxel_fleet::jain_index(&delivered.iter().map(|&b| b as f64).collect::<Vec<_>>()),
            end_s: 100.0,
            loop_iters: 1,
        }
    }

    #[test]
    fn canonical_fleets_parse_and_are_unique() {
        let all = canonical_fleets();
        let mut names: Vec<&str> = all.iter().map(|g| g.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        for g in &all {
            let s = FleetSpec::parse(g.spec).expect(g.spec);
            assert_eq!(s.spec(), g.spec, "{} must be canonical", g.name);
            assert_eq!(s.total_sessions(), 8);
        }
    }

    #[test]
    fn fleet_oracles_pass_on_a_fair_fleet() {
        let spec = FleetSpec::parse("BBB:2xVOXEL:const6").expect("spec");
        let r = fake_result(&spec, &[1000, 990]);
        assert_eq!(fleet_invariants(&spec, &r), Vec::<String>::new());
    }

    #[test]
    fn fleet_oracles_flag_unfair_and_starved_fleets() {
        let spec = FleetSpec::parse("BBB:2xVOXEL:const6").expect("spec");
        let mut r = fake_result(&spec, &[1000, 0]);
        // Starved flow 1: degenerate shares and a Jain of 0.5.
        r.shares_pct = vec![100.0, 0.0];
        let v = fleet_invariants(&spec, &r);
        assert!(v.iter().any(|m| m.contains("starved")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("Jain")), "{v:?}");

        let mut r = fake_result(&spec, &[1000, 1000]);
        r.sessions[1].completed = false;
        let v = fleet_invariants(&spec, &r);
        assert!(v.iter().any(|m| m.contains("did not complete")), "{v:?}");
    }
}
