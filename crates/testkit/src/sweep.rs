//! Seed sweeps with automatic failure minimization.
//!
//! A sweep runs every scenario across K seeds. When a `(scenario, seed)`
//! pair fails its oracles, the minimizer shrinks it along two axes:
//!
//! 1. **trial count** — the smallest `n ≤ trials` that still fails
//!    (usually 1: the §5 protocol only shifts the trace per trial);
//! 2. **trace prefix** — binary search for the shortest trace prefix (to
//!    a configurable granularity) that still reproduces the failure.
//!
//! The result is a `(seed, trials, trace-prefix)` triple plus a
//! ready-to-paste `#[test]` function whose spec string round-trips the
//! entire shrunken scenario, faults and all.

use crate::runner::{run_scenario, Content};
use crate::scenario::Scenario;

/// A minimized failing reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// Canonical spec of the shrunken scenario (includes the prefix).
    pub spec: String,
    /// The failing seed.
    pub seed: u64,
    /// Minimized trial count.
    pub trials: usize,
    /// Minimized trace prefix, seconds.
    pub trace_prefix_s: usize,
    /// The violations the minimized scenario still produces.
    pub failures: Vec<String>,
}

impl Repro {
    /// The headline `(seed, trials, trace-prefix)` triple.
    pub fn triple(&self) -> String {
        format!(
            "(seed={}, trials={}, trace_prefix={}s)",
            self.seed, self.trials, self.trace_prefix_s
        )
    }

    /// A ready-to-paste `#[test]` reproducing the failure.
    pub fn test_source(&self) -> String {
        let fn_name: String = self
            .spec
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        format!(
            r#"#[test]
fn repro_{fn_name}_seed{seed}() {{
    // Minimized by the voxel-testkit sweep: {triple}
    let scenario = voxel_testkit::Scenario::parse("{spec}").expect("spec parses");
    let mut content = voxel_testkit::Content::new();
    let run = voxel_testkit::run_scenario(&scenario, {seed}, &mut content).expect("scenario runs");
    assert!(run.failures.is_empty(), "oracle violations: {{:#?}}", run.failures);
}}
"#,
            seed = self.seed,
            spec = self.spec,
            triple = self.triple(),
        )
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Seeds every scenario runs under.
    pub seeds: Vec<u64>,
    /// Whether to minimize failures (each probe re-runs the scenario).
    pub minimize: bool,
    /// Stop the prefix binary search once the bracket is this tight.
    pub prefix_granularity_s: usize,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            seeds: vec![1, 2, 3, 4, 5],
            minimize: true,
            prefix_granularity_s: 15,
        }
    }
}

/// One failing `(scenario, seed)` pair.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// The failing scenario's canonical spec.
    pub spec: String,
    /// The failing seed.
    pub seed: u64,
    /// Oracle violations from the full-size run.
    pub failures: Vec<String>,
    /// The minimized reproduction (when minimization was requested and
    /// converged).
    pub repro: Option<Repro>,
    /// Flight-recorder postmortem of the first failing trial: the last
    /// events before the oracle fired, pasteable into a bug report.
    pub postmortem: Option<String>,
}

/// Outcome of a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Total `(scenario, seed)` runs.
    pub runs: usize,
    /// Runs with no oracle violations.
    pub passed: usize,
    /// The failing runs.
    pub failures: Vec<SweepFailure>,
}

impl SweepReport {
    /// Whether every run passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `scenarios × seeds`, minimizing every failure.
pub fn run_sweep(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    content: &mut Content,
) -> Result<SweepReport, String> {
    let mut report = SweepReport::default();
    for scenario in scenarios {
        for &seed in &opts.seeds {
            let run = run_scenario(scenario, seed, content)?;
            report.runs += 1;
            if run.ok() {
                report.passed += 1;
                continue;
            }
            let repro = if opts.minimize {
                Some(minimize(
                    scenario,
                    seed,
                    opts.prefix_granularity_s,
                    content,
                )?)
            } else {
                None
            };
            report.failures.push(SweepFailure {
                spec: run.spec,
                seed,
                failures: run.failures,
                repro,
                postmortem: run.postmortems.into_iter().next(),
            });
        }
    }
    Ok(report)
}

/// Shrink a failing `(scenario, seed)` pair to the smallest failing
/// `(seed, trial-count, trace-prefix)` triple.
///
/// The trial axis is scanned upward (smallest failing count wins); the
/// prefix axis is binary-searched down to `granularity_s`, maintaining
/// the invariant that the upper bracket always fails — so the returned
/// prefix is a *verified* failing reproduction even if failures are not
/// monotone in trace length.
pub fn minimize(
    scenario: &Scenario,
    seed: u64,
    granularity_s: usize,
    content: &mut Content,
) -> Result<Repro, String> {
    let fails = |s: &Scenario, content: &mut Content| -> Result<Option<Vec<String>>, String> {
        let run = run_scenario(s, seed, content)?;
        Ok((!run.ok()).then_some(run.failures))
    };

    // Axis 1: smallest failing trial count.
    let mut best = scenario.clone();
    let mut best_failures = None;
    for n in 1..=scenario.trials {
        let candidate = scenario.clone().with_trials(n);
        if let Some(f) = fails(&candidate, content)? {
            best = candidate;
            best_failures = Some(f);
            break;
        }
    }
    let mut best_failures = match best_failures {
        Some(f) => f,
        // Only the full trial set fails (a cross-trial interaction);
        // re-verify it and keep every trial.
        None => fails(&best, content)?.ok_or_else(|| {
            format!(
                "minimize({}, seed {seed}): the full scenario no longer fails",
                scenario.spec()
            )
        })?,
    };

    // Axis 2: shortest failing trace prefix. `hi` always fails.
    let full = best.build_trace(seed).duration_s();
    let mut lo = 1usize;
    let mut hi = full;
    while hi - lo > granularity_s.max(1) {
        let mid = lo + (hi - lo) / 2;
        match fails(&best.clone().with_trace_prefix(mid), content)? {
            Some(f) => {
                hi = mid;
                best_failures = f;
            }
            None => lo = mid + 1,
        }
    }
    if hi < full {
        best = best.with_trace_prefix(hi);
    }
    Ok(Repro {
        spec: best.spec(),
        seed,
        trials: best.trials,
        trace_prefix_s: hi,
        failures: best_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_test_source_is_pasteable() {
        let r = Repro {
            spec: "BBB:VOXEL:tmobile:buf1:q32:n1:d300:prefix45:inject=stall_skew".into(),
            seed: 3,
            trials: 1,
            trace_prefix_s: 45,
            failures: vec!["stall accounting drift".into()],
        };
        let src = r.test_source();
        assert!(src.contains("#[test]"));
        assert!(src.contains(
            "fn repro_bbb_voxel_tmobile_buf1_q32_n1_d300_prefix45_inject_stall_skew_seed3()"
        ));
        assert!(src.contains(&r.spec));
        assert!(src.contains("(seed=3, trials=1, trace_prefix=45s)"));
        // The embedded spec round-trips through the parser.
        assert!(Scenario::parse(&r.spec).is_ok());
    }

    #[test]
    fn default_sweep_covers_five_seeds() {
        let o = SweepOptions::default();
        assert!(o.seeds.len() >= 5);
        assert!(o.minimize);
    }
}
