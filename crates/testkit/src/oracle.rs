//! Per-trial oracles: result invariants, timeline cross-checks, and
//! scenario-shaped QoE bounds.
//!
//! Three layers, all returning a list of human-readable violations (empty
//! = pass):
//!
//! - [`trial_invariants`]: properties every [`TrialResult`] must satisfy
//!   regardless of scenario — finite non-negative accounting, coherent
//!   transport counters, recovery never exceeding loss.
//! - [`timeline_invariants`]: the traced JSONL is an *independently
//!   emitted* record of the same trial, so the oracle recomputes stall
//!   time from `stall_end` events and checks it against the result's
//!   `stall_s` — any accounting drift between the player's counter and
//!   its own timeline is a bug (this is what catches the
//!   [`Inject::StallSkew`](crate::scenario::Inject) canary).
//! - [`Bounds`]: graceful-degradation envelopes derived from the scenario
//!   shape (generous by design: they must hold across every sweep seed,
//!   and exist to catch collapse, not to pin figures — `tests/paper_claims.rs`
//!   owns the quantitative claims).

use crate::scenario::{Scenario, TraceFamily};
use voxel_core::TrialResult;

/// QoE envelope a scenario's trials must stay inside.
#[derive(Debug, Clone, PartialEq)]
pub struct Bounds {
    /// Maximum tolerated bufRatio, percent.
    pub max_buf_ratio_pct: f64,
    /// Minimum tolerated mean SSIM.
    pub min_mean_ssim: f64,
    /// Maximum tolerated startup delay, seconds.
    pub max_startup_s: f64,
    /// Whether the trial must finish all 75 segments (vs hitting the
    /// session safety cap).
    pub require_complete: bool,
}

impl Bounds {
    /// The loosest envelope: only completion is required.
    pub fn lenient() -> Bounds {
        Bounds {
            max_buf_ratio_pct: f64::INFINITY,
            min_mean_ssim: 0.0,
            max_startup_s: f64::INFINITY,
            require_complete: true,
        }
    }

    /// Derive the envelope from the scenario shape. Comfortable constant
    /// traces must play nearly clean; faulted or cellular scenarios only
    /// have to degrade gracefully (finish, keep watchable quality).
    pub fn for_scenario(s: &Scenario) -> Bounds {
        if let Some(b) = &s.bounds {
            return b.clone();
        }
        let faulted = !s.faults.is_empty() || !s.trace_faults.is_empty();
        let mut b = Bounds {
            max_buf_ratio_pct: 60.0,
            min_mean_ssim: 0.5,
            max_startup_s: 60.0,
            require_complete: true,
        };
        if let TraceFamily::Constant(mbps) = s.trace {
            if mbps >= 6.0 && !faulted && s.buffer_segments >= 3 {
                b.max_buf_ratio_pct = 15.0;
                b.min_mean_ssim = 0.75;
                b.max_startup_s = 10.0;
            }
        }
        b
    }

    /// Check one trial against the envelope.
    pub fn check(&self, r: &TrialResult) -> Vec<String> {
        let mut v = Vec::new();
        if self.require_complete && !r.completed {
            v.push("trial hit the session safety cap before finishing".into());
        }
        if r.buf_ratio_pct() > self.max_buf_ratio_pct {
            v.push(format!(
                "bufRatio {:.2}% exceeds the {:.2}% envelope",
                r.buf_ratio_pct(),
                self.max_buf_ratio_pct
            ));
        }
        if r.completed && r.avg_ssim() < self.min_mean_ssim {
            v.push(format!(
                "mean SSIM {:.3} below the {:.3} envelope",
                r.avg_ssim(),
                self.min_mean_ssim
            ));
        }
        if r.startup_s > self.max_startup_s {
            v.push(format!(
                "startup {:.2}s exceeds the {:.2}s envelope",
                r.startup_s, self.max_startup_s
            ));
        }
        v
    }
}

/// Scenario-independent invariants of a single trial result.
pub fn trial_invariants(r: &TrialResult) -> Vec<String> {
    let mut v = Vec::new();
    for (name, val) in [
        ("stall_s", r.stall_s),
        ("duration_s", r.duration_s),
        ("startup_s", r.startup_s),
    ] {
        if !val.is_finite() || val < 0.0 {
            v.push(format!("{name} = {val} is not a finite non-negative time"));
        }
    }
    // The session safety cap bounds wall clock at 5×duration + 120 s, so
    // accounted stall can never exceed it.
    if r.stall_s > 5.0 * r.duration_s + 121.0 {
        v.push(format!(
            "stall {:.1}s exceeds the session safety cap",
            r.stall_s
        ));
    }
    if r.segment_scores.len() != r.segment_kbps.len() {
        v.push(format!(
            "{} segment scores vs {} segment bitrates",
            r.segment_scores.len(),
            r.segment_kbps.len()
        ));
    }
    if r.completed && r.segment_scores.is_empty() {
        v.push("completed trial played no segments".into());
    }
    if r.bytes_downloaded == 0 {
        v.push("no bytes downloaded".into());
    }
    if r.bytes_recovered > r.bytes_lost {
        v.push(format!(
            "recovered {} bytes but only {} were lost",
            r.bytes_recovered, r.bytes_lost
        ));
    }
    for s in &r.segment_scores {
        if !(0.0..=1.0).contains(&s.ssim) {
            v.push(format!("segment SSIM {} outside [0, 1]", s.ssim));
            break;
        }
    }
    let t = &r.transport;
    if t.client_packets_duplicate > t.client_packets_received {
        v.push(format!(
            "{} duplicate packets out of {} received",
            t.client_packets_duplicate, t.client_packets_received
        ));
    }
    if t.client_packets_reordered > t.client_packets_received {
        v.push(format!(
            "{} reordered packets out of {} received",
            t.client_packets_reordered, t.client_packets_received
        ));
    }
    if t.client_packets_received == 0 {
        v.push("client received no packets".into());
    }
    v
}

/// Extract the integer value of `"key":` from a JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Cross-check the traced timeline against the trial result.
///
/// The timeline is emitted event-by-event as the simulation runs, while
/// `stall_s` is the player's own accumulator — comparing the two catches
/// one-sided accounting bugs. The tolerance is `(stalls + 1) × 2 ms`:
/// each `stall_end` event truncates its `dur_ms` to whole milliseconds.
pub fn timeline_invariants(jsonl: &[u8], r: &TrialResult) -> Vec<String> {
    let mut v = Vec::new();
    let text = match std::str::from_utf8(jsonl) {
        Ok(t) => t,
        Err(e) => return vec![format!("timeline is not UTF-8: {e}")],
    };
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return vec!["timeline is empty".into()];
    }
    if !lines[0].contains("\"kind\":\"trial_start\"") {
        v.push("timeline does not open with trial_start".into());
    }
    if !lines[lines.len() - 1].contains("\"kind\":\"trial_end\"") {
        v.push("timeline does not close with trial_end".into());
    }
    let mut last_seq = None;
    let mut stall_ms = 0u64;
    let mut stalls = 0u64;
    let mut plays = 0usize;
    let mut startups = 0usize;
    for line in &lines {
        if !(line.starts_with("{\"t\":") && line.ends_with('}')) {
            v.push(format!("malformed timeline line: {line}"));
            break;
        }
        // `t` may run behind emission order (events reported
        // retroactively, e.g. a back-dated stall_start); `seq` is the
        // strict total order.
        match (field_u64(line, "seq"), last_seq) {
            (Some(seq), Some(prev)) if seq <= prev => {
                v.push(format!("seq {seq} after {prev}: emission order broken"));
            }
            (Some(seq), _) => last_seq = Some(seq),
            (None, _) => v.push(format!("timeline line without seq: {line}")),
        }
        if line.contains("\"kind\":\"stall_end\"") {
            stalls += 1;
            match field_u64(line, "dur_ms") {
                Some(ms) => stall_ms += ms,
                None => v.push("stall_end without dur_ms".into()),
            }
        } else if line.contains("\"kind\":\"segment_play\"") {
            plays += 1;
        } else if line.contains("\"kind\":\"startup\"") {
            startups += 1;
        }
    }
    let drift_ms = (r.stall_s * 1000.0 - stall_ms as f64).abs();
    let tolerance_ms = 2.0 * (stalls + 1) as f64;
    if drift_ms > tolerance_ms {
        v.push(format!(
            "stall accounting drift: result says {:.1} ms, timeline's {} stall_end events sum to {} ms (tolerance {} ms)",
            r.stall_s * 1000.0,
            stalls,
            stall_ms,
            tolerance_ms
        ));
    }
    if r.completed {
        if plays != r.segment_scores.len() {
            v.push(format!(
                "{} segment_play events vs {} scored segments",
                plays,
                r.segment_scores.len()
            ));
        }
        if startups != 1 {
            v.push(format!("{startups} startup events in a completed trial"));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_core::TransportStats;
    use voxel_media::qoe::QoeScores;

    fn good_trial() -> TrialResult {
        TrialResult {
            video: "BBB".into(),
            abr: "X".into(),
            stall_s: 1.5,
            duration_s: 300.0,
            startup_s: 1.0,
            segment_kbps: vec![4000.0; 75],
            segment_scores: vec![
                QoeScores {
                    ssim: 0.98,
                    vmaf: 90.0,
                    psnr_db: 40.0
                };
                75
            ],
            bytes_downloaded: 1_000_000,
            bytes_wasted: 0,
            bytes_skipped: 0,
            bytes_full: 1,
            restarts: 0,
            kept_partials: 0,
            bytes_lost: 100,
            bytes_recovered: 50,
            segments_with_drops: 0,
            frames_dropped: 0,
            referenced_frames_dropped: 0,
            transport: TransportStats {
                client_packets_received: 1000,
                ..TransportStats::default()
            },
            metrics: None,
            completed: true,
        }
    }

    #[test]
    fn clean_trial_passes_all_invariants() {
        assert!(trial_invariants(&good_trial()).is_empty());
    }

    #[test]
    fn corrupt_accounting_is_reported() {
        let mut r = good_trial();
        r.stall_s = -1.0;
        r.bytes_recovered = r.bytes_lost + 1;
        r.bytes_downloaded = 0;
        let v = trial_invariants(&r);
        assert!(v.iter().any(|m| m.contains("stall_s")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("recovered")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("downloaded")), "{v:?}");
    }

    fn timeline(stall_entries: &[u64], plays: usize) -> Vec<u8> {
        let mut seq = 0u64;
        let mut push = |out: &mut String, kind: &str, extra: &str| {
            seq += 1;
            out.push_str(&format!(
                "{{\"t\":{},\"seq\":{seq},\"sid\":0,\"layer\":\"player\",\"kind\":\"{kind}\"{extra}}}\n",
                seq * 1000
            ));
        };
        let mut out = String::new();
        push(&mut out, "trial_start", "");
        push(&mut out, "startup", ",\"seg\":0");
        for ms in stall_entries {
            push(
                &mut out,
                "stall_end",
                &format!(",\"seg\":1,\"dur_ms\":{ms}"),
            );
        }
        for i in 0..plays {
            push(&mut out, "segment_play", &format!(",\"seg\":{i}"));
        }
        push(&mut out, "trial_end", "");
        out.into_bytes()
    }

    #[test]
    fn timeline_agreement_passes() {
        let mut r = good_trial();
        r.stall_s = 1.5;
        let t = timeline(&[1000, 500], 75);
        assert!(timeline_invariants(&t, &r).is_empty());
    }

    #[test]
    fn stall_drift_is_caught() {
        let mut r = good_trial();
        // 100 ms skew per stall (the canary's signature) over 2 stalls.
        r.stall_s = 1.7;
        let v = timeline_invariants(&timeline(&[1000, 500], 75), &r);
        assert!(
            v.iter().any(|m| m.contains("stall accounting drift")),
            "{v:?}"
        );
    }

    #[test]
    fn truncation_noise_is_tolerated() {
        let mut r = good_trial();
        // Each dur_ms is truncated: the true sum can exceed it by <1 ms
        // per stall.
        r.stall_s = 1.5018;
        assert!(timeline_invariants(&timeline(&[1000, 500], 75), &r).is_empty());
    }

    #[test]
    fn missing_plays_are_caught() {
        let mut r = good_trial();
        r.stall_s = 0.0;
        let v = timeline_invariants(&timeline(&[], 74), &r);
        assert!(v.iter().any(|m| m.contains("segment_play")), "{v:?}");
    }

    #[test]
    fn bounds_shape_follows_the_scenario() {
        let comfy = Scenario::parse("BBB:BOLA:const8").expect("spec");
        let b = Bounds::for_scenario(&comfy);
        assert!(b.max_buf_ratio_pct <= 15.0);
        let rough = Scenario::parse("BBB:BOLA:const8:loss@10+5x0.5").expect("spec");
        assert!(Bounds::for_scenario(&rough).max_buf_ratio_pct > 15.0);
        let cellular = Scenario::parse("BBB:VOXEL:tmobile:buf1").expect("spec");
        assert!(Bounds::for_scenario(&cellular).max_buf_ratio_pct > 15.0);
    }

    #[test]
    fn bounds_flag_envelope_violations() {
        let b = Bounds {
            max_buf_ratio_pct: 5.0,
            min_mean_ssim: 0.99,
            max_startup_s: 0.5,
            require_complete: true,
        };
        let mut r = good_trial();
        r.completed = false;
        let v = b.check(&r);
        assert!(v.iter().any(|m| m.contains("safety cap")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("startup")), "{v:?}");
        // bufRatio 0.5% is fine; SSIM check only applies to completed runs.
        r.completed = true;
        let v = b.check(&r);
        assert!(v.iter().any(|m| m.contains("SSIM")), "{v:?}");
    }
}
