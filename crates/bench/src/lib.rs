#![warn(missing_docs)]
//! # voxel-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`cargo run --release -p voxel-bench --bin fig6`), each printing the
//! rows/series the corresponding exhibit reports, plus Criterion
//! micro-benchmarks for the hot paths (`cargo bench`).
//!
//! ## Protocol fidelity vs wall-clock
//!
//! The paper repeats every experiment 30 times with the trace shifted by
//! d/30 per trial. A full 30-trial sweep of every figure takes hours even
//! in release mode, so the harness defaults to **8 trials** and honours
//! `VOXEL_TRIALS` (set `VOXEL_TRIALS=30` for the paper's exact protocol).
//! All reported statistics (90th percentile + standard error) are computed
//! the same way regardless of the trial count. `EXPERIMENTS.md` records
//! which count produced the committed numbers.

pub mod perf;

use voxel_core::experiment::{ContentCache, ExperimentBuilder};
use voxel_core::metrics::Aggregate;
use voxel_media::content::VideoId;
use voxel_netem::trace::generators;
use voxel_netem::BandwidthTrace;

/// Trace duration used by all experiments (one 5-minute clip).
pub const TRACE_DURATION_S: usize = 300;

/// Root seed for all synthetic traces (fixed for reproducibility).
pub const TRACE_SEED: u64 = 2021;

/// Number of trials per configuration (`VOXEL_TRIALS`, default 8).
pub fn trial_count() -> usize {
    std::env::var("VOXEL_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// The five named traces of §5 by figure-legend name.
pub fn trace_by_name(name: &str) -> BandwidthTrace {
    match name {
        "T-Mobile" => generators::tmobile_lte(TRACE_SEED, TRACE_DURATION_S),
        "Verizon" => generators::verizon_lte(TRACE_SEED, TRACE_DURATION_S),
        "AT&T" => generators::att_lte(TRACE_SEED, TRACE_DURATION_S),
        "3G" => generators::norway_3g(TRACE_SEED, TRACE_DURATION_S),
        "FCC" => generators::fcc(TRACE_SEED, TRACE_DURATION_S),
        "in-the-wild" => generators::wild_wifi(TRACE_SEED, TRACE_DURATION_S),
        _ => panic!("unknown trace {name}"),
    }
}

/// Parse a video legend name (BBB/ED/Sintel/ToS/P1..P10).
pub fn video_by_name(name: &str) -> VideoId {
    match name {
        "BBB" => VideoId::Bbb,
        "ED" => VideoId::Ed,
        "Sintel" => VideoId::Sintel,
        "ToS" => VideoId::Tos,
        p if p.starts_with('P') => VideoId::YouTube(p[1..].parse().expect("P<n>")),
        _ => panic!("unknown video {name}"),
    }
}

/// The (trace, video) pairings the paper's subplots use.
pub const FIG6_PAIRS: [(&str, &str); 4] = [
    ("AT&T", "BBB"),
    ("3G", "ED"),
    ("Verizon", "Sintel"),
    ("T-Mobile", "ToS"),
];

/// Run a configured experiment and return the aggregate (convenience
/// wrapper).
pub fn run(cache: &ContentCache, experiment: ExperimentBuilder) -> Aggregate {
    experiment.build().run(cache)
}

/// A standard §5.2 comparison experiment, ready to `run` (or to tweak
/// further — the return value is the builder).
pub fn sys_config(
    video: VideoId,
    system: &str,
    buffer_segments: usize,
    trace: BandwidthTrace,
) -> ExperimentBuilder {
    // The legend-name table lives in voxel-fleet (re-exported by the
    // testkit) so the conformance scenarios, the fleet specs, and the
    // figure harness can never disagree on a system.
    let (abr, transport) =
        voxel_testkit::system_by_name(system).unwrap_or_else(|| panic!("unknown system {system}"));
    voxel_core::Experiment::builder()
        .video(video)
        .abr(abr)
        .transport(transport)
        .buffer(buffer_segments)
        .trace(trace)
        .trials(trial_count())
}

/// Print a figure header.
pub fn header(fig: &str, caption: &str) {
    println!("# {fig} — {caption}");
    println!("# trials per config: {}", trial_count());
}

/// Format a CDF as fixed-grid rows for terminal output.
pub fn print_cdf(label: &str, samples: &[f64], probes: &[f64]) {
    let rows = voxel_sim::stats::ecdf_at(samples, probes);
    let cells: Vec<String> = rows.iter().map(|(x, f)| format!("{x:.3}:{f:.2}")).collect();
    println!("{label:24} {}", cells.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_core::TransportMode;

    #[test]
    fn traces_resolve() {
        for name in ["T-Mobile", "Verizon", "AT&T", "3G", "FCC", "in-the-wild"] {
            let t = trace_by_name(name);
            assert_eq!(t.duration_s(), TRACE_DURATION_S);
        }
    }

    #[test]
    fn videos_resolve() {
        assert_eq!(video_by_name("BBB"), VideoId::Bbb);
        assert_eq!(video_by_name("P10"), VideoId::YouTube(10));
    }

    #[test]
    fn sys_configs_have_expected_transports() {
        let t = BandwidthTrace::constant(10.0, 10);
        let transport = |sys: &str| {
            sys_config(VideoId::Bbb, sys, 3, t.clone())
                .build()
                .config()
                .transport
        };
        assert_eq!(transport("BOLA"), TransportMode::Reliable);
        assert_eq!(transport("VOXEL"), TransportMode::Split);
        assert_eq!(transport("VOXEL-rel"), TransportMode::Reliable);
    }

    #[test]
    #[should_panic(expected = "unknown system")]
    fn unknown_system_panics() {
        let _ = sys_config(VideoId::Bbb, "XYZ", 3, BandwidthTrace::constant(1.0, 10));
    }
}
