//! BENCH_5 performance baseline (DESIGN.md §12).
//!
//! Three families of numbers, serialized to `BENCH_5.json` at the repo
//! root by the conformance runner and checked by the `check_bench5` bin:
//!
//! - **fleet_scaling** — wall time and event-loop rate of a homogeneous
//!   VOXEL fleet at 1/2/4/8/16 sessions on one shared 6 Mbit/s link
//!   (capped at 60 simulated seconds so the full series stays cheap);
//! - **rangeset** — `voxel_quic::range::RangeSet` ACK-tracking ops/sec
//!   (scattered inserts + membership/gap queries);
//! - **session_loop** — single-session fleet event-loop steps/sec over a
//!   full (uncapped) 120 s trial.
//!
//! The same workloads back the Criterion suite in `benches/fleet.rs`;
//! this module exists so conformance can snapshot them without the bench
//! harness, and so both report *identical* workloads.

use std::fmt::Write as _;
use std::time::Instant;
use voxel_core::ContentCache;
use voxel_fleet::{run_fleet, FleetResult, FleetSpec};
use voxel_quic::range::RangeSet;
use voxel_trace::Tracer;

/// Session counts of the fleet-scaling series, in order.
pub const FLEET_SCALING_SESSIONS: [usize; 5] = [1, 2, 4, 8, 16];

/// Membership/gap queries + inserts per [`rangeset_workload`] call.
pub const RANGESET_OPS_PER_CALL: u64 = 2048;

/// The capped homogeneous fleet spec for one scaling point.
pub fn fleet_scaling_spec(sessions: usize) -> String {
    format!("BBB:{sessions}xVOXEL:const6:buf3:q64:d300:drr:stg1:cap60")
}

/// The uncapped single-session workload behind `session_loop`.
pub fn session_loop_spec() -> String {
    "BBB:1xVOXEL:const8:buf3:q64:d120:drr:stg0".into()
}

/// One measured point of the fleet-scaling series.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Sessions sharing the link.
    pub sessions: usize,
    /// Wall-clock time of the run, milliseconds.
    pub wall_ms: f64,
    /// Event-loop iterations the run took.
    pub loop_iters: u64,
    /// Event-loop iterations per wall-clock second.
    pub steps_per_sec: f64,
    /// Simulated seconds covered.
    pub sim_end_s: f64,
    /// Jain fairness of the (homogeneous) fleet.
    pub jain: f64,
}

/// A throughput measurement: `ops` of work in `wall_ms`.
#[derive(Debug, Clone)]
pub struct OpsPoint {
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock time, milliseconds.
    pub wall_ms: f64,
    /// Operations per wall-clock second.
    pub ops_per_sec: f64,
}

impl OpsPoint {
    /// Build a point, deriving `ops_per_sec`.
    pub fn new(ops: u64, wall_ms: f64) -> OpsPoint {
        OpsPoint {
            ops,
            wall_ms,
            ops_per_sec: if wall_ms > 0.0 {
                ops as f64 * 1000.0 / wall_ms
            } else {
                0.0
            },
        }
    }
}

/// The full BENCH_5 snapshot.
#[derive(Debug, Clone)]
pub struct Bench5 {
    /// Fleet-scaling series, one point per [`FLEET_SCALING_SESSIONS`].
    pub fleet_scaling: Vec<FleetPoint>,
    /// RangeSet ACK-tracking throughput.
    pub rangeset: OpsPoint,
    /// Single-session event-loop rate (ops = loop iterations).
    pub session_loop: OpsPoint,
}

fn timed_fleet(spec: &str, cache: &ContentCache) -> Result<(FleetResult, f64), String> {
    let spec = FleetSpec::parse(spec)?;
    let started = Instant::now();
    let r = run_fleet(&spec, cache, Tracer::disabled())?;
    Ok((r, started.elapsed().as_secs_f64() * 1000.0))
}

/// Run one fleet-scaling point.
pub fn run_fleet_point(sessions: usize, cache: &ContentCache) -> Result<FleetPoint, String> {
    let (r, wall_ms) = timed_fleet(&fleet_scaling_spec(sessions), cache)?;
    Ok(FleetPoint {
        sessions,
        wall_ms,
        loop_iters: r.loop_iters,
        steps_per_sec: if wall_ms > 0.0 {
            r.loop_iters as f64 * 1000.0 / wall_ms
        } else {
            0.0
        },
        sim_end_s: r.end_s,
        jain: r.jain,
    })
}

/// The RangeSet ACK-tracking workload: scattered inserts (coalescing and
/// splitting ranges the way out-of-order ACK arrival does) followed by
/// membership and gap queries. Returns a checksum so the optimizer cannot
/// discard the work.
pub fn rangeset_workload() -> u64 {
    let mut rs = RangeSet::new();
    let mut acc = 0u64;
    for i in 0..1024u64 {
        let start = (i * 7919) % 60_000;
        rs.insert(start, start + 1200);
    }
    for i in 0..1024u64 {
        let off = (i * 104_729) % 60_000;
        acc += u64::from(rs.contains(off));
    }
    acc + rs.covered_len() + rs.prefix_len() + rs.gaps(60_000).len() as u64
}

fn measure_rangeset() -> OpsPoint {
    // Calibrate-free: the workload is deterministic and ~100 µs, so a
    // fixed batch gives a stable number without a harness.
    const CALLS: u64 = 256;
    let started = Instant::now();
    let mut acc = 0u64;
    for _ in 0..CALLS {
        acc = acc.wrapping_add(rangeset_workload());
    }
    std::hint::black_box(acc);
    OpsPoint::new(
        CALLS * RANGESET_OPS_PER_CALL,
        started.elapsed().as_secs_f64() * 1000.0,
    )
}

/// Collect the full snapshot. Runs ~10 s of simulation work.
pub fn collect(cache: &ContentCache) -> Result<Bench5, String> {
    let mut fleet_scaling = Vec::with_capacity(FLEET_SCALING_SESSIONS.len());
    for sessions in FLEET_SCALING_SESSIONS {
        fleet_scaling.push(run_fleet_point(sessions, cache)?);
    }
    let rangeset = measure_rangeset();
    let (r, wall_ms) = timed_fleet(&session_loop_spec(), cache)?;
    let session_loop = OpsPoint::new(r.loop_iters, wall_ms);
    Ok(Bench5 {
        fleet_scaling,
        rangeset,
        session_loop,
    })
}

impl Bench5 {
    /// Named workload → rate pairs (higher is better): the unit of
    /// perf-regression comparison in `check_bench5 --compare`.
    pub fn workloads(&self) -> Vec<(String, f64)> {
        let mut w: Vec<(String, f64)> = self
            .fleet_scaling
            .iter()
            .map(|p| (format!("fleet{}", p.sessions), p.steps_per_sec))
            .collect();
        w.push(("rangeset".into(), self.rangeset.ops_per_sec));
        w.push(("session_loop".into(), self.session_loop.ops_per_sec));
        w
    }

    /// One `BENCH_HISTORY.jsonl` record: this snapshot's workload rates,
    /// appended by the conformance runner after every green run.
    pub fn history_line(&self) -> String {
        let fields: Vec<String> = self
            .workloads()
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.1}"))
            .collect();
        format!("{{\"schema\": \"voxel-bench5-v1\", {}}}", fields.join(", "))
    }

    /// Hand-rolled JSON (the workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"voxel-bench5-v1\",\n  \"fleet_scaling\": [\n");
        for (i, p) in self.fleet_scaling.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"sessions\": {}, \"wall_ms\": {:.3}, \"loop_iters\": {}, \
                 \"steps_per_sec\": {:.1}, \"sim_end_s\": {:.3}, \"jain\": {:.6}}}{}",
                p.sessions,
                p.wall_ms,
                p.loop_iters,
                p.steps_per_sec,
                p.sim_end_s,
                p.jain,
                if i + 1 < self.fleet_scaling.len() {
                    ","
                } else {
                    ""
                },
            );
        }
        s.push_str("  ],\n");
        for (key, p) in [
            ("rangeset", &self.rangeset),
            ("session_loop", &self.session_loop),
        ] {
            let _ = writeln!(
                s,
                "  \"{key}\": {{\"ops\": {}, \"wall_ms\": {:.3}, \"ops_per_sec\": {:.1}}}{}",
                p.ops,
                p.wall_ms,
                p.ops_per_sec,
                if key == "rangeset" { "," } else { "" },
            );
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_specs_parse_and_scale() {
        for n in FLEET_SCALING_SESSIONS {
            let s = FleetSpec::parse(&fleet_scaling_spec(n)).expect("spec");
            assert_eq!(s.total_sessions(), n);
            assert_eq!(s.cap_s, Some(60));
            assert!(s.homogeneous());
        }
        let s = FleetSpec::parse(&session_loop_spec()).expect("spec");
        assert_eq!(s.total_sessions(), 1);
        assert_eq!(s.cap_s, None);
    }

    #[test]
    fn rangeset_workload_is_deterministic_and_nonzero() {
        let a = rangeset_workload();
        assert_eq!(a, rangeset_workload());
        assert!(a > 0);
    }

    #[test]
    fn json_shape_is_parseable_by_the_checker() {
        let b = Bench5 {
            fleet_scaling: vec![FleetPoint {
                sessions: 1,
                wall_ms: 10.0,
                loop_iters: 100,
                steps_per_sec: 10_000.0,
                sim_end_s: 60.0,
                jain: 1.0,
            }],
            rangeset: OpsPoint::new(2048, 1.0),
            session_loop: OpsPoint::new(100, 10.0),
        };
        let j = b.to_json();
        assert!(j.contains("\"schema\": \"voxel-bench5-v1\""));
        assert!(j.contains("\"sessions\": 1"));
        assert!(j.contains("\"ops_per_sec\": 2048000.0"));
    }

    #[test]
    fn history_line_names_every_workload() {
        let b = Bench5 {
            fleet_scaling: vec![FleetPoint {
                sessions: 8,
                wall_ms: 10.0,
                loop_iters: 100,
                steps_per_sec: 10_000.0,
                sim_end_s: 60.0,
                jain: 1.0,
            }],
            rangeset: OpsPoint::new(2048, 1.0),
            session_loop: OpsPoint::new(100, 10.0),
        };
        let line = b.history_line();
        assert!(!line.contains('\n'), "one JSONL record per snapshot");
        assert!(line.contains("\"fleet8\": 10000.0"), "{line}");
        assert!(line.contains("\"rangeset\": 2048000.0"), "{line}");
        assert!(line.contains("\"session_loop\": 10000.0"), "{line}");
        assert_eq!(b.workloads().len(), 3);
    }
}
