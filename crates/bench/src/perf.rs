//! BENCH_5 performance baseline (DESIGN.md §12).
//!
//! Three families of numbers, serialized to `BENCH_5.json` at the repo
//! root by the conformance runner and checked by the `check_bench5` bin:
//!
//! - **fleet_scaling** — wall time and event-loop rate of a homogeneous
//!   VOXEL fleet at 1/2/4/8/16 sessions on one shared 6 Mbit/s link
//!   (capped at 60 simulated seconds so the full series stays cheap);
//! - **fleet_bulk** — a 1000-session homogeneous fleet on one 600 Mbit/s
//!   link, capped at 10 simulated seconds: the sharded runtime's scale
//!   workload. Its per-session rate must stay within
//!   [`FLEET_FLATNESS_RATIO`] of the 16-session point (the flatness
//!   gate), or per-event cost has regressed to growing with fleet size;
//! - **cc_shootout** — the BBR-vs-CUBIC contention mix from the
//!   `cc_shootout` report (4 `VOXEL@bbr` + 4 `VOXEL@cubic` on one FIFO
//!   droptail link, capped at 60 simulated seconds): the cost of the
//!   delivery-rate sampler and BBR model under cross-cc contention;
//! - **edge** — the hot `fleet-edge4x16-hot` golden (16 sessions behind
//!   4 full-admission LRU edges and a 50 Mbit/s origin backhaul): the
//!   cost of the coordinator-side edge tier — serve-note replay, cache
//!   lookups, origin FIFO, and per-flow release gates;
//! - **rangeset** — `voxel_quic::range::RangeSet` ACK-tracking ops/sec
//!   (scattered inserts + membership/gap queries);
//! - **session_loop** — single-session fleet event-loop steps/sec over a
//!   full (uncapped) 120 s trial.
//!
//! `loop_iters` counts *summed per-session* advance-loop iterations (the
//! sharded runtime's invariant across worker counts), so `steps_per_sec`
//! denominators scale linearly with fleet size and the flatness gate has
//! a sane basis.
//!
//! The same workloads back the Criterion suite in `benches/fleet.rs`;
//! this module exists so conformance can snapshot them without the bench
//! harness, and so both report *identical* workloads.

use std::fmt::Write as _;
use std::time::Instant;
use voxel_core::ContentCache;
use voxel_fleet::{run_fleet, FleetResult, FleetSpec};
use voxel_quic::range::RangeSet;
use voxel_trace::Tracer;

/// Session counts of the fleet-scaling series, in order.
pub const FLEET_SCALING_SESSIONS: [usize; 5] = [1, 2, 4, 8, 16];

/// Sessions in the bulk fleet workload (`fleet1k`).
pub const FLEET_BULK_SESSIONS: usize = 1000;

/// Sessions in the cc-shootout workload (`cc_shootout`).
pub const CC_SHOOTOUT_SESSIONS: usize = 8;

/// Sessions in the edge-tier workload (`edge`).
pub const EDGE_SESSIONS: usize = 16;

/// Flatness gate: the bulk fleet's per-iteration rate must be at least
/// this fraction of the 16-session point's. Coordination cost per round
/// grows with fleet size (routing, merge sort, link pump), so some
/// decay is expected — but a collapse below this floor means per-event
/// cost is growing with the session count again.
pub const FLEET_FLATNESS_RATIO: f64 = 0.2;

/// Membership/gap queries + inserts per [`rangeset_workload`] call.
pub const RANGESET_OPS_PER_CALL: u64 = 2048;

/// The capped homogeneous fleet spec for one scaling point.
pub fn fleet_scaling_spec(sessions: usize) -> String {
    format!("BBB:{sessions}xVOXEL:const6:buf3:q64:d300:drr:stg1:cap60")
}

/// The uncapped single-session workload behind `session_loop`.
pub fn session_loop_spec() -> String {
    "BBB:1xVOXEL:const8:buf3:q64:d120:drr:stg0".into()
}

/// The 1000-session bulk workload (`fleet1k`): everything starts at
/// once, the queue is sized for the fleet, and a 10 s cap bounds the
/// wall cost while still covering startup, steady state, and the
/// cap-freeze path at scale.
pub fn fleet_bulk_spec() -> String {
    format!("BBB:{FLEET_BULK_SESSIONS}xVOXEL:const600:buf3:q4096:d30:drr:stg0:cap10")
}

/// The cc-contention workload (`cc_shootout`): the BBR-vs-CUBIC half of
/// the shootout matrix on a FIFO droptail bottleneck, capped at 60
/// simulated seconds. Tracks the cost of the BBR model + delivery-rate
/// sampler under real cross-cc contention, where ack clocking is
/// busiest.
pub fn cc_shootout_spec() -> String {
    let half = CC_SHOOTOUT_SESSIONS / 2;
    format!("BBB:{half}xVOXEL@bbr+{half}xVOXEL@cubic:const12:buf3:q128:d300:fifo:stg0:cap60")
}

/// The edge-tier workload (`edge`): the hot `fleet-edge4x16-hot` golden
/// — 16 sessions, 4 full-admission LRU edges over a 50 Mbit/s origin
/// backhaul. Tracks the cost of the coordinator-side cache replay, the
/// origin FIFO, and the per-flow release gates on top of the shared
/// link pump.
pub fn edge_spec() -> String {
    format!(
        "BBB:{EDGE_SESSIONS}xVOXEL:const24:buf3:q128:d120:drr:stg0:cap90:e4:rhash:afull:plru:o50"
    )
}

/// One measured point of the fleet-scaling series.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Sessions sharing the link.
    pub sessions: usize,
    /// Wall-clock time of the run, milliseconds.
    pub wall_ms: f64,
    /// Event-loop iterations the run took.
    pub loop_iters: u64,
    /// Event-loop iterations per wall-clock second.
    pub steps_per_sec: f64,
    /// Simulated seconds covered.
    pub sim_end_s: f64,
    /// Jain fairness of the (homogeneous) fleet.
    pub jain: f64,
}

/// A throughput measurement: `ops` of work in `wall_ms`.
#[derive(Debug, Clone)]
pub struct OpsPoint {
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock time, milliseconds.
    pub wall_ms: f64,
    /// Operations per wall-clock second.
    pub ops_per_sec: f64,
}

impl OpsPoint {
    /// Build a point, deriving `ops_per_sec`.
    pub fn new(ops: u64, wall_ms: f64) -> OpsPoint {
        OpsPoint {
            ops,
            wall_ms,
            ops_per_sec: if wall_ms > 0.0 {
                ops as f64 * 1000.0 / wall_ms
            } else {
                0.0
            },
        }
    }
}

/// The full BENCH_5 snapshot.
#[derive(Debug, Clone)]
pub struct Bench5 {
    /// Fleet-scaling series, one point per [`FLEET_SCALING_SESSIONS`].
    pub fleet_scaling: Vec<FleetPoint>,
    /// The [`FLEET_BULK_SESSIONS`]-session bulk point (`fleet1k`).
    pub fleet_bulk: FleetPoint,
    /// The BBR-vs-CUBIC contention point (`cc_shootout`).
    pub cc_shootout: FleetPoint,
    /// The hot edge-tier point (`edge`).
    pub edge: FleetPoint,
    /// RangeSet ACK-tracking throughput.
    pub rangeset: OpsPoint,
    /// Single-session event-loop rate (ops = loop iterations).
    pub session_loop: OpsPoint,
}

fn timed_fleet(spec: &str, cache: &ContentCache) -> Result<(FleetResult, f64), String> {
    let spec = FleetSpec::parse(spec).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let r = run_fleet(&spec, cache, Tracer::disabled())?;
    Ok((r, started.elapsed().as_secs_f64() * 1000.0))
}

fn fleet_point(spec: &str, sessions: usize, cache: &ContentCache) -> Result<FleetPoint, String> {
    let (r, wall_ms) = timed_fleet(spec, cache)?;
    Ok(FleetPoint {
        sessions,
        wall_ms,
        loop_iters: r.loop_iters,
        steps_per_sec: if wall_ms > 0.0 {
            r.loop_iters as f64 * 1000.0 / wall_ms
        } else {
            0.0
        },
        sim_end_s: r.end_s,
        jain: r.jain,
    })
}

/// Run one fleet-scaling point.
pub fn run_fleet_point(sessions: usize, cache: &ContentCache) -> Result<FleetPoint, String> {
    fleet_point(&fleet_scaling_spec(sessions), sessions, cache)
}

/// Run the bulk (`fleet1k`) point.
pub fn run_fleet_bulk_point(cache: &ContentCache) -> Result<FleetPoint, String> {
    fleet_point(&fleet_bulk_spec(), FLEET_BULK_SESSIONS, cache)
}

/// The RangeSet ACK-tracking workload: scattered inserts (coalescing and
/// splitting ranges the way out-of-order ACK arrival does) followed by
/// membership and gap queries. Returns a checksum so the optimizer cannot
/// discard the work.
pub fn rangeset_workload() -> u64 {
    let mut rs = RangeSet::new();
    let mut acc = 0u64;
    for i in 0..1024u64 {
        let start = (i * 7919) % 60_000;
        rs.insert(start, start + 1200);
    }
    for i in 0..1024u64 {
        let off = (i * 104_729) % 60_000;
        acc += u64::from(rs.contains(off));
    }
    acc + rs.covered_len() + rs.prefix_len() + rs.gaps(60_000).len() as u64
}

fn measure_rangeset() -> OpsPoint {
    // Calibrate-free: the workload is deterministic and ~100 µs, so a
    // fixed batch gives a stable number without a harness.
    const CALLS: u64 = 256;
    let started = Instant::now();
    let mut acc = 0u64;
    for _ in 0..CALLS {
        acc = acc.wrapping_add(rangeset_workload());
    }
    std::hint::black_box(acc);
    OpsPoint::new(
        CALLS * RANGESET_OPS_PER_CALL,
        started.elapsed().as_secs_f64() * 1000.0,
    )
}

/// Collect the full snapshot. Runs ~10 s of simulation work.
pub fn collect(cache: &ContentCache) -> Result<Bench5, String> {
    let mut fleet_scaling = Vec::with_capacity(FLEET_SCALING_SESSIONS.len());
    for sessions in FLEET_SCALING_SESSIONS {
        fleet_scaling.push(run_fleet_point(sessions, cache)?);
    }
    let fleet_bulk = run_fleet_bulk_point(cache)?;
    let cc_shootout = fleet_point(&cc_shootout_spec(), CC_SHOOTOUT_SESSIONS, cache)?;
    let edge = fleet_point(&edge_spec(), EDGE_SESSIONS, cache)?;
    let rangeset = measure_rangeset();
    let (r, wall_ms) = timed_fleet(&session_loop_spec(), cache)?;
    let session_loop = OpsPoint::new(r.loop_iters, wall_ms);
    Ok(Bench5 {
        fleet_scaling,
        fleet_bulk,
        cc_shootout,
        edge,
        rangeset,
        session_loop,
    })
}

impl Bench5 {
    /// Named workload → rate pairs (higher is better): the unit of
    /// perf-regression comparison in `check_bench5 --compare`.
    pub fn workloads(&self) -> Vec<(String, f64)> {
        let mut w: Vec<(String, f64)> = self
            .fleet_scaling
            .iter()
            .map(|p| (format!("fleet{}", p.sessions), p.steps_per_sec))
            .collect();
        w.push(("fleet1k".into(), self.fleet_bulk.steps_per_sec));
        w.push(("cc_shootout".into(), self.cc_shootout.steps_per_sec));
        w.push(("edge".into(), self.edge.steps_per_sec));
        w.push(("rangeset".into(), self.rangeset.ops_per_sec));
        w.push(("session_loop".into(), self.session_loop.ops_per_sec));
        w
    }

    /// One `BENCH_HISTORY.jsonl` record: this snapshot's workload rates,
    /// appended by the conformance runner after every green run.
    pub fn history_line(&self) -> String {
        let fields: Vec<String> = self
            .workloads()
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.1}"))
            .collect();
        format!("{{\"schema\": \"voxel-bench5-v1\", {}}}", fields.join(", "))
    }

    /// Hand-rolled JSON (the workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"voxel-bench5-v1\",\n  \"fleet_scaling\": [\n");
        for (i, p) in self.fleet_scaling.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"sessions\": {}, \"wall_ms\": {:.3}, \"loop_iters\": {}, \
                 \"steps_per_sec\": {:.1}, \"sim_end_s\": {:.3}, \"jain\": {:.6}}}{}",
                p.sessions,
                p.wall_ms,
                p.loop_iters,
                p.steps_per_sec,
                p.sim_end_s,
                p.jain,
                if i + 1 < self.fleet_scaling.len() {
                    ","
                } else {
                    ""
                },
            );
        }
        s.push_str("  ],\n");
        for (key, p) in [
            ("fleet_bulk", &self.fleet_bulk),
            ("cc_shootout", &self.cc_shootout),
            ("edge", &self.edge),
        ] {
            let _ = writeln!(
                s,
                "  \"{key}\": {{\"sessions\": {}, \"wall_ms\": {:.3}, \"loop_iters\": {}, \
                 \"steps_per_sec\": {:.1}, \"sim_end_s\": {:.3}, \"jain\": {:.6}}},",
                p.sessions, p.wall_ms, p.loop_iters, p.steps_per_sec, p.sim_end_s, p.jain,
            );
        }
        for (key, p) in [
            ("rangeset", &self.rangeset),
            ("session_loop", &self.session_loop),
        ] {
            let _ = writeln!(
                s,
                "  \"{key}\": {{\"ops\": {}, \"wall_ms\": {:.3}, \"ops_per_sec\": {:.1}}}{}",
                p.ops,
                p.wall_ms,
                p.ops_per_sec,
                if key == "rangeset" { "," } else { "" },
            );
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_specs_parse_and_scale() {
        for n in FLEET_SCALING_SESSIONS {
            let s = FleetSpec::parse(&fleet_scaling_spec(n)).expect("spec");
            assert_eq!(s.total_sessions(), n);
            assert_eq!(s.cap_s, Some(60));
            assert!(s.homogeneous());
        }
        let s = FleetSpec::parse(&session_loop_spec()).expect("spec");
        assert_eq!(s.total_sessions(), 1);
        assert_eq!(s.cap_s, None);
        // The contention workload: an even bbr/cubic split, FIFO, capped.
        let c = FleetSpec::parse(&cc_shootout_spec()).expect("spec");
        assert_eq!(c.total_sessions(), CC_SHOOTOUT_SESSIONS);
        assert_eq!(c.cap_s, Some(60));
        assert!(!c.homogeneous());
        assert_eq!(c.cc_mix().len(), 2);
        // The bulk workload: 1000 capped sessions, no worker pin (so the
        // conformance environment's VOXEL_SHARD_WORKERS applies).
        let b = FleetSpec::parse(&fleet_bulk_spec()).expect("spec");
        assert_eq!(b.total_sessions(), FLEET_BULK_SESSIONS);
        assert_eq!(b.cap_s, Some(10));
        assert_eq!(b.workers, None);
        assert!(b.homogeneous());
        // The edge workload mirrors the hot golden exactly: same spec
        // string, so the perf point measures what conformance pins.
        let e = FleetSpec::parse(&edge_spec()).expect("spec");
        assert_eq!(e.total_sessions(), EDGE_SESSIONS);
        let hot = voxel_testkit::canonical_fleets()
            .into_iter()
            .find(|g| g.name == "fleet-edge4x16-hot")
            .expect("hot edge golden is canonical");
        assert_eq!(edge_spec(), hot.spec);
    }

    #[test]
    fn rangeset_workload_is_deterministic_and_nonzero() {
        let a = rangeset_workload();
        assert_eq!(a, rangeset_workload());
        assert!(a > 0);
    }

    fn point(sessions: usize) -> FleetPoint {
        FleetPoint {
            sessions,
            wall_ms: 10.0,
            loop_iters: 100,
            steps_per_sec: 10_000.0,
            sim_end_s: 60.0,
            jain: 1.0,
        }
    }

    #[test]
    fn json_shape_is_parseable_by_the_checker() {
        let b = Bench5 {
            fleet_scaling: vec![point(1)],
            fleet_bulk: point(FLEET_BULK_SESSIONS),
            cc_shootout: point(CC_SHOOTOUT_SESSIONS),
            edge: point(EDGE_SESSIONS),
            rangeset: OpsPoint::new(2048, 1.0),
            session_loop: OpsPoint::new(100, 10.0),
        };
        let j = b.to_json();
        assert!(j.contains("\"schema\": \"voxel-bench5-v1\""));
        assert!(j.contains("\"sessions\": 1"));
        assert!(j.contains("\"fleet_bulk\": {\"sessions\": 1000"));
        assert!(j.contains("\"cc_shootout\": {\"sessions\": 8"));
        assert!(j.contains("\"edge\": {\"sessions\": 16"));
        assert!(j.contains("\"ops_per_sec\": 2048000.0"));
    }

    #[test]
    fn history_line_names_every_workload() {
        let b = Bench5 {
            fleet_scaling: vec![point(8)],
            fleet_bulk: point(FLEET_BULK_SESSIONS),
            cc_shootout: point(CC_SHOOTOUT_SESSIONS),
            edge: point(EDGE_SESSIONS),
            rangeset: OpsPoint::new(2048, 1.0),
            session_loop: OpsPoint::new(100, 10.0),
        };
        let line = b.history_line();
        assert!(!line.contains('\n'), "one JSONL record per snapshot");
        assert!(line.contains("\"fleet8\": 10000.0"), "{line}");
        assert!(line.contains("\"fleet1k\": 10000.0"), "{line}");
        assert!(line.contains("\"cc_shootout\": 10000.0"), "{line}");
        assert!(line.contains("\"edge\": 10000.0"), "{line}");
        assert!(line.contains("\"rangeset\": 2048000.0"), "{line}");
        assert!(line.contains("\"session_loop\": 10000.0"), "{line}");
        assert_eq!(b.workloads().len(), 6);
    }
}
