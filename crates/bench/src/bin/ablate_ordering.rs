//! Ordering ablation (DESIGN.md §6): stream VOXEL end-to-end with the
//! §4.1 ordering selection *forced* to each of the three candidates, and
//! measure what the selection buys at runtime.
//!
//! The offline analysis (Fig 2b) shows the rank ordering tolerates far more
//! tail drops than the alternatives; this binary shows the consequence
//! during playback: with the same ABR and transport, worse orderings turn
//! the same truncations into lower SSIM.

use std::sync::Arc;
use voxel_abr::AbrStar;
use voxel_bench::{header, trace_by_name, trial_count};
use voxel_core::client::{PlayerConfig, TransportMode};
use voxel_core::metrics::Aggregate;
use voxel_core::session::Session;
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_netem::PathConfig;
use voxel_prep::manifest::Manifest;
use voxel_prep::ordering::OrderingKind;

fn main() {
    header(
        "ablation: frame ordering",
        "VOXEL end-to-end with the §4.1 ordering forced (BBB, Verizon, 2-segment buffer)",
    );
    let video = Arc::new(Video::generate(VideoId::Bbb));
    let qoe = QoeModel::default();
    let base_trace = trace_by_name("Verizon");
    let trials = trial_count();
    let levels: Vec<QualityLevel> = QualityLevel::all().collect();

    println!(
        "{:20} {:>12} {:>10} {:>9} {:>10}",
        "ordering", "bufRatio-p90", "SSIM", "skipped", "drops/seg"
    );
    let mut variants: Vec<(String, Manifest)> = OrderingKind::ALL
        .iter()
        .map(|&k| {
            (
                format!("forced {k}"),
                Manifest::prepare_forced(&video, &qoe, &levels, k),
            )
        })
        .collect();
    variants.push(("§4.1 selection".into(), Manifest::prepare(&video, &qoe)));

    for (name, manifest) in variants {
        let manifest = Arc::new(manifest);
        let d = base_trace.duration_s();
        let results: Vec<_> = (0..trials)
            .map(|i| {
                let session = Session::new(
                    PathConfig::new(base_trace.shift(i * d / trials), 32),
                    manifest.clone(),
                    video.clone(),
                    qoe.clone(),
                    Box::new(AbrStar::default()),
                    PlayerConfig::new(2, TransportMode::Split),
                );
                session.run()
            })
            .collect();
        let agg = Aggregate::new(results);
        let drops: f64 = agg
            .trials
            .iter()
            .map(|t| t.frames_dropped as f64 / t.segment_scores.len().max(1) as f64)
            .sum::<f64>()
            / agg.trials.len() as f64;
        println!(
            "{:20} {:>11.2}% {:>10.4} {:>8.1}% {:>10.1}",
            name,
            agg.buf_ratio_p90(),
            agg.mean_ssim(),
            agg.data_skipped_mean_pct(),
            drops,
        );
    }
    println!("\n# expectation: identical bufRatio (the transport/ABR cut is the same) with SSIM");
    println!("# ordered rank ~ §4.1-selection > unreferenced-tail > original — the ordering");
    println!("# determines how much quality each truncated byte costs.");
}
