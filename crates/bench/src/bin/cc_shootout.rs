//! cc_shootout: the congestion-control contention report (DESIGN.md §15).
//!
//! Same ABR, same video, one shared FIFO droptail bottleneck — only the
//! congestion-controller mix varies. For each mix the report prints the
//! Jain fairness index, link utilization, aggregate QoE (mean SSIM and
//! total stall time), and the mean link share of every cc group, then
//! runs the testkit's cc-mix oracles — the fairness band (per-cc
//! homogeneous floors, mixed-cc floor) and the per-cc-group starvation
//! check — over every row.
//!
//! ```sh
//! cargo run --release -p voxel-bench --bin cc_shootout [-- --smoke]
//! ```
//!
//! `--smoke` is the gated ci.sh lane: half the fleet, a 30-simulated-
//! second horizon, and any oracle violation fails the exit code. The
//! full report doubles the fleet and horizon into regimes where real
//! controller pathologies emerge (delay-based late-comer collapse at 8
//! flows, CUBIC demand-pinned to the bottom rung under BBR); there the
//! oracle verdicts print as findings without failing the run — that
//! table is the methodology's output, not a regression gate.

use std::process::ExitCode;
use voxel_core::ContentCache;
use voxel_fleet::{run_fleet, FleetResult, FleetSpec};
use voxel_testkit::fleet_invariants;
use voxel_trace::Tracer;

/// Bottleneck rate per session, Mbit/s. The link scales with the fleet
/// (4 sessions on 6 Mbit/s smoke, 8 on 12 full) so both modes probe the
/// same per-flow operating point and differ only in statistical mass.
const PER_SESSION_MBPS: f64 = 1.5;

/// The shootout matrix: homogeneous fleets of each controller to anchor
/// the fair baselines, then the contention mixes the report exists for.
/// Returns the mix rows plus the bottleneck rate they share.
fn mixes(smoke: bool) -> (Vec<(&'static str, String)>, f64) {
    let (whole, half, cap) = if smoke { (4, 2, 30) } else { (8, 4, 120) };
    let triple = if smoke {
        "2xVOXEL@cubic+1xVOXEL@delay+1xVOXEL@bbr".to_string()
    } else {
        "3xVOXEL@cubic+3xVOXEL@delay+2xVOXEL@bbr".to_string()
    };
    let mbps = PER_SESSION_MBPS * whole as f64;
    // The droptail queue scales with the fleet (16 packets per session)
    // for the same reason the link does: a buffer that halves per-flow
    // when the fleet doubles would change the contention regime, and a
    // sub-BDP buffer at 300 ms RTT lets BBR's inflight cap starve
    // loss-based flows outright. Simultaneous starts: a stagger hands
    // early sessions a head start that reads as unfairness over a capped
    // horizon, which is exactly the signal this report must keep clean.
    let tail = format!(
        "const{}:buf3:q{}:d300:fifo:stg0:cap{cap}",
        mbps as usize,
        16 * whole
    );
    (
        vec![
            ("all-cubic", format!("BBB:{whole}xVOXEL@cubic:{tail}")),
            ("all-delay", format!("BBB:{whole}xVOXEL@delay:{tail}")),
            ("all-bbr", format!("BBB:{whole}xVOXEL@bbr:{tail}")),
            (
                "cubic+bbr",
                format!("BBB:{half}xVOXEL@bbr+{half}xVOXEL@cubic:{tail}"),
            ),
            ("cubic+delay+bbr", format!("BBB:{triple}:{tail}")),
        ],
        mbps,
    )
}

/// Mean link share (%) per cc group, in first-appearance member order.
fn group_shares(spec: &FleetSpec, r: &FleetResult) -> Vec<(String, f64)> {
    let members = spec.session_members();
    spec.cc_mix()
        .iter()
        .map(|kind| {
            let shares: Vec<f64> = members
                .iter()
                .zip(&r.shares_pct)
                .filter(|(m, _)| m.cc_kind() == *kind)
                .map(|(_, s)| *s)
                .collect();
            (
                kind.name().to_string(),
                shares.iter().sum::<f64>() / shares.len() as f64,
            )
        })
        .collect()
}

/// Fraction of the bottleneck's capacity the fleet actually delivered.
fn utilization_pct(r: &FleetResult, link_mbps: f64) -> f64 {
    if r.end_s <= 0.0 {
        return 0.0;
    }
    let delivered_bits: f64 = r.flows.iter().map(|f| f.bytes_delivered as f64 * 8.0).sum();
    100.0 * delivered_bits / (link_mbps * 1e6 * r.end_s)
}

fn main() -> ExitCode {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        if a == "--smoke" {
            smoke = true;
        } else {
            eprintln!("cc_shootout: unexpected argument {a:?}");
            eprintln!("usage: cc_shootout [--smoke]");
            return ExitCode::FAILURE;
        }
    }
    let cache = ContentCache::top_level_only();
    let (rows, link_mbps) = mixes(smoke);
    println!(
        "# cc shootout{}: VOXEL ABR, {link_mbps} Mbit/s FIFO droptail bottleneck \
         ({PER_SESSION_MBPS} Mbit/s per session)",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:18} {:>3} {:>7} {:>7} {:>7} {:>9}   mean share by cc group",
        "mix", "n", "jain", "util%", "ssim", "stall_s"
    );
    let mut ok = true;
    for (name, spec_str) in rows {
        let spec = match FleetSpec::parse(&spec_str) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cc_shootout: bad spec {spec_str:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let r = match run_fleet(&spec, &cache, Tracer::disabled()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cc_shootout: {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let shares: Vec<String> = group_shares(&spec, &r)
            .iter()
            .map(|(cc, pct)| format!("{cc}:{pct:.1}%"))
            .collect();
        println!(
            "{:18} {:>3} {:>7.3} {:>7.1} {:>7.3} {:>9.1}   {}",
            name,
            spec.total_sessions(),
            r.jain,
            utilization_pct(&r, link_mbps),
            r.mean_ssim(),
            r.total_stall_s(),
            shares.join(" "),
        );
        for v in fleet_invariants(&spec, &r) {
            if smoke {
                println!("FAIL {name}: {v}");
                ok = false;
            } else {
                println!("finding {name}: {v}");
            }
        }
    }
    if ok {
        println!("# cc_shootout: PASS");
        ExitCode::SUCCESS
    } else {
        println!("# cc_shootout: FAIL");
        ExitCode::FAILURE
    }
}
