//! Ad-hoc A/B comparison harness (not a paper figure).

use voxel_bench::{sys_config, trace_by_name, video_by_name};
use voxel_core::experiment::ContentCache;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = args.get(1).map(String::as_str).unwrap_or("Verizon");
    let video = args.get(2).map(String::as_str).unwrap_or("BBB");
    let buffer: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

    let cache = ContentCache::new();
    println!(
        "trace={trace} video={video} buffer={buffer} trials={}",
        voxel_bench::trial_count()
    );
    for system in ["BOLA", "BETA", "VOXEL", "BOLA-SSIM"] {
        let t0 = std::time::Instant::now();
        let agg = voxel_bench::run(
            &cache,
            sys_config(video_by_name(video), system, buffer, trace_by_name(trace)),
        );
        println!(
            "{system:10} bufRatio p90={:6.2}% mean={:6.2}% bitrate={:6.0}kbps ssim={:.4} skipped={:4.1}% restarts={:.1} partials={:.1} residual_loss={:4.1}% [{:?}]",
            agg.buf_ratio_p90(),
            agg.buf_ratio_mean(),
            agg.bitrate_mean_kbps(),
            agg.mean_ssim(),
            agg.data_skipped_mean_pct(),
            agg.trials.iter().map(|t| t.restarts as f64).sum::<f64>() / agg.trials.len() as f64,
            agg.trials.iter().map(|t| t.kept_partials as f64).sum::<f64>() / agg.trials.len() as f64,
            agg.residual_loss_mean_pct(),
            t0.elapsed(),
        );
    }
}
