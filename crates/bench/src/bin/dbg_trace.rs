//! Merged cross-layer timeline of one traced session (not a paper figure).
//!
//! Runs a single trial with an in-memory tracer and renders every event —
//! QUIC\* packets, HTTP requests/responses, ABR decisions, player
//! stalls/startup — as one timeline ordered by (sim time, sequence
//! number), followed by the end-of-session metrics snapshot.
//!
//! ```text
//! dbg_trace [mode] [mbps] [max_events]
//!   mode:       voxel (default) | bola
//!   mbps:       constant bottleneck bandwidth, default 6
//!   max_events: ring-buffer capacity, default 200000
//! ```

use std::sync::Arc;
use voxel_core::client::TransportMode;
use voxel_core::experiment::{run_instrumented_trial, AbrKind, Experiment};
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_netem::BandwidthTrace;
use voxel_prep::manifest::Manifest;
use voxel_trace::Tracer;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("voxel");
    let mbps: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6.0);
    let cap: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(200_000);

    let video = Video::generate(VideoId::Bbb);
    let qoe = QoeModel::default();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[QualityLevel::MAX]));

    let (abr, transport) = match mode {
        "bola" => (AbrKind::Bola, TransportMode::Reliable),
        _ => (AbrKind::voxel(), TransportMode::Split),
    };
    let config = Experiment::builder()
        .video(VideoId::Bbb)
        .abr(abr)
        .transport(transport)
        .buffer(3)
        .trace(BandwidthTrace::constant(mbps, 3600))
        .queue(32)
        .build()
        .into_config();
    let (tracer, handle) = Tracer::memory(0, cap);
    let r = run_instrumented_trial(&config, &manifest, &Arc::new(video), &qoe, 0, tracer, None);

    let mut events = handle.events();
    // Back-dated events (stall_start, segment_play) are emitted out of
    // time order; the sequence number breaks ties deterministically.
    events.sort_by_key(|e| (e.t, e.seq));
    let dropped = handle.dropped();
    for e in &events {
        println!("{}", e.to_human());
    }
    if dropped > 0 {
        eprintln!("({dropped} oldest events dropped; raise max_events to keep them)");
    }

    eprintln!(
        "\nsummary: mode={mode} mbps={mbps} events={} segments={} bufRatio={:.2}% ssim={:.4} \
         pkts={} loss_events={} ptos={} mean_cwnd={:.0}B mean_srtt={:.1}ms",
        events.len(),
        r.segment_scores.len(),
        r.buf_ratio_pct(),
        r.avg_ssim(),
        r.transport.packets_sent,
        r.transport.loss_events,
        r.transport.ptos,
        r.transport.mean_cwnd_bytes,
        r.transport.mean_srtt_ms,
    );
    if let Some(snap) = &r.metrics {
        eprintln!("\nmetrics snapshot:\n{}", snap.to_json());
    }
}
