//! Figure 8: average delivered bitrates, BOLA/QUIC vs VOXEL, over T-Mobile
//! and Verizon, buffers 1,2,3,7 (§5.2).

use voxel_bench::{header, sys_config, trace_by_name, video_by_name};
use voxel_core::experiment::ContentCache;

fn main() {
    let cache = ContentCache::new();
    header("Fig 8", "average bitrates (kbps): BOLA vs VOXEL");
    println!("{:20} {:>4} {:>10} {:>10}", "panel", "buf", "BOLA", "VOXEL");
    for trace in ["T-Mobile", "Verizon"] {
        for video in ["BBB", "ED", "Sintel", "ToS"] {
            for buffer in [1usize, 2, 3, 7] {
                let bola = voxel_bench::run(
                    &cache,
                    sys_config(video_by_name(video), "BOLA", buffer, trace_by_name(trace)),
                );
                let vox = voxel_bench::run(
                    &cache,
                    sys_config(
                        video_by_name(video),
                        if trace == "T-Mobile" {
                            "VOXEL-tuned"
                        } else {
                            "VOXEL"
                        },
                        buffer,
                        trace_by_name(trace),
                    ),
                );
                println!(
                    "{:20} {:>4} {:>10.0} {:>10.0}",
                    format!("{trace}/{video}"),
                    buffer,
                    bola.bitrate_mean_kbps(),
                    vox.bitrate_mean_kbps(),
                );
            }
        }
    }
    println!("\n# expectation (paper): VOXEL bitrates at least on par with BOLA, mostly higher");
}
