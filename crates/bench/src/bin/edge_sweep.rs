//! edge_sweep: the edge/CDN serving-tier report (DESIGN.md §16).
//!
//! Same fleet, same bottleneck — only the edge tier varies. The two
//! committed goldens anchor the extremes (a hot full-admission tier and
//! a cold pass-through tier on the same 16-session flash crowd), a
//! zipf-popularity + Poisson-arrivals scenario exercises the generated
//! workload path, and the full report sweeps routing × eviction ×
//! admission so the cache-efficacy spread is visible in one table.
//!
//! ```sh
//! cargo run --release -p voxel-bench --bin edge_sweep [-- --smoke]
//! ```
//!
//! `--smoke` is the gated ci.sh lane: just the goldens plus the zipf
//! scenario, and the run fails unless the hot tier clears the testkit's
//! hit-ratio floor and origin-load ceiling AND pulls no more than
//! [`EDGE_HOT_ORIGIN_FRACTION_OF_COLD`] of the cold tier's origin
//! bytes. The full report adds the sweep rows; there oracle verdicts
//! print as findings without failing the run.

use std::process::ExitCode;
use voxel_core::{Admission, ContentCache, EvictionPolicy};
use voxel_fleet::{
    run_fleet, run_fleet_workload, zipf_poisson_arrivals, FleetResult, FleetSpec, Routing,
};
use voxel_media::content::VideoId;
use voxel_testkit::{
    edge_hot_invariants, fleet_invariants, EDGE_HOT_HIT_RATIO_FLOOR,
    EDGE_HOT_ORIGIN_FRACTION_OF_COLD,
};
use voxel_trace::Tracer;

/// Video catalog for the zipf scenario: the four Table-1 titles, rank
/// order = popularity order.
const CATALOG: [VideoId; 4] = [VideoId::Bbb, VideoId::Tos, VideoId::Ed, VideoId::Sintel];

/// Zipf exponent for the generated workload (s=1 is the classic
/// web-object popularity fit).
const ZIPF_S: f64 = 1.0;

/// Poisson arrival rate for the generated workload, sessions/second.
const ARRIVAL_HZ: f64 = 0.5;

fn golden_spec(name: &str) -> FleetSpec {
    let goldens = voxel_testkit::canonical_fleets();
    let g = goldens
        .iter()
        .find(|g| g.name == name)
        .unwrap_or_else(|| panic!("{name} is canonical"));
    FleetSpec::parse(g.spec).expect("canonical specs parse")
}

fn print_row(name: &str, r: &FleetResult) {
    let e = r.edge.as_ref().expect("edge rows carry a report");
    println!(
        "{:16} {:>3} {:>5} {:>6.1} {:>6} {:>9.2} {:>6.1} {:>7.3} {:>8.1}",
        name,
        r.sessions.len(),
        e.edges.len(),
        e.hit_ratio_pct,
        e.evictions,
        e.origin_bytes as f64 / 1e6,
        e.origin_load_pct,
        r.mean_ssim(),
        r.total_stall_s(),
    );
}

fn run_spec(spec: &FleetSpec, cache: &ContentCache) -> Result<FleetResult, String> {
    run_fleet(spec, cache, Tracer::disabled())
}

/// Oracle verdicts gate the run in smoke mode and print as findings in
/// the full report (that table is the methodology's output, not a gate).
fn report_violations(smoke: bool, ok: &mut bool, name: &str, violations: Vec<String>) {
    for v in violations {
        if smoke {
            println!("FAIL {name}: {v}");
            *ok = false;
        } else {
            println!("finding {name}: {v}");
        }
    }
}

fn main() -> ExitCode {
    let mut smoke = false;
    for a in std::env::args().skip(1) {
        if a == "--smoke" {
            smoke = true;
        } else {
            eprintln!("edge_sweep: unexpected argument {a:?}");
            eprintln!("usage: edge_sweep [--smoke]");
            return ExitCode::FAILURE;
        }
    }
    let cache = ContentCache::top_level_only();
    let hot_spec = golden_spec("fleet-edge4x16-hot");
    let cold_spec = golden_spec("fleet-edge4x16-cold");
    println!(
        "# edge sweep{}: {} sessions, {} edges over a {} Mbit/s origin backhaul",
        if smoke { " (smoke)" } else { "" },
        hot_spec.total_sessions(),
        hot_spec.edge.as_ref().map_or(0, |t| t.edges),
        hot_spec.edge.as_ref().map_or(0.0, |t| t.origin_mbps),
    );
    println!(
        "{:16} {:>3} {:>5} {:>6} {:>6} {:>9} {:>6} {:>7} {:>8}",
        "tier", "n", "edges", "hit%", "evict", "originMB", "load%", "ssim", "stall_s"
    );

    let mut ok = true;
    let check = |ok: &mut bool, name: &str, spec: &FleetSpec, r: &FleetResult, hot: bool| {
        let mut violations = fleet_invariants(spec, r);
        if hot {
            violations.extend(edge_hot_invariants(r));
        }
        report_violations(smoke, ok, name, violations);
    };

    // The two golden extremes: every byte either sticks or passes through.
    let hot = match run_spec(&hot_spec, &cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("edge_sweep: hot: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_row("golden-hot", &hot);
    check(&mut ok, "golden-hot", &hot_spec, &hot, true);
    let cold = match run_spec(&cold_spec, &cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("edge_sweep: cold: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_row("golden-cold", &cold);
    check(&mut ok, "golden-cold", &cold_spec, &cold, false);

    // Hot vs cold origin fan-in: the entire point of the tier. The hot
    // cache must shield the origin from all but a sliver of the crowd.
    let (hot_bytes, cold_bytes) = (
        hot.edge.as_ref().map_or(0, |e| e.origin_bytes),
        cold.edge.as_ref().map_or(0, |e| e.origin_bytes),
    );
    let fraction = hot_bytes as f64 / cold_bytes.max(1) as f64;
    println!(
        "# origin shield: hot {hot_bytes} B vs cold {cold_bytes} B \
         ({:.1}% of cold; gate {:.0}%; hit floor {:.0}%)",
        100.0 * fraction,
        100.0 * EDGE_HOT_ORIGIN_FRACTION_OF_COLD,
        100.0 * EDGE_HOT_HIT_RATIO_FLOOR,
    );
    if fraction > EDGE_HOT_ORIGIN_FRACTION_OF_COLD {
        let line = format!(
            "hot tier pulled {:.1}% of the cold tier's origin bytes (gate {:.0}%)",
            100.0 * fraction,
            100.0 * EDGE_HOT_ORIGIN_FRACTION_OF_COLD,
        );
        if smoke {
            println!("FAIL origin-shield: {line}");
            ok = false;
        } else {
            println!("finding origin-shield: {line}");
        }
    }

    // Generated workload: zipf popularity over the Table-1 catalog with
    // Poisson arrivals — the flash-crowd shape the goldens idealize.
    let workload = zipf_poisson_arrivals(
        7,
        "edge_sweep",
        hot_spec.total_sessions(),
        &CATALOG,
        ZIPF_S,
        ARRIVAL_HZ,
    );
    let zipf = match run_fleet_workload(&hot_spec, &workload, &cache, Tracer::disabled()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("edge_sweep: zipf: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_row("zipf-poisson", &zipf);
    check(&mut ok, "zipf-poisson", &hot_spec, &zipf, false);

    // Full report only: sweep the typed topology surface — routing ×
    // eviction on the hot config, plus the reliable-prefix middle ground.
    if !smoke {
        for routing in [Routing::Hash, Routing::Robin, Routing::Least] {
            for eviction in [EvictionPolicy::Lru, EvictionPolicy::Lfu] {
                let mut spec = hot_spec.clone();
                let t = spec.edge.as_mut().expect("hot golden has an edge tier");
                t.routing = routing;
                t.eviction = eviction;
                t.cache_mb = Some(16.0);
                let name = format!("r{}-p{}-cb16", routing.as_str(), eviction.as_str());
                match run_spec(&spec, &cache) {
                    Ok(r) => {
                        print_row(&name, &r);
                        check(&mut ok, &name, &spec, &r, false);
                    }
                    Err(e) => {
                        eprintln!("edge_sweep: {name}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        let mut spec = hot_spec.clone();
        spec.edge
            .as_mut()
            .expect("hot golden has an edge tier")
            .admission = Admission::ReliablePrefix;
        match run_spec(&spec, &cache) {
            Ok(r) => {
                print_row("reliable-prefix", &r);
                check(&mut ok, "reliable-prefix", &spec, &r, false);
            }
            Err(e) => {
                eprintln!("edge_sweep: reliable-prefix: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if ok {
        println!("# edge_sweep: PASS");
        ExitCode::SUCCESS
    } else {
        println!("# edge_sweep: FAIL");
        ExitCode::FAILURE
    }
}
