//! Hot-path profiling harness (DESIGN.md §13).
//!
//! Runs one scenario or one fleet spec with the `voxel-obs` sampling
//! profiler armed and prints the per-layer / per-session time and
//! allocation breakdown (flat + top-down tree), followed by a
//! reconciliation line checking that the scaled span totals explain the
//! measured wall time of the run.
//!
//! ```sh
//! cargo run --release -p voxel-bench --bin dbg_profile -- \
//!     --fleet BBB:4xVOXEL+2xBOLA+2xBETA:const6:buf3:q64:d300:drr:stg2
//! cargo run --release -p voxel-bench --bin dbg_profile -- \
//!     --scenario ToS:VOXEL:tmobile:buf1 --seed 3
//! Options: --sample N (profile 1-in-N loop iterations, default 1)
//!          --check    (exit non-zero unless spans reconcile within ±10%)
//! ```
//!
//! Content preparation and a full warmup run happen *before* the
//! profiler is installed, so the report covers the event loop alone and
//! the reconciliation is not diluted by one-time setup.

use std::process::ExitCode;
use std::time::Instant;
use voxel_fleet::FleetSpec;
use voxel_obs::Profiler;
use voxel_testkit::{run_scenario, Content, Scenario};
use voxel_trace::Tracer;

/// Span totals must explain this fraction of measured wall time.
const RECONCILE_TOLERANCE: f64 = 0.10;

struct Args {
    fleet: Option<String>,
    scenario: Option<String>,
    seed: u64,
    sample: u64,
    check: bool,
}

fn usage() -> String {
    "usage: dbg_profile (--fleet <spec> | --scenario <spec>) \
     [--seed N] [--sample N] [--check]"
        .into()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fleet: None,
        scenario: None,
        seed: 1,
        sample: 1,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match a.as_str() {
            "--fleet" => args.fleet = Some(value("--fleet")?),
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--sample" => {
                args.sample = value("--sample")?
                    .parse()
                    .map_err(|e| format!("bad --sample: {e}"))?
            }
            "--check" => args.check = true,
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if args.fleet.is_some() == args.scenario.is_some() {
        return Err(format!(
            "pick exactly one of --fleet/--scenario\n{}",
            usage()
        ));
    }
    Ok(args)
}

/// Run the workload once (untimed warmup: JIT-free Rust, but this
/// prepares the content cache and faults the working set in), then once
/// with the profiler installed. Returns the measured wall time of the
/// profiled run.
fn profile_run(args: &Args, profiler: &Profiler) -> Result<f64, String> {
    if let Some(spec) = &args.fleet {
        let spec = FleetSpec::parse(spec).map_err(|e| e.to_string())?;
        let content = Content::new();
        voxel_fleet::run_fleet(&spec, content.cache(), Tracer::disabled())?;
        let t0 = Instant::now();
        let result = {
            let _g = profiler.install();
            voxel_fleet::run_fleet(&spec, content.cache(), Tracer::disabled())?
        };
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "# fleet {}: {} sessions, sim end {:.1}s, jain {:.3}, {} loop iters",
            result.spec,
            result.sessions.len(),
            result.end_s,
            result.jain,
            result.loop_iters,
        );
        Ok(wall)
    } else {
        let spec = args.scenario.as_deref().expect("mode checked in parse");
        let scenario = Scenario::parse(spec)?;
        let mut content = Content::new();
        run_scenario(&scenario, args.seed, &mut content)?;
        let t0 = Instant::now();
        let run = {
            let _g = profiler.install();
            run_scenario(&scenario, args.seed, &mut content)?
        };
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "# scenario {} seed {}: {} trial(s), oracles {}",
            run.spec,
            run.seed,
            run.trials.len(),
            if run.ok() { "passed" } else { "FAILED" },
        );
        for f in &run.failures {
            println!("#   oracle: {f}");
        }
        Ok(wall)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dbg_profile: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profiler = Profiler::with_sample(args.sample);
    let wall_s = match profile_run(&args, &profiler) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("dbg_profile: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match profiler.report() {
        Some(r) => r,
        None => {
            eprintln!("dbg_profile: no profile collected (profiler never installed?)");
            return ExitCode::FAILURE;
        }
    };
    println!();
    print!("{}", report.render());

    // Reconciliation: the scaled span totals must explain the measured
    // wall time of the profiled run. Spans sit inside the event loop, so
    // they can only undershoot wall time (setup/teardown around the
    // loop); a large gap means uninstrumented hot code.
    let spans_s = report.total_ns() as f64 / 1e9;
    let ratio = if wall_s > 0.0 { spans_s / wall_s } else { 0.0 };
    println!(
        "\nreconcile: spans {:.1} ms vs wall {:.1} ms ({:.1}%)",
        spans_s * 1e3,
        wall_s * 1e3,
        100.0 * ratio,
    );
    let within = (1.0 - ratio).abs() <= RECONCILE_TOLERANCE;
    if !within {
        println!(
            "reconcile: spans outside ±{:.0}% of wall — uninstrumented hot code \
             or sampling too coarse (try --sample 1)",
            100.0 * RECONCILE_TOLERANCE,
        );
    }
    if args.check && !within {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
