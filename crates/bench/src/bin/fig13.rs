//! Figure 13 is produced together with Figure 11 (the in-the-wild SSIM
//! distributions). This binary simply delegates.

fn main() {
    println!(
        "# Fig 13 shares the Fig 11 harness; run `cargo run --release -p voxel-bench --bin fig11`"
    );
    println!("# The in-the-wild rows (1- and 7-segment buffers) are the Fig 13 series.");
}
