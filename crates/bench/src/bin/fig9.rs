//! Figure 9: SSIM CDFs of BOLA vs BETA vs VOXEL over the four traces
//! (§5.2): ToS/AT&T (2-segment buffer), Sintel/3G, ED/Verizon,
//! BBB/T-Mobile (tuned VOXEL). Buffers of 3 segments unless noted.

use voxel_bench::{header, print_cdf, sys_config, trace_by_name, video_by_name};
use voxel_core::experiment::ContentCache;

fn main() {
    let cache = ContentCache::new();
    header(
        "Fig 9",
        "SSIM distributions of streamed segments: BOLA vs BETA vs VOXEL",
    );
    let panels = [
        ("AT&T", "ToS", 2usize, "VOXEL"),
        ("3G", "Sintel", 3, "VOXEL"),
        ("Verizon", "ED", 3, "VOXEL"),
        ("T-Mobile", "BBB", 3, "VOXEL-tuned"),
    ];
    let probes: Vec<f64> = (0..=12).map(|i| 0.85 + i as f64 * 0.0125).collect();
    for (trace, video, buffer, voxel) in panels {
        println!("\n## {trace} / {video} / {buffer}-segment buffer");
        for system in ["BOLA", "BETA", voxel] {
            let agg = voxel_bench::run(
                &cache,
                sys_config(video_by_name(video), system, buffer, trace_by_name(trace)),
            );
            print_cdf(system, &agg.pooled_ssims(), &probes);
            println!(
                "{:24} mean SSIM {:.4}  bufRatio p90 {:.2}%",
                "",
                agg.mean_ssim(),
                agg.buf_ratio_p90()
            );
        }
    }
    println!("\n# expectation (paper): VOXEL's SSIM distribution at or better than BETA everywhere; trades SSIM only for far lower bufRatio vs BOLA");
}
