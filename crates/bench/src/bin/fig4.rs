//! Figure 4 is produced together with Figure 3 (same configuration matrix,
//! bitrate columns). This binary simply delegates.

fn main() {
    println!(
        "# Fig 4 shares the Fig 3 matrix; run `cargo run --release -p voxel-bench --bin fig3`"
    );
    println!("# The `bitrate-kbps` column is the Fig 4 series.");
}
