//! Figure 14: the user study, regenerated with the synthetic panel (§5.3).
//!
//! The paper showed 54 real users clips streamed by BOLA and VOXEL under
//! challenging network conditions (down to 0.3 Mbps) and collected
//! pairwise preferences plus MOS along clarity / glitches / fluidity /
//! overall experience. We pair BOLA and VOXEL playback logs from the most
//! challenging raw 3G traces and run the synthetic 54-user panel
//! (`voxel_core::survey`) over them.

use voxel_bench::{header, sys_config};
use voxel_core::experiment::ContentCache;
use voxel_core::survey::run_survey;
use voxel_media::content::VideoId;
use voxel_netem::trace::generators;

fn main() {
    let cache = ContentCache::new();
    header("Fig 14", "synthetic 54-user panel: BOLA (A) vs VOXEL (B)");

    // Challenging conditions, as in the paper ("scenarios where network
    // throughput was as low as 0.3 Mbps"): pick the lowest-mean traces of
    // the raw 3G ensemble, 1-segment (live-like) buffer.
    let mut by_mean: Vec<usize> = (0..86).collect();
    by_mean.sort_by(|&a, &b| {
        let ma = generators::norway_3g_raw(a, 60).mean_mbps();
        let mb = generators::norway_3g_raw(b, 60).mean_mbps();
        ma.partial_cmp(&mb).expect("finite")
    });
    let mut prefer = 0.0;
    let mut stop_a = 0.0;
    let mut stop_b = 0.0;
    let mut mos = [[0.0f64; 4]; 2];
    let pairs = 6;
    for (i, &idx) in by_mean.iter().enumerate().take(pairs) {
        let trace = generators::norway_3g_raw(idx, voxel_bench::TRACE_DURATION_S);
        let bola = voxel_bench::run(
            &cache,
            sys_config(VideoId::Bbb, "BOLA", 1, trace.clone()).trials(1),
        );
        let voxel = voxel_bench::run(
            &cache,
            sys_config(VideoId::Bbb, "VOXEL", 1, trace).trials(1),
        );
        let s = run_survey(&bola.trials[0], &voxel.trials[0], 54, 14 + i as u64);
        prefer += s.prefer_b;
        stop_a += s.would_stop_a;
        stop_b += s.would_stop_b;
        for (k, m) in [s.mos_a, s.mos_b].into_iter().enumerate() {
            mos[k][0] += m.clarity;
            mos[k][1] += m.glitches;
            mos[k][2] += m.fluidity;
            mos[k][3] += m.experience;
        }
    }
    let n = pairs as f64;
    println!(
        "{:10} {:>8} {:>8} {:>8} {:>10}",
        "system", "clarity", "glitches", "fluidity", "experience"
    );
    for (k, name) in ["BOLA", "VOXEL"].into_iter().enumerate() {
        println!(
            "{:10} {:>8.2} {:>8.2} {:>8.2} {:>10.2}",
            name,
            mos[k][0] / n,
            mos[k][1] / n,
            mos[k][2] / n,
            mos[k][3] / n
        );
    }
    println!(
        "\npreferred VOXEL: {:.0}%   would stop BOLA stream: {:.0}%   would stop VOXEL stream: {:.0}%",
        100.0 * prefer / n,
        100.0 * stop_a / n,
        100.0 * stop_b / n
    );
    println!("# expectation (paper): 84% prefer VOXEL; fluidity +1.7, experience +0.77, clarity -0.49, glitches -0.19; stop 31% vs 10%");
}
