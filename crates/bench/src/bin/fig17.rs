//! Figure 17 (Appendix D): 3G/AT&T bitrates and the bandwidth-safety
//! ablation — untuned (aggressive) VOXEL vs tuned VOXEL on T-Mobile.

use voxel_bench::{header, print_cdf, sys_config, trace_by_name, video_by_name};
use voxel_core::experiment::ContentCache;

fn main() {
    let cache = ContentCache::new();

    header("Fig 17a/17b", "average bitrates over 3G and AT&T (kbps)");
    for trace in ["3G", "AT&T"] {
        for video in ["BBB", "ED", "Sintel", "ToS"] {
            for buffer in [1usize, 2, 3, 7] {
                let bola = voxel_bench::run(
                    &cache,
                    sys_config(video_by_name(video), "BOLA", buffer, trace_by_name(trace)),
                );
                let vox = voxel_bench::run(
                    &cache,
                    sys_config(video_by_name(video), "VOXEL", buffer, trace_by_name(trace)),
                );
                println!(
                    "{:14} buf={buffer} BOLA {:>7.0}  VOXEL {:>7.0}",
                    format!("{trace}/{video}"),
                    bola.bitrate_mean_kbps(),
                    vox.bitrate_mean_kbps(),
                );
            }
        }
    }

    header(
        "Fig 17c/17d",
        "the tuning ablation: aggressive vs tuned VOXEL vs BETA on T-Mobile (BBB)",
    );
    let probes: Vec<f64> = (0..=12).map(|i| 0.85 + i as f64 * 0.0125).collect();
    for buffer in [1usize, 2, 3, 7] {
        println!("\n## buffer {buffer}");
        for system in ["BETA", "VOXEL", "VOXEL-tuned"] {
            let agg = voxel_bench::run(
                &cache,
                sys_config(
                    video_by_name("BBB"),
                    system,
                    buffer,
                    trace_by_name("T-Mobile"),
                ),
            );
            println!(
                "{system:12} bufRatio p90 {:5.2}%  mean SSIM {:.4}",
                agg.buf_ratio_p90(),
                agg.mean_ssim()
            );
            if buffer == 3 {
                print_cdf(&format!("{system} SSIM"), &agg.pooled_ssims(), &probes);
            }
        }
    }
    println!("\n# expectation (paper): aggressive VOXEL beats BETA in SSIM but can lose in bufRatio on T-Mobile; the single safety-factor tuning wins both");
}
