//! Tier-2 conformance runner (DESIGN.md §11).
//!
//! Runs the deterministic-simulation conformance suite: a scenario matrix
//! plus fault-injection scenarios, each across K seeds with every oracle
//! armed, plus the golden timeline digests. Every golden fleet runs as a
//! sharded-parity sweep — workers 1, 2, and the machine's maximum — and
//! must produce byte-identical timelines and identical metrics at every
//! count before its digest is even checked. Failures are minimized to a
//! `(seed, trials, trace-prefix)` triple with a ready-to-paste `#[test]`.
//!
//! ```text
//! cargo run --release -p voxel-bench --bin conformance [-- --fleets-only]
//! --fleets-only           # only the golden-fleet parity sweep (the
//!     # ci.sh sharded-parity step; skips the scenario sweep and bench)
//! VOXEL_SEEDS=8           # sweep seed count (default 5)
//! VOXEL_BLESS=1           # re-bless the golden digests
//! VOXEL_TESTKIT_FAULT=stall_off_by_one   # canary self-test: arm the
//!     # deliberate stall-accounting skew and demand the sweep catch it
//! ```

use std::process::ExitCode;
use std::time::Instant;
use voxel_testkit::{
    check_or_bless, run_golden, run_sweep, Content, GoldenStatus, Matrix, Scenario, SweepOptions,
    SweepReport,
};

fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("VOXEL_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    (1..=n.max(1)).collect()
}

/// The conformance scenario set: a cheap matrix over the main axes plus
/// targeted fault-injection scenarios.
fn scenarios() -> Result<Vec<Scenario>, String> {
    let mut all =
        Matrix::parse("videos=BBB systems=BOLA,VOXEL traces=const8,tmobile buffers=3 trials=1")?
            .scenarios();
    for spec in [
        "ToS:VOXEL:tmobile:buf1",
        "ToS:BOLA:tmobile:buf1",
        "BBB:VOXEL:const5:loss@40+10x0.3",
        "BBB:VOXEL:const8:cliff@120x0.25",
        "BBB:BOLA:const8:stuck@60+30",
        "BBB:VOXEL:const5:reorder@30+30x0.2~40:dup@90+30x0.1~15",
    ] {
        all.push(Scenario::parse(spec)?);
    }
    Ok(all)
}

fn print_failures(report: &SweepReport) {
    for f in &report.failures {
        println!("\nFAIL {} seed {}", f.spec, f.seed);
        for v in &f.failures {
            println!("  - {v}");
        }
        if let Some(r) = &f.repro {
            println!("  minimized to {}", r.triple());
            println!("  repro:\n{}", r.test_source());
        }
        if let Some(p) = &f.postmortem {
            println!("{p}");
        }
    }
}

/// Worker counts for the golden-fleet parity sweep: the single-threaded
/// reference, the smallest real shard split, and everything this machine
/// has. Deduplicated so single-core machines still sweep {1, 2}.
fn parity_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2];
    if !counts.contains(&max) {
        counts.push(max);
    }
    counts
}

/// Run every golden fleet as a sharded-parity sweep, then check (or
/// bless) its digest against the workers=1 reference timeline.
fn run_fleet_goldens(content: &Content, golden_dir: &std::path::Path) -> Result<bool, String> {
    let counts = parity_counts();
    let mut fleets_ok = true;
    for g in voxel_testkit::canonical_fleets() {
        let started = Instant::now();
        let (reference, mut violations) =
            voxel_testkit::shard_parity_failures(&g, content, &counts)?;
        if g.name == "fleet-edge4x16-hot" {
            // The hot edge golden additionally pins QoE-side cache
            // efficacy, not just determinism: hit-ratio floor and
            // origin-load ceiling from the testkit edge oracles.
            violations.extend(voxel_testkit::edge_hot_invariants(&reference.result));
        }
        if !violations.is_empty() {
            println!("FAIL fleet {} parity sweep (w {counts:?}):", g.name);
            for v in &violations {
                println!("  - {v}");
            }
            if let Some(p) = &reference.postmortem {
                println!("{p}");
            }
            fleets_ok = false;
            continue;
        }
        match check_or_bless(golden_dir, &g, &reference.timeline) {
            Ok(GoldenStatus::Matched) => println!(
                "# fleet {}: ok, parity holds at w {counts:?} ({:.1}s)",
                g.name,
                started.elapsed().as_secs_f64()
            ),
            Ok(GoldenStatus::Blessed) => {
                println!("# fleet {}: blessed, parity holds at w {counts:?}", g.name)
            }
            Err(e) => {
                println!("FAIL fleet {}: {e}", g.name);
                fleets_ok = false;
            }
        }
    }
    Ok(fleets_ok)
}

/// The `--fleets-only` mode: just the golden-fleet parity sweep + digest
/// check. This is ci.sh's sharded-parity step.
fn run_fleets_only() -> Result<bool, String> {
    let counts = parity_counts();
    println!("# conformance --fleets-only: golden-fleet parity sweep at w {counts:?}");
    let content = Content::new();
    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    run_fleet_goldens(&content, &golden_dir)
}

fn run_conformance() -> Result<bool, String> {
    let seeds = seeds();
    let all = scenarios()?;
    println!(
        "# conformance: {} scenarios x {} seeds",
        all.len(),
        seeds.len()
    );
    let mut content = Content::new();
    let started = Instant::now();
    let report = run_sweep(
        &all,
        &SweepOptions {
            seeds,
            ..SweepOptions::default()
        },
        &mut content,
    )?;
    println!(
        "# sweep: {}/{} runs passed in {:.1}s",
        report.passed,
        report.runs,
        started.elapsed().as_secs_f64()
    );
    print_failures(&report);

    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    let mut goldens_ok = true;
    for g in voxel_testkit::digest::canonical_scenarios() {
        let (timeline, failures) = run_golden(&g, &mut content)?;
        if !failures.is_empty() {
            println!("FAIL golden {}: {failures:?}", g.name);
            goldens_ok = false;
            continue;
        }
        match check_or_bless(&golden_dir, &g, &timeline) {
            Ok(GoldenStatus::Matched) => println!("# golden {}: ok", g.name),
            Ok(GoldenStatus::Blessed) => println!("# golden {}: blessed", g.name),
            Err(e) => {
                println!("FAIL golden {}: {e}", g.name);
                goldens_ok = false;
            }
        }
    }
    let fleets_ok = run_fleet_goldens(&content, &golden_dir)?;

    // Snapshot the perf baseline alongside the goldens so every green
    // conformance run leaves a fresh, checkable BENCH_5.json behind.
    let bench5 = voxel_bench::perf::collect(content.cache())?;
    let bench5_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_5.json");
    std::fs::write(&bench5_path, bench5.to_json())
        .map_err(|e| format!("writing {}: {e}", bench5_path.display()))?;
    println!("# perf baseline written to {}", bench5_path.display());
    // Append this run's rates to the history so `check_bench5 --compare`
    // has medians to diff future snapshots against.
    let history_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_HISTORY.jsonl");
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .and_then(|mut f| writeln!(f, "{}", bench5.history_line()))
        .map_err(|e| format!("appending {}: {e}", history_path.display()))?;
    println!("# perf history appended to {}", history_path.display());
    for p in bench5.fleet_scaling.iter().chain([&bench5.fleet_bulk]) {
        println!(
            "#   {:>4} sessions: {:>8.0} steps/s ({:.0} ms wall, jain {:.3})",
            p.sessions, p.steps_per_sec, p.wall_ms, p.jain
        );
    }

    Ok(report.ok() && goldens_ok && fleets_ok)
}

/// Canary self-test: arm the deliberate stall-accounting skew and demand
/// the sweep catch and minimize it. Exits successfully only if the drift
/// oracle fires.
fn run_canary() -> Result<bool, String> {
    // BOLA over a violent cellular trace with a 1-segment buffer stalls
    // on essentially every seed (the paper's Fig 6 baseline), so the
    // +100 ms-per-stall skew has material to drift on; the same scenario
    // passes every oracle when the skew is off.
    let scenario = Scenario::parse("ToS:BOLA:tmobile:buf1:inject=stall_skew")?;
    println!("# canary: {} across 5 seeds", scenario.spec());
    let mut content = Content::new();
    let report = run_sweep(&[scenario], &SweepOptions::default(), &mut content)?;
    print_failures(&report);
    match report.failures.first() {
        Some(f) => {
            let caught = f
                .failures
                .iter()
                .any(|v| v.contains("stall accounting drift"));
            if !caught {
                println!("# canary failed for the wrong reason");
            }
            Ok(caught && f.repro.is_some())
        }
        None => {
            println!("# canary NOT caught: the sweep passed with the skew armed");
            Ok(false)
        }
    }
}

fn main() -> ExitCode {
    let mut fleets_only = false;
    for a in std::env::args().skip(1) {
        if a == "--fleets-only" {
            fleets_only = true;
        } else {
            eprintln!("conformance: unexpected argument {a:?}");
            eprintln!("usage: conformance [--fleets-only]");
            return ExitCode::FAILURE;
        }
    }
    let outcome = match std::env::var("VOXEL_TESTKIT_FAULT").ok().as_deref() {
        Some("stall_off_by_one") | Some("stall_skew") => run_canary(),
        Some(other) => Err(format!(
            "unknown VOXEL_TESTKIT_FAULT {other:?} (expected stall_off_by_one)"
        )),
        None if fleets_only => run_fleets_only(),
        None => run_conformance(),
    };
    match outcome {
        Ok(true) => {
            println!("# conformance: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("# conformance: FAIL");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("conformance runner error: {e}");
            ExitCode::FAILURE
        }
    }
}
