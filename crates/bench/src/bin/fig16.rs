//! Figure 16 (Appendix B): 750-packet router queue — the cached-on-LTE
//! scenario. Long queues challenge loss-based CUBIC (bufferbloat), so
//! VOXEL's edge narrows, as the paper observes.

use voxel_bench::{header, sys_config, trace_by_name, video_by_name};
use voxel_core::experiment::ContentCache;
use voxel_quic::CcKind;

fn main() {
    let cache = ContentCache::new();
    header("Fig 16", "bufRatio with a 750-packet network queue");
    println!(
        "{:20} {:>4} {:>8} {:>12}",
        "panel", "buf", "system", "bufRatio-p90"
    );
    for (trace, videos) in [("T-Mobile", ["BBB", "ED"]), ("Verizon", ["Sintel", "ToS"])] {
        for video in videos {
            for buffer in [1usize, 2, 3, 7] {
                let voxel = if trace == "T-Mobile" {
                    "VOXEL-tuned"
                } else {
                    "VOXEL"
                };
                for (label, system, delay_cc) in [
                    ("BOLA", "BOLA", false),
                    (voxel, voxel, false),
                    ("VOXEL+delayCC", voxel, true),
                ] {
                    let mut cfg =
                        sys_config(video_by_name(video), system, buffer, trace_by_name(trace))
                            .queue(750);
                    if delay_cc {
                        cfg = cfg.cc(CcKind::Delay);
                    }
                    let agg = voxel_bench::run(&cache, cfg);
                    println!(
                        "{:20} {:>4} {:>14} {:>11.2}%",
                        format!("{trace}/{video}"),
                        buffer,
                        label,
                        agg.buf_ratio_p90(),
                    );
                }
            }
        }
    }
    println!("\n# expectation (paper): VOXEL keeps a slight edge at small buffers; occasionally worse on Verizon at larger buffers (loss-based CC vs deep queues).");
    println!("# The VOXEL+delayCC rows are the paper's Appendix-B future-work suggestion: a delay-based controller sidesteps the bufferbloat penalty.");
}
