//! Figure 5: unmodified ABRs with QUIC\* under Harpoon-style cross-traffic
//! (§5.1, "In-lab trials with cross traffic").
//!
//! A 20 Mbps link shared with a flow-level web workload averaging
//! 10/15/20 Mbps offered load; 90th-percentile bufRatio and average
//! bitrates for BOLA and MPC over Q vs Q*.

use voxel_bench::{header, sys_config, trial_count, video_by_name};
use voxel_core::experiment::ContentCache;
use voxel_core::TransportMode;
use voxel_netem::crosstraffic::{available_bandwidth, CrossTrafficConfig};

fn main() {
    let cache = ContentCache::new();
    header(
        "Fig 5",
        "vanilla ABRs + QUIC* vs QUIC with cross-traffic on a 20 Mbps link",
    );
    println!(
        "{:24} {:>8} {:>6} {:>10} {:>12} {:>14}",
        "panel", "offered", "buf", "transport", "bufRatio-p90", "bitrate-kbps"
    );
    let panels = [
        ("BOLA", "BBB"),
        ("MPC", "ED"),
        ("BOLA", "Sintel"),
        ("MPC", "ToS"),
    ];
    for offered in [20.0f64, 15.0, 10.0] {
        let trace = available_bandwidth(
            &CrossTrafficConfig::paper(offered),
            voxel_bench::TRACE_DURATION_S,
            voxel_bench::TRACE_SEED,
        );
        for (abr, video) in panels {
            for buffer in [5usize, 6, 7] {
                for (label, transport) in
                    [("Q", TransportMode::Reliable), ("Q*", TransportMode::Split)]
                {
                    let cfg = sys_config(video_by_name(video), abr, buffer, trace.clone())
                        .transport(transport)
                        .trials(trial_count());
                    let agg = voxel_bench::run(&cache, cfg);
                    println!(
                        "{:24} {:>7}M {:>6} {:>10} {:>11.2}% {:>14.0}",
                        format!("{abr}/{video}"),
                        offered,
                        buffer,
                        label,
                        agg.buf_ratio_p90(),
                        agg.bitrate_mean_kbps(),
                    );
                }
            }
        }
        // The paper prints only the 20 Mbps panels; lower loads confirm the
        // trend. Stop after the paper's panel unless full mode is on.
        if trial_count() < 30 {
            break;
        }
    }
    println!("\n# expectation (paper): Q* much lower bufRatio; slight bitrate reduction; MPC improves more (~82%) than BOLA (~64%)");
}
