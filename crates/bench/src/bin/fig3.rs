//! Figures 3 & 4: unmodified ABRs (MPC, BOLA) over QUIC vs QUIC\* (§5.1).
//!
//! 90th-percentile bufRatio (+ standard error) and average bitrates across
//! 30 trials for buffer sizes of 5–7 segments, under the T-Mobile and
//! Verizon traces. "Q" = vanilla QUIC (fully reliable), "Q*" = QUIC\* with
//! the minimal split (I-frames reliable, all other frames unreliable) and
//! no other ABR change.

use voxel_bench::{header, sys_config, trace_by_name, trial_count, video_by_name};
use voxel_core::experiment::ContentCache;
use voxel_core::TransportMode;

fn main() {
    let cache = ContentCache::new();
    // The paper's subplot pairings.
    let panels = [
        ("MPC", "T-Mobile", "BBB"),
        ("MPC", "Verizon", "ED"),
        ("BOLA", "T-Mobile", "Sintel"),
        ("BOLA", "Verizon", "ToS"),
    ];
    header(
        "Fig 3 + Fig 4",
        "vanilla ABRs over QUIC (Q) vs QUIC* (Q*): p90 bufRatio and avg bitrate",
    );
    println!(
        "{:28} {:>6} {:>10} {:>12} {:>9} {:>14}",
        "panel", "buf", "transport", "bufRatio-p90", "stderr", "bitrate-kbps"
    );
    for (abr, trace, video) in panels {
        for buffer in [5usize, 6, 7] {
            for (label, transport) in [("Q", TransportMode::Reliable), ("Q*", TransportMode::Split)]
            {
                let cfg = sys_config(video_by_name(video), abr, buffer, trace_by_name(trace))
                    .transport(transport)
                    .trials(trial_count());
                let agg = voxel_bench::run(&cache, cfg);
                println!(
                    "{:28} {:>6} {:>10} {:>11.2}% {:>8.2}% {:>14.0}",
                    format!("{abr}-{trace}/{video}"),
                    buffer,
                    label,
                    agg.buf_ratio_p90(),
                    agg.buf_ratio_stderr(),
                    agg.bitrate_mean_kbps(),
                );
            }
        }
    }
    println!("\n# expectation (paper): Q* lowers bufRatio for both ABRs; MPC trades more bitrate (~-25%) than BOLA (~-4%)");
}
