//! Figure 2: where droppable frames sit, ordering comparison, and virtual
//! quality levels.
//!
//! (a) fraction of segments in which the frame at each position can be
//!     dropped alone at SSIM 0.99 (BBB/Q12, ToS/Q12);
//! (b) CDF of tolerable drops under the rank ordering vs tail-only drops;
//! (c,d) per-segment bitrate CDFs of the virtual levels Q12/0.99 and
//!     Q12/0.95 against real levels Q10–Q12 (BBB, ToS).

use voxel_bench::{header, print_cdf, video_by_name};
use voxel_media::gop::FRAMES_PER_SEGMENT;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::{Video, SEGMENT_DURATION_S};
use voxel_prep::analysis::{drop_tolerance, droppable_by_position, BytesQoeMap};
use voxel_prep::ordering::OrderingKind;

fn main() {
    let model = QoeModel::default();

    header(
        "Fig 2a",
        "fraction of segments whose frame at position p is droppable (Q12, SSIM 0.99)",
    );
    for name in ["BBB", "ToS"] {
        let v = Video::generate(video_by_name(name));
        let frac = droppable_by_position(&model, &v.segments, QualityLevel::MAX, 0.99);
        // Print every 8th position to keep rows readable.
        let cells: Vec<String> = frac
            .iter()
            .enumerate()
            .step_by(8)
            .map(|(p, f)| format!("{p}:{f:.2}"))
            .collect();
        println!("{name:8} {}", cells.join(" "));
    }

    header(
        "Fig 2b",
        "CDF of tolerable drop % at Q12/0.99: rank ordering vs tail-only",
    );
    let probes: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    for name in ["BBB", "ToS"] {
        let v = Video::generate(video_by_name(name));
        for (label, ordering) in [
            (name.to_string(), OrderingKind::InboundRank),
            (format!("{name}/Tail"), OrderingKind::UnreferencedTail),
        ] {
            let tol: Vec<f64> = v
                .segments
                .iter()
                .map(|s| 100.0 * drop_tolerance(&model, s, QualityLevel::MAX, ordering, 0.99))
                .collect();
            print_cdf(&label, &tol, &probes);
        }
    }

    header(
        "Fig 2c/2d",
        "segment-bitrate CDFs: virtual levels vs real levels (Mbps)",
    );
    let rate_probes: Vec<f64> = (0..=10).map(|i| i as f64 * 2.0).collect();
    for name in ["BBB", "ToS"] {
        let v = Video::generate(video_by_name(name));
        // Real levels.
        for level in [QualityLevel(10), QualityLevel(11), QualityLevel::MAX] {
            let rates: Vec<f64> = v.segments.iter().map(|s| s.bitrate_mbps(level)).collect();
            print_cdf(&format!("{name}/Q{}", level.index()), &rates, &rate_probes);
        }
        // Virtual levels Q12/0.99 and Q12/0.95: bytes needed at Q12 to reach
        // the SSIM target, expressed as a bitrate.
        for target in [0.99, 0.95] {
            let rates: Vec<f64> = v
                .segments
                .iter()
                .map(|s| {
                    let map = BytesQoeMap::compute(
                        &model,
                        s,
                        QualityLevel::MAX,
                        OrderingKind::InboundRank,
                    );
                    let bytes = map
                        .min_bytes_for(target)
                        .map(|p| p.bytes)
                        .unwrap_or(map.full_bytes());
                    bytes as f64 * 8.0 / SEGMENT_DURATION_S / 1e6
                })
                .collect();
            print_cdf(&format!("{name}/Q12/{target}"), &rates, &rate_probes);
        }
    }

    // §3 insight 2 headline: tail-only drops force many more referenced
    // frames into the dropped set than the rank ordering does.
    println!(
        "\n# summary: mean tolerable drops at Q12/0.99 by ordering (paper: rank > tail > original)"
    );
    for name in ["BBB", "ToS"] {
        let v = Video::generate(video_by_name(name));
        for ordering in OrderingKind::ALL {
            let mean: f64 = v
                .segments
                .iter()
                .map(|s| drop_tolerance(&model, s, QualityLevel::MAX, ordering, 0.99))
                .sum::<f64>()
                / v.segments.len() as f64;
            println!(
                "{name:6} {ordering:20} mean droppable {:5.1}% of {} frames",
                mean * 100.0,
                FRAMES_PER_SEGMENT
            );
        }
    }
}
