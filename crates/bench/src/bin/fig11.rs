//! Figure 11 (+13): synthetic-trace dissection and in-the-wild trials.
//!
//! (a) accumulated-average SSIM progression over playback for BOLA vs
//!     VOXEL on a constant 10.5 Mbps trace and a 10.75→10.5 Mbps step
//!     trace (28 s buffer);
//! (b,c) the corresponding SSIM CDFs, including the share of segments with
//!     perfect (1.0) scores;
//! (d)+Fig 13: "in-the-wild" WiFi-like trials with 1- and 7-segment
//!     buffers — bufRatio and SSIM distributions.

use voxel_bench::{header, print_cdf, sys_config, trace_by_name};
use voxel_core::experiment::ContentCache;
use voxel_media::content::VideoId;
use voxel_netem::BandwidthTrace;

fn accumulated_avg(series: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for (i, s) in series.iter().enumerate() {
        sum += s;
        out.push(sum / (i + 1) as f64);
    }
    out
}

fn main() {
    let cache = ContentCache::new();
    header(
        "Fig 11a",
        "accumulated average SSIM while streaming BBB, 28 s buffer",
    );
    let traces = [
        (
            "const",
            BandwidthTrace::constant(10.5, voxel_bench::TRACE_DURATION_S),
        ),
        (
            "step",
            BandwidthTrace::step(10.75, 10.5, 70, voxel_bench::TRACE_DURATION_S),
        ),
    ];
    for (tname, trace) in &traces {
        for system in ["BOLA", "VOXEL"] {
            let cfg = sys_config(VideoId::Bbb, system, 7, trace.clone()).trials(1);
            let agg = voxel_bench::run(&cache, cfg);
            let ssims = agg.trials[0].ssims();
            let acc = accumulated_avg(&ssims);
            let cells: Vec<String> = acc
                .iter()
                .enumerate()
                .step_by(7)
                .map(|(i, v)| format!("{}%:{v:.3}", i * 100 / acc.len().max(1)))
                .collect();
            println!("{system:6} ({tname:5}) {}", cells.join(" "));
            let perfect =
                100.0 * ssims.iter().filter(|&&x| x >= 0.9999).count() as f64 / ssims.len() as f64;
            println!(
                "{:14} mean {:.4}  perfect-SSIM segments {:.0}%  bufRatio {:.2}%",
                "",
                agg.mean_ssim(),
                perfect,
                agg.buf_ratio_mean()
            );
        }
    }
    println!("# expectation (paper): VOXEL never below 0.95 during startup, perfect scores for 65% (const) / 80% (step) of segments; BOLA 0%/3%");

    header("Fig 11b/11c", "SSIM CDFs on the synthetic traces");
    let probes: Vec<f64> = (0..=12).map(|i| 0.88 + i as f64 * 0.01).collect();
    for (tname, trace) in &traces {
        for system in ["BOLA", "VOXEL"] {
            let cfg = sys_config(VideoId::Bbb, system, 7, trace.clone()).trials(4);
            let agg = voxel_bench::run(&cache, cfg);
            print_cdf(&format!("{system} ({tname})"), &agg.pooled_ssims(), &probes);
        }
    }

    header(
        "Fig 11d + Fig 13",
        "in-the-wild trials (university-WiFi-like trace)",
    );
    for buffer in [1usize, 7] {
        for video in ["BBB", "ED", "Sintel", "ToS"] {
            for system in ["BOLA", "VOXEL"] {
                let agg = voxel_bench::run(
                    &cache,
                    sys_config(
                        voxel_bench::video_by_name(video),
                        system,
                        buffer,
                        trace_by_name("in-the-wild"),
                    ),
                );
                println!(
                    "buf={buffer} {video:7} {system:6} bufRatio p90 {:5.2}%  mean SSIM {:.4}",
                    agg.buf_ratio_p90(),
                    agg.mean_ssim(),
                );
            }
        }
    }
    println!("# expectation (paper): comparable SSIM; VOXEL significantly lower bufRatio at the 1-segment buffer");
}
