//! §4.2 text numbers: selective-retransmission residual loss.
//!
//! "We recover all losses in small buffer scenario and have a remaining
//! loss of only 0.9%, 1.5%, 1.8% for 2-, 3- and 7-segment long buffers."
//! Also quantifies the §5.2 frame-drop composition: how often frames were
//! dropped at all, and how often dropping only unreferenced b-frames would
//! not have sufficed.

use voxel_bench::{header, sys_config, trace_by_name};
use voxel_core::experiment::ContentCache;
use voxel_media::content::VideoId;

fn main() {
    let cache = ContentCache::new();
    header(
        "§4.2/§5.2 text",
        "selective retransmission + frame-drop composition (VOXEL, Verizon)",
    );
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>16} {:>18}",
        "buf", "lost(kB)", "recovered", "residual-loss", "segs-with-drops", "ref-drop-share"
    );
    for buffer in [1usize, 2, 3, 7] {
        let agg = voxel_bench::run(
            &cache,
            sys_config(VideoId::Bbb, "VOXEL", buffer, trace_by_name("Verizon")),
        );
        let lost: u64 = agg.trials.iter().map(|t| t.bytes_lost).sum();
        let rec: u64 = agg.trials.iter().map(|t| t.bytes_recovered).sum();
        let segs: u32 = agg.trials.iter().map(|t| t.segments_with_drops).sum();
        let total_segs: usize = agg.trials.iter().map(|t| t.segment_scores.len()).sum();
        let dropped: u32 = agg.trials.iter().map(|t| t.frames_dropped).sum();
        let ref_dropped: u32 = agg.trials.iter().map(|t| t.referenced_frames_dropped).sum();
        println!(
            "{:>4} {:>12} {:>11.0}% {:>13.1}% {:>15.1}% {:>17.1}%",
            buffer,
            lost / 1000,
            if lost > 0 {
                100.0 * rec as f64 / lost as f64
            } else {
                100.0
            },
            agg.residual_loss_mean_pct(),
            100.0 * segs as f64 / total_segs.max(1) as f64,
            if dropped > 0 {
                100.0 * ref_dropped as f64 / dropped as f64
            } else {
                0.0
            },
        );
    }
    println!("\n# expectation (paper): residual loss 0.9/1.5/1.8% at 2/3/7-segment buffers;");
    println!("# frames dropped in ~9% of segments; in 85% of those, b-frames alone were not enough (46% of drops were referenced frames)");
}
