//! Tables 1–3: video characterizations and the bitrate ladder, regenerated
//! from the synthetic model (the input statistics are verbatim from the
//! paper; this binary prints the *measured* statistics of the generated
//! videos next to them).

use voxel_bench::header;
use voxel_media::content::VideoId;
use voxel_media::ladder::{QualityLevel, BITRATE_LADDER};
use voxel_media::video::Video;

fn main() {
    header("Table 1", "evaluation videos from prior work");
    println!(
        "{:24} {:14} {:>12} {:>12} {:>10}",
        "video", "genre", "std(paper)", "std(ours)", "range"
    );
    for id in VideoId::EVAL {
        let p = id.profile();
        let v = Video::generate(id);
        println!(
            "{:24} {:14} {:>12.2} {:>12.2} {:>10}",
            id.short_name(),
            p.genre,
            p.bitrate_std_mbps,
            v.bitrate_std_mbps(QualityLevel::MAX),
            format!("{}-{}", p.segment_range_start, p.segment_range_start + 74),
        );
    }

    header("Table 2", "quality levels of encoded videos");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>14}",
        "level", "resolution", "bitrate(Mbps)", "size(paper MB)", "size(ours MB)"
    );
    for (i, rung) in BITRATE_LADDER.iter().enumerate() {
        let level = QualityLevel::try_from(i).expect("valid");
        // Measured size of a generated clip at this level (BBB).
        let v = Video::generate(VideoId::Bbb);
        let bytes: u64 = v.segments.iter().map(|s| s.bytes(level)).sum();
        println!(
            "{:>6} {:>11}p {:>14.2} {:>14.1} {:>14.1}",
            format!("Q{i}"),
            rung.resolution_p,
            rung.avg_bitrate_mbps,
            rung.total_size_mb,
            bytes as f64 / 1e6,
        );
    }

    header("Table 3", "public YouTube videos");
    println!(
        "{:>4} {:16} {:>12} {:>12} {:>10}",
        "id", "category", "std(paper)", "std(ours)", "range"
    );
    for n in 1..=10u8 {
        let id = VideoId::YouTube(n);
        let p = id.profile();
        let v = Video::generate(id);
        println!(
            "{:>4} {:16} {:>12.2} {:>12.2} {:>10}",
            id.short_name(),
            p.genre,
            p.bitrate_std_mbps,
            v.bitrate_std_mbps(QualityLevel::MAX),
            format!("{}-{}", p.segment_range_start, p.segment_range_start + 74),
        );
    }
}
