//! Figure 15 (+Tables 1–3 via `tables`): per-segment bitrate variation of
//! the capped-VBR encodes across quality levels (ED and Sintel).

use voxel_bench::{header, video_by_name};
use voxel_media::ladder::QualityLevel;
use voxel_media::video::Video;

fn main() {
    header("Fig 15", "per-segment bitrate (Mbps) across quality levels");
    for name in ["ED", "Sintel"] {
        let v = Video::generate(video_by_name(name));
        println!("\n## {name}");
        for q in [12usize, 11, 10, 8, 6, 4] {
            let level = QualityLevel::try_from(q).expect("valid");
            let rates: Vec<String> = v
                .segments
                .iter()
                .step_by(5)
                .map(|s| format!("{:.1}", s.bitrate_mbps(level)))
                .collect();
            println!("Q{q:<2} {}", rates.join(" "));
        }
        let level = QualityLevel::MAX;
        let rates: Vec<f64> = v.segments.iter().map(|s| s.bitrate_mbps(level)).collect();
        let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "Q12 stats: mean {:.2} Mbps, std {:.2} Mbps, peak {:.2} Mbps (2x cap: {:.2})",
            voxel_sim::stats::mean(&rates),
            voxel_sim::stats::std_dev(&rates),
            max,
            2.0 * level.avg_bitrate_mbps(),
        );
    }
    println!("\n# expectation (paper): vastly different per-segment bitrates, peaks at most 2x the average");
}
