//! Ad-hoc session debugging harness (not a paper figure).

use std::sync::Arc;
use voxel_core::client::{PlayerConfig, TransportMode};
use voxel_core::session::Session;
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_netem::{BandwidthTrace, PathConfig};
use voxel_prep::manifest::Manifest;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("voxel");
    let mbps: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50.0);

    let video = Video::generate(VideoId::Bbb);
    let qoe = QoeModel::default();
    let t0 = std::time::Instant::now();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[QualityLevel::MAX]));
    eprintln!("prepare: {:?}", t0.elapsed());

    let path = PathConfig::new(BandwidthTrace::constant(mbps, 3600), 64);
    let (abr, transport): (Box<dyn voxel_abr::Abr>, _) = match mode {
        "bola" => (Box::new(voxel_abr::Bola::new()), TransportMode::Reliable),
        _ => (
            Box::new(voxel_abr::AbrStar::default()),
            TransportMode::Split,
        ),
    };
    let session = Session::new(
        path,
        manifest,
        Arc::new(video),
        qoe,
        abr,
        PlayerConfig::new(7, transport),
    );
    let t1 = std::time::Instant::now();
    let r = session.run();
    eprintln!("run: {:?}", t1.elapsed());
    println!(
        "mode={mode} mbps={mbps} segments={} bufRatio={:.2}% bitrate={:.0}kbps ssim={:.4} startup={:.2}s stalls={:.2}s restarts={} partials={} downloaded={}MB wasted={}MB",
        r.segment_scores.len(),
        r.buf_ratio_pct(),
        r.avg_bitrate_kbps(),
        r.avg_ssim(),
        r.startup_s,
        r.stall_s,
        r.restarts,
        r.kept_partials,
        r.bytes_downloaded / 1_000_000,
        r.bytes_wasted / 1_000_000,
    );
}
