//! Figure 10: the §4.3 ablation — BOLA vs BOLA-SSIM vs VOXEL over the 86
//! raw Riiser 3G commute traces with a 1-segment buffer (plus the 7-segment
//! follow-up quoted in the text).
//!
//! Isolates the two upgrades: BOLA→BOLA-SSIM adds the SSIM utility +
//! partial-download decision space (more quality, slightly more
//! rebuffering); BOLA-SSIM→VOXEL adds keep-partial abandonment over QUIC\*
//! (the rebuffering win).

use voxel_bench::{header, print_cdf, sys_config, trial_count};
use voxel_core::experiment::ContentCache;
use voxel_media::content::VideoId;
use voxel_netem::trace::generators;

fn main() {
    let cache = ContentCache::new();
    // One trial per trace (the ensemble provides the repetition); the fast
    // mode uses a subset of the 86 traces.
    let traces: usize = if trial_count() >= 30 { 86 } else { 24 };
    header(
        "Fig 10",
        &format!("BOLA vs BOLA-SSIM vs VOXEL over {traces} raw 3G traces"),
    );
    for buffer in [1usize, 7] {
        println!("\n## {buffer}-segment buffer");
        for system in ["BOLA", "BOLA-SSIM", "VOXEL"] {
            let mut trials = Vec::new();
            for i in 0..traces {
                let trace = generators::norway_3g_raw(i, voxel_bench::TRACE_DURATION_S);
                let cfg = sys_config(VideoId::Bbb, system, buffer, trace).trials(1);
                let agg = voxel_bench::run(&cache, cfg);
                trials.extend(agg.trials);
            }
            let agg = voxel_core::metrics::Aggregate::new(trials);
            let ratios: Vec<f64> = agg.trials.iter().map(|t| t.buf_ratio_pct()).collect();
            println!(
                "{system:10} mean bufRatio {:5.2}%  p90 {:5.2}%  p95 {:5.2}%  mean SSIM {:.4}",
                agg.buf_ratio_mean(),
                voxel_sim::stats::percentile(&ratios, 0.90),
                voxel_sim::stats::percentile(&ratios, 0.95),
                agg.mean_ssim(),
            );
            let probes: Vec<f64> = (0..=8).map(|i| i as f64 * 5.0).collect();
            print_cdf(&format!("{system} bufRatio"), &ratios, &probes);
        }
    }
    println!("\n# expectation (paper, 1-seg): BOLA 7.9%, BOLA-SSIM 8.2% (+SSIM 0.02), VOXEL 5.1% mean bufRatio with the same +0.02 SSIM");
    println!("# expectation (paper, 7-seg): 7.1%/7.1%/2.8% with SSIMs 0.865/0.898/0.895");
}
