//! Figure 1: frame-drop tolerance CDFs and low-quality SSIM distributions.
//!
//! (a) CDF of tolerable frame-drop % at Q12 / SSIM 0.99 for BBB, ED,
//!     Sintel, ToS, P2, P4;
//! (b) the same at Q9 / SSIM 0.99 (tolerance shrinks);
//! (c) the same at Q9 / SSIM 0.95 (tolerance recovers);
//! (d) CDF of pristine SSIM for ToS/BBB at Q6 and Q9.

use voxel_bench::{header, print_cdf, video_by_name};
use voxel_media::gop::FRAMES_PER_SEGMENT;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;

fn tolerance_cdf(video: &Video, model: &QoeModel, level: QualityLevel, target: f64) -> Vec<f64> {
    video
        .segments
        .iter()
        .map(|s| {
            100.0 * model.max_droppable_frames(s, level, target) as f64 / FRAMES_PER_SEGMENT as f64
        })
        .collect()
}

fn main() {
    let model = QoeModel::default();
    let videos = ["BBB", "ED", "Sintel", "ToS", "P2", "P4"];
    let probes: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();

    header(
        "Fig 1a",
        "CDF of frames droppable at Q12 while keeping SSIM >= 0.99",
    );
    for name in videos {
        let v = Video::generate(video_by_name(name));
        print_cdf(
            name,
            &tolerance_cdf(&v, &model, QualityLevel::MAX, 0.99),
            &probes,
        );
    }

    header(
        "Fig 1b",
        "CDF of frames droppable at Q9 while keeping SSIM >= 0.99",
    );
    for name in videos {
        let v = Video::generate(video_by_name(name));
        print_cdf(
            name,
            &tolerance_cdf(&v, &model, QualityLevel(9), 0.99),
            &probes,
        );
    }

    header(
        "Fig 1c",
        "CDF of frames droppable at Q9 while keeping SSIM >= 0.95",
    );
    for name in videos {
        let v = Video::generate(video_by_name(name));
        print_cdf(
            name,
            &tolerance_cdf(&v, &model, QualityLevel(9), 0.95),
            &probes,
        );
    }

    header(
        "Fig 1d",
        "CDF of pristine segment SSIM at low quality levels",
    );
    let ssim_probes: Vec<f64> = (0..=10).map(|i| 0.75 + i as f64 * 0.025).collect();
    for (name, level) in [("ToS", 6), ("ToS", 9), ("BBB", 6), ("BBB", 9)] {
        let v = Video::generate(video_by_name(name));
        let ssims: Vec<f64> = v
            .segments
            .iter()
            .map(|s| model.pristine_ssim(s, QualityLevel(level)))
            .collect();
        print_cdf(&format!("{name}/Q{level}"), &ssims, &ssim_probes);
        let below = ssims.iter().filter(|&&s| s < 0.99).count() as f64 / ssims.len() as f64;
        println!(
            "{name}/Q{level}: fraction below SSIM 0.99 = {:.0}%",
            below * 100.0
        );
    }

    // Headline check from §3 insight 1.
    println!("\n# summary: median tolerable drop % at Q12/0.99 (paper: 10-20%+ for all)");
    for name in videos {
        let v = Video::generate(video_by_name(name));
        let tol = tolerance_cdf(&v, &model, QualityLevel::MAX, 0.99);
        println!(
            "{name:8} median {:5.1}%",
            voxel_sim::stats::percentile(&tol, 0.5)
        );
    }
}
