//! Validate the committed `BENCH_5.json` performance baseline.
//!
//! Checks that the snapshot the conformance runner emits is well-formed:
//! the v1 schema marker, a fleet-scaling series covering exactly
//! 1/2/4/8/16 sessions with positive event-loop rates, a 1000-session
//! `fleet_bulk` point whose rate holds the flatness gate (at least
//! [`FLEET_FLATNESS_RATIO`] of the 16-session rate — per-event cost must
//! not grow with fleet size), and positive RangeSet / session-loop
//! throughputs. With `--compare`, additionally
//! diffs the snapshot's per-workload rates against the medians of
//! `BENCH_HISTORY.jsonl` (appended by every conformance run) and fails
//! when any workload regressed by more than 15%, naming the culprit.
//! The `fleet1k` rate is reported but exempt from the cross-run
//! threshold: a single ~7 s shot swings ±30% with ambient machine load,
//! so its authoritative gate is the same-run flatness ratio above,
//! where numerator and denominator see identical conditions.
//! Run by `ci.sh` after the conformance step.
//!
//! ```sh
//! cargo run --release -p voxel-bench --bin check_bench5 -- \
//!     [snapshot.json] [--compare [history.jsonl]]
//! ```

use std::process::ExitCode;
use voxel_bench::perf::{
    CC_SHOOTOUT_SESSIONS, EDGE_SESSIONS, FLEET_BULK_SESSIONS, FLEET_FLATNESS_RATIO,
    FLEET_SCALING_SESSIONS,
};

/// Pull the number after `"key": ` out of a JSON object line. The file
/// is our own fixed-format emission (see `perf::Bench5::to_json`), so a
/// field scan is exact — no JSON parser in the tree.
fn field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(text: &str) -> Result<(), String> {
    if !text.contains("\"schema\": \"voxel-bench5-v1\"") {
        return Err("missing voxel-bench5-v1 schema marker".into());
    }

    let mut sessions = Vec::new();
    let mut fleet16_steps = 0.0_f64;
    let mut in_scaling = false;
    for line in text.lines() {
        if line.contains("\"fleet_scaling\"") {
            in_scaling = true;
            continue;
        }
        if in_scaling {
            if line.trim_start().starts_with(']') {
                in_scaling = false;
                continue;
            }
            let n = field(line, "sessions").ok_or_else(|| format!("bad point: {line}"))?;
            let steps = field(line, "steps_per_sec")
                .ok_or_else(|| format!("point missing steps_per_sec: {line}"))?;
            let iters = field(line, "loop_iters")
                .ok_or_else(|| format!("point missing loop_iters: {line}"))?;
            if steps <= 0.0 || iters <= 0.0 {
                return Err(format!("non-positive rate at {n} sessions: {line}"));
            }
            if n as usize == 16 {
                fleet16_steps = steps;
            }
            sessions.push(n as usize);
        }
    }
    if sessions != FLEET_SCALING_SESSIONS {
        return Err(format!(
            "fleet_scaling covers sessions {sessions:?}, expected {FLEET_SCALING_SESSIONS:?}"
        ));
    }

    // The bulk point, and the flatness gate against the 16-session rate.
    let bulk = text
        .lines()
        .find(|l| l.contains("\"fleet_bulk\""))
        .ok_or("missing fleet_bulk entry")?;
    let n = field(bulk, "sessions").ok_or("fleet_bulk missing sessions")?;
    if n as usize != FLEET_BULK_SESSIONS {
        return Err(format!(
            "fleet_bulk ran {n} sessions, expected {FLEET_BULK_SESSIONS}"
        ));
    }
    let bulk_steps = field(bulk, "steps_per_sec").ok_or("fleet_bulk missing steps_per_sec")?;
    let bulk_iters = field(bulk, "loop_iters").ok_or("fleet_bulk missing loop_iters")?;
    if bulk_steps <= 0.0 || bulk_iters <= 0.0 {
        return Err(format!("non-positive fleet_bulk rate: {bulk}"));
    }
    let floor = FLEET_FLATNESS_RATIO * fleet16_steps;
    if bulk_steps < floor {
        return Err(format!(
            "flatness gate: fleet1k runs {bulk_steps:.1} steps/s, below \
             {FLEET_FLATNESS_RATIO} x fleet16 ({fleet16_steps:.1}) = {floor:.1} — \
             per-event cost is growing with fleet size"
        ));
    }

    // The cc-contention point: right scale, positive rate.
    let cc = text
        .lines()
        .find(|l| l.contains("\"cc_shootout\""))
        .ok_or("missing cc_shootout entry")?;
    let n = field(cc, "sessions").ok_or("cc_shootout missing sessions")?;
    if n as usize != CC_SHOOTOUT_SESSIONS {
        return Err(format!(
            "cc_shootout ran {n} sessions, expected {CC_SHOOTOUT_SESSIONS}"
        ));
    }
    let cc_steps = field(cc, "steps_per_sec").ok_or("cc_shootout missing steps_per_sec")?;
    if cc_steps <= 0.0 {
        return Err(format!("non-positive cc_shootout rate: {cc}"));
    }

    // The edge-tier point: right scale, positive rate.
    let edge = text
        .lines()
        .find(|l| l.contains("\"edge\""))
        .ok_or("missing edge entry")?;
    let n = field(edge, "sessions").ok_or("edge missing sessions")?;
    if n as usize != EDGE_SESSIONS {
        return Err(format!("edge ran {n} sessions, expected {EDGE_SESSIONS}"));
    }
    let edge_steps = field(edge, "steps_per_sec").ok_or("edge missing steps_per_sec")?;
    if edge_steps <= 0.0 {
        return Err(format!("non-positive edge rate: {edge}"));
    }

    for key in ["rangeset", "session_loop"] {
        let line = text
            .lines()
            .find(|l| l.contains(&format!("\"{key}\"")))
            .ok_or_else(|| format!("missing {key} entry"))?;
        let rate =
            field(line, "ops_per_sec").ok_or_else(|| format!("{key} missing ops_per_sec"))?;
        if rate <= 0.0 {
            return Err(format!("{key} has non-positive ops_per_sec {rate}"));
        }
    }
    Ok(())
}

/// A workload regresses when its rate drops more than this far below the
/// history median.
const REGRESSION_PCT: f64 = 15.0;

/// Workloads reported in the compare table but exempt from the cross-run
/// threshold. `fleet1k` is one unrepeated ~7 s measurement, which swings
/// ±30% run-to-run with ambient machine load; its authoritative gate is
/// the same-run flatness ratio in [`check`], where the fleet16
/// denominator sees the same conditions and the noise cancels.
const CROSS_RUN_EXEMPT: &[&str] = &["fleet1k"];

/// The per-workload rates of a `BENCH_5.json` snapshot, named the same
/// way as `Bench5::workloads` / the history records.
fn snapshot_workloads(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let mut in_scaling = false;
    for line in text.lines() {
        if line.contains("\"fleet_scaling\"") {
            in_scaling = true;
            continue;
        }
        if in_scaling {
            if line.trim_start().starts_with(']') {
                in_scaling = false;
                continue;
            }
            let n = field(line, "sessions").ok_or_else(|| format!("bad point: {line}"))?;
            let steps = field(line, "steps_per_sec")
                .ok_or_else(|| format!("point missing steps_per_sec: {line}"))?;
            out.push((format!("fleet{}", n as usize), steps));
        }
    }
    let bulk = text
        .lines()
        .find(|l| l.contains("\"fleet_bulk\""))
        .ok_or("missing fleet_bulk entry")?;
    let steps = field(bulk, "steps_per_sec").ok_or("fleet_bulk missing steps_per_sec")?;
    out.push(("fleet1k".into(), steps));
    let cc = text
        .lines()
        .find(|l| l.contains("\"cc_shootout\""))
        .ok_or("missing cc_shootout entry")?;
    let steps = field(cc, "steps_per_sec").ok_or("cc_shootout missing steps_per_sec")?;
    out.push(("cc_shootout".into(), steps));
    let edge = text
        .lines()
        .find(|l| l.contains("\"edge\""))
        .ok_or("missing edge entry")?;
    let steps = field(edge, "steps_per_sec").ok_or("edge missing steps_per_sec")?;
    out.push(("edge".into(), steps));
    for key in ["rangeset", "session_loop"] {
        let line = text
            .lines()
            .find(|l| l.contains(&format!("\"{key}\"")))
            .ok_or_else(|| format!("missing {key} entry"))?;
        let rate =
            field(line, "ops_per_sec").ok_or_else(|| format!("{key} missing ops_per_sec"))?;
        out.push((key.to_string(), rate));
    }
    Ok(out)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Diff `current` against the per-workload medians of `history` (JSONL,
/// one record per past run). Returns the per-workload report lines, or
/// an error naming every workload that regressed past the threshold.
fn compare(current: &[(String, f64)], history: &str) -> Result<Vec<String>, String> {
    let records: Vec<&str> = history.lines().filter(|l| !l.trim().is_empty()).collect();
    if records.is_empty() {
        return Ok(vec!["history empty: nothing to compare against".into()]);
    }
    let mut report = Vec::new();
    let mut culprits = Vec::new();
    for (name, cur) in current {
        let past: Vec<f64> = records
            .iter()
            .filter_map(|l| field(l, name))
            .filter(|v| *v > 0.0)
            .collect();
        if past.is_empty() {
            report.push(format!("{name:<14} {cur:>12.1}   (no history)"));
            continue;
        }
        let runs = past.len();
        let med = median(past);
        let delta_pct = 100.0 * (cur - med) / med;
        let exempt = CROSS_RUN_EXEMPT.contains(&name.as_str());
        report.push(format!(
            "{name:<14} {cur:>12.1} vs median {med:>12.1} ({delta_pct:>+6.1}%, {runs} run(s)){}",
            if exempt { "   [informational]" } else { "" }
        ));
        if delta_pct < -REGRESSION_PCT && !exempt {
            culprits.push(format!(
                "{name} regressed {:.1}% ({cur:.1} vs median {med:.1})",
                -delta_pct
            ));
        }
    }
    if culprits.is_empty() {
        Ok(report)
    } else {
        Err(format!(
            "perf regression past the {REGRESSION_PCT}% threshold:\n  {}",
            culprits.join("\n  ")
        ))
    }
}

fn repo_file(name: &str) -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn main() -> ExitCode {
    let mut snapshot_path = None;
    let mut do_compare = false;
    let mut history_path = None;
    for a in std::env::args().skip(1) {
        if a == "--compare" {
            do_compare = true;
        } else if !do_compare && snapshot_path.is_none() {
            snapshot_path = Some(a);
        } else if do_compare && history_path.is_none() {
            history_path = Some(a);
        } else {
            eprintln!("check_bench5: unexpected argument {a:?}");
            eprintln!("usage: check_bench5 [snapshot.json] [--compare [history.jsonl]]");
            return ExitCode::FAILURE;
        }
    }
    let path = snapshot_path.unwrap_or_else(|| repo_file("BENCH_5.json"));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_bench5: cannot read {path}: {e}");
            eprintln!("(run `cargo run --release -p voxel-bench --bin conformance` to emit it)");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(()) => println!("# BENCH_5.json: ok ({path})"),
        Err(e) => {
            eprintln!("check_bench5: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !do_compare {
        return ExitCode::SUCCESS;
    }
    let hpath = history_path.unwrap_or_else(|| repo_file("BENCH_HISTORY.jsonl"));
    let history = std::fs::read_to_string(&hpath).unwrap_or_default();
    let current = match snapshot_workloads(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check_bench5: {e}");
            return ExitCode::FAILURE;
        }
    };
    match compare(&current, &history) {
        Ok(report) => {
            println!("# compare vs {hpath}:");
            for line in report {
                println!("#   {line}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_bench5: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_bench::perf::{Bench5, FleetPoint, OpsPoint};

    fn fleet(sessions: usize, steps_per_sec: f64) -> FleetPoint {
        FleetPoint {
            sessions,
            wall_ms: 10.0,
            loop_iters: 1000,
            steps_per_sec,
            sim_end_s: 60.0,
            jain: 1.0,
        }
    }

    fn sample() -> Bench5 {
        Bench5 {
            fleet_scaling: FLEET_SCALING_SESSIONS
                .iter()
                .map(|&n| fleet(n, 100_000.0))
                .collect(),
            fleet_bulk: fleet(FLEET_BULK_SESSIONS, 100_000.0),
            cc_shootout: fleet(CC_SHOOTOUT_SESSIONS, 100_000.0),
            edge: fleet(EDGE_SESSIONS, 100_000.0),
            rangeset: OpsPoint::new(2048, 1.0),
            session_loop: OpsPoint::new(1000, 10.0),
        }
    }

    #[test]
    fn accepts_the_emitted_shape() {
        assert_eq!(check(&sample().to_json()), Ok(()));
    }

    #[test]
    fn rejects_missing_scaling_points_and_schema() {
        let mut b = sample();
        b.fleet_scaling.pop();
        assert!(check(&b.to_json()).is_err());
        let j = sample().to_json().replace("voxel-bench5-v1", "v0");
        assert!(check(&j).is_err());
    }

    #[test]
    fn flatness_gate_trips_on_a_collapsed_bulk_rate() {
        // Just above the floor passes; just below names the gate.
        let mut b = sample();
        b.fleet_bulk = fleet(FLEET_BULK_SESSIONS, FLEET_FLATNESS_RATIO * 100_000.0 + 1.0);
        assert_eq!(check(&b.to_json()), Ok(()));
        b.fleet_bulk = fleet(FLEET_BULK_SESSIONS, FLEET_FLATNESS_RATIO * 100_000.0 * 0.5);
        let err = check(&b.to_json()).expect_err("collapsed rate must fail");
        assert!(err.contains("flatness gate"), "{err}");
        // A bulk point at the wrong scale is rejected outright.
        b.fleet_bulk = fleet(16, 100_000.0);
        assert!(check(&b.to_json()).is_err());
    }

    #[test]
    fn snapshot_workloads_match_the_bench5_naming() {
        let b = sample();
        let from_json = snapshot_workloads(&b.to_json()).expect("workloads parse");
        assert_eq!(from_json, b.workloads());
        let names: Vec<&str> = from_json.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"fleet16"), "{names:?}");
        assert!(names.contains(&"session_loop"), "{names:?}");
    }

    #[test]
    fn compare_passes_on_the_unchanged_baseline() {
        let b = sample();
        let history = format!(
            "{}\n{}\n{}\n",
            b.history_line(),
            b.history_line(),
            b.history_line()
        );
        let report = compare(&b.workloads(), &history).expect("no regression");
        assert!(report.iter().all(|l| l.contains("+0.0%")), "{report:?}");
    }

    #[test]
    fn compare_flags_a_20pct_regression_and_names_the_culprit() {
        let b = sample();
        let history = format!(
            "{}\n{}\n{}\n",
            b.history_line(),
            b.history_line(),
            b.history_line()
        );
        let mut slow = b.workloads();
        let row = slow
            .iter_mut()
            .find(|(n, _)| n == "session_loop")
            .expect("workload present");
        row.1 *= 0.8; // synthetic 20% regression
        let err = compare(&slow, &history).expect_err("20% > 15% threshold");
        assert!(err.contains("session_loop"), "culprit unnamed: {err}");
        assert!(err.contains("regressed 20.0%"), "{err}");
        assert!(
            !err.contains("fleet"),
            "innocent workloads dragged in: {err}"
        );
    }

    #[test]
    fn fleet1k_noise_is_informational_not_a_regression() {
        // A big cross-run swing on fleet1k alone must not fail --compare
        // (its gate is the same-run flatness ratio in check()), but the
        // same swing on a non-exempt workload still does.
        let b = sample();
        let history = format!("{}\n", b.history_line());
        let mut noisy = b.workloads();
        noisy
            .iter_mut()
            .find(|(n, _)| n == "fleet1k")
            .expect("fleet1k present")
            .1 *= 0.6; // 40% down, way past the threshold
        let report = compare(&noisy, &history).expect("fleet1k swing tolerated");
        assert!(
            report
                .iter()
                .any(|l| l.contains("fleet1k") && l.contains("[informational]")),
            "{report:?}"
        );
        noisy
            .iter_mut()
            .find(|(n, _)| n == "fleet16")
            .expect("fleet16 present")
            .1 *= 0.6;
        let err = compare(&noisy, &history).expect_err("fleet16 swing still fails");
        assert!(err.contains("fleet16") && !err.contains("fleet1k"), "{err}");
    }

    #[test]
    fn compare_tolerates_sub_threshold_noise_and_missing_history() {
        let b = sample();
        let history = format!("{}\n", b.history_line());
        let mut noisy = b.workloads();
        for row in &mut noisy {
            row.1 *= 0.9; // 10% down: inside the 15% budget
        }
        assert!(compare(&noisy, &history).is_ok());
        // Empty history: nothing to diff, pass with a note.
        let report = compare(&b.workloads(), "").expect("empty history passes");
        assert!(report[0].contains("history empty"), "{report:?}");
        // A median over mixed history uses every record: one half-speed
        // outlier run cannot fail a current snapshot matching the rest.
        let slower = history.replace("100000.0", "50000.0");
        let mixed = format!("{history}{history}{slower}");
        assert!(compare(&b.workloads(), &mixed).is_ok());
    }
}
