//! Validate the committed `BENCH_5.json` performance baseline.
//!
//! Checks that the snapshot the conformance runner emits is well-formed:
//! the v1 schema marker, a fleet-scaling series covering exactly
//! 1/2/4/8/16 sessions with positive event-loop rates, and positive
//! RangeSet / session-loop throughputs. Run by `ci.sh` after the
//! conformance step.
//!
//! ```sh
//! cargo run --release -p voxel-bench --bin check_bench5 [path]
//! ```

use std::process::ExitCode;
use voxel_bench::perf::FLEET_SCALING_SESSIONS;

/// Pull the number after `"key": ` out of a JSON object line. The file
/// is our own fixed-format emission (see `perf::Bench5::to_json`), so a
/// field scan is exact — no JSON parser in the tree.
fn field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(text: &str) -> Result<(), String> {
    if !text.contains("\"schema\": \"voxel-bench5-v1\"") {
        return Err("missing voxel-bench5-v1 schema marker".into());
    }

    let mut sessions = Vec::new();
    let mut in_scaling = false;
    for line in text.lines() {
        if line.contains("\"fleet_scaling\"") {
            in_scaling = true;
            continue;
        }
        if in_scaling {
            if line.trim_start().starts_with(']') {
                in_scaling = false;
                continue;
            }
            let n = field(line, "sessions").ok_or_else(|| format!("bad point: {line}"))?;
            let steps = field(line, "steps_per_sec")
                .ok_or_else(|| format!("point missing steps_per_sec: {line}"))?;
            let iters = field(line, "loop_iters")
                .ok_or_else(|| format!("point missing loop_iters: {line}"))?;
            if steps <= 0.0 || iters <= 0.0 {
                return Err(format!("non-positive rate at {n} sessions: {line}"));
            }
            sessions.push(n as usize);
        }
    }
    if sessions != FLEET_SCALING_SESSIONS {
        return Err(format!(
            "fleet_scaling covers sessions {sessions:?}, expected {FLEET_SCALING_SESSIONS:?}"
        ));
    }

    for key in ["rangeset", "session_loop"] {
        let line = text
            .lines()
            .find(|l| l.contains(&format!("\"{key}\"")))
            .ok_or_else(|| format!("missing {key} entry"))?;
        let rate =
            field(line, "ops_per_sec").ok_or_else(|| format!("{key} missing ops_per_sec"))?;
        if rate <= 0.0 {
            return Err(format!("{key} has non-positive ops_per_sec {rate}"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_5.json")
            .to_string_lossy()
            .into_owned()
    });
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_bench5: cannot read {path}: {e}");
            eprintln!("(run `cargo run --release -p voxel-bench --bin conformance` to emit it)");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(()) => {
            println!("# BENCH_5.json: ok ({path})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_bench5: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voxel_bench::perf::{Bench5, FleetPoint, OpsPoint};

    fn sample() -> Bench5 {
        Bench5 {
            fleet_scaling: FLEET_SCALING_SESSIONS
                .iter()
                .map(|&n| FleetPoint {
                    sessions: n,
                    wall_ms: 10.0,
                    loop_iters: 1000,
                    steps_per_sec: 100_000.0,
                    sim_end_s: 60.0,
                    jain: 1.0,
                })
                .collect(),
            rangeset: OpsPoint::new(2048, 1.0),
            session_loop: OpsPoint::new(1000, 10.0),
        }
    }

    #[test]
    fn accepts_the_emitted_shape() {
        assert_eq!(check(&sample().to_json()), Ok(()));
    }

    #[test]
    fn rejects_missing_scaling_points_and_schema() {
        let mut b = sample();
        b.fleet_scaling.pop();
        assert!(check(&b.to_json()).is_err());
        let j = sample().to_json().replace("voxel-bench5-v1", "v0");
        assert!(check(&j).is_err());
    }
}
