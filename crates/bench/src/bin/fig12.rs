//! Figure 12: the full VOXEL system vs BOLA under 20 Mbps cross-traffic
//! (§5.2, "In-lab trials with cross traffic").

use voxel_bench::{header, sys_config, video_by_name};
use voxel_core::experiment::ContentCache;
use voxel_netem::crosstraffic::{available_bandwidth, CrossTrafficConfig};

fn main() {
    let cache = ContentCache::new();
    header(
        "Fig 12",
        "BOLA vs VOXEL with 20 Mbps cross-traffic on a 20 Mbps link",
    );
    let trace = available_bandwidth(
        &CrossTrafficConfig::paper(20.0),
        voxel_bench::TRACE_DURATION_S,
        voxel_bench::TRACE_SEED,
    );
    println!(
        "{:8} {:>4} {:>8} {:>12} {:>14}",
        "video", "buf", "system", "bufRatio-p90", "bitrate-kbps"
    );
    for video in ["BBB", "ED", "Sintel", "ToS"] {
        for buffer in [1usize, 2, 3, 7] {
            for system in ["BOLA", "VOXEL"] {
                let agg = voxel_bench::run(
                    &cache,
                    sys_config(video_by_name(video), system, buffer, trace.clone()),
                );
                println!(
                    "{:8} {:>4} {:>8} {:>11.2}% {:>14.0}",
                    video,
                    buffer,
                    system,
                    agg.buf_ratio_p90(),
                    agg.bitrate_mean_kbps(),
                );
            }
        }
    }
    println!("\n# expectation (paper): VOXEL near-zero bufRatio even at the 1-segment buffer, without sacrificing bitrate");
}
