//! A/B: untraced session vs session with a null-sink tracer enabled.
use std::sync::Arc;
use std::time::Instant;
use voxel_core::client::{PlayerConfig, TransportMode};
use voxel_core::session::Session;
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_netem::{BandwidthTrace, PathConfig};
use voxel_prep::manifest::Manifest;
use voxel_trace::{NullSink, Tracer};

fn main() {
    let video = Video::generate(VideoId::Bbb);
    let qoe = QoeModel::default();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[QualityLevel::MAX]));
    let video = Arc::new(video);
    let run = |traced: bool| {
        let mut s = Session::new(
            PathConfig::new(BandwidthTrace::constant(10.0, 600), 32),
            manifest.clone(),
            video.clone(),
            qoe.clone(),
            Box::new(voxel_abr::AbrStar::default()),
            PlayerConfig::new(3, TransportMode::Split),
        );
        if traced {
            s = s.with_tracer(Tracer::new(0, Box::new(NullSink)));
        }
        s.run()
    };
    // warmup
    run(false);
    run(true);
    for label in ["disabled", "null-sink"] {
        let traced = label == "null-sink";
        let mut times = Vec::new();
        for _ in 0..7 {
            let t0 = Instant::now();
            let r = run(traced);
            std::hint::black_box(r);
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!("{label:9} median {:.4}s min {:.4}s", times[3], times[0]);
    }
}
