//! A/B: untraced session vs session with a null-sink tracer enabled.
use std::sync::Arc;
use std::time::Instant;
use voxel_core::client::TransportMode;
use voxel_core::experiment::{run_instrumented_trial, AbrKind, Experiment};
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_netem::BandwidthTrace;
use voxel_prep::manifest::Manifest;
use voxel_trace::{NullSink, Tracer};

fn main() {
    let video = Video::generate(VideoId::Bbb);
    let qoe = QoeModel::default();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[QualityLevel::MAX]));
    let video = Arc::new(video);
    let config = Experiment::builder()
        .video(VideoId::Bbb)
        .abr(AbrKind::voxel())
        .transport(TransportMode::Split)
        .buffer(3)
        .trace(BandwidthTrace::constant(10.0, 600))
        .queue(32)
        .build()
        .into_config();
    let run = |traced: bool| {
        let tracer = if traced {
            Tracer::new(0, Box::new(NullSink))
        } else {
            Tracer::disabled()
        };
        run_instrumented_trial(&config, &manifest, &video, &qoe, 0, tracer, None)
    };
    // warmup
    run(false);
    run(true);
    for label in ["disabled", "null-sink"] {
        let traced = label == "null-sink";
        let mut times = Vec::new();
        for _ in 0..7 {
            let t0 = Instant::now();
            let r = run(traced);
            std::hint::black_box(r);
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!("{label:9} median {:.4}s min {:.4}s", times[3], times[0]);
    }
}
