//! Figure 19 (Appendix C): the §3 insights generalized over the public
//! YouTube set — drop-tolerance CDFs for P1, P5, P6, P7, P9, P10.

use voxel_bench::{header, print_cdf, video_by_name};
use voxel_media::gop::FRAMES_PER_SEGMENT;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;

fn main() {
    let model = QoeModel::default();
    let videos = ["P1", "P5", "P6", "P7", "P9", "P10"];
    let probes: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    for (fig, level, target) in [
        ("Fig 19a", QualityLevel::MAX, 0.99),
        ("Fig 19b", QualityLevel(9), 0.99),
        ("Fig 19c", QualityLevel(9), 0.95),
    ] {
        header(
            fig,
            &format!("droppable-frame CDF at {level}, SSIM >= {target}"),
        );
        for name in videos {
            let v = Video::generate(video_by_name(name));
            let tol: Vec<f64> = v
                .segments
                .iter()
                .map(|s| {
                    100.0 * model.max_droppable_frames(s, level, target) as f64
                        / FRAMES_PER_SEGMENT as f64
                })
                .collect();
            print_cdf(name, &tol, &probes);
        }
    }
    println!("\n# expectation (paper): P9 (static unboxing) tolerates ~80% drops; P10 (street dance, no cuts) tolerates almost none; the rest behave like the Table 1 videos");
}
