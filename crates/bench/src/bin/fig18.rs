//! Figure 18 (Appendix D): FCC results and the partial-reliability
//! ablation — VOXEL with unreliable streams disabled ("VOXEL rel") vs
//! VOXEL, on T-Mobile and Verizon.

use voxel_bench::{header, sys_config, trace_by_name, video_by_name};
use voxel_core::experiment::ContentCache;

fn main() {
    let cache = ContentCache::new();

    header(
        "Fig 18a/18b",
        "FCC trace: bufRatio and bitrate, BOLA vs VOXEL",
    );
    for video in ["BBB", "ED", "Sintel", "ToS"] {
        for buffer in [1usize, 2, 3, 7] {
            let bola = voxel_bench::run(
                &cache,
                sys_config(video_by_name(video), "BOLA", buffer, trace_by_name("FCC")),
            );
            let vox = voxel_bench::run(
                &cache,
                sys_config(video_by_name(video), "VOXEL", buffer, trace_by_name("FCC")),
            );
            println!(
                "FCC/{video:7} buf={buffer} BOLA p90 {:5.2}% @{:>6.0}kbps   VOXEL p90 {:5.2}% @{:>6.0}kbps",
                bola.buf_ratio_p90(),
                bola.bitrate_mean_kbps(),
                vox.buf_ratio_p90(),
                vox.bitrate_mean_kbps(),
            );
        }
    }

    header(
        "Fig 18c/18d",
        "partial-reliability ablation: VOXEL rel (fully reliable) vs VOXEL",
    );
    for (trace, videos, tuned) in [
        ("T-Mobile", ["BBB", "ED"], true),
        ("Verizon", ["Sintel", "ToS"], false),
    ] {
        for video in videos {
            for buffer in [1usize, 2, 3, 7] {
                let voxel = if tuned { "VOXEL-tuned" } else { "VOXEL" };
                let rel = voxel_bench::run(
                    &cache,
                    sys_config(
                        video_by_name(video),
                        "VOXEL-rel",
                        buffer,
                        trace_by_name(trace),
                    ),
                );
                let vox = voxel_bench::run(
                    &cache,
                    sys_config(video_by_name(video), voxel, buffer, trace_by_name(trace)),
                );
                println!(
                    "{:18} buf={buffer} VOXEL-rel p90 {:5.2}% ssim {:.4} @{:5.0}kbps   VOXEL p90 {:5.2}% ssim {:.4} @{:5.0}kbps",
                    format!("{trace}/{video}"),
                    rel.buf_ratio_p90(),
                    rel.mean_ssim(),
                    rel.bitrate_mean_kbps(),
                    vox.buf_ratio_p90(),
                    vox.mean_ssim(),
                    vox.bitrate_mean_kbps(),
                );
            }
        }
    }
    println!("\n# expectation (paper): partial reliability roughly halves bufRatio on Verizon; wins all but one T-Mobile case.");
    println!("# In this reproduction ABR*'s deadline-driven cut already prevents stalls in both modes, so the");
    println!("# partial-reliability gain shows up as delivered quality/bitrate (reliable mode wastes capacity");
    println!(
        "# retransmitting data whose deadline will pass, and cannot recover mid-stream holes)."
    );
}
