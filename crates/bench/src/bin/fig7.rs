//! Figure 7: QoE-metric agnosticism and skipped data (§5.2).
//!
//! (a) bufRatio of VOXEL optimizing SSIM / VMAF / PSNR vs BOLA (BBB over
//!     Verizon, buffers 1,2,3,7);
//! (b,c) SSIM and VMAF distributions of all streamed segments, BOLA vs
//!     VOXEL (BBB over Verizon);
//! (d) percent of segment data skipped by VOXEL vs buffer size, per video.

use voxel_bench::{header, print_cdf, sys_config, trace_by_name, video_by_name};
use voxel_core::experiment::{AbrKind, ContentCache, Experiment};
use voxel_core::TransportMode;
use voxel_media::content::VideoId;
use voxel_media::qoe::QoeMetric;

fn main() {
    let cache = ContentCache::new();
    let trace = trace_by_name("Verizon");

    header(
        "Fig 7a",
        "bufRatio p90 of BOLA vs VOXEL under different QoE utilities (BBB, Verizon)",
    );
    for buffer in [1usize, 2, 3, 7] {
        let bola = voxel_bench::run(
            &cache,
            sys_config(VideoId::Bbb, "BOLA", buffer, trace.clone()),
        );
        print!("buf={buffer}: BOLA {:5.2}%", bola.buf_ratio_p90());
        for metric in [QoeMetric::Ssim, QoeMetric::Vmaf, QoeMetric::Psnr] {
            let cfg = Experiment::builder()
                .video(VideoId::Bbb)
                .abr(AbrKind::Voxel {
                    safety: 1.0,
                    metric,
                })
                .buffer(buffer)
                .trace(trace.clone())
                .transport(TransportMode::Split)
                .trials(voxel_bench::trial_count());
            let agg = voxel_bench::run(&cache, cfg);
            print!("  VOXEL/{metric:?} {:5.2}%", agg.buf_ratio_p90());
        }
        println!();
    }

    header(
        "Fig 7b/7c",
        "SSIM and VMAF distributions of streamed segments (BBB, Verizon, 3-seg buffer)",
    );
    let bola = voxel_bench::run(&cache, sys_config(VideoId::Bbb, "BOLA", 3, trace.clone()));
    let voxel = voxel_bench::run(&cache, sys_config(VideoId::Bbb, "VOXEL", 3, trace.clone()));
    let ssim_probes: Vec<f64> = (0..=10).map(|i| 0.85 + i as f64 * 0.015).collect();
    print_cdf("SSIM BOLA", &bola.pooled_ssims(), &ssim_probes);
    print_cdf("SSIM VOXEL", &voxel.pooled_ssims(), &ssim_probes);
    let vmaf_probes: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    print_cdf("VMAF BOLA", &bola.pooled_vmafs(), &vmaf_probes);
    print_cdf("VMAF VOXEL", &voxel.pooled_vmafs(), &vmaf_probes);
    let perfect = |agg: &voxel_core::metrics::Aggregate| {
        let s = agg.pooled_ssims();
        100.0 * s.iter().filter(|&&x| x >= 0.9999).count() as f64 / s.len() as f64
    };
    println!(
        "# segments at perfect SSIM: BOLA {:.0}%  VOXEL {:.0}%",
        perfect(&bola),
        perfect(&voxel)
    );

    header(
        "Fig 7d",
        "percent of segment data skipped by VOXEL vs buffer size (Verizon)",
    );
    for video in ["BBB", "ED", "Sintel", "ToS"] {
        print!("{video:8}");
        for buffer in [1usize, 2, 3, 7] {
            let agg = voxel_bench::run(
                &cache,
                sys_config(video_by_name(video), "VOXEL", buffer, trace.clone()),
            );
            print!("  buf{buffer}:{:5.1}%", agg.data_skipped_mean_pct());
        }
        println!();
    }
    println!("\n# expectation (paper): skipped data decreases with buffer size; VOXEL ~= BOLA quality at far lower bufRatio");
}
