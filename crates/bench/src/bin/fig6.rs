//! Figure 6: the headline result — bufRatio of BOLA vs BETA vs VOXEL over
//! AT&T / 3G / Verizon / T-Mobile with playback buffers of 1, 2, 3 and 7
//! segments (§5.2). On T-Mobile, VOXEL uses the "less aggressive"
//! bandwidth-safety tuning (Fig 6d); `fig17` shows the untuned variant.
//!
//! Also prints the §5.1 side observation: BOLA's restart-abandonments
//! re-download near-entire segments for a large share of segments in
//! small-buffer scenarios.

use voxel_bench::{header, sys_config, trace_by_name, video_by_name, FIG6_PAIRS};
use voxel_core::experiment::ContentCache;

fn main() {
    let cache = ContentCache::new();
    header("Fig 6", "bufRatio (p90 + stderr): BOLA vs BETA vs VOXEL");
    println!(
        "{:18} {:>4} {:>12} {:>12} {:>8} {:>10} {:>9}",
        "panel", "buf", "system", "bufRatio-p90", "stderr", "restarts", "partials"
    );
    let mut improvements: Vec<f64> = Vec::new();
    for (trace, video) in FIG6_PAIRS {
        for buffer in [1usize, 2, 3, 7] {
            let mut bola_p90 = None;
            for system in [
                "BOLA",
                "BETA",
                if trace == "T-Mobile" {
                    "VOXEL-tuned"
                } else {
                    "VOXEL"
                },
            ] {
                let agg = voxel_bench::run(
                    &cache,
                    sys_config(video_by_name(video), system, buffer, trace_by_name(trace)),
                );
                let p90 = agg.buf_ratio_p90();
                let restarts: f64 = agg.trials.iter().map(|t| t.restarts as f64).sum::<f64>()
                    / agg.trials.len() as f64;
                let partials: f64 = agg
                    .trials
                    .iter()
                    .map(|t| t.kept_partials as f64)
                    .sum::<f64>()
                    / agg.trials.len() as f64;
                println!(
                    "{:18} {:>4} {:>12} {:>11.2}% {:>7.2}% {:>10.1} {:>9.1}",
                    format!("{trace}/{video}"),
                    buffer,
                    system,
                    p90,
                    agg.buf_ratio_stderr(),
                    restarts,
                    partials,
                );
                match system {
                    "BOLA" => bola_p90 = Some(p90),
                    s if s.starts_with("VOXEL") => {
                        if let Some(b) = bola_p90 {
                            if b > 0.05 {
                                improvements.push(100.0 * (b - p90) / b);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    if !improvements.is_empty() {
        let min = improvements.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = improvements
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "\n# VOXEL vs BOLA p90-bufRatio reduction: min {:.0}%, max {:.0}% (paper: 25%-97%+ across conditions)",
            min, max
        );
    }
}
