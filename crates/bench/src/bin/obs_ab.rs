//! A/B: profiler disabled vs enabled (1-in-32 sampling) on the session
//! event-loop workload — the ci.sh overhead guard for `voxel-obs`.
//!
//! Mirrors `trace_ab`: the same 600 s constant-rate VOXEL session runs
//! with no profiler and with `Profiler::enabled()` installed, medians
//! over 9 runs each. Exits non-zero when the enabled median exceeds the
//! disabled one by more than the budget (default 5%, override with
//! `VOXEL_OBS_AB_MAX_PCT`).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use voxel_core::client::TransportMode;
use voxel_core::experiment::{run_instrumented_trial, AbrKind, Experiment};
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::QoeModel;
use voxel_media::video::Video;
use voxel_netem::BandwidthTrace;
use voxel_obs::Profiler;
use voxel_prep::manifest::Manifest;
use voxel_trace::Tracer;

const RUNS: usize = 9;

fn main() -> ExitCode {
    let max_pct: f64 = std::env::var("VOXEL_OBS_AB_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let video = Video::generate(VideoId::Bbb);
    let qoe = QoeModel::default();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[QualityLevel::MAX]));
    let video = Arc::new(video);
    let config = Experiment::builder()
        .video(VideoId::Bbb)
        .abr(AbrKind::voxel())
        .transport(TransportMode::Split)
        .buffer(3)
        .trace(BandwidthTrace::constant(10.0, 600))
        .queue(32)
        .build()
        .into_config();
    let run = |profiled: bool| {
        let profiler = if profiled {
            Profiler::enabled()
        } else {
            Profiler::disabled()
        };
        let _g = profiler.install();
        run_instrumented_trial(
            &config,
            &manifest,
            &video,
            &qoe,
            0,
            Tracer::disabled(),
            None,
        )
    };
    // warmup
    run(false);
    run(true);
    let mut medians = [0.0f64; 2];
    for (slot, label) in ["disabled", "profiled"].into_iter().enumerate() {
        let profiled = label == "profiled";
        let mut times = Vec::new();
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let r = run(profiled);
            std::hint::black_box(r);
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        medians[slot] = times[RUNS / 2];
        println!(
            "{label:9} median {:.4}s min {:.4}s",
            times[RUNS / 2],
            times[0]
        );
    }
    let overhead_pct = 100.0 * (medians[1] - medians[0]) / medians[0];
    println!("overhead  {overhead_pct:+.2}% (budget {max_pct}%)");
    if overhead_pct > max_pct {
        eprintln!("obs_ab: profiler overhead {overhead_pct:.2}% exceeds the {max_pct}% budget");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
