//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! QoE evaluation, the offline drop-tolerance analysis, the wire codec,
//! CUBIC, and a complete end-to-end streaming trial.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use voxel_media::content::VideoId;
use voxel_media::ladder::QualityLevel;
use voxel_media::qoe::{LossMap, QoeModel};
use voxel_media::video::Video;
use voxel_prep::analysis::BytesQoeMap;
use voxel_prep::manifest::Manifest;
use voxel_prep::ordering::OrderingKind;

fn bench_qoe_eval(c: &mut Criterion) {
    let video = Video::generate(VideoId::Bbb);
    let model = QoeModel::default();
    let seg = &video.segments[10];
    let loss = LossMap::drop_frames(&[5, 17, 29, 41, 53, 65, 77, 89]);
    c.bench_function("qoe_eval_segment", |b| {
        b.iter(|| black_box(model.eval(seg, QualityLevel::MAX, &loss)))
    });
}

fn bench_prep_analysis(c: &mut Criterion) {
    let video = Video::generate(VideoId::Bbb);
    let model = QoeModel::default();
    let seg = &video.segments[10];
    c.bench_function("bytes_qoe_map_one_ordering", |b| {
        b.iter(|| {
            black_box(BytesQoeMap::compute(
                &model,
                seg,
                QualityLevel::MAX,
                OrderingKind::InboundRank,
            ))
        })
    });
}

fn bench_video_generation(c: &mut Criterion) {
    c.bench_function("video_generate", |b| {
        b.iter(|| black_box(Video::generate(VideoId::Tos)))
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    use voxel_quic::{Frame, Packet, StreamId};
    let pkt = Packet::new(
        123_456,
        vec![
            Frame::Ack {
                ranges: vec![(100, 200), (50, 80), (0, 20)],
                delay_us: 11_000,
            },
            Frame::Stream {
                id: StreamId(8),
                offset: 1 << 20,
                fin: false,
                unreliable: true,
                data: bytes::Bytes::from(vec![0xab; 1200]),
            },
        ],
    );
    c.bench_function("packet_encode", |b| b.iter(|| black_box(pkt.encode())));
    let encoded = pkt.encode();
    c.bench_function("packet_decode", |b| {
        b.iter(|| black_box(Packet::decode(encoded.clone()).expect("valid")))
    });
}

fn bench_cubic(c: &mut Criterion) {
    use voxel_quic::cubic::Cubic;
    use voxel_sim::{SimDuration, SimTime};
    c.bench_function("cubic_ack_step", |b| {
        let mut cubic = Cubic::new(1350);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            cubic.on_sent(1350);
            cubic.on_ack(
                SimTime::from_micros(t * 500),
                1350,
                SimDuration::from_millis(60),
            );
            black_box(cubic.cwnd())
        })
    });
}

fn bench_end_to_end_trial(c: &mut Criterion) {
    use voxel_core::client::{PlayerConfig, TransportMode};
    use voxel_core::session::Session;
    use voxel_netem::{BandwidthTrace, PathConfig};

    let video = Arc::new(Video::generate(VideoId::Bbb));
    let qoe = QoeModel::default();
    let manifest = Arc::new(Manifest::prepare_levels(&video, &qoe, &[QualityLevel::MAX]));
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("voxel_trial_constant_10mbps", |b| {
        b.iter(|| {
            let session = Session::new(
                PathConfig::new(BandwidthTrace::constant(10.0, 600), 32),
                manifest.clone(),
                video.clone(),
                qoe.clone(),
                Box::new(voxel_abr::AbrStar::default()),
                PlayerConfig::new(3, TransportMode::Split),
            );
            black_box(session.run())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_qoe_eval,
    bench_prep_analysis,
    bench_video_generation,
    bench_wire_codec,
    bench_cubic,
    bench_end_to_end_trial
);
criterion_main!(benches);
