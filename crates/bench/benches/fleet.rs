//! Criterion perf baseline for the fleet runtime (DESIGN.md §12): the
//! same three workload families the conformance runner snapshots into
//! `BENCH_5.json` — fleet scaling at 1/2/4/8/16 sessions, RangeSet
//! ACK-tracking ops, and the single-session event-loop rate.
//!
//! ```sh
//! cargo bench -p voxel-bench --bench fleet
//! VOXEL_BENCH_FAST=1 cargo bench -p voxel-bench --bench fleet   # CI smoke
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use voxel_bench::perf;
use voxel_core::ContentCache;
use voxel_fleet::{run_fleet, FleetSpec};
use voxel_trace::Tracer;

fn bench_fleet_scaling(c: &mut Criterion) {
    let cache = ContentCache::top_level_only();
    let mut group = c.benchmark_group("fleet_scaling");
    group.sample_size(10);
    for n in perf::FLEET_SCALING_SESSIONS {
        let spec = FleetSpec::parse(&perf::fleet_scaling_spec(n)).expect("scaling spec");
        group.bench_function(&format!("{n}_sessions"), |b| {
            b.iter(|| {
                black_box(
                    run_fleet(&spec, &cache, Tracer::disabled())
                        .expect("fleet runs")
                        .loop_iters,
                )
            })
        });
    }
    group.finish();
}

fn bench_rangeset(c: &mut Criterion) {
    c.bench_function("rangeset/ack_tracking", |b| {
        b.iter(|| black_box(perf::rangeset_workload()))
    });
}

fn bench_session_loop(c: &mut Criterion) {
    let cache = ContentCache::top_level_only();
    let spec = FleetSpec::parse(&perf::session_loop_spec()).expect("session spec");
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    group.bench_function("event_loop_d120", |b| {
        b.iter(|| {
            black_box(
                run_fleet(&spec, &cache, Tracer::disabled())
                    .expect("session runs")
                    .loop_iters,
            )
        })
    });
    group.finish();
}

criterion_group!(
    fleet,
    bench_fleet_scaling,
    bench_rangeset,
    bench_session_loop
);
criterion_main!(fleet);
