//! Sharded session execution for the conservative-parallel fleet runtime.
//!
//! The fleet loop in [`crate::run`] is round-based: every session owns a
//! private event queue and advances independently up to a global barrier,
//! interacting with the rest of the fleet **only** through the shared
//! link, which the coordinator pumps single-threaded between rounds (see
//! DESIGN.md §14 for the protocol and its lookahead argument). This
//! module holds the pieces that live on the session side of that split:
//!
//! - [`SessionCell`]: one session (client + server + their private event
//!   queue) and its `advance`-to-barrier loop, ported from the global
//!   fleet loop but touching nothing outside the session.
//! - [`shard_round`] / [`shard_freeze`]: the per-shard round step shared
//!   verbatim by the inline (workers = 1) and threaded paths, so every
//!   worker count runs the *same algorithm* — only the thread dispatch
//!   differs, which is what makes timelines byte-identical at any `w`.
//! - [`Lane`]: a shard handle — either the coordinator's own slice of
//!   sessions or a channel pair to a worker thread.
//!
//! Determinism: everything a session exports (outgoing packets, finish
//! notes, blocked times) is keyed by partition-invariant values — event
//! time, flow id, per-flow sequence — never by shard id or thread
//! interleaving, so the coordinator's merge order cannot observe how
//! sessions were distributed across workers.

use bytes::Bytes;
use std::sync::mpsc::{Receiver, Sender};
use voxel_core::client::{ClientApp, PlayerConfig};
use voxel_core::server::{ServeNote, ServerApp};
use voxel_core::{TransportStats, TrialResult};
use voxel_quic::{Connection, ConnectionConfig, Role};
use voxel_sim::{EventQueue, SimDuration, SimTime};

/// Session-local events: datagram arrivals and player ticks. Link service
/// completions are not events here — the coordinator owns the link.
enum Ev {
    /// Datagram arriving at the client (delivered by the shared link).
    ToClient(Bytes),
    /// Datagram arriving at the server (uplink is delay-only, in-session).
    ToServer(Bytes),
    /// Player tick (also the no-op clock bump).
    Tick,
}

/// One packet a session offered to the shared link during a round.
///
/// `(at, flow, seq)` is the coordinator's merge key: all three are
/// computed by the session alone, so the merged arrival order is
/// independent of how sessions shard across workers.
pub(crate) struct Outgoing {
    /// Send time (the session-local event time of the transmission).
    pub at: SimTime,
    /// Flow id of the sending session.
    pub flow: usize,
    /// Per-flow emission sequence (monotone within the flow).
    pub seq: u64,
    /// Wire size offered to the link's byte-level queue.
    pub bytes: usize,
    /// Encoded datagram, held until the link completes its service.
    pub payload: Bytes,
}

/// One object the session's server resolved during a round, exported for
/// the coordinator's edge tier. Keyed like [`Outgoing`] — `(at, flow,
/// seq)` are all session-local, so the coordinator's replay order is
/// partition-invariant.
pub(crate) struct NoteOut {
    /// Resolution time (the session-local event time of the serve).
    pub at: SimTime,
    /// Flow id of the serving session.
    pub flow: usize,
    /// Per-flow note sequence (monotone within the flow).
    pub seq: u64,
    /// The served object.
    pub note: ServeNote,
}

/// A link delivery routed back to a session for the next round.
pub(crate) struct Delivery {
    /// Destination flow.
    pub flow: usize,
    /// Client-side arrival time (service completion + downlink delay).
    pub at: SimTime,
    /// The datagram.
    pub payload: Bytes,
}

/// A session that finished during a round, with the fields the
/// coordinator needs to emit its `fleet_session_end` trace event.
pub(crate) struct FinishNote {
    pub flow: usize,
    pub system: String,
    pub at: SimTime,
    pub completed: bool,
    pub stall_s: f64,
    pub ssim: f64,
    pub bytes_downloaded: u64,
}

/// One barrier round's instructions to a shard.
pub(crate) struct RoundCmd {
    /// Advance every live session up to (and including) this time.
    pub barrier: SimTime,
    /// Link deliveries to inject before advancing, in coordinator order.
    pub deliveries: Vec<Delivery>,
    /// Flows the coordinator knows cannot act this round (blocked past
    /// the barrier with no deliveries): skipped without a wake-up.
    pub skip: Vec<bool>,
}

/// What a shard reports back after a round.
#[derive(Default)]
pub(crate) struct RoundReply {
    /// Packets offered to the link, in session emission order.
    pub outbox: Vec<Outgoing>,
    /// Objects resolved by session servers, in resolution order; empty
    /// unless the fleet runs an edge tier.
    pub notes: Vec<NoteOut>,
    /// `(flow, earliest pending time)` for every still-live session.
    pub blocked: Vec<(usize, SimTime)>,
    /// Sessions that finished this round.
    pub finished: Vec<FinishNote>,
    /// Event-loop iterations spent by this shard this round.
    pub iters: u64,
}

/// Coordinator → shard commands.
pub(crate) enum Cmd {
    Round(RoundCmd),
    /// Freeze every unfinished session at the cap.
    Freeze(SimTime),
    /// Return the per-session results; the worker exits afterwards.
    Harvest,
}

/// Shard → coordinator replies.
pub(crate) enum Reply {
    Round(RoundReply),
    Outcomes(Vec<(usize, TrialResult)>),
}

/// How a session left its `advance` call.
enum Advanced {
    /// Live, earliest pending work strictly after the barrier.
    Blocked(SimTime),
    /// Finished during this round.
    Done(Box<FinishNote>),
}

/// One fleet member: both endpoints, their private event queue, and the
/// bookkeeping the barrier protocol needs.
pub(crate) struct SessionCell {
    pub flow: usize,
    label: String,
    start: SimTime,
    delay_up: SimDuration,
    client_conn: Connection,
    server_conn: Connection,
    server: ServerApp,
    /// Taken on finalization.
    client: Option<ClientApp>,
    last_tick: SimTime,
    queue: EventQueue<Ev>,
    out_seq: u64,
    note_seq: u64,
    iters: u64,
    result: Option<TrialResult>,
}

/// Everything needed to construct one session. Plain `Send + Sync` data,
/// so worker threads build (and therefore own) their sessions — the live
/// session state, with its `Box<dyn Abr>`, never crosses a thread.
pub(crate) struct SessionSeed {
    pub flow: usize,
    pub label: String,
    pub start: SimTime,
    pub delay_up: SimDuration,
    pub player: PlayerConfig,
    pub conn_config: ConnectionConfig,
    pub manifest: std::sync::Arc<voxel_prep::manifest::Manifest>,
    pub video: std::sync::Arc<voxel_media::video::Video>,
    pub qoe: voxel_media::qoe::QoeModel,
    pub abr: voxel_core::AbrKind,
    /// Record per-object serve notes (only when an edge tier consumes
    /// them — recording is dead weight otherwise).
    pub record_notes: bool,
}

impl SessionCell {
    pub fn new(seed: SessionSeed) -> SessionCell {
        let client = ClientApp::new(
            seed.player,
            seed.manifest.clone(),
            seed.video,
            seed.qoe,
            seed.abr.make(),
        );
        let mut queue = EventQueue::with_capacity(32);
        queue.schedule(seed.start, Ev::Tick);
        let mut server = ServerApp::new(seed.manifest, true);
        server.record_serve_notes(seed.record_notes);
        SessionCell {
            flow: seed.flow,
            label: seed.label,
            start: seed.start,
            delay_up: seed.delay_up,
            client_conn: Connection::new(Role::Client, seed.conn_config.clone()),
            server_conn: Connection::new(Role::Server, seed.conn_config),
            server,
            client: Some(client),
            last_tick: seed.start,
            queue,
            out_seq: 0,
            note_seq: 0,
            iters: 0,
            result: None,
        }
    }

    fn live(&self) -> bool {
        self.result.is_none()
    }

    /// Inject a link delivery. Deliveries always land at or after the
    /// session's clock: the lookahead argument (DESIGN.md §14) guarantees
    /// a packet entering the link in round *k* cannot arrive before the
    /// round-*k* barrier, and the session never advances past it.
    fn inject(&mut self, at: SimTime, payload: Bytes) {
        self.queue.schedule(at, Ev::ToClient(payload));
    }

    /// Advance this session up to (and including) `barrier`: the fleet
    /// loop of `run.rs` pre-shard, restricted to one session. Outgoing
    /// downlink packets land in `out`, serve notes (edge tier only) in
    /// `notes`; uplink packets are delay-only and stay in the private
    /// queue.
    fn advance(
        &mut self,
        barrier: SimTime,
        out: &mut Vec<Outgoing>,
        notes: &mut Vec<NoteOut>,
    ) -> Advanced {
        loop {
            let now = self.queue.now();
            self.iters += 1;
            // Profiler sampling gate: free unless a voxel-obs profiler is
            // installed on this thread; clock readings stay quarantined in
            // the profile and never reach sim state.
            voxel_obs::arm(self.iters);
            let _step = voxel_obs::span!("fleet.step");

            if now >= self.start {
                let _session = voxel_obs::span!("fleet.session", self.flow);
                self.server.handle(now, &mut self.server_conn);
                for note in self.server.take_serve_notes() {
                    self.note_seq += 1;
                    notes.push(NoteOut {
                        at: now,
                        flow: self.flow,
                        seq: self.note_seq,
                        note,
                    });
                }
                let done = match self.client.as_mut() {
                    Some(client) => {
                        client.on_wake(now, &mut self.client_conn);
                        #[cfg(feature = "paranoid")]
                        if let Err(e) = client.check_invariants(now) {
                            if let Some(dump) = voxel_obs::dump_current(&format!(
                                "fleet member {} invariant violated at {now:?}: {e}",
                                self.flow
                            )) {
                                eprintln!("{dump}");
                            }
                            // lint: allow(panic) the paranoid layer is intentionally fatal on corruption
                            panic!(
                                "fleet member {} invariant violated at {now:?}: {e}",
                                self.flow
                            );
                        }
                        client.is_done()
                    }
                    None => false,
                };
                if done {
                    // lint: allow(panic) the client was just observed present
                    let note = self.finish(now).expect("client present at finish");
                    return Advanced::Done(Box::new(note));
                }

                // Drain transmissions: downlink to the shared link (via
                // the coordinator), uplink delay-only in-session.
                while let Some(p) = self.server_conn.poll_transmit(now) {
                    self.out_seq += 1;
                    out.push(Outgoing {
                        at: now,
                        flow: self.flow,
                        seq: self.out_seq,
                        bytes: p.wire_size(),
                        payload: p.encode(),
                    });
                }
                while let Some(p) = self.client_conn.poll_transmit(now) {
                    self.queue
                        .schedule(now + self.delay_up, Ev::ToServer(p.encode()));
                }

                // Keep exactly one player tick armed.
                if self.last_tick <= now {
                    if let Some(client) = self.client.as_ref() {
                        if let Some(wake) = client.next_wake(now) {
                            self.last_tick = wake;
                            self.queue.schedule(wake, Ev::Tick);
                        }
                    }
                }
            }

            // Next event: private queue, or a transport timer.
            let mut next = self.queue.peek_time();
            for t in [
                self.client_conn.next_timeout(),
                self.server_conn.next_timeout(),
            ] {
                next = match (next, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let Some(next) = next else {
                // Nothing pending: force a tick so the player re-evaluates
                // (mirrors the single-session loop's idle poke).
                self.queue
                    .schedule(now + SimDuration::from_millis(100), Ev::Tick);
                continue;
            };
            if next > barrier {
                return Advanced::Blocked(next);
            }

            // Fire transport timers due at (or before) `next`.
            if self.client_conn.next_timeout().is_some_and(|t| t <= next) {
                self.client_conn.on_timeout(next);
            }
            if self.server_conn.next_timeout().is_some_and(|t| t <= next) {
                self.server_conn.on_timeout(next);
            }
            // Deliver everything due at `next`.
            while self.queue.peek_time() == Some(next) {
                let Some(ev) = self.queue.pop() else {
                    break;
                };
                match ev.event {
                    Ev::ToClient(d) => self.client_conn.on_datagram(next, d),
                    Ev::ToServer(d) => self.server_conn.on_datagram(next, d),
                    Ev::Tick => {}
                }
            }
            // If only timers fired (queue still in the past), bump the
            // private clock with a no-op event.
            if self.queue.now() < next {
                self.queue.schedule(next, Ev::Tick);
                self.queue.pop();
            }
        }
    }

    /// Close out the session at `now`: convert player state into a
    /// [`TrialResult`] with transport stats read off the connections.
    fn finish(&mut self, now: SimTime) -> Option<FinishNote> {
        let client = self.client.take()?;
        let stats = self.server_conn.stats();
        let client_stats = self.client_conn.stats();
        let mut r = client.into_result(now);
        r.abr = self.label.clone();
        r.transport = TransportStats {
            packets_sent: stats.packets_sent,
            packets_lost: stats.packets_lost,
            loss_events: stats.loss_events,
            ptos: stats.ptos,
            bytes_sent: stats.bytes_sent,
            bytes_retransmitted: stats.bytes_retransmitted,
            mean_cwnd_bytes: self.server_conn.cwnd() as f64,
            mean_srtt_ms: self.server_conn.srtt().as_secs_f64() * 1e3,
            client_packets_received: client_stats.packets_received,
            client_packets_duplicate: client_stats.packets_duplicate,
            client_packets_reordered: client_stats.packets_reordered,
        };
        let note = FinishNote {
            flow: self.flow,
            system: self.label.clone(),
            at: now,
            completed: r.completed,
            stall_s: r.stall_s,
            ssim: r.avg_ssim(),
            bytes_downloaded: r.bytes_downloaded,
        };
        self.result = Some(r);
        Some(note)
    }
}

/// Run one barrier round over a shard's sessions. Shared by the inline
/// and threaded lanes — this function *is* the algorithm; worker count
/// only changes who calls it.
pub(crate) fn shard_round(sessions: &mut [SessionCell], mut cmd: RoundCmd) -> RoundReply {
    let mut reply = RoundReply::default();
    let iters_before: u64 = sessions.iter().map(|s| s.iters).sum();
    for d in cmd.deliveries.drain(..) {
        let cell = sessions
            .iter_mut()
            .find(|s| s.flow == d.flow)
            // lint: allow(panic) the coordinator routes by flow ownership; a miss is a harness bug
            .expect("delivery routed to the owning shard");
        cell.inject(d.at, d.payload);
    }
    for (i, cell) in sessions.iter_mut().enumerate() {
        if !cell.live() {
            continue;
        }
        if cmd.skip.get(i).copied().unwrap_or(false) {
            continue;
        }
        match cell.advance(cmd.barrier, &mut reply.outbox, &mut reply.notes) {
            Advanced::Blocked(next) => reply.blocked.push((cell.flow, next)),
            Advanced::Done(note) => reply.finished.push(*note),
        }
    }
    reply.iters = sessions.iter().map(|s| s.iters).sum::<u64>() - iters_before;
    reply
}

/// Freeze every unfinished session at the cap (the coordinator decided
/// globally that nothing happens before it).
pub(crate) fn shard_freeze(sessions: &mut [SessionCell], at: SimTime) -> RoundReply {
    let mut reply = RoundReply::default();
    for cell in sessions.iter_mut() {
        if let Some(note) = cell.finish(at) {
            reply.finished.push(note);
        }
    }
    reply
}

fn harvest(sessions: Vec<SessionCell>) -> Vec<(usize, TrialResult)> {
    sessions
        .into_iter()
        .map(|s| {
            let flow = s.flow;
            // lint: allow(panic) the coordinator freezes stragglers before harvesting
            (flow, s.result.expect("session finished before harvest"))
        })
        .collect()
}

/// Worker-thread body: build the shard's sessions locally (session state
/// never crosses threads), then serve rounds until harvested.
pub(crate) fn worker_loop(
    seeds: Vec<SessionSeed>,
    rx: Receiver<Cmd>,
    tx: Sender<Reply>,
    recorder: Option<voxel_obs::FlightRecorder>,
) {
    let _bound = recorder.as_ref().map(voxel_obs::install_recorder);
    let mut sessions: Vec<SessionCell> = seeds.into_iter().map(SessionCell::new).collect();
    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            Cmd::Round(round) => Reply::Round(shard_round(&mut sessions, round)),
            Cmd::Freeze(at) => Reply::Round(shard_freeze(&mut sessions, at)),
            Cmd::Harvest => {
                let _ = tx.send(Reply::Outcomes(harvest(sessions)));
                return;
            }
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

/// A shard handle as the coordinator sees it: the inline lane runs the
/// shard's sessions on the coordinator thread (workers = 1 keeps the
/// whole run single-threaded); a thread lane speaks the same `Cmd`/`Reply`
/// protocol over channels.
pub(crate) enum Lane {
    Inline {
        sessions: Vec<SessionCell>,
        pending: Option<Cmd>,
    },
    Thread {
        tx: Sender<Cmd>,
        rx: Receiver<Reply>,
    },
}

impl Lane {
    /// Queue a command. Thread lanes start working immediately; the
    /// inline lane defers to `collect` so dispatch stays non-blocking in
    /// both cases and rounds overlap across threaded shards.
    pub fn dispatch(&mut self, cmd: Cmd) {
        match self {
            Lane::Inline { pending, .. } => *pending = Some(cmd),
            Lane::Thread { tx, .. } => {
                // lint: allow(panic) a worker death already panicked the run
                tx.send(cmd).expect("shard worker alive");
            }
        }
    }

    /// Execute (inline) or await (threaded) the dispatched command.
    pub fn collect(&mut self) -> Reply {
        match self {
            Lane::Inline { sessions, pending } => {
                // lint: allow(panic) collect without dispatch is a harness bug
                match pending.take().expect("round dispatched") {
                    Cmd::Round(round) => Reply::Round(shard_round(sessions, round)),
                    Cmd::Freeze(at) => Reply::Round(shard_freeze(sessions, at)),
                    Cmd::Harvest => Reply::Outcomes(harvest(std::mem::take(sessions))),
                }
            }
            Lane::Thread { rx, .. } => {
                // lint: allow(panic) a worker death already panicked the run
                rx.recv().expect("shard worker reply")
            }
        }
    }
}
