//! Cross-session fleet metrics: throughput shares, Jain fairness,
//! aggregate QoE.

use crate::edge::EdgeReport;
use voxel_core::TrialResult;
use voxel_netem::FlowStats;

/// Jain's fairness index `(Σx)² / (n·Σx²)`: 1 for a perfectly even
/// allocation, `1/n` when one flow takes everything. Degenerate inputs
/// (empty, or all-zero) count as fair.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

/// The outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Canonical spec of the fleet that ran.
    pub spec: String,
    /// Per-session trial results, in flow-id order.
    pub sessions: Vec<TrialResult>,
    /// Per-flow link accounting, in flow-id order.
    pub flows: Vec<FlowStats>,
    /// Per-flow share of delivered link bytes, percent (sums to ~100
    /// when anything was delivered).
    pub shares_pct: Vec<f64>,
    /// Jain fairness index over delivered bytes.
    pub jain: f64,
    /// Simulated end time of the whole fleet, seconds.
    pub end_s: f64,
    /// Event-loop iterations the run took (the steps/sec perf metric).
    pub loop_iters: u64,
    /// The edge tier's report (`None` without a topology). Compared
    /// field-for-field by the sharded-parity suite, like the timeline.
    pub edge: Option<EdgeReport>,
}

impl FleetResult {
    /// Mean per-session average SSIM (the aggregate QoE headline).
    pub fn mean_ssim(&self) -> f64 {
        mean(self.sessions.iter().map(|r| r.avg_ssim()))
    }

    /// Mean per-session bufRatio, percent.
    pub fn mean_buf_ratio_pct(&self) -> f64 {
        mean(self.sessions.iter().map(|r| r.buf_ratio_pct()))
    }

    /// Total stall time across every session, seconds.
    pub fn total_stall_s(&self) -> f64 {
        self.sessions.iter().map(|r| r.stall_s).sum()
    }

    /// Link packets dropped across every flow.
    pub fn total_drops(&self) -> u64 {
        self.flows.iter().map(|f| f.dropped).sum()
    }

    /// Whether every session played its video to the end.
    pub fn all_completed(&self) -> bool {
        self.sessions.iter().all(|r| r.completed)
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_bounds() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "{skewed}");
        let mild = jain_index(&[3.0, 2.0, 2.5, 2.8]);
        assert!(mild > 0.9 && mild <= 1.0, "{mild}");
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}
